"""BitWriter / BitReader round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.bitio import BitReader, BitWriter


class TestWriter:
    def test_empty(self):
        assert BitWriter().getvalue() == b""

    def test_single_bit_padding(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == b"\x80"

    def test_bit_length(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.bit_length == 3
        writer.write_bits(0xFF, 8)
        assert writer.bit_length == 11

    def test_value_too_wide(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(4, 2)

    def test_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b1, 1)
        writer.write_bits(0b0000000, 7)
        assert writer.getvalue() == b"\x80"


class TestRoundtrip:
    @given(
        st.lists(
            st.tuples(st.integers(0, 64), st.integers(min_value=0)),
            max_size=50,
        )
    )
    @settings(max_examples=100)
    def test_bits_roundtrip(self, pieces):
        pieces = [(w, v & ((1 << w) - 1)) for w, v in pieces]
        writer = BitWriter()
        for width, value in pieces:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for width, value in pieces:
            assert reader.read_bits(width) == value

    @given(st.lists(st.integers(0, 40), max_size=30))
    def test_unary_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        for value in values:
            assert reader.read_unary() == value

    def test_read_past_end(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_bits_remaining(self):
        reader = BitReader(b"\xab\xcd")
        assert reader.bits_remaining == 16
        reader.read_bits(5)
        assert reader.bits_consumed == 5
        assert reader.bits_remaining == 11

    def test_interleaved_with_packed_semantics(self):
        writer = BitWriter()
        writer.write_bits(0xABC, 12)
        writer.write_bits(0xDEF, 12)
        assert writer.getvalue() == bytes([0xAB, 0xCD, 0xEF])
