"""PackedArray: layout exactness and random-operation equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.packed import PackedArray


class TestBasics:
    def test_byte_size_28bit(self):
        """Two 28-bit ELL(2,20) registers pack into exactly 7 bytes."""
        assert PackedArray(28, 2).byte_size == 7

    def test_byte_size_6bit_hll(self):
        assert PackedArray(6, 2048).byte_size == 1536

    def test_byte_size_3bit(self):
        assert PackedArray(3, 2048).byte_size == 768

    def test_empty(self):
        array = PackedArray(13, 0)
        assert len(array) == 0
        assert array.to_bytes() == b""

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            PackedArray(0, 4)
        with pytest.raises(ValueError):
            PackedArray(129, 4)

    def test_wide_registers_for_ell_0_64(self):
        """ELL(0, 64) needs 70-bit registers (Sec. 2.5, PCSA-equivalent)."""
        array = PackedArray(70, 3)
        array[1] = (1 << 70) - 1
        assert array[0] == 0
        assert array[1] == (1 << 70) - 1
        assert array.byte_size == (70 * 3 + 7) // 8

    def test_rejects_value_overflow(self):
        array = PackedArray(4, 4)
        with pytest.raises(ValueError):
            array[0] = 16

    def test_rejects_negative_value(self):
        array = PackedArray(4, 4)
        with pytest.raises(ValueError):
            array[0] = -1

    def test_index_error(self):
        array = PackedArray(4, 4)
        with pytest.raises(IndexError):
            array[4]

    def test_negative_index(self):
        array = PackedArray(8, 4)
        array[-1] = 77
        assert array[3] == 77

    def test_msb_first_layout(self):
        array = PackedArray(4, 2)
        array[0] = 0xA
        array[1] = 0x5
        assert array.to_bytes() == b"\xa5"

    def test_straddling_byte_boundary(self):
        array = PackedArray(12, 2)
        array[0] = 0xABC
        array[1] = 0xDEF
        assert array.to_bytes() == bytes([0xAB, 0xCD, 0xEF])

    def test_repr(self):
        assert "width=6" in repr(PackedArray(6, 8))


class TestRoundtrips:
    @given(
        width=st.integers(1, 64),
        values=st.lists(st.integers(min_value=0), min_size=0, max_size=40),
    )
    @settings(max_examples=120)
    def test_set_get_equivalence(self, width, values):
        values = [v & ((1 << width) - 1) for v in values]
        array = PackedArray(width, len(values))
        for i, value in enumerate(values):
            array[i] = value
        assert list(array) == values
        assert array.to_list() == values

    @given(
        width=st.integers(1, 64),
        values=st.lists(st.integers(min_value=0), min_size=1, max_size=40),
    )
    @settings(max_examples=120)
    def test_from_values_to_bytes_roundtrip(self, width, values):
        values = [v & ((1 << width) - 1) for v in values]
        array = PackedArray.from_values(width, values)
        restored = PackedArray.from_bytes(width, len(values), array.to_bytes())
        assert restored == array
        assert restored.to_list() == values

    @given(st.data())
    @settings(max_examples=60)
    def test_random_writes_match_reference_list(self, data):
        width = data.draw(st.integers(1, 33))
        count = data.draw(st.integers(1, 30))
        array = PackedArray(width, count)
        reference = [0] * count
        for _ in range(data.draw(st.integers(0, 50))):
            index = data.draw(st.integers(0, count - 1))
            value = data.draw(st.integers(0, (1 << width) - 1))
            array[index] = value
            reference[index] = value
        assert list(array) == reference

    def test_from_bytes_length_validation(self):
        with pytest.raises(ValueError):
            PackedArray.from_bytes(6, 4, b"\x00" * 10)

    def test_from_values_overflow_validation(self):
        with pytest.raises(ValueError):
            PackedArray.from_values(4, [16])

    def test_final_byte_zero_padded(self):
        array = PackedArray.from_values(3, [7])
        assert array.to_bytes() == bytes([0b11100000])
