"""Header and varint primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.serialization import (
    HEADER_SIZE,
    SerializationError,
    TAG_EXALOGLOG,
    TAG_HYPERLOGLOG,
    read_header,
    read_uvarint,
    uvarint_size,
    write_header,
    write_uvarint,
)


class TestHeader:
    def test_roundtrip(self):
        buffer = write_header(TAG_EXALOGLOG)
        assert read_header(bytes(buffer), TAG_EXALOGLOG) == HEADER_SIZE

    def test_wrong_tag(self):
        buffer = bytes(write_header(TAG_EXALOGLOG))
        with pytest.raises(SerializationError):
            read_header(buffer, TAG_HYPERLOGLOG)

    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            read_header(b"\x00\x00\x01\x01", TAG_EXALOGLOG)

    def test_truncated(self):
        with pytest.raises(SerializationError):
            read_header(b"\xe1", TAG_EXALOGLOG)

    def test_bad_version(self):
        buffer = bytearray(write_header(TAG_EXALOGLOG))
        buffer[2] = 99
        with pytest.raises(SerializationError):
            read_header(bytes(buffer), TAG_EXALOGLOG)


class TestUvarint:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip(self, value):
        buffer = bytearray()
        write_uvarint(buffer, value)
        decoded, offset = read_uvarint(bytes(buffer), 0)
        assert decoded == value
        assert offset == len(buffer)
        assert uvarint_size(value) == len(buffer)

    def test_one_byte_boundary(self):
        assert uvarint_size(127) == 1
        assert uvarint_size(128) == 2

    def test_sequence(self):
        buffer = bytearray()
        for value in (0, 1, 300, 70000):
            write_uvarint(buffer, value)
        offset = 0
        decoded = []
        for _ in range(4):
            value, offset = read_uvarint(bytes(buffer), offset)
            decoded.append(value)
        assert decoded == [0, 1, 300, 70000]

    def test_truncated(self):
        with pytest.raises(SerializationError):
            read_uvarint(b"\x80", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)
