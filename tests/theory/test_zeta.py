"""Hurwitz zeta implementations against known values and each other."""

import math

import pytest

from repro.theory.zeta import hurwitz_zeta, hurwitz_zeta_reference


class TestKnownValues:
    def test_riemann_zeta_2(self):
        assert hurwitz_zeta(2.0, 1.0) == pytest.approx(math.pi ** 2 / 6, rel=1e-12)

    def test_riemann_zeta_3_apery(self):
        assert hurwitz_zeta(3.0, 1.0) == pytest.approx(1.2020569031595943, rel=1e-12)

    def test_shift_identity(self):
        """zeta(s, q) - zeta(s, q+1) == q**-s."""
        for s in (2.0, 3.0):
            for q in (0.5, 1.0, 1.25, 2.0):
                difference = hurwitz_zeta(s, q) - hurwitz_zeta(s, q + 1.0)
                assert difference == pytest.approx(q ** -s, rel=1e-10)

    def test_zeta_2_2(self):
        assert hurwitz_zeta(2.0, 2.0) == pytest.approx(math.pi ** 2 / 6 - 1.0, rel=1e-12)


class TestReferenceImplementation:
    @pytest.mark.parametrize("s", [2.0, 3.0])
    @pytest.mark.parametrize("q", [0.25, 0.5, 1.0, 1.1666, 1.25, 1.5, 2.0, 3.0])
    def test_matches_scipy(self, s, q):
        assert hurwitz_zeta_reference(s, q) == pytest.approx(
            hurwitz_zeta(s, q), rel=1e-10
        )

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            hurwitz_zeta_reference(1.0, 1.0)
        with pytest.raises(ValueError):
            hurwitz_zeta_reference(2.0, 0.0)
