"""The MVP formulas against every number quoted in the paper."""

import math

import pytest

from repro.theory.mvp import (
    CONJECTURED_LOWER_BOUND,
    MARTINGALE_COMPRESSED_LIMIT,
    base_from_t,
    bias_correction_constant,
    memory_for_error,
    mvp_ehll,
    mvp_hll,
    mvp_martingale_compressed,
    mvp_martingale_dense,
    mvp_ml_compressed,
    mvp_ml_dense,
    mvp_ull,
    optimal_d,
    savings_vs_hll,
    theoretical_relative_rmse,
)


class TestPaperHeadlines:
    """Every MVP value stated in Sections 1-2.4."""

    def test_hll(self):
        assert mvp_hll() == pytest.approx(6.45, abs=0.01)

    def test_ull_4_63(self):
        assert mvp_ull() == pytest.approx(4.63, abs=0.01)

    def test_ull_28_percent_saving(self):
        assert savings_vs_hll(mvp_ull()) == pytest.approx(0.28, abs=0.01)

    def test_ell_2_20_is_3_67(self):
        assert mvp_ml_dense(2, 20) == pytest.approx(3.67, abs=0.01)

    def test_ell_2_20_43_percent_saving(self):
        assert savings_vs_hll(mvp_ml_dense(2, 20)) == pytest.approx(0.43, abs=0.005)

    def test_ell_2_24_is_3_78(self):
        assert mvp_ml_dense(2, 24) == pytest.approx(3.78, abs=0.01)

    def test_ell_1_9_is_3_90(self):
        assert mvp_ml_dense(1, 9) == pytest.approx(3.90, abs=0.01)

    def test_martingale_ell_2_16_is_2_77(self):
        assert mvp_martingale_dense(2, 16) == pytest.approx(2.77, abs=0.01)

    def test_martingale_33_percent_saving(self):
        saving = 1.0 - mvp_martingale_dense(2, 16) / mvp_martingale_dense(0, 0)
        assert saving == pytest.approx(0.33, abs=0.01)

    def test_ehll_efficient_bound(self):
        """Eq. (3) gives 5.19 for ELL(0,1); the EHLL paper's own estimator
        only reaches 5.43 (16 % below HLL) — we reproduce the formula."""
        assert mvp_ehll() == pytest.approx(5.19, abs=0.01)

    def test_compressed_approaches_conjectured_bound(self):
        """Figure 6: d -> 64 at t=0 approaches the 1.98 FISH bound."""
        assert mvp_ml_compressed(0, 64) == pytest.approx(
            CONJECTURED_LOWER_BOUND, abs=0.01
        )

    def test_compressed_martingale_limit(self):
        """Eq. (7) has the lower bound 1.63."""
        assert mvp_martingale_compressed(0, 48) == pytest.approx(
            MARTINGALE_COMPRESSED_LIMIT, abs=0.01
        )
        for t in range(3):
            for d in range(0, 65, 8):
                assert mvp_martingale_compressed(t, d) >= 1.62


class TestOptima:
    """Sec. 2.4: the minima the arrows in Figures 4-5 point at."""

    def test_figure4_optimum_t2_d20(self):
        best_d, best = optimal_d(2, mvp_ml_dense)
        assert best_d == 20
        assert best == pytest.approx(3.67, abs=0.01)

    def test_figure5_optimum_t2_d16(self):
        best_d, best = optimal_d(2, mvp_martingale_dense)
        assert best_d == 16
        assert best == pytest.approx(2.77, abs=0.01)

    def test_figure4_t0_optimum_is_ull_region(self):
        best_d, _ = optimal_d(0, mvp_ml_dense)
        assert best_d in (2, 3)  # ULL sits at/near the t=0 optimum

    def test_t3_worse_than_t2(self):
        """Sec. 2.4: t >= 3 is not worth the register growth."""
        _, best_t2 = optimal_d(2, mvp_ml_dense)
        _, best_t3 = optimal_d(3, mvp_ml_dense)
        assert best_t3 > best_t2


class TestShapes:
    def test_base_from_t(self):
        assert base_from_t(0) == 4.0 ** 0.5  # 2
        assert base_from_t(1) == pytest.approx(math.sqrt(2.0))
        assert base_from_t(2) == pytest.approx(2.0 ** 0.25)

    def test_memory_for_error_inverse_square(self):
        assert memory_for_error(4.0, 0.02) == pytest.approx(10000.0)
        with pytest.raises(ValueError):
            memory_for_error(4.0, 0.0)

    def test_theoretical_rmse_figure8_values(self):
        """Spot values visible in Figure 8's flat theory lines."""
        # t=2, d=20, p=8: sqrt(3.673/(28*256)) ~ 2.26 %.
        assert theoretical_relative_rmse(2, 20, 8) == pytest.approx(0.0226, abs=0.0005)
        # martingale t=2, d=16, p=8: sqrt(2.766/(24*256)) ~ 2.12 %.
        assert theoretical_relative_rmse(2, 16, 8, martingale=True) == pytest.approx(
            0.0212, abs=0.0005
        )

    def test_rmse_scaling_with_p(self):
        assert theoretical_relative_rmse(2, 20, 6) == pytest.approx(
            2.0 * theoretical_relative_rmse(2, 20, 8), rel=1e-9
        )

    def test_bias_constant_positive(self):
        for t, d in ((0, 0), (0, 2), (1, 9), (2, 16), (2, 20), (2, 24)):
            assert bias_correction_constant(t, d) > 0.0

    def test_dense_mvp_monotone_beyond_optimum(self):
        values = [mvp_ml_dense(2, d) for d in range(20, 64, 4)]
        assert all(b >= a for a, b in zip(values, values[1:]))
