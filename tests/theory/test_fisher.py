"""The compressed-state integral I(a)."""

import pytest

from repro.theory.fisher import (
    compressed_integral,
    compressed_integral_series,
    compressed_integrand,
)


class TestIntegrand:
    def test_endpoint_limits_are_zero(self):
        assert compressed_integrand(0.0, 1.0) == 0.0
        assert compressed_integrand(1.0, 1.0) == 0.0

    def test_midpoint_value_a1(self):
        # z=0.5, a=1: z (1-z) ln(1-z) / (z ln z) = (1-z) = 0.5.
        assert compressed_integrand(0.5, 1.0) == pytest.approx(0.5)

    def test_positive_on_interior(self):
        for z in (0.1, 0.3, 0.5, 0.7, 0.9, 0.99):
            assert compressed_integrand(z, 0.5) > 0.0


class TestIntegral:
    @pytest.mark.parametrize("a", [0.0, 0.25, 0.5, 1.0, 2.0])
    def test_quad_matches_highres_trapezoid(self, a):
        assert compressed_integral(a) == pytest.approx(
            compressed_integral_series(a), rel=2e-3
        )

    def test_monotone_decreasing_in_a(self):
        values = [compressed_integral(a) for a in (0.0, 0.25, 0.5, 1.0, 2.0)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            compressed_integral(-0.1)

    def test_value_consistent_with_known_limits(self):
        """I(0) must make Eq. (7) equal its known 1.63 limit."""
        import math

        limit = (1.0 + compressed_integral(0.0)) / (2.0 * math.log(2.0))
        assert limit == pytest.approx(1.63, abs=0.005)
