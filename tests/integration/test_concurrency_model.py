"""Concurrency model checks (paper Sec. 2.4's CAS remark).

Sec. 2.4 recommends ELL(2, 24) because its 32-bit registers suit
compare-and-swap updates. CPython cannot exercise real CAS, but the
*algebraic* property that makes lock-free updates correct is testable:
the register update is a join (max-like) on a lattice — monotone,
commutative, idempotent — so a CAS retry loop converges to the same state
regardless of interleaving. We simulate interleaved writers with explicit
read-modify-write races and retries.
"""

import random

import pytest

from repro.core.exaloglog import ExaLogLog
from repro.core.register import merge as merge_register
from repro.core.register import update as update_register
from tests.conftest import random_hashes


class SimulatedCasRegisterArray:
    """A register array updated only through (simulated) CAS."""

    def __init__(self, m: int):
        self.values = [0] * m
        self.retries = 0

    def cas(self, index: int, expected: int, new: int) -> bool:
        if self.values[index] != expected:
            return False
        self.values[index] = new
        return True


def cas_insert(array, params, hash_value, interleave) -> None:
    """The Sec. 2.4 CAS loop: read, compute Alg. 2 transition, CAS, retry."""
    t, d = params.t, params.d
    index = (hash_value >> t) & (params.m - 1)
    masked = hash_value | ((1 << (params.p + t)) - 1)
    k = ((64 - masked.bit_length()) << t) + (hash_value & ((1 << t) - 1)) + 1
    while True:
        current = array.values[index]
        new = update_register(current, k, d)
        if new == current:
            return
        interleave()  # another "thread" may write between read and CAS
        if array.cas(index, current, new):
            return
        array.retries += 1


class TestCasConvergence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interleaved_writers_converge_to_sequential_state(self, seed):
        params = ExaLogLog(2, 24, 4).params
        hashes = random_hashes(seed, 4000)
        rng = random.Random(seed)

        array = SimulatedCasRegisterArray(params.m)
        pending = list(hashes)

        def interleave():
            # With some probability, a competing writer sneaks in a full
            # insert between our read and our CAS.
            if pending and rng.random() < 0.25:
                competitor = pending.pop()
                cas_insert(array, params, competitor, lambda: None)

        while pending:
            cas_insert(array, params, pending.pop(), interleave)

        reference = ExaLogLog.from_params(params)
        for h in hashes:
            reference.add_hash(h)
        assert array.values == list(reference.registers)
        # The interleaving must actually have caused contention for the
        # test to be meaningful.
        assert array.retries > 0

    def test_update_is_a_lattice_join(self):
        """update(r, k) == merge(r, singleton(k)): the CAS-correctness core."""
        d = 6
        rng = random.Random(7)
        register = 0
        for _ in range(200):
            k = rng.randint(1, 40)
            singleton = update_register(0, k, d)
            assert update_register(register, k, d) == merge_register(
                register, singleton, d
            )
            register = update_register(register, k, d)

    def test_lost_update_would_be_detected(self):
        """Sanity: naive unsynchronised writes *do* lose updates, which is
        exactly what the CAS loop prevents."""
        params = ExaLogLog(2, 24, 2).params
        d = params.d
        # Two writers read the same register value, both write blindly.
        r0 = 0
        write_a = update_register(r0, 10, d)
        write_b = update_register(r0, 7, d)
        last_write_wins = write_b  # writer B overwrites A
        correct = update_register(write_a, 7, d)
        assert last_write_wins != correct  # information was lost
