"""Serialization robustness: corrupted inputs must fail loudly and safely.

Every ``from_bytes`` in the library must raise :class:`SerializationError`
(or a ValueError subclass) on malformed data — never crash with an
arbitrary exception or silently return a broken sketch.
"""

import random

import pytest

from repro.aggregate import DistinctCountAggregator
from repro.baselines import (
    CpcSketch,
    ExactCounter,
    HllCompact4,
    HyperLogLog,
    HyperLogLogLog,
    MartingaleHyperLogLog,
    PCSA,
    SpikeSketch,
)
from repro.core.exaloglog import ExaLogLog
from repro.core.martingale import MartingaleExaLogLog
from repro.core.sparse import SparseExaLogLog


def _specimens():
    rng = random.Random(99)
    hashes = [rng.getrandbits(64) for _ in range(500)]

    def fill(sketch):
        for h in hashes:
            sketch.add_hash(h)
        return sketch

    aggregator = DistinctCountAggregator(p=4)
    for h in hashes:
        aggregator.add(h & 3, h)
    return [
        fill(ExaLogLog(2, 20, 4)),
        fill(MartingaleExaLogLog(2, 16, 4)),
        fill(SparseExaLogLog(2, 20, 8)),
        fill(HyperLogLog(6)),
        fill(MartingaleHyperLogLog(6)),
        fill(HllCompact4(6)),
        fill(PCSA(6)),
        fill(CpcSketch(6)),
        fill(HyperLogLogLog(6)),
        fill(SpikeSketch(64)),
        fill(ExactCounter()),
        aggregator,
    ]


SPECIMENS = _specimens()


@pytest.mark.parametrize("sketch", SPECIMENS, ids=lambda s: type(s).__name__)
class TestFuzz:
    def test_roundtrip_baseline(self, sketch):
        restored = type(sketch).from_bytes(sketch.to_bytes())
        if isinstance(sketch, DistinctCountAggregator):
            assert restored == sketch
        else:
            assert restored.estimate() == pytest.approx(sketch.estimate(), rel=1e-9)

    def test_truncations_raise_cleanly(self, sketch):
        data = sketch.to_bytes()
        rng = random.Random(1)
        cuts = {0, 1, 3, 4, 5, len(data) // 2, len(data) - 1}
        cuts |= {rng.randrange(len(data)) for _ in range(10)}
        for cut in sorted(cuts):
            with pytest.raises((ValueError, EOFError, IndexError)):
                restored = type(sketch).from_bytes(data[:cut])
                # Some formats (fixed-prob decoders) can decode a prefix
                # without noticing; they must at least not invent state
                # equal to nothing we can distinguish -- force a check.
                if restored != sketch:
                    raise ValueError("prefix decoded to different state")

    def test_bit_flips_never_crash_uncontrolled(self, sketch):
        data = bytearray(sketch.to_bytes())
        rng = random.Random(2)
        for _ in range(25):
            position = rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[position] ^= 1 << rng.randrange(8)
            try:
                type(sketch).from_bytes(bytes(corrupted))
            except (ValueError, EOFError, IndexError, KeyError, OverflowError):
                pass  # controlled rejection is fine

    def test_foreign_magic_rejected(self, sketch):
        with pytest.raises((ValueError, EOFError, IndexError)):
            type(sketch).from_bytes(b"\x00\x01\x02\x03\x04\x05\x06\x07")
