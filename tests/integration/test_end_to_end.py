"""Cross-module integration scenarios."""

import pytest

from repro import (
    ExaLogLog,
    MartingaleExaLogLog,
    SparseExaLogLog,
    hash64,
)
from repro.baselines import ExactCounter, HyperLogLog, UltraLogLog
from repro.workloads import shard_stream, zipf_stream


class TestRealStreamAccuracy:
    def test_zipf_stream_all_sketches_agree(self):
        exact = ExactCounter()
        ell = ExaLogLog(2, 20, 10)
        hll = HyperLogLog(12)
        ull = UltraLogLog(11)
        for key in zipf_stream(50000, 20000, exponent=1.2, seed=1):
            exact.add(key)
            ell.add(key)
            hll.add(key)
            ull.add(key)
        truth = exact.estimate()
        assert ell.estimate() == pytest.approx(truth, rel=0.06)
        assert hll.estimate() == pytest.approx(truth, rel=0.08)
        assert ull.estimate() == pytest.approx(truth, rel=0.08)


class TestDistributedPipeline:
    def test_shard_merge_wire_roundtrip(self):
        partitions = shard_stream(30000, 8, overlap=0.2, seed=2)
        blobs = []
        exact = ExactCounter()
        for partition in partitions:
            sketch = ExaLogLog(2, 20, 9)
            for key in partition:
                sketch.add(key)
                exact.add(key)
            blobs.append(sketch.to_bytes())
        merged = ExaLogLog.from_bytes(blobs[0])
        for blob in blobs[1:]:
            merged.merge_inplace(ExaLogLog.from_bytes(blob))
        assert merged.estimate() == pytest.approx(exact.estimate(), rel=0.08)

    def test_mixed_generation_migration(self):
        """Old high-precision records merge with new low-precision ones."""
        old = ExaLogLog(2, 20, 10)
        new = ExaLogLog(2, 16, 8)
        exact = ExactCounter()
        for i in range(20000):
            old.add(f"old-{i}")
            exact.add(f"old-{i}")
        for i in range(10000):
            new.add(f"new-{i}")
            exact.add(f"new-{i}")
        combined = old.merge(new)
        assert combined.params.d == 16
        assert combined.params.p == 8
        assert combined.estimate() == pytest.approx(exact.estimate(), rel=0.12)

    def test_sparse_shards_merge_into_dense(self):
        shards = [SparseExaLogLog(2, 20, 8) for _ in range(4)]
        exact = ExactCounter()
        for shard_index, sketch in enumerate(shards):
            for i in range(2000):
                key = f"item-{shard_index * 1500 + i}"  # overlapping ranges
                sketch.add(key)
                exact.add(key)
        merged = shards[0]
        for other in shards[1:]:
            merged.merge_inplace(other)
        assert merged.estimate() == pytest.approx(exact.estimate(), rel=0.12)


class TestSeedIsolation:
    def test_two_tenants_independent(self):
        """Different hash seeds make sketch states uncorrelated (multi-
        tenant setups hashing the same keyspace)."""
        a = ExaLogLog(2, 20, 8)
        b = ExaLogLog(2, 20, 8)
        for i in range(5000):
            a.add_hash(hash64(f"k{i}", seed=1))
            b.add_hash(hash64(f"k{i}", seed=2))
        assert a != b
        assert a.estimate() == pytest.approx(b.estimate(), rel=0.2)


class TestMartingaleVsMlEndToEnd:
    def test_same_stream_two_estimators(self):
        martingale = MartingaleExaLogLog(2, 16, 9)
        for key in zipf_stream(40000, 15000, seed=3):
            martingale.add(key)
        ml = martingale.ml_estimate()
        hip = martingale.estimate()
        assert hip == pytest.approx(ml, rel=0.1)
