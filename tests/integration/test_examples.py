"""Every example script must run to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3
