"""Statistical end-to-end claims (the paper's headline numbers).

These are Monte-Carlo tests with tolerances set at ~4-5 sigma of the
sampling noise at the chosen run counts; they validate the *empirical*
side of the claims the theory tests check analytically.
"""

import math

import numpy as np
import pytest

from repro.core.batch import exaloglog_state, hyperloglog_state
from repro.core.mlestimation import compute_coefficients, estimate_from_coefficients
from repro.core.params import make_params
from repro.theory.mvp import mvp_hll, mvp_ml_dense, theoretical_relative_rmse


def _rmse_ell(t, d, p, n, runs, seed):
    params = make_params(t, d, p)
    squared = 0.0
    for run in range(runs):
        rng = np.random.Generator(np.random.PCG64(seed + run))
        hashes = rng.integers(0, 1 << 64, size=n, dtype=np.uint64)
        coefficients = compute_coefficients(exaloglog_state(hashes, params), params)
        estimate = estimate_from_coefficients(coefficients, params, True)
        squared += (estimate / n - 1.0) ** 2
    return math.sqrt(squared / runs)


class TestEmpiricalMvp:
    """The abstract's claim: 43 % less space at the same error, i.e. the
    empirical MVP of ELL(2,20) matches 3.67 and undercuts HLL's 6.45."""

    RUNS = 120
    N = 20000

    @pytest.fixture(scope="class")
    def measured(self):
        ell_rmse = _rmse_ell(2, 20, 8, self.N, self.RUNS, seed=1000)
        hll_params = make_params(0, 0, 8)
        squared = 0.0
        for run in range(self.RUNS):
            rng = np.random.Generator(np.random.PCG64(2000 + run))
            hashes = rng.integers(0, 1 << 64, size=self.N, dtype=np.uint64)
            registers = hyperloglog_state(hashes, 8)
            coefficients = compute_coefficients(registers, hll_params)
            estimate = estimate_from_coefficients(coefficients, hll_params, True)
            squared += (estimate / self.N - 1.0) ** 2
        hll_rmse = math.sqrt(squared / self.RUNS)
        return ell_rmse, hll_rmse

    def test_ell_rmse_matches_theory(self, measured):
        ell_rmse, _ = measured
        theory = theoretical_relative_rmse(2, 20, 8)
        # sd of the RMSE estimate ~ theory / sqrt(2 * runs) ~ 6.5 % of it.
        assert ell_rmse == pytest.approx(theory, rel=0.30)

    def test_empirical_mvp_near_3_67(self, measured):
        ell_rmse, _ = measured
        mvp = (28 * 256) * ell_rmse ** 2
        assert mvp == pytest.approx(mvp_ml_dense(2, 20), rel=0.55)

    def test_space_saving_vs_hll(self, measured):
        ell_rmse, hll_rmse = measured
        ell_mvp = (28 * 256) * ell_rmse ** 2
        hll_mvp = (6 * 256) * hll_rmse ** 2
        saving = 1.0 - ell_mvp / hll_mvp
        # 43 % +- Monte-Carlo noise (each MVP known to ~13 %).
        assert saving == pytest.approx(0.43, abs=0.20)
        assert ell_mvp < hll_mvp  # the ordering itself is robust


class TestTokenInformationClaim:
    """Sec. 5.1: a token set carries the information of an ELL sketch with
    d -> infinity, so its error is <= that of any matching finite-d sketch."""

    def test_token_rmse_not_worse_than_sketch(self):
        from repro.core.token import hash_to_token, estimate_from_tokens

        v = 10
        n = 3000
        runs = 60
        token_sq = 0.0
        sketch_sq = 0.0
        params = make_params(0, 2, 10)  # p + t = 10 = v
        for run in range(runs):
            rng = np.random.Generator(np.random.PCG64(3000 + run))
            hashes = rng.integers(0, 1 << 64, size=n, dtype=np.uint64)
            tokens = {hash_to_token(int(h), v) for h in hashes}
            token_sq += (estimate_from_tokens(tokens, v) / n - 1.0) ** 2
            coefficients = compute_coefficients(
                exaloglog_state(hashes, params), params
            )
            estimate = estimate_from_coefficients(coefficients, params, True)
            sketch_sq += (estimate / n - 1.0) ** 2
        token_rmse = math.sqrt(token_sq / runs)
        sketch_rmse = math.sqrt(sketch_sq / runs)
        assert token_rmse <= sketch_rmse * 1.15


class TestMartingaleImprovementClaim:
    """Sec. 2.4: martingale estimation reduces the MVP by ~25 % for the
    same (t, d) — checked on ELL(2, 16) where it is the stated optimum."""

    def test_martingale_variance_lower(self):
        from repro.core.martingale import MartingaleExaLogLog

        n = 5000
        runs = 80
        mart_sq = 0.0
        ml_sq = 0.0
        for run in range(runs):
            rng = np.random.Generator(np.random.PCG64(4000 + run))
            hashes = rng.integers(0, 1 << 64, size=n, dtype=np.uint64)
            sketch = MartingaleExaLogLog(2, 16, 6)
            for h in hashes.tolist():
                sketch.add_hash(h)
            mart_sq += (sketch.estimate() / n - 1.0) ** 2
            ml_sq += (sketch.ml_estimate() / n - 1.0) ** 2
        assert math.sqrt(mart_sq / runs) < math.sqrt(ml_sq / runs) * 1.05


class TestReductionPreservesStatistics:
    """Reducing a sketch must leave it statistically equivalent to direct
    recording — estimates at the reduced precision stay unbiased."""

    def test_reduced_estimates_unbiased(self):
        from repro.core.exaloglog import ExaLogLog

        params = make_params(2, 20, 8)
        n = 10000
        runs = 40
        errors = []
        for run in range(runs):
            rng = np.random.Generator(np.random.PCG64(5000 + run))
            hashes = rng.integers(0, 1 << 64, size=n, dtype=np.uint64)
            sketch = ExaLogLog.from_registers(
                params, exaloglog_state(hashes, params)
            )
            errors.append(sketch.reduce(d=12, p=6).estimate() / n - 1.0)
        mean = sum(errors) / runs
        sd = math.sqrt(sum(e * e for e in errors) / runs)
        assert abs(mean) < 4.0 * sd / math.sqrt(runs) + 0.01
