"""Scalar <-> vectorised estimation equivalence (exact float equality).

The batch engine's contract is bit-for-bit equality with the scalar
Algorithm 3 / Algorithm 8 pipeline — coefficients, Newton iterates,
``saturated``/empty handling, bias correction, all of it. Every test here
asserts ``==`` on floats, never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.hyperloglog import HyperLogLog
from repro.baselines.pcsa import PCSA
from repro.core.exaloglog import ExaLogLog
from repro.core.mlestimation import (
    compute_coefficients,
    estimate_from_coefficients,
    solve_from_coefficients,
)
from repro.core.params import make_params
from repro.core.sparse import SparseExaLogLog
from repro.core.token import estimate_from_tokens
from repro.estimation.batch import (
    batch_estimate_sketches,
    estimate_registers,
    register_coefficients,
    solve_ml_equations,
)
from repro.estimation.newton import solve_ml_equation

#: Parameter grid covering the LUT window path (t >= 1, 4 <= d <= 24),
#: the generic loop path (d outside that band), and the d = 0 special case.
PARAMS = [
    (2, 20, 8),
    (2, 20, 4),
    # p = 10/11 with t = 2 cross the packed-slot capacity boundaries
    # (m * 2**t at and above 2**12) — the saturated row is the adversarial
    # case where one (row, u) bucket reaches the full m * 2**t count.
    (2, 20, 10),
    (2, 20, 11),
    (2, 16, 5),
    (2, 24, 6),
    (1, 9, 6),
    (3, 7, 4),
    (0, 0, 11),
    (0, 2, 10),
    (0, 30, 4),
]


def random_registers(params, rng, kind):
    """A register row: random, empty, saturated, or single-occupied."""
    d = params.d
    if kind == "empty":
        return [0] * params.m
    if kind == "saturated":
        return [params.max_register_value] * params.m
    if kind == "single":
        registers = [0] * params.m
        u = min(3, params.max_update_value)
        low = int(rng.integers(0, 1 << min(d, 20))) if d else 0
        registers[0] = (u << d) | low
        return registers
    u = rng.integers(0, params.max_update_value + 1, size=params.m)
    if d:
        low = rng.integers(0, 1 << min(d, 62), size=params.m, dtype=np.uint64)
    else:
        low = np.zeros(params.m, dtype=np.uint64)
    return [
        (int(value) << d) | (int(bits) & ((1 << d) - 1))
        for value, bits in zip(u, low)
    ]


@pytest.mark.parametrize("t,d,p", PARAMS)
def test_register_coefficients_match_scalar(t, d, p):
    params = make_params(t, d, p)
    rng = np.random.Generator(np.random.PCG64(t * 1000 + d * 10 + p))
    kinds = ["empty", "saturated", "single"] + ["random"] * 17
    rows = [random_registers(params, rng, kind) for kind in kinds]
    batch = register_coefficients(np.array(rows, dtype=np.int64), params)
    for i, registers in enumerate(rows):
        scalar = compute_coefficients(registers, params)
        # alpha' is exact modulo 2**64 (the all-empty row wraps 2**64 to 0
        # and is handled by the is_empty mask before alpha is used).
        assert int(batch.alpha_scaled[i]) == scalar.alpha_scaled % (1 << 64)
        dense = {e: int(c) for e, c in enumerate(batch.beta[i]) if c}
        assert dense == scalar.beta
        assert bool(batch.is_empty[i]) == scalar.is_empty
        if not scalar.is_empty:
            assert float(batch.alpha[i]) == scalar.alpha
            assert bool(batch.is_saturated[i]) == scalar.is_saturated


@pytest.mark.parametrize("t,d,p", PARAMS)
def test_batched_estimates_match_scalar(t, d, p):
    params = make_params(t, d, p)
    rng = np.random.Generator(np.random.PCG64(0xE5 + t * 100 + d * 10 + p))
    kinds = ["empty", "saturated", "single"] + ["random"] * 13
    rows = [random_registers(params, rng, kind) for kind in kinds]
    matrix = np.array(rows, dtype=np.int64)
    for bias in (True, False):
        estimates = estimate_registers(matrix, params, bias)
        for i, registers in enumerate(rows):
            scalar = estimate_from_coefficients(
                compute_coefficients(registers, params), params, bias
            )
            assert float(estimates[i]) == scalar  # exact, including inf


@pytest.mark.parametrize("t,d,p", PARAMS)
def test_batched_solver_matches_scalar(t, d, p):
    params = make_params(t, d, p)
    rng = np.random.Generator(np.random.PCG64(0x50 + t * 100 + d * 10 + p))
    kinds = ["empty", "saturated", "single"] + ["random"] * 13
    rows = [random_registers(params, rng, kind) for kind in kinds]
    batch = register_coefficients(np.array(rows, dtype=np.int64), params)
    solution = solve_ml_equations(batch.alpha, batch.beta)
    for i, registers in enumerate(rows):
        scalar = solve_from_coefficients(compute_coefficients(registers, params), params)
        assert float(solution.nu[i]) == scalar.nu
        assert int(solution.iterations[i]) == scalar.iterations
        assert bool(solution.saturated[i]) == scalar.saturated


def test_saturated_and_normal_mixed_in_one_batch():
    """``saturated`` must propagate per row, not poison the batch."""
    params = make_params(2, 20, 4)
    rng = np.random.Generator(np.random.PCG64(9))
    rows = [
        random_registers(params, rng, "saturated"),
        random_registers(params, rng, "random"),
        random_registers(params, rng, "empty"),
        random_registers(params, rng, "random"),
    ]
    estimates = estimate_registers(np.array(rows, dtype=np.int64), params)
    import math

    assert math.isinf(float(estimates[0]))
    assert float(estimates[2]) == 0.0
    for i in (1, 3):
        scalar = estimate_from_coefficients(
            compute_coefficients(rows[i], params), params
        )
        assert float(estimates[i]) == scalar and math.isfinite(scalar)


def test_solver_rejects_negative_inputs():
    with pytest.raises(ValueError):
        solve_ml_equations(np.array([-1.0]), np.zeros((1, 5), dtype=np.int64))
    beta = np.zeros((1, 5), dtype=np.int64)
    beta[0, 2] = -3
    with pytest.raises(ValueError):
        solve_ml_equations(np.array([1.0]), beta)


def test_estimate_fast_path_matches_scalar_pipeline():
    """ExaLogLog.estimate (m >= 256 fast path) equals the scalar path."""
    rng = np.random.Generator(np.random.PCG64(11))
    sketch = ExaLogLog(2, 20, 8)
    sketch.add_hashes(rng.integers(0, 1 << 64, size=5000, dtype=np.uint64))
    scalar = estimate_from_coefficients(
        compute_coefficients(sketch.registers, sketch.params), sketch.params
    )
    assert sketch.estimate() == scalar


def test_registers_array_cache_invalidation():
    """Scalar mutations after a bulk ingest must invalidate the cache."""
    rng = np.random.Generator(np.random.PCG64(12))
    sketch = ExaLogLog(2, 20, 8)
    sketch.add_hashes(rng.integers(0, 1 << 64, size=1000, dtype=np.uint64))
    assert sketch.registers_array().tolist() == list(sketch.registers)
    # add_hash mutates the list in place -> cache must refresh
    for value in rng.integers(0, 1 << 64, size=300, dtype=np.uint64).tolist():
        sketch.add_hash(int(value))
    assert sketch.registers_array().tolist() == list(sketch.registers)
    scalar = estimate_from_coefficients(
        compute_coefficients(sketch.registers, sketch.params), sketch.params
    )
    assert sketch.estimate() == scalar
    # merge_inplace mutates in place as well
    other = ExaLogLog(2, 20, 8)
    other.add_hashes(rng.integers(0, 1 << 64, size=500, dtype=np.uint64))
    sketch.merge_inplace(other)
    assert sketch.registers_array().tolist() == list(sketch.registers)
    # wholesale replacement (from_registers path) is detected by identity
    clone = ExaLogLog.from_registers(sketch.params, sketch.registers)
    assert clone.registers_array().tolist() == list(sketch.registers)


def test_batch_estimate_sketches_mixed_modes_and_params():
    """Dense, sparse-token and differently-parameterised sketches mix."""
    rng = np.random.Generator(np.random.PCG64(13))
    sketches = []
    dense = ExaLogLog(2, 20, 8)
    dense.add_hashes(rng.integers(0, 1 << 64, size=3000, dtype=np.uint64))
    sketches.append(dense)
    sparse = SparseExaLogLog(2, 20, 8)
    sparse.add_hashes(rng.integers(0, 1 << 64, size=50, dtype=np.uint64))
    assert sparse.is_sparse
    sketches.append(sparse)
    densified = SparseExaLogLog(2, 20, 8)
    densified.add_hashes(rng.integers(0, 1 << 64, size=5000, dtype=np.uint64))
    assert not densified.is_sparse
    sketches.append(densified)
    other_params = ExaLogLog(1, 9, 6)
    other_params.add_hashes(rng.integers(0, 1 << 64, size=700, dtype=np.uint64))
    sketches.append(other_params)
    sketches.append(ExaLogLog(2, 20, 8))  # empty
    results = batch_estimate_sketches(sketches)
    for value, sketch in zip(results, sketches):
        assert value == sketch.estimate()
    # the sparse token row reproduces Algorithm 7 exactly
    assert results[1] == estimate_from_tokens(sparse.tokens, sparse.v)


def test_hyperloglog_many_match_scalar():
    rng = np.random.Generator(np.random.PCG64(14))
    sketches = []
    for n in (0, 3, 200, 20000):
        sketch = HyperLogLog(10)
        sketch.add_hashes(rng.integers(0, 1 << 64, size=n, dtype=np.uint64))
        sketches.append(sketch)
    ml = HyperLogLog.estimate_ml_many(sketches)
    raw = HyperLogLog.estimate_raw_many(sketches)
    params = make_params(0, 0, 10)
    for i, sketch in enumerate(sketches):
        reference = estimate_from_coefficients(
            compute_coefficients(sketch.registers, params), params
        )
        assert float(ml[i]) == reference == sketch.estimate_ml()
        assert float(raw[i]) == sketch.estimate_raw()


def test_pcsa_many_match_scalar():
    rng = np.random.Generator(np.random.PCG64(15))
    sketches = []
    for n in (0, 3, 200, 20000):
        sketch = PCSA(9)
        sketch.add_hashes(rng.integers(0, 1 << 64, size=n, dtype=np.uint64))
        sketches.append(sketch)
    ml = PCSA.estimate_ml_many(sketches)
    fm = PCSA.estimate_fm_many(sketches)
    for i, sketch in enumerate(sketches):
        alpha, beta = sketch._ml_coefficients()
        reference = sketch.m * solve_ml_equation(alpha, beta).nu
        assert float(ml[i]) == reference == sketch.estimate_ml()
        assert float(fm[i]) == sketch.estimate_fm()


def test_aggregator_estimates_and_top_batched():
    from repro.aggregate import DistinctCountAggregator

    rng = np.random.Generator(np.random.PCG64(16))
    for sparse in (True, False):
        aggregator = DistinctCountAggregator(p=8, sparse=sparse)
        groups = rng.integers(0, 40, size=8000)
        items = rng.integers(0, 1 << 62, size=8000)
        aggregator.add_batch(groups, items)
        estimates = aggregator.estimates()
        for key, sketch in aggregator._groups.items():
            assert estimates[key] == sketch.estimate()
        ranked = sorted(estimates.items(), key=lambda kv: -kv[1])
        assert aggregator.top(7) == ranked[:7]
        assert aggregator.top(10_000) == ranked
        assert aggregator.top(0) == []


def test_aggregator_scalar_top_fallback_matches_batched():
    from repro.aggregate import DistinctCountAggregator

    rng = np.random.Generator(np.random.PCG64(19))
    aggregator = DistinctCountAggregator(p=8, sparse=True)
    groups = rng.integers(0, 25, size=3000)
    items = rng.integers(0, 1 << 62, size=3000)
    aggregator.add_batch(groups, items)
    for count in (1, 5, 25, 100):
        assert aggregator._top_scalar(count) == aggregator.top(count)


def test_registers_array_is_read_only():
    rng = np.random.Generator(np.random.PCG64(20))
    sketch = ExaLogLog(2, 20, 8)
    sketch.add_hashes(rng.integers(0, 1 << 64, size=1000, dtype=np.uint64))
    array = sketch.registers_array()
    with pytest.raises(ValueError):
        array[0] = 5
    sketch.add_hash(7)  # scalar mutation after bulk: fresh cache, still read-only
    with pytest.raises(ValueError):
        sketch.registers_array()[0] = 5


def test_aggregator_top_breaks_ties_by_insertion_order():
    from repro.aggregate import DistinctCountAggregator

    aggregator = DistinctCountAggregator(p=8, sparse=False)
    for group in ("a", "b", "c", "d"):
        for item in range(40):
            aggregator.add(group, item)
    aggregator.add("tiny", "x")
    reference = sorted(
        aggregator.estimates().items(), key=lambda kv: -kv[1]
    )
    for count in (1, 2, 3, 4, 5):
        assert aggregator.top(count) == reference[:count]


def test_spilled_groupby_top(tmp_path):
    from repro.store.spill import SpilledGroupBy

    rng = np.random.Generator(np.random.PCG64(17))
    groupby = SpilledGroupBy(tmp_path / "spill", p=8, partitions=4)
    groups = rng.integers(0, 30, size=5000)
    items = rng.integers(0, 1 << 62, size=5000)
    groupby.add_batch(groups, items)
    estimates = groupby.estimates()
    ranked = sorted(estimates.items(), key=lambda kv: -kv[1])
    assert groupby.top(5) == ranked[:5]
    groupby.cleanup()


def test_memmap_estimate_matches_sketch(tmp_path):
    from repro.store.registers import MemmapRegisters

    rng = np.random.Generator(np.random.PCG64(18))
    hashes = rng.integers(0, 1 << 64, size=4000, dtype=np.uint64)
    for kind, args in (("exaloglog", (2, 20, 8)), ("hyperloglog", (0, 0, 10))):
        path = tmp_path / f"{kind}.reg"
        mapped = MemmapRegisters.create(path, kind, *args)
        mapped.add_hashes(hashes)
        assert mapped.estimate() == mapped.to_sketch().estimate()
        mapped.close()


def test_replay_checkpoints_match_scalar_solve():
    """The batched checkpoint solve equals per-checkpoint scalar solves."""
    from repro.core.mlestimation import bias_correction_factor
    from repro.simulation.events import filter_state_changes, simulate_event_schedule
    from repro.simulation.replay import _ml_estimate, replay
    from repro.simulation.rng import numpy_generator

    params = make_params(2, 20, 4)
    checkpoints = [10.0, 100.0, 1000.0, 50000.0]
    schedule = simulate_event_schedule(
        params, checkpoints[-1], numpy_generator(0xAB, 0), n_exact=1000
    )
    schedule = filter_state_changes(schedule, params)
    result = replay(schedule, params, checkpoints)
    # re-derive every checkpoint estimate with the scalar solver from the
    # final state's coefficients recomputed from scratch at the end only
    # (intermediate states are what replay snapshots internally), so check
    # at least the final checkpoint exactly and the monotone count.
    factor = bias_correction_factor(params)
    scalar = compute_coefficients(result.registers, params)
    dense_beta = [scalar.beta.get(u, 0) for u in range(66)]
    expected, _ = _ml_estimate(scalar.alpha_scaled, dense_beta, params, factor)
    assert result.ml_estimates[-1] == expected
