"""Algorithm 8 (Newton solver) against brute force and Lemmas B.2/B.3."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation.likelihood import (
    f_transformed,
    log_likelihood,
    log_likelihood_derivative,
)
from repro.estimation.newton import (
    MLSolution,
    solve_ml_equation,
    solve_ml_equation_bisection,
)

beta_strategy = st.dictionaries(
    keys=st.integers(min_value=1, max_value=40),
    values=st.integers(min_value=0, max_value=500),
    max_size=12,
)


class TestEdgeCases:
    def test_empty_beta(self):
        assert solve_ml_equation(1.0, {}) == MLSolution(nu=0.0, iterations=0)

    def test_all_zero_beta(self):
        assert solve_ml_equation(1.0, {3: 0, 5: 0}).nu == 0.0

    def test_alpha_zero_saturated(self):
        solution = solve_ml_equation(0.0, {3: 5})
        assert math.isinf(solution.nu)
        assert solution.saturated

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            solve_ml_equation(-0.1, {3: 1})

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            solve_ml_equation(1.0, {3: -1})

    def test_single_term_closed_form(self):
        """With u_min == u_max the root is beta/(alpha 2**u) exactly."""
        alpha, u, count = 3.0, 5, 17
        nu = solve_ml_equation(alpha, {u: count}).nu
        x = math.expm1(nu / 2 ** u)
        assert x == pytest.approx(count / (alpha * 2 ** u), rel=1e-12)


class TestAgainstBisection:
    @given(beta=beta_strategy, alpha=st.floats(min_value=0.01, max_value=1000.0))
    @settings(max_examples=150, deadline=None)
    def test_matches_bisection(self, beta, alpha):
        if not any(beta.values()):
            return
        newton = solve_ml_equation(alpha, beta).nu
        bisected = solve_ml_equation_bisection(alpha, beta)
        assert newton == pytest.approx(bisected, rel=1e-6)

    @given(beta=beta_strategy, alpha=st.floats(min_value=0.01, max_value=1000.0))
    @settings(max_examples=100, deadline=None)
    def test_derivative_vanishes_at_root(self, beta, alpha):
        if not any(beta.values()):
            return
        nu = solve_ml_equation(alpha, beta).nu
        derivative = log_likelihood_derivative(nu, alpha, beta)
        scale = alpha + sum(beta.values())
        assert abs(derivative) < 1e-6 * scale

    @given(beta=beta_strategy, alpha=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=80, deadline=None)
    def test_root_is_maximum(self, beta, alpha):
        if not any(beta.values()):
            return
        nu = solve_ml_equation(alpha, beta).nu
        best = log_likelihood(nu, alpha, beta)
        for factor in (0.5, 0.9, 1.1, 2.0):
            assert log_likelihood(nu * factor, alpha, beta) <= best + 1e-9


class TestIterationBound:
    @given(beta=beta_strategy, alpha=st.floats(min_value=0.001, max_value=10000.0))
    @settings(max_examples=200, deadline=None)
    def test_paper_claim_max_10(self, beta, alpha):
        """Appendix A: 'the number of iterations never exceeded 10'."""
        solution = solve_ml_equation(alpha, beta)
        assert solution.iterations <= 10


class TestLemmaB2:
    """f is strictly increasing and concave for x >= 0."""

    @given(
        beta=beta_strategy.filter(lambda b: any(b.values())),
        alpha=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_increasing_and_concave_numerically(self, beta, alpha):
        xs = [0.01 * 1.7 ** i for i in range(20)]
        values = [f_transformed(x, alpha, beta) for x in xs]
        slopes = [
            (values[i + 1] - values[i]) / (xs[i + 1] - xs[i])
            for i in range(len(xs) - 1)
        ]
        assert all(b > a - 1e-9 for a, b in zip(values, values[1:]))
        assert all(s2 <= s1 * (1 + 1e-6) + 1e-9 for s1, s2 in zip(slopes, slopes[1:]))


class TestLemmaB3:
    """The starting point brackets the root from below."""

    @given(
        beta=beta_strategy.filter(lambda b: any(b.values())),
        alpha=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_start_below_root(self, beta, alpha):
        active = {u: c for u, c in beta.items() if c}
        u_max = max(active)
        sigma0 = sum(active.values())
        sigma1 = sum(c * 2.0 ** (u_max - u) for u, c in active.items())
        start = math.expm1(
            math.log1p(sigma1 / (alpha * 2.0 ** u_max)) * sigma0 / sigma1
        )
        upper = sigma0 / (alpha * 2.0 ** u_max)
        nu = solve_ml_equation(alpha, active).nu
        root_x = math.expm1(nu / 2.0 ** u_max)
        assert start <= root_x * (1 + 1e-9)
        assert root_x <= upper * (1 + 1e-9)
