"""Likelihood-shape helpers."""

import math

import pytest

from repro.estimation.likelihood import (
    f_transformed,
    log_likelihood,
    log_likelihood_derivative,
)


class TestLogLikelihood:
    def test_empty_beta_at_zero(self):
        assert log_likelihood(0.0, 1.0, {}) == 0.0

    def test_nonempty_beta_at_zero_is_minus_inf(self):
        assert log_likelihood(0.0, 1.0, {3: 1}) == -math.inf

    def test_rejects_negative_nu(self):
        with pytest.raises(ValueError):
            log_likelihood(-1.0, 1.0, {})

    def test_derivative_matches_finite_difference(self):
        alpha, beta = 2.0, {3: 4, 6: 2}
        nu = 17.0
        h = 1e-6
        numeric = (
            log_likelihood(nu + h, alpha, beta) - log_likelihood(nu - h, alpha, beta)
        ) / (2 * h)
        assert log_likelihood_derivative(nu, alpha, beta) == pytest.approx(
            numeric, rel=1e-5
        )

    def test_concave_in_nu(self):
        alpha, beta = 1.0, {2: 3, 5: 1}
        nus = [0.5 * 1.5 ** i for i in range(15)]
        derivatives = [log_likelihood_derivative(nu, alpha, beta) for nu in nus]
        assert all(b <= a + 1e-12 for a, b in zip(derivatives, derivatives[1:]))


class TestTransformed:
    def test_f_zero_at_origin_matches_minus_beta_sum(self):
        beta = {3: 4, 5: 2}
        assert f_transformed(0.0, 1.0, beta) == pytest.approx(-6.0)

    def test_f_sign_change_brackets_root(self):
        alpha, beta = 1.0, {3: 10}
        assert f_transformed(0.0, alpha, beta) < 0
        assert f_transformed(100.0, alpha, beta) > 0

    def test_rejects_negative_x(self):
        with pytest.raises(ValueError):
            f_transformed(-0.5, 1.0, {3: 1})
