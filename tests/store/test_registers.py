"""Memmap register files: bit-identity with the in-memory sketch family."""

import numpy as np
import pytest

from repro.backends import supports_bulk
from repro.baselines.hyperloglog import HyperLogLog
from repro.baselines.pcsa import PCSA
from repro.core.exaloglog import ExaLogLog
from repro.storage.serialization import SerializationError
from repro.store import MemmapRegisters


def _hashes(seed, count):
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


ELL_CONFIGS = [(0, 2, 4), (1, 9, 6), (2, 16, 6), (2, 20, 8), (2, 24, 6)]


class TestExaLogLogKind:
    @pytest.mark.parametrize("t,d,p", ELL_CONFIGS)
    def test_bit_identity_single_batch(self, tmp_path, t, d, p):
        hashes = _hashes(7, 5000)
        reference = ExaLogLog(t, d, p).add_hashes(hashes)
        with MemmapRegisters.create(tmp_path / "r.reg", "exaloglog", t, d, p) as reg:
            reg.add_hashes(hashes)
            assert reg.to_sketch().to_bytes() == reference.to_bytes()
            assert reg.registers.tolist() == list(reference.registers)
            assert reg.estimate() == reference.estimate()

    def test_bit_identity_incremental_batches(self, tmp_path):
        hashes = _hashes(11, 9000)
        reference = ExaLogLog(2, 20, 8).add_hashes(hashes)
        with MemmapRegisters.create(tmp_path / "r.reg", p=8) as reg:
            for start in range(0, len(hashes), 1000):
                reg.add_hashes(hashes[start : start + 1000])
            assert reg.to_sketch().to_bytes() == reference.to_bytes()

    def test_bit_identity_against_scalar_loop(self, tmp_path):
        hashes = _hashes(13, 400)
        reference = ExaLogLog(2, 20, 5)
        for value in hashes.tolist():
            reference.add_hash(value)
        with MemmapRegisters.create(tmp_path / "r.reg", "exaloglog", 2, 20, 5) as reg:
            reg.add_hashes(hashes)
            assert reg.to_sketch() == reference

    def test_persists_across_reopen(self, tmp_path):
        hashes = _hashes(17, 6000)
        reference = ExaLogLog(2, 20, 8).add_hashes(hashes)
        with MemmapRegisters.create(tmp_path / "r.reg", p=8) as reg:
            reg.add_hashes(hashes[:3000])
        with MemmapRegisters.open(tmp_path / "r.reg") as reg:
            assert reg.params.t == 2 and reg.params.d == 20 and reg.params.p == 8
            reg.add_hashes(hashes[3000:])
            assert reg.to_sketch().to_bytes() == reference.to_bytes()

    def test_add_batch_items(self, tmp_path):
        items = [f"user{i}" for i in range(500)]
        reference = ExaLogLog(2, 20, 8).add_batch(items)
        with MemmapRegisters.create(tmp_path / "r.reg", p=8) as reg:
            reg.add_batch(items)
            assert reg.to_sketch().to_bytes() == reference.to_bytes()

    def test_merge_registers(self, tmp_path):
        left, right = _hashes(19, 4000), _hashes(23, 4000)
        reference = ExaLogLog(2, 20, 8).add_hashes(np.concatenate([left, right]))
        with MemmapRegisters.create(tmp_path / "a.reg", p=8) as a, MemmapRegisters.create(
            tmp_path / "b.reg", p=8
        ) as b:
            a.add_hashes(left)
            b.add_hashes(right)
            a.merge_registers(b.registers)
            assert a.to_sketch().to_bytes() == reference.to_bytes()


class TestOtherKinds:
    def test_hyperloglog_bit_identity(self, tmp_path):
        hashes = _hashes(29, 5000)
        reference = HyperLogLog(10).add_hashes(hashes)
        with MemmapRegisters.create(tmp_path / "h.reg", "hyperloglog", p=10) as reg:
            reg.add_hashes(hashes[:2500]).add_hashes(hashes[2500:])
            sketch = reg.to_sketch()
            assert sketch.registers == reference.registers
            assert sketch.estimate() == reference.estimate()

    def test_pcsa_bit_identity(self, tmp_path):
        hashes = _hashes(31, 5000)
        reference = PCSA(8).add_hashes(hashes)
        with MemmapRegisters.create(tmp_path / "p.reg", "pcsa", p=8) as reg:
            reg.add_hashes(hashes[:100]).add_hashes(hashes[100:])
            sketch = reg.to_sketch()
            assert sketch.bitmaps == reference.bitmaps
            assert sketch.estimate() == reference.estimate()

    def test_kind_roundtrips_through_header(self, tmp_path):
        for kind in ("hyperloglog", "pcsa"):
            path = tmp_path / f"{kind}.reg"
            MemmapRegisters.create(path, kind, p=6).close()
            with MemmapRegisters.open(path) as reg:
                assert reg.kind == kind
                assert reg.m == 64


class TestProtocolAndErrors:
    def test_satisfies_bulk_backend_protocol(self, tmp_path):
        with MemmapRegisters.create(tmp_path / "r.reg", p=4) as reg:
            assert supports_bulk(reg)

    def test_empty_batch_is_noop(self, tmp_path):
        with MemmapRegisters.create(tmp_path / "r.reg", p=4) as reg:
            reg.add_hashes(np.array([], dtype=np.uint64))
            assert reg.is_empty

    def test_create_refuses_overwrite(self, tmp_path):
        MemmapRegisters.create(tmp_path / "r.reg", p=4).close()
        with pytest.raises(FileExistsError):
            MemmapRegisters.create(tmp_path / "r.reg", p=4)

    def test_open_rejects_foreign_file(self, tmp_path):
        (tmp_path / "junk.reg").write_bytes(b"not a register file at all")
        with pytest.raises(SerializationError):
            MemmapRegisters.open(tmp_path / "junk.reg")

    def test_open_rejects_wrong_size(self, tmp_path):
        path = tmp_path / "r.reg"
        MemmapRegisters.create(path, p=4).close()
        with open(path, "ab") as handle:
            handle.write(b"\x00" * 8)
        with pytest.raises(SerializationError, match="bytes"):
            MemmapRegisters.open(path)

    def test_open_or_create_validates_parameters(self, tmp_path):
        path = tmp_path / "r.reg"
        MemmapRegisters.create(path, "exaloglog", 2, 20, 6).close()
        with MemmapRegisters.open_or_create(path, "exaloglog", 2, 20, 6) as reg:
            assert reg.params.p == 6
        with pytest.raises(ValueError, match="requested"):
            MemmapRegisters.open_or_create(path, "exaloglog", 2, 20, 8)
        with pytest.raises(ValueError, match="requested"):
            MemmapRegisters.open_or_create(path, "hyperloglog", p=6)

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown register kind"):
            MemmapRegisters.create(tmp_path / "r.reg", "cpc", p=4)

    def test_oversized_registers_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="int64"):
            MemmapRegisters.create(tmp_path / "r.reg", "exaloglog", t=2, d=58, p=4)

    def test_failed_create_leaves_no_file(self, tmp_path):
        path = tmp_path / "r.reg"
        for kwargs in ({"t": 2, "d": 58, "p": 4}, {"t": 2, "d": 70, "p": 4}):
            with pytest.raises(ValueError):
                MemmapRegisters.create(path, "exaloglog", **kwargs)
            assert not path.exists()
        with pytest.raises(ValueError):
            MemmapRegisters.create(path, "nosuchkind", p=4)
        assert not path.exists()
        # The path stays usable for a corrected retry.
        MemmapRegisters.create(path, "exaloglog", 2, 20, 4).close()


class TestReadOnly:
    """Foreign-file mode: a query process mapping another process's file."""

    def _folded(self, tmp_path, kind="exaloglog", **kwargs):
        import numpy as np

        rng = np.random.Generator(np.random.PCG64(77))
        hashes = rng.integers(0, 1 << 64, size=5_000, dtype=np.uint64)
        path = tmp_path / "foreign.reg"
        with MemmapRegisters.create(path, kind, **kwargs) as registers:
            registers.add_hashes(hashes)
            expected = registers.estimate()
        return path, expected

    def test_readonly_open_estimates_without_write_access(self, tmp_path):
        path, expected = self._folded(tmp_path, t=2, d=20, p=10)
        with MemmapRegisters.open(path, readonly=True) as foreign:
            assert foreign.readonly
            assert foreign.estimate() == expected
            assert not foreign.registers.flags.writeable

    def test_readonly_open_rejects_mutation(self, tmp_path):
        import numpy as np

        path, _ = self._folded(tmp_path, t=2, d=20, p=6)
        with MemmapRegisters.open(path, readonly=True) as foreign:
            with pytest.raises(ValueError, match="read-only"):
                foreign.add_hashes(np.array([1, 2], dtype=np.uint64))
            with pytest.raises(ValueError, match="read-only"):
                foreign.merge_registers(np.zeros(foreign.m, dtype=np.int64))

    def test_estimate_many_matches_per_file_estimates(self, tmp_path):
        import numpy as np

        rng = np.random.Generator(np.random.PCG64(78))
        expected = []
        opened = []
        for index, (kind, kwargs) in enumerate(
            [
                ("exaloglog", {"t": 2, "d": 20, "p": 10}),
                ("exaloglog", {"t": 2, "d": 20, "p": 10}),
                ("exaloglog", {"t": 1, "d": 9, "p": 8}),
                ("hyperloglog", {"p": 10}),
                ("pcsa", {"p": 6}),
            ]
        ):
            path = tmp_path / f"fleet-{index}.reg"
            with MemmapRegisters.create(path, kind, **kwargs) as registers:
                registers.add_hashes(
                    rng.integers(0, 1 << 64, size=2_000, dtype=np.uint64)
                )
            foreign = MemmapRegisters.open(path, readonly=True)
            opened.append(foreign)
            expected.append(foreign.estimate())
        assert MemmapRegisters.estimate_many(opened) == expected
        for foreign in opened:
            foreign.close()
