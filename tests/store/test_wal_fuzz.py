"""Truncated/corrupted-WAL fuzz: recovery must never load garbage.

The acceptance contract: a WAL cut at *any* byte offset must either
recover cleanly to the last complete record or raise
``SerializationError`` — the recovered state is always one of the exact
prefix states, never an in-between or corrupted one.
"""

import shutil

import numpy as np
import pytest

from repro.aggregate import DistinctCountAggregator
from repro.storage.serialization import SerializationError
from repro.store import SketchStore
from repro.store.sketchstore import _FILE_HEADER_BYTES


def _hashes(seed, count):
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


#: A few small batches so the WAL stays a few hundred bytes and the fuzz
#: can afford to cut at every single offset.
BATCHES = [
    ("DE", _hashes(1, 9)),
    ("AT", _hashes(2, 4)),
    ("DE", _hashes(3, 7)),
    ("CH", _hashes(4, 1)),
]


def _prefix_states():
    """Serialized aggregator state after each durable prefix of BATCHES."""
    states = []
    aggregator = DistinctCountAggregator(2, 20, 8)
    states.append(aggregator.to_bytes())
    for group, hashes in BATCHES:
        key = DistinctCountAggregator._group_key(group)
        sketch = aggregator._groups.get(key)
        if sketch is None:
            sketch = aggregator._new_sketch()
            aggregator._groups[key] = sketch
        sketch.add_hashes(hashes)
        states.append(aggregator.to_bytes())
    return states


@pytest.fixture
def populated_store(tmp_path):
    store = SketchStore.open(tmp_path / "origin")
    for group, hashes in BATCHES:
        store.append_hashes(group, hashes)
    store.close()
    return tmp_path / "origin"


def _record_boundaries(wal_bytes):
    """Offsets at which a record ends (including the file header)."""
    from repro.storage.serialization import read_lsn_record

    boundaries = [_FILE_HEADER_BYTES]
    offset = _FILE_HEADER_BYTES
    while offset < len(wal_bytes):
        _, _, _, _, offset = read_lsn_record(wal_bytes, offset)
        boundaries.append(offset)
    return boundaries


def test_truncation_at_every_offset(populated_store, tmp_path):
    wal_path = populated_store / "wal-00000000.log"
    wal_bytes = wal_path.read_bytes()
    boundaries = _record_boundaries(wal_bytes)
    assert len(boundaries) == len(BATCHES) + 1
    prefix_states = _prefix_states()

    for cut in range(len(wal_bytes) + 1):
        target = tmp_path / f"cut-{cut}"
        shutil.copytree(populated_store, target)
        (target / "wal-00000000.log").write_bytes(wal_bytes[:cut])
        if cut < _FILE_HEADER_BYTES:
            # Even the file header is gone: must refuse, not guess.
            with pytest.raises(SerializationError):
                SketchStore.open(target)
            continue
        # Complete records below the cut — the exact durable prefix.
        durable = max(i for i, end in enumerate(boundaries) if end <= cut)
        store = SketchStore.open(target)
        assert store.aggregator.to_bytes() == prefix_states[durable], (
            f"cut at {cut}: recovered state is not the {durable}-record prefix"
        )
        assert store.wal_records == durable
        # The torn tail must have been truncated so appends stay valid.
        store.append_hashes("post", _hashes(99, 3))
        store.close()
        reopened = SketchStore.open(target)
        assert reopened.wal_records == durable + 1
        reopened.close()
        shutil.rmtree(target)


def test_byte_flip_never_loads_garbage(populated_store, tmp_path):
    wal_path = populated_store / "wal-00000000.log"
    wal_bytes = bytearray(wal_path.read_bytes())
    prefix_states = set(_prefix_states())

    # Flip every byte of the second record (covers kind, lengths, key,
    # payload and CRC positions) and every byte of the file header.
    boundaries = _record_boundaries(bytes(wal_bytes))
    flip_range = list(range(0, _FILE_HEADER_BYTES)) + list(
        range(boundaries[1], boundaries[2])
    )
    for position in flip_range:
        mutated = bytearray(wal_bytes)
        mutated[position] ^= 0x5A
        target = tmp_path / f"flip-{position}"
        shutil.copytree(populated_store, target)
        (target / "wal-00000000.log").write_bytes(bytes(mutated))
        try:
            store = SketchStore.open(target)
        except SerializationError:
            pass  # refusing corrupt data is always acceptable
        else:
            # If recovery succeeded it must be an exact prefix state —
            # e.g. a flipped length made the tail look torn.
            assert store.aggregator.to_bytes() in prefix_states
            store.close()
        shutil.rmtree(target)


def test_wal_cut_to_header_only_recovers_snapshot(populated_store):
    wal_path = populated_store / "wal-00000000.log"
    wal_path.write_bytes(wal_path.read_bytes()[:_FILE_HEADER_BYTES])
    store = SketchStore.open(populated_store)
    assert store.wal_records == 0
    assert len(store) == 0
    store.close()
