"""CLI observability surfaces: stats, --analyze, serve/replicate heartbeats."""

from __future__ import annotations

import json
import pathlib
import re
import subprocess
import sys

import pytest

from repro.store.__main__ import main

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _run(*arguments, env=None):
    merged = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}
    if env:
        merged.update(env)
    return subprocess.run(
        [sys.executable, "-m", "repro.store", *arguments],
        capture_output=True,
        text=True,
        env=merged,
    )


@pytest.fixture
def seeded(tmp_path):
    directory = str(tmp_path / "s")
    assert main(["ingest", directory, "--group", "g", "--count", "5000"]) == 0
    return directory


class TestStats:
    def test_human_output(self, seeded):
        # Subprocess: stats enables metrics process-wide, which must not
        # leak into other in-process tests.
        proc = _run("stats", seeded)
        assert proc.returncode == 0
        assert "durable lsn: 1" in proc.stdout
        assert "gauge reader.durable_lsn: 1" in proc.stdout
        assert "histogram estimation.solve_batch_size:" in proc.stdout

    def test_json_output(self, seeded):
        proc = _run("stats", seeded, "--json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["reader.durable_lsn"]["value"] == 1.0
        assert payload["estimation.solve_batch_size"]["count"] >= 1

    def test_prometheus_output(self, seeded):
        proc = _run("stats", seeded, "--prom")
        assert proc.returncode == 0
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
        )
        for line in proc.stdout.splitlines():
            if line and not line.startswith("#"):
                assert sample.match(line), f"malformed exposition line: {line!r}"
        assert "repro_reader_durable_lsn 1" in proc.stdout
        assert 'repro_estimation_solve_batch_size_bucket{le="+Inf"}' in proc.stdout


class TestAnalyze:
    def test_analyze_annotates_every_plan_line(self, seeded, capsys):
        assert main(["query", seeded, "estimate 'g'", "--analyze"]) == 0
        output = capsys.readouterr().out
        plan_lines = [line for line in output.splitlines() if "[time=" in line]
        assert len(plan_lines) == 3  # Estimate / Filter / Scan
        assert not any("time=n/a" in line for line in plan_lines)
        assert "g\t" in output  # rows still printed

    def test_analyze_through_reader(self, seeded, capsys):
        assert main(["query", seeded, "top 1", "--analyze", "--reader"]) == 0
        output = capsys.readouterr().out
        assert "TopK(1)  [time=" in output


class TestHeartbeats:
    def test_serve_heartbeat_fields_and_metrics_line(self, seeded, capsys):
        assert (
            main(
                [
                    "serve",
                    seeded,
                    "--interval",
                    "0.01",
                    "--iterations",
                    "2",
                    "--metrics-every",
                    "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert re.search(r"refresh 1: generation=\d+ lsn=1 .* lag=[\d.]+s", output)
        # No REPRO_METRICS in this process: heartbeats yes, metrics lines no.
        assert "metrics " not in output

    def test_serve_metrics_lines_when_enabled(self, seeded):
        proc = _run(
            "serve",
            seeded,
            "--interval",
            "0.01",
            "--iterations",
            "2",
            "--metrics-every",
            "1",
            env={"REPRO_METRICS": "1"},
        )
        assert proc.returncode == 0
        assert "metrics " in proc.stdout
        assert "reader.refresh_seconds.count=" in proc.stdout

    def test_replicate_heartbeat_and_idempotent_resync(self, seeded, tmp_path, capsys):
        follower = str(tmp_path / "replica")
        assert main(["replicate", seeded, follower, "--once"]) == 0
        assert main(["replicate", seeded, follower, "--once"]) == 0
        output = capsys.readouterr().out
        syncs = [line for line in output.splitlines() if line.startswith("sync 1:")]
        assert len(syncs) == 2
        assert "shipped=1" in syncs[0] and "snapshot=yes" in syncs[0]
        assert "shipped=0" in syncs[1] and "snapshot=no" in syncs[1]

    def test_replicate_retries_missing_leader_with_backoff(self, tmp_path):
        leader = str(tmp_path / "never_created")
        follower = str(tmp_path / "replica")
        proc = _run(
            "replicate",
            leader,
            follower,
            "--interval",
            "0.01",
            "--max-retries",
            "2",
            "--once",
        )
        assert proc.returncode == 1
        assert proc.stderr.count("warn transient=FileNotFoundError") == 2
        assert "giving up after 3 consecutive transient errors" in proc.stderr
