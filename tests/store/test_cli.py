"""The ``python -m repro.store`` CLI, including the crash-recovery drill."""

import pathlib
import subprocess
import sys

import pytest

from repro.store.__main__ import CRASH_EXIT_CODE, main

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _run(*arguments):
    """Run the CLI in a subprocess (needed for --crash, honest elsewhere)."""
    return subprocess.run(
        [sys.executable, "-m", "repro.store", *arguments],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


class TestInProcess:
    def test_ingest_then_query(self, tmp_path, capsys):
        directory = str(tmp_path / "s")
        assert main(["ingest", directory, "--group", "g", "--items", "a", "b", "a"]) == 0
        assert main(["query", directory, "estimate 'g'"]) == 0
        output = capsys.readouterr().out
        assert "g\t" in output

    def test_query_expectation_gate(self, tmp_path):
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "g", "--count", "20000"])
        assert (
            main(["query", directory, "estimate 'g'", "--expect", "20000", "--tolerance", "0.2"])
            == 0
        )
        assert (
            main(["query", directory, "estimate 'g'", "--expect", "1000", "--tolerance", "0.2"])
            == 1
        )

    def test_compact_and_info(self, tmp_path, capsys):
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "g", "--count", "1000"])
        assert main(["compact", directory]) == 0
        assert main(["info", directory]) == 0
        output = capsys.readouterr().out
        assert "generation:  1" in output

    def test_default_query_lists_every_group(self, tmp_path, capsys):
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "alpha", "--count", "3000"])
        main(["ingest", directory, "--group", "beta", "--items", "y", "z"])
        capsys.readouterr()  # drop the ingest chatter
        assert main(["query", directory]) == 0  # default: estimate all
        output = capsys.readouterr().out.strip().splitlines()
        assert len(output) == 2
        by_group = dict(line.split("\t") for line in output)
        assert set(by_group) == {"alpha", "beta"}
        assert float(by_group["beta"]) == pytest.approx(2.0, abs=0.5)

    def test_top_selects_largest(self, tmp_path, capsys):
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "small", "--items", "x"])
        main(["ingest", directory, "--group", "large", "--count", "5000"])
        capsys.readouterr()  # drop the ingest chatter
        assert main(["query", directory, "top 1"]) == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert len(output) == 1 and output[0].startswith("large\t")

    def test_prefix_filter_and_explain(self, tmp_path, capsys):
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "country:US", "--items", "a", "b"])
        main(["ingest", directory, "--group", "country:DE", "--items", "c"])
        main(["ingest", directory, "--group", "city:berlin", "--items", "c"])
        capsys.readouterr()
        assert main(
            ["query", directory, "top 10 where key startswith 'country:'", "--explain"]
        ) == 0
        output = capsys.readouterr().out
        lines = output.strip().splitlines()
        assert any(line.startswith("TopK(10)") for line in lines)
        rows = [line for line in lines if "\t" in line]
        assert [row.split("\t")[0] for row in rows] == ["country:US", "country:DE"]

    def test_reader_query_reports_horizon(self, tmp_path, capsys):
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "g", "--count", "1000"])
        capsys.readouterr()
        assert main(
            ["query", directory, "estimate 'g'", "--reader", "--expect", "1000", "--tolerance", "0.2"]
        ) == 0
        output = capsys.readouterr().out
        assert "durable LSN" in output
        assert "-> ok" in output

    def test_setop_query_between_groups(self, tmp_path, capsys):
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "a", "--items", "x", "y", "z"])
        main(["ingest", directory, "--group", "b", "--items", "y", "z", "w"])
        capsys.readouterr()
        assert main(
            [
                "query",
                directory,
                "where key = 'a' intersect where key = 'b'",
                "--expect",
                "2",
                "--tolerance",
                "0.35",
            ]
        ) == 0
        assert "intersect\t" in capsys.readouterr().out

    def test_parse_error_exits_2(self, tmp_path, capsys):
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "g", "--items", "a"])
        capsys.readouterr()
        assert main(["query", directory, "top banana"]) == 2
        assert "query:" in capsys.readouterr().err

    def test_expect_rejects_multirow_results(self, tmp_path, capsys):
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "a", "--items", "x"])
        main(["ingest", directory, "--group", "b", "--items", "y"])
        capsys.readouterr()
        assert main(["query", directory, "estimate all", "--expect", "2"]) == 2
        assert "single-row" in capsys.readouterr().err

    def test_ingest_requires_input(self, tmp_path):
        assert main(["ingest", str(tmp_path / "s"), "--group", "g"]) == 2

    def test_custom_parameters(self, tmp_path, capsys):
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "g", "--items", "a", "--t", "1", "--d", "9", "--p", "6"])
        main(["info", directory])
        assert "t=1 d=9 p=6" in capsys.readouterr().out

    def test_ingest_into_nondefault_store_without_flags(self, tmp_path):
        """Omitted --t/--d/--p defer to the persisted configuration."""
        directory = str(tmp_path / "s")
        main(["ingest", directory, "--group", "g", "--items", "a", "--p", "10"])
        assert main(["ingest", directory, "--group", "g", "--items", "b"]) == 0


class TestCrashRecovery:
    def test_crash_ingest_then_recover_and_verify(self, tmp_path):
        """The CI smoke drill: ingest → kill -9 equivalent → recover → verify."""
        directory = str(tmp_path / "s")
        crashed = _run(
            "ingest", directory, "--group", "demo", "--count", "30000", "--crash"
        )
        assert crashed.returncode == CRASH_EXIT_CODE, crashed.stderr
        assert "simulating crash" in crashed.stdout
        # No snapshot of the data exists — only WAL records.
        recovered = _run(
            "query", directory, "estimate 'demo'", "--expect", "30000", "--tolerance", "0.2"
        )
        assert recovered.returncode == 0, recovered.stdout + recovered.stderr
        assert "-> ok" in recovered.stdout

    def test_crash_with_auto_compaction(self, tmp_path):
        directory = str(tmp_path / "s")
        crashed = _run(
            "ingest",
            directory,
            "--group",
            "demo",
            "--count",
            "30000",
            "--compact-every",
            "65536",
            "--crash",
        )
        assert crashed.returncode == CRASH_EXIT_CODE, crashed.stderr
        info = _run("info", directory)
        assert info.returncode == 0
        assert "generation:  0" not in info.stdout  # compaction happened
        recovered = _run(
            "query", directory, "estimate 'demo'", "--expect", "30000", "--tolerance", "0.2"
        )
        assert recovered.returncode == 0, recovered.stdout + recovered.stderr
