"""WalShipper / FollowerStore: idempotent LSN apply, catch-up identity."""

import numpy as np
import pytest

from repro.storage.serialization import SerializationError
from repro.store import (
    RECORD_HASHES,
    FollowerStore,
    SketchStore,
    SnapshotReader,
    WalShipper,
    wal_path,
)


def _hashes(seed, count):
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


def _payload(seed, count):
    return _hashes(seed, count).astype("<u8").tobytes()


@pytest.fixture
def leader(tmp_path):
    store = SketchStore.open(tmp_path / "leader")
    store.append_hashes("DE", _hashes(1, 400))
    store.append_hashes("AT", _hashes(2, 60))
    store.append_hashes("DE", _hashes(3, 100))
    yield store
    store.close()


class TestFollowerStore:
    def test_uninitialised_follower_rejects_queries(self, tmp_path):
        follower = FollowerStore.open(tmp_path / "replica")
        assert not follower.initialized
        assert follower.applied_lsn == 0
        with pytest.raises(ValueError, match="uninitialised"):
            follower.estimates()
        with pytest.raises(ValueError, match="uninitialised"):
            follower.apply_record(1, RECORD_HASHES, b"DE", _payload(4, 5))

    def test_apply_is_idempotent_by_lsn(self, leader, tmp_path):
        follower = FollowerStore.open(tmp_path / "replica")
        WalShipper(leader.directory).sync(follower)
        assert follower.applied_lsn == 3
        # Re-applying any shipped LSN is a no-op, not a double fold.
        before = follower.aggregator.to_bytes()
        assert follower.apply_record(2, RECORD_HASHES, b"DE", _payload(3, 7)) is False
        assert follower.aggregator.to_bytes() == before

    def test_gap_is_rejected(self, leader, tmp_path):
        follower = FollowerStore.open(tmp_path / "replica")
        WalShipper(leader.directory).sync(follower)
        with pytest.raises(SerializationError, match="gap"):
            follower.apply_record(10, RECORD_HASHES, b"DE", _payload(5, 3))

    def test_snapshot_behind_horizon_is_rejected(self, leader, tmp_path):
        follower = FollowerStore.open(tmp_path / "replica")
        WalShipper(leader.directory).sync(follower)
        stale = (leader.directory / "snapshot-00000000.bin").read_bytes()
        with pytest.raises(ValueError, match="behind"):
            follower.install_snapshot(stale)

    def test_follower_recovers_after_restart(self, leader, tmp_path):
        follower = FollowerStore.open(tmp_path / "replica")
        WalShipper(leader.directory).sync(follower)
        state = follower.aggregator.to_bytes()
        del follower  # no clean close: records were flushed per apply
        reopened = FollowerStore.open(tmp_path / "replica")
        assert reopened.initialized
        assert reopened.applied_lsn == 3
        assert reopened.aggregator.to_bytes() == state
        reopened.close()

    def test_follower_wal_is_byte_identical_to_leader(self, leader, tmp_path):
        """Same records, deterministic framing: the logs match byte for byte."""
        follower = FollowerStore.open(tmp_path / "replica")
        WalShipper(leader.directory).sync(follower)
        follower.close()
        leader_wal = wal_path(leader.directory, 0).read_bytes()
        replica_wal = wal_path(tmp_path / "replica", 0).read_bytes()
        assert replica_wal == leader_wal


class TestWalShipper:
    def test_missing_leader_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            WalShipper(tmp_path / "absent")

    def test_uninitialised_leader_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        follower = FollowerStore.open(tmp_path / "replica")
        with pytest.raises(SerializationError, match="no snapshot"):
            WalShipper(tmp_path / "empty").sync(follower)

    def test_catch_up_guarantee(self, leader, tmp_path):
        """Applied to the horizon ⇒ bit-identical registers, every group."""
        follower = FollowerStore.open(tmp_path / "replica")
        result = WalShipper(leader.directory).sync(follower)
        assert result.follower_lsn == leader.durable_lsn
        for key, sketch in leader.aggregator._groups.items():
            assert follower.aggregator._groups[key].to_bytes() == sketch.to_bytes()
        assert follower.aggregator.to_bytes() == leader.aggregator.to_bytes()

    def test_incremental_sync_ships_only_new_records(self, leader, tmp_path):
        follower = FollowerStore.open(tmp_path / "replica")
        shipper = WalShipper(leader.directory)
        assert shipper.sync(follower).records_shipped == 3
        assert shipper.sync(follower).records_shipped == 0
        leader.append_hashes("CH", _hashes(6, 30))
        result = shipper.sync(follower)
        assert result.records_shipped == 1 and not result.snapshot_installed
        assert follower.aggregator.to_bytes() == leader.aggregator.to_bytes()

    def test_compaction_forces_snapshot_install(self, leader, tmp_path):
        follower = FollowerStore.open(tmp_path / "replica")
        shipper = WalShipper(leader.directory)
        # Never synced before the leader compacts: the old log is gone.
        leader.compact()
        leader.append_hashes("DE", _hashes(7, 20))
        result = shipper.sync(follower)
        assert result.snapshot_installed
        assert result.records_shipped == 1
        assert follower.generation == 1
        assert follower.aggregator.to_bytes() == leader.aggregator.to_bytes()

    def test_caught_up_follower_survives_leader_compaction(self, leader, tmp_path):
        """A follower at the horizon needs no snapshot when the leader
        compacts — its LSN already covers the new snapshot's base."""
        follower = FollowerStore.open(tmp_path / "replica")
        shipper = WalShipper(leader.directory)
        shipper.sync(follower)
        leader.compact()
        leader.append_hashes("AT", _hashes(8, 20))
        result = shipper.sync(follower)
        assert not result.snapshot_installed
        assert result.records_shipped == 1
        assert follower.aggregator.to_bytes() == leader.aggregator.to_bytes()

    def test_sketch_merge_records_replicate(self, leader, tmp_path):
        from repro.core.exaloglog import ExaLogLog

        bucket = ExaLogLog(2, 20, 8).add_hashes(_hashes(9, 100))
        leader.merge_sketch("bucket:1", bucket)
        follower = FollowerStore.open(tmp_path / "replica")
        WalShipper(leader.directory).sync(follower)
        assert follower.aggregator.to_bytes() == leader.aggregator.to_bytes()

    def test_replica_serves_readers(self, leader, tmp_path):
        follower = FollowerStore.open(tmp_path / "replica")
        WalShipper(leader.directory).sync(follower)
        follower.close()
        with SnapshotReader.open(tmp_path / "replica") as reader:
            assert reader.aggregator.to_bytes() == leader.aggregator.to_bytes()
            assert reader.estimates() == leader.estimates()

    def test_torn_leader_tail_is_not_shipped(self, leader, tmp_path):
        """Only the durable prefix replicates; the torn tail stays put."""
        leader.close()
        wal_file = wal_path(leader.directory, 0)
        torn = wal_file.read_bytes() + b"\x01\x15partial-append"
        wal_file.write_bytes(torn)
        follower = FollowerStore.open(tmp_path / "replica")
        result = WalShipper(leader.directory).sync(follower)
        assert result.follower_lsn == 3
        assert wal_file.read_bytes() == torn, "shipper mutated the leader WAL"
