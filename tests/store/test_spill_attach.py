"""SpilledGroupBy.attach: querying spilled partitions from a reader process."""

import numpy as np
import pytest

from repro.store import SpilledGroupBy
from repro.store.spill import read_spill_meta, write_spill_meta


def _populate(directory, partitions=8):
    groupby = SpilledGroupBy(directory, p=8, partitions=partitions)
    rng = np.random.Generator(np.random.PCG64(11))
    groups = [f"g{i}" for i in rng.integers(0, 20, size=500)]
    items = rng.integers(0, 10_000, size=500)
    groupby.add_batch(groups, items)
    groupby.add_batch(["solo"], [1])
    return groupby


def test_meta_sidecar_round_trip(tmp_path):
    groupby = _populate(tmp_path / "spill")
    config, partitions = read_spill_meta(tmp_path / "spill")
    assert config == groupby.config
    assert partitions == groupby.partitions
    groupby.close()


def test_attach_serves_identical_results(tmp_path):
    writer = _populate(tmp_path / "spill")
    writer._writer.flush()  # pending bytes to disk for the foreign reader
    attached = SpilledGroupBy.attach(tmp_path / "spill")
    assert attached.attached and not writer.attached
    assert attached.config == writer.config
    assert attached.partitions == writer.partitions
    assert attached.estimates() == writer.estimates()
    assert attached.top(5) == writer.top(5)
    assert attached.estimate("solo") == writer.estimate("solo")
    assert attached.group_count() == writer.group_count()
    assert (
        attached.to_aggregator().to_bytes() == writer.to_aggregator().to_bytes()
    )
    writer.close()
    attached.close()  # no-op: nothing to close read-only


def test_attach_rejects_ingest(tmp_path):
    _populate(tmp_path / "spill").close()
    attached = SpilledGroupBy.attach(tmp_path / "spill")
    with pytest.raises(ValueError, match="read-only"):
        attached.add_batch(["g"], ["x"])
    with pytest.raises(ValueError, match="read-only"):
        attached.write_segments([(b"g", np.array([1], dtype=np.uint64))])
    assert attached.records_spilled == 0


def test_attach_requires_meta(tmp_path):
    (tmp_path / "nometa").mkdir()
    with pytest.raises(FileNotFoundError):
        SpilledGroupBy.attach(tmp_path / "nometa")


def test_reopen_with_conflicting_config_rejected(tmp_path):
    _populate(tmp_path / "spill").close()
    with pytest.raises(ValueError, match="configuration"):
        SpilledGroupBy(tmp_path / "spill", p=10)
    with pytest.raises(ValueError, match="partitions"):
        SpilledGroupBy(tmp_path / "spill", p=8, partitions=4)
    # The matching configuration reattaches fine (resumed aggregation).
    resumed = SpilledGroupBy(tmp_path / "spill", p=8, partitions=8)
    resumed.close()


def test_corrupt_meta_rejected(tmp_path):
    from repro.storage.serialization import SerializationError

    directory = tmp_path / "spill"
    directory.mkdir()
    write_spill_meta(directory, (2, 20, 8, True, 0), 8)
    meta = directory / "spill.meta"
    meta.write_bytes(meta.read_bytes() + b"trailing")
    with pytest.raises(SerializationError, match="trailing"):
        SpilledGroupBy.attach(directory)


def test_cleanup_removes_meta(tmp_path):
    groupby = _populate(tmp_path / "spill")
    groupby.cleanup()
    assert not (tmp_path / "spill" / "spill.meta").exists()


def test_attach_tolerates_writers_torn_tail(tmp_path):
    """A half-flushed record at a file tail is invisible to an attached
    reader (prefix semantics), while the writing aggregation stays strict."""
    import pathlib

    from repro.storage.serialization import SerializationError
    from repro.store import read_spill_file, spill_files

    writer = _populate(tmp_path / "spill")
    writer._writer.flush()
    attached = SpilledGroupBy.attach(tmp_path / "spill")
    before = attached.estimates()
    # Simulate a writer's in-flight append on one partition file.
    victim = next(iter(spill_files(tmp_path / "spill").values()))[0]
    victim.write_bytes(victim.read_bytes() + b"\x01\x09half-a-rec")
    assert attached.estimates() == before  # prefix view, no crash
    with pytest.raises(SerializationError, match="truncated"):
        list(read_spill_file(victim))  # the strict (writer) read still raises
    writer.close()


def test_attach_missing_meta_names_the_directory(tmp_path):
    """Attaching a non-spill directory says *which* directory and why —
    a bare errno is hard to attribute in a multi-shard layout."""
    (tmp_path / "not-a-spill").mkdir()
    with pytest.raises(FileNotFoundError, match="not-a-spill.*spill.meta"):
        SpilledGroupBy.attach(tmp_path / "not-a-spill")
    with pytest.raises(FileNotFoundError, match="not a spill directory"):
        read_spill_meta(tmp_path / "not-a-spill")
