"""SnapshotReader: lock-free reads, refresh semantics, selective replay."""

import numpy as np
import pytest

from repro.storage.serialization import SerializationError
from repro.store import SketchStore, SnapshotReader, wal_index_path, wal_path


def _hashes(seed, count):
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


def test_open_missing_directory(tmp_path):
    with pytest.raises(FileNotFoundError):
        SnapshotReader.open(tmp_path / "absent")


def test_open_uninitialised_directory(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(SerializationError, match="no snapshot"):
        SnapshotReader.open(tmp_path / "empty")


def test_constructor_is_blocked():
    with pytest.raises(TypeError, match="open"):
        SnapshotReader()


def test_reader_view_matches_writer(tmp_path):
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(1, 500))
        store.append_hashes("AT", _hashes(2, 50))
        with SnapshotReader.open(tmp_path / "s") as reader:
            assert len(reader) == 2
            assert "DE" in reader and "FR" not in reader
            assert sorted(reader.groups()) == [b"AT", b"DE"]
            assert reader.durable_lsn == store.durable_lsn == 2
            assert reader.estimates() == store.estimates()
            assert reader.estimate("DE") == store.estimate("DE")
            assert reader.top(1) == store.aggregator.top(1)
            assert reader.aggregator.to_bytes() == store.aggregator.to_bytes()


def test_refresh_tails_new_records(tmp_path):
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(3, 100))
        with SnapshotReader.open(tmp_path / "s") as reader:
            assert reader.durable_lsn == 1
            store.append_hashes("DE", _hashes(4, 100))
            store.append_hashes("AT", _hashes(5, 10))
            result = reader.refresh()
            assert result.records_applied == 2
            assert not result.generation_changed
            assert reader.durable_lsn == 3
            assert reader.aggregator.to_bytes() == store.aggregator.to_bytes()


def test_refresh_follows_compaction(tmp_path):
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(6, 100))
        with SnapshotReader.open(tmp_path / "s") as reader:
            store.compact()
            store.append_hashes("AT", _hashes(7, 10))
            result = reader.refresh()
            assert result.generation_changed
            assert reader.generation == 1
            assert reader.base_lsn == 1
            assert reader.durable_lsn == store.durable_lsn == 2
            assert reader.aggregator.to_bytes() == store.aggregator.to_bytes()
            # Horizon is monotone even with nothing new.
            assert reader.refresh().durable_lsn == 2


def test_reader_without_wal_file_serves_snapshot(tmp_path):
    """Compaction race: the snapshot exists but its WAL does not yet."""
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(8, 100))
        store.compact()
    wal_path(tmp_path / "s", 1).unlink()
    with SnapshotReader.open(tmp_path / "s") as reader:
        assert reader.durable_lsn == reader.base_lsn == 1
        assert round(reader.estimate("DE")) > 0


def test_selective_replay_without_index(tmp_path):
    """A missing index degrades selective replay to a scan, not an error."""
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(9, 300))
        store.append_hashes("AT", _hashes(10, 40))
        store.append_hashes("DE", _hashes(11, 30))
        expected = store.aggregator._groups[b"DE"].to_bytes()
    wal_index_path(tmp_path / "s", 0).unlink()
    with SnapshotReader.open(tmp_path / "s") as reader:
        assert reader.group_sketch("DE").to_bytes() == expected


def test_selective_replay_with_lagging_index(tmp_path):
    """Index truncated behind the WAL: the unindexed tail is scanned."""
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(12, 300))
        store.append_hashes("DE", _hashes(13, 200))
        store.append_hashes("AT", _hashes(14, 10))
        expected = store.aggregator._groups[b"DE"].to_bytes()
    index_file = wal_index_path(tmp_path / "s", 0)
    data = index_file.read_bytes()
    index_file.write_bytes(data[: len(data) // 2])  # lose the later entries
    with SnapshotReader.open(tmp_path / "s") as reader:
        assert reader.group_sketch("DE").to_bytes() == expected
        assert reader.estimate_group("FR") == 0.0


def test_selective_replay_respects_horizon(tmp_path):
    """Records past the reader's horizon are excluded from selective replay."""
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(15, 200))
        with SnapshotReader.open(tmp_path / "s") as reader:
            before = reader.group_sketch("DE").to_bytes()
            store.append_hashes("DE", _hashes(16, 200))
            # No refresh: the selective replay must match the *old* view.
            assert reader.group_sketch("DE").to_bytes() == before
            assert before == reader.aggregator._groups[b"DE"].to_bytes()
            reader.refresh()
            assert (
                reader.group_sketch("DE").to_bytes()
                == store.aggregator._groups[b"DE"].to_bytes()
            )


def test_reader_ignores_writer_torn_tail(tmp_path):
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(17, 100))
    wal_file = wal_path(tmp_path / "s", 0)
    original = wal_file.read_bytes()
    wal_file.write_bytes(original + b"\x01\x22half-a-record")
    with SnapshotReader.open(tmp_path / "s") as reader:
        assert reader.durable_lsn == 1
        # The torn bytes are still there: the reader never truncates.
        assert wal_file.read_bytes().endswith(b"half-a-record")
        # When the "writer" completes the record, refresh picks it up.
        wal_file.write_bytes(original)
        with SketchStore.open(tmp_path / "s") as store:
            store.append_hashes("DE", _hashes(18, 50))
        assert reader.refresh().records_applied == 1
        assert reader.durable_lsn == 2


def test_reader_rejects_garbage_wal(tmp_path):
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(19, 50))
    wal_file = wal_path(tmp_path / "s", 0)
    data = bytearray(wal_file.read_bytes())
    # Corrupt payload bytes mid-record: the record still parses as
    # complete, so the CRC check must refuse it (a flipped *length* byte
    # may instead read as a torn tail, which is survivable by design).
    data[50] ^= 0xFF
    wal_file.write_bytes(bytes(data))
    with pytest.raises(SerializationError):
        SnapshotReader.open(tmp_path / "s")


def test_reader_rejects_corrupt_snapshot(tmp_path):
    """Corruption surfaces as SerializationError, not a masked BufferError."""
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(20, 50))
        store.compact()
    snapshot = tmp_path / "s" / "snapshot-00000001.bin"
    data = bytearray(snapshot.read_bytes())
    data[30] ^= 0xFF  # corrupt inside the aggregator blob
    snapshot.write_bytes(bytes(data))
    with pytest.raises(SerializationError):
        SnapshotReader.open(tmp_path / "s")


def test_group_sketch_survives_concurrent_sweep(tmp_path):
    """Selective replay falls back to the tailed view when the writer
    sweeps this generation's files mid-query — never a crash, never a
    silently stale (snapshot-only) answer."""
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(21, 200))
        store.compact()
        store.append_hashes("DE", _hashes(22, 100))  # tailed past the snapshot
        with SnapshotReader.open(tmp_path / "s") as reader:
            expected = reader.aggregator._groups[b"DE"].to_bytes()
            # Simulate the sweep of a concurrent compaction: WAL first.
            wal_path(tmp_path / "s", 1).unlink()
            assert reader.group_sketch("DE").to_bytes() == expected
            # ...then the snapshot too.
            (tmp_path / "s" / "snapshot-00000001.bin").unlink()
            assert reader.group_sketch("DE").to_bytes() == expected
            assert reader.group_sketch("missing") is None


def test_group_sketch_index_cache_tracks_appends(tmp_path):
    """The cached index invalidates when the writer appends more records."""
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(23, 100))
        with SnapshotReader.open(tmp_path / "s") as reader:
            first = reader.group_sketch("DE").to_bytes()
            assert reader.group_sketch("DE").to_bytes() == first  # cache hit
            store.append_hashes("DE", _hashes(24, 100))
            reader.refresh()
            assert (
                reader.group_sketch("DE").to_bytes()
                == store.aggregator._groups[b"DE"].to_bytes()
            )


def test_foreign_snapshot_error_names_the_directory(tmp_path):
    """A snapshot file holding the wrong generation is attributed to its
    store directory (multi-shard layouts open many directories at once)."""
    import shutil

    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(31, 50))
        store.compact()
    # A foreign/renamed snapshot: generation 1's bytes under generation 2's
    # name becomes the newest generation the reader will try to open.
    shutil.copy(
        tmp_path / "s" / "snapshot-00000001.bin",
        tmp_path / "s" / "snapshot-00000002.bin",
    )
    with pytest.raises(SerializationError) as excinfo:
        SnapshotReader.open(tmp_path / "s")
    assert str(tmp_path / "s") in str(excinfo.value)
    assert "holds generation" in str(excinfo.value)
