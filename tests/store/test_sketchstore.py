"""SketchStore: WAL + snapshot durability, recovery, compaction."""

import numpy as np
import pytest

from repro.aggregate import DistinctCountAggregator
from repro.core.exaloglog import ExaLogLog
from repro.core.sparse import SparseExaLogLog
from repro.storage.serialization import SerializationError
from repro.store import SketchStore


def _hashes(seed, count):
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


def _reference(batches, config=(2, 20, 8, True, 0)):
    aggregator = DistinctCountAggregator(*config)
    for group, hashes in batches:
        key = DistinctCountAggregator._group_key(group)
        sketch = aggregator._groups.get(key)
        if sketch is None:
            sketch = aggregator._new_sketch()
            aggregator._groups[key] = sketch
        sketch.add_hashes(hashes)
    return aggregator


BATCHES = [
    ("DE", _hashes(1, 700)),
    ("AT", _hashes(2, 40)),
    ("DE", _hashes(3, 300)),
    ("CH", _hashes(4, 5)),
]


class TestBasics:
    def test_append_matches_in_memory_aggregator(self, tmp_path):
        with SketchStore.open(tmp_path / "s") as store:
            for group, hashes in BATCHES:
                store.append_hashes(group, hashes)
            assert store.aggregator.to_bytes() == _reference(BATCHES).to_bytes()
            assert store.wal_records == len(BATCHES)

    def test_append_items_hashes_like_aggregator(self, tmp_path):
        items = ["alice", "bob", "alice", 17, 3.5]
        reference = DistinctCountAggregator(2, 20, 8)
        for item in items:
            reference.add("users", item)
        with SketchStore.open(tmp_path / "s") as store:
            store.append("users", items)
            assert store.aggregator.to_bytes() == reference.to_bytes()
            assert round(store.estimate("users")) == 4

    def test_empty_append_writes_nothing(self, tmp_path):
        with SketchStore.open(tmp_path / "s") as store:
            before = store.wal_bytes
            store.append_hashes("g", np.array([], dtype=np.uint64))
            assert store.wal_bytes == before
            assert store.wal_records == 0

    def test_query_api(self, tmp_path):
        with SketchStore.open(tmp_path / "s") as store:
            store.append_hashes("DE", _hashes(5, 100))
            assert "DE" in store
            assert "FR" not in store
            assert len(store) == 1
            assert list(store.groups()) == [b"DE"]
            assert store.estimate("FR") == 0.0
            assert set(store.estimates()) == {b"DE"}

    def test_closed_store_rejects_appends(self, tmp_path):
        store = SketchStore.open(tmp_path / "s")
        store.close()
        with pytest.raises(ValueError, match="closed"):
            store.append_hashes("g", _hashes(6, 10))


class TestRecovery:
    def test_reopen_without_close_replays_wal(self, tmp_path):
        store = SketchStore.open(tmp_path / "s")
        for group, hashes in BATCHES:
            store.append_hashes(group, hashes)
        # Drop the handle without close(): the WAL was flushed per append.
        del store
        recovered = SketchStore.open(tmp_path / "s")
        assert recovered.aggregator.to_bytes() == _reference(BATCHES).to_bytes()
        assert recovered.wal_records == len(BATCHES)
        recovered.close()

    def test_recovered_store_accepts_more_appends(self, tmp_path):
        store = SketchStore.open(tmp_path / "s")
        store.append_hashes("DE", BATCHES[0][1])
        del store
        with SketchStore.open(tmp_path / "s") as recovered:
            for group, hashes in BATCHES[1:]:
                recovered.append_hashes(group, hashes)
        with SketchStore.open(tmp_path / "s") as final:
            assert final.aggregator.to_bytes() == _reference(BATCHES).to_bytes()

    def test_fsync_mode(self, tmp_path):
        with SketchStore.open(tmp_path / "s", fsync=True) as store:
            store.append_hashes("DE", _hashes(7, 50))
        with SketchStore.open(tmp_path / "s") as recovered:
            assert len(recovered) == 1

    def test_sketch_records_replay(self, tmp_path):
        bucket = ExaLogLog(2, 20, 8).add_hashes(_hashes(8, 300))
        store = SketchStore.open(tmp_path / "s")
        store.merge_sketch("bucket:7", bucket)
        store.merge_sketch("bucket:7", bucket)  # idempotent merge
        del store
        with SketchStore.open(tmp_path / "s") as recovered:
            assert recovered.estimate("bucket:7") == bucket.estimate()

    def test_sparse_sketch_record_into_dense_store(self, tmp_path):
        sparse = SparseExaLogLog(2, 20, 8)
        for value in _hashes(9, 20).tolist():
            sparse.add_hash(value)
        with SketchStore.open(tmp_path / "s", sparse=False) as store:
            store.merge_sketch("g", sparse)
            assert store.estimate("g") == sparse.densify().estimate()
        with SketchStore.open(tmp_path / "s") as recovered:
            assert recovered.estimate("g") == sparse.densify().estimate()


class TestConfiguration:
    def test_custom_config_persists(self, tmp_path):
        with SketchStore.open(tmp_path / "s", t=1, d=9, p=6, sparse=False, seed=5):
            pass
        with SketchStore.open(tmp_path / "s") as store:
            assert store.aggregator._config == (1, 9, 6, False, 5)

    def test_mismatched_config_rejected(self, tmp_path):
        SketchStore.open(tmp_path / "s", p=8).close()
        with pytest.raises(ValueError, match="configuration"):
            SketchStore.open(tmp_path / "s", p=10)

    def test_defaults_do_not_conflict(self, tmp_path):
        SketchStore.open(tmp_path / "s", t=1, d=9, p=6).close()
        with SketchStore.open(tmp_path / "s") as store:  # no explicit params
            assert store.aggregator._config[:3] == (1, 9, 6)


class TestCompaction:
    def test_compact_preserves_state_and_rotates_files(self, tmp_path):
        with SketchStore.open(tmp_path / "s") as store:
            for group, hashes in BATCHES:
                store.append_hashes(group, hashes)
            blob = store.aggregator.to_bytes()
            generation = store.compact()
            assert generation == 1
            assert store.wal_records == 0
            assert store.aggregator.to_bytes() == blob
        names = sorted(p.name for p in (tmp_path / "s").iterdir())
        assert names == [
            "snapshot-00000001.bin",
            "wal-00000001.log",
            "walidx-00000001.log",
        ]
        with SketchStore.open(tmp_path / "s") as reopened:
            assert reopened.generation == 1
            assert reopened.aggregator.to_bytes() == blob

    def test_append_after_compact_recovers(self, tmp_path):
        store = SketchStore.open(tmp_path / "s")
        store.append_hashes("DE", BATCHES[0][1])
        store.compact()
        store.append_hashes("AT", BATCHES[1][1])
        del store
        with SketchStore.open(tmp_path / "s") as recovered:
            expected = _reference(BATCHES[:2])
            assert recovered.aggregator.to_bytes() == expected.to_bytes()
            assert recovered.wal_records == 1

    def test_auto_compaction_bounds_wal(self, tmp_path):
        with SketchStore.open(tmp_path / "s", auto_compact_bytes=4096) as store:
            for index in range(20):
                store.append_hashes(f"g{index}", _hashes(index, 200))
            assert store.generation > 0
            assert store.wal_bytes <= 4096 + 2048  # one record may overshoot
            reference = _reference(
                [(f"g{index}", _hashes(index, 200)) for index in range(20)]
            )
            assert store.aggregator.to_bytes() == reference.to_bytes()

    def test_stale_generation_files_swept_on_open(self, tmp_path):
        with SketchStore.open(tmp_path / "s") as store:
            store.append_hashes("DE", BATCHES[0][1])
            store.compact()
        # Simulate a crash that left generation-0 files behind.
        (tmp_path / "s" / "snapshot-00000000.bin").write_bytes(b"stale")
        (tmp_path / "s" / "wal-00000000.log").write_bytes(b"stale")
        with SketchStore.open(tmp_path / "s") as store:
            assert store.generation == 1
        names = sorted(p.name for p in (tmp_path / "s").iterdir())
        assert names == [
            "snapshot-00000001.bin",
            "wal-00000001.log",
            "walidx-00000001.log",
        ]


class TestCorruption:
    def test_corrupt_snapshot_raises(self, tmp_path):
        SketchStore.open(tmp_path / "s").close()
        (tmp_path / "s" / "snapshot-00000000.bin").write_bytes(b"garbage here")
        with pytest.raises(SerializationError):
            SketchStore.open(tmp_path / "s")

    def test_foreign_wal_header_raises(self, tmp_path):
        SketchStore.open(tmp_path / "s").close()
        (tmp_path / "s" / "wal-00000000.log").write_bytes(b"XXXXXXXX")
        with pytest.raises(SerializationError):
            SketchStore.open(tmp_path / "s")
