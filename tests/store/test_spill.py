"""Spill-to-disk GROUP BY: exactness, partitioning, independent writers."""

import numpy as np
import pytest

from repro.aggregate import DistinctCountAggregator
from repro.parallel import parallel_spill_write, shard_of
from repro.storage.serialization import SerializationError
from repro.store import SpilledGroupBy, SpillWriter, read_spill_file, spill_files


def _batch(n, groups, seed=0):
    rng = np.random.Generator(np.random.PCG64(seed))
    return (
        rng.integers(0, groups, size=n).astype(np.int64),
        rng.integers(0, 1 << 63, size=n, dtype=np.int64),
    )


class TestEquivalence:
    def test_bit_identical_to_in_memory_aggregator(self, tmp_path):
        groups, items = _batch(20000, 500, seed=1)
        reference = DistinctCountAggregator(2, 20, 8).add_batch(groups, items)
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=8)
        spill.add_batch(groups[:12000], items[:12000])
        spill.add_batch(groups[12000:], items[12000:])
        assert spill.to_aggregator().to_bytes() == reference.to_bytes()
        assert spill.estimates() == reference.estimates()
        assert spill.group_count() == len(reference)

    def test_per_group_sketches_bit_identical(self, tmp_path):
        groups, items = _batch(5000, 40, seed=2)
        reference = DistinctCountAggregator(2, 20, 8).add_batch(groups, items)
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=4)
        spill.add_batch(groups, items)
        seen = {}
        for partial in spill.partition_aggregators():
            for key in partial.groups():
                assert key not in seen, "group appears in two partitions"
                seen[key] = partial._groups[key].to_bytes()
        assert seen == {
            key: sketch.to_bytes() for key, sketch in reference._groups.items()
        }

    def test_aggregator_spill_parameter_routes_batches(self, tmp_path):
        groups, items = _batch(8000, 200, seed=3)
        reference = DistinctCountAggregator(2, 20, 8).add_batch(groups, items)
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=8)
        aggregator = DistinctCountAggregator(2, 20, 8)
        aggregator.add_batch(groups, items, spill=spill)
        assert len(aggregator) == 0  # nothing accumulated in memory
        assert spill.to_aggregator().to_bytes() == reference.to_bytes()

    def test_spill_parameter_config_mismatch_rejected(self, tmp_path):
        spill = SpilledGroupBy(tmp_path / "s", p=10)
        with pytest.raises(ValueError, match="configuration"):
            DistinctCountAggregator(2, 20, 8).add_batch(["g"], ["x"], spill=spill)

    def test_add_pairs_and_single_estimate(self, tmp_path):
        pairs = [("DE", f"u{i}") for i in range(300)] + [("AT", "solo")]
        reference = DistinctCountAggregator(2, 20, 8).add_pairs(pairs)
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=4)
        spill.add_pairs(pairs)
        assert spill.estimate("DE") == reference.estimate("DE")
        assert spill.estimate("AT") == reference.estimate("AT")
        assert spill.estimate("missing") == 0.0

    def test_seed_and_sparse_flags_respected(self, tmp_path):
        groups, items = _batch(3000, 50, seed=4)
        reference = DistinctCountAggregator(2, 20, 8, sparse=False, seed=42)
        reference.add_batch(groups, items)
        spill = SpilledGroupBy(tmp_path / "s", p=8, sparse=False, seed=42, partitions=4)
        spill.add_batch(groups, items)
        assert spill.to_aggregator().to_bytes() == reference.to_bytes()


class TestPartitioningAndWriters:
    def test_groups_land_in_their_shard_partition(self, tmp_path):
        groups, items = _batch(4000, 100, seed=5)
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=8)
        spill.add_batch(groups, items)
        spill._writer.flush()
        for partition, paths in spill_files(tmp_path / "s").items():
            for path in paths:
                for key, _ in read_spill_file(path):
                    assert shard_of(key, 8) == partition

    def test_two_writers_one_directory(self, tmp_path):
        groups, items = _batch(6000, 120, seed=6)
        reference = DistinctCountAggregator(2, 20, 8).add_batch(groups, items)
        left = SpilledGroupBy(tmp_path / "s", p=8, partitions=4)
        right = SpilledGroupBy(tmp_path / "s", p=8, partitions=4)
        right._writer._writer_id = "other"  # distinct writer, same directory
        left.add_batch(groups[:3000], items[:3000])
        right.add_batch(groups[3000:], items[3000:])
        left._writer.flush()
        right._writer.flush()
        assert left.to_aggregator().to_bytes() == reference.to_bytes()

    def test_parallel_spill_write_equivalent(self, tmp_path):
        groups, items = _batch(10000, 300, seed=7)
        reference = DistinctCountAggregator(2, 20, 8).add_batch(groups, items)
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=8)
        spill.add_batch(groups, items, workers=2)
        assert spill.to_aggregator().to_bytes() == reference.to_bytes()
        # Multiple writer ids present (one per shard).
        writers = {
            path.name.rsplit("-", 1)[1]
            for paths in spill_files(tmp_path / "s").values()
            for path in paths
        }
        assert len(writers) >= 2

    def test_parallel_spill_write_spawn(self, tmp_path):
        groups, items = _batch(4000, 60, seed=8)
        reference = DistinctCountAggregator(2, 20, 8).add_batch(groups, items)
        segments = DistinctCountAggregator(2, 20, 8)._segments(groups, items)
        written = parallel_spill_write(
            segments, tmp_path / "s", 4, workers=2, start_method="spawn"
        )
        assert written == len(segments)
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=4)
        assert spill.to_aggregator().to_bytes() == reference.to_bytes()

    def test_aggregator_spill_with_workers(self, tmp_path):
        """workers= composes with spill= (parallel partition writes)."""
        groups, items = _batch(8000, 150, seed=11)
        reference = DistinctCountAggregator(2, 20, 8).add_batch(groups, items)
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=8)
        DistinctCountAggregator(2, 20, 8).add_batch(
            groups, items, workers=2, spill=spill
        )
        assert spill.to_aggregator().to_bytes() == reference.to_bytes()
        writers = {
            path.name.rsplit("-", 1)[1]
            for paths in spill_files(tmp_path / "s").values()
            for path in paths
        }
        assert len(writers) >= 2

    def test_writer_id_validation(self, tmp_path):
        with pytest.raises(ValueError, match="writer_id"):
            SpillWriter(tmp_path, 4, writer_id="has-dash")

    def test_cleanup_removes_files(self, tmp_path):
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=4)
        spill.add_batch(*_batch(1000, 30, seed=9))
        spill.cleanup()
        assert spill_files(tmp_path / "s") == {}


class TestSpillFileFormat:
    def test_truncated_spill_file_raises(self, tmp_path):
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=1)
        spill.add_batch(*_batch(500, 10, seed=10))
        spill._writer.flush()
        [[path]] = spill_files(tmp_path / "s").values()
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(SerializationError, match="truncated"):
            list(read_spill_file(path))

    def test_foreign_file_raises(self, tmp_path):
        path = tmp_path / "part-0000-w1.spill"
        path.write_bytes(b"not a spill file")
        with pytest.raises(SerializationError):
            list(read_spill_file(path))

    def test_empty_batch_is_noop(self, tmp_path):
        spill = SpilledGroupBy(tmp_path / "s", p=8, partitions=4)
        spill.add_batch([], [])
        assert spill.records_spilled == 0
        assert spill.estimates() == {}
