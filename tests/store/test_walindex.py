"""Group-level WAL index: maintenance, torn tails, recovery rebuild."""

import numpy as np
import pytest

from repro.storage.serialization import SerializationError
from repro.store import SketchStore, load_wal_index, wal_index_path, wal_path
from repro.store.walindex import WalIndexEntry, scan_floor


def _hashes(seed, count):
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


def test_index_tracks_every_append(tmp_path):
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(1, 50))
        store.append_hashes("AT", _hashes(2, 5))
        store.append_hashes("DE", _hashes(3, 20))
    index = load_wal_index(wal_index_path(tmp_path / "s", 0))
    assert sorted(index) == [b"AT", b"DE"]
    assert [entry.lsn for entry in index[b"DE"]] == [1, 3]
    assert [entry.lsn for entry in index[b"AT"]] == [2]
    # Entries point at real record boundaries inside the WAL.
    wal_bytes = wal_path(tmp_path / "s", 0).read_bytes()
    from repro.storage.serialization import read_lsn_record

    for entries in index.values():
        for entry in entries:
            lsn, kind, key, payload, end = read_lsn_record(wal_bytes, entry.offset)
            assert lsn == entry.lsn
            assert end == entry.end


def test_index_rebuilt_on_recovery(tmp_path):
    """Crash recovery rewrites the index to match the (truncated) WAL."""
    store = SketchStore.open(tmp_path / "s")
    store.append_hashes("DE", _hashes(4, 30))
    store.append_hashes("AT", _hashes(5, 30))
    del store  # crash: no close
    # Simulate a torn WAL tail: cut into the second record.
    wal_file = wal_path(tmp_path / "s", 0)
    data = wal_file.read_bytes()
    wal_file.write_bytes(data[: len(data) - 10])
    with SketchStore.open(tmp_path / "s") as recovered:
        assert recovered.wal_records == 1
    index = load_wal_index(wal_index_path(tmp_path / "s", 0))
    assert sorted(index) == [b"DE"]  # the AT record did not survive


def test_index_resets_on_compact(tmp_path):
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(6, 30))
        store.compact()
        assert load_wal_index(wal_index_path(tmp_path / "s", 1)) == {}
        assert not wal_index_path(tmp_path / "s", 0).exists()
        store.append_hashes("AT", _hashes(7, 10))
    index = load_wal_index(wal_index_path(tmp_path / "s", 1))
    assert list(index) == [b"AT"]
    assert index[b"AT"][0].lsn == 2  # LSNs keep counting across generations


def test_missing_and_torn_index_files(tmp_path):
    assert load_wal_index(tmp_path / "absent.idx") == {}
    with SketchStore.open(tmp_path / "s") as store:
        store.append_hashes("DE", _hashes(8, 30))
        store.append_hashes("AT", _hashes(9, 30))
    index_file = wal_index_path(tmp_path / "s", 0)
    full = load_wal_index(index_file)
    data = index_file.read_bytes()
    index_file.write_bytes(data[: len(data) - 5])  # torn tail
    partial = load_wal_index(index_file)
    assert list(partial) == [b"DE"]  # the first entry survived
    assert partial[b"DE"] == full[b"DE"]


def test_scan_floor(tmp_path):
    assert scan_floor({}) == 0
    index = {
        b"a": [WalIndexEntry(1, 4, 10), WalIndexEntry(3, 30, 12)],
        b"b": [WalIndexEntry(2, 14, 16)],
    }
    assert scan_floor(index) == 42


def test_foreign_index_file_rejected(tmp_path):
    path = tmp_path / "bogus.idx"
    path.write_bytes(b"\xde\xad\xbe\xef" + b"junk")
    with pytest.raises(SerializationError):
        load_wal_index(path)
