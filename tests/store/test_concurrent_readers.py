"""Concurrency stress: live writer + multiple reader processes, no locks.

One process appends batches (and periodically compacts) while reader
processes tail the WAL through :class:`SnapshotReader`. The readers
assert, continuously:

* no torn record is ever surfaced (refresh either applies complete
  records or stops at the durable horizon — any ``SerializationError``
  or crash fails the test);
* no stale-generation mix (a reader's view is always one snapshot + its
  own WAL; violations surface as LSN-sequence errors);
* the durable horizon is monotone refresh over refresh;
* the final view is bit-identical to the writer's final state.
"""

import hashlib
import multiprocessing
import os
import pathlib
import struct
import time
import traceback

import numpy as np
import pytest

from repro.store import SketchStore, SnapshotReader

#: Writer workload: small batches so record boundaries churn quickly.
BATCHES = 150
BATCH_SIZE = 64
GROUPS = 5
COMPACT_EVERY = 40

_DEADLINE = 120.0


def _writer_process(directory, done_path):
    rng = np.random.Generator(np.random.PCG64(1234))
    store = SketchStore.open(directory)
    for index in range(BATCHES):
        hashes = rng.integers(0, 1 << 64, size=BATCH_SIZE, dtype=np.uint64)
        store.append_hashes(f"g{index % GROUPS}", hashes)
        if (index + 1) % COMPACT_EVERY == 0:
            store.compact()
    digest = hashlib.sha256(store.aggregator.to_bytes()).digest()
    lsn = store.durable_lsn
    store.close()
    # Atomic done marker: readers poll for it, then take a final refresh.
    temporary = pathlib.Path(str(done_path) + ".tmp")
    temporary.write_bytes(struct.pack("<q", lsn) + digest)
    os.replace(temporary, done_path)


def _reader_process(directory, done_path, results):
    try:
        reader = SnapshotReader.open(directory)
        refreshes = 0
        last_lsn = reader.durable_lsn
        deadline = time.monotonic() + _DEADLINE
        while True:
            writer_done = os.path.exists(done_path)
            result = reader.refresh()
            refreshes += 1
            assert result.durable_lsn >= last_lsn, (
                f"horizon regressed: {last_lsn} -> {result.durable_lsn}"
            )
            last_lsn = result.durable_lsn
            # The whole view must stay estimable at every horizon.
            estimates = reader.estimates()
            assert all(value >= 0.0 for value in estimates.values())
            if writer_done:
                # `done` was observed *before* this refresh, so the view
                # now includes the writer's last record.
                break
            if time.monotonic() > deadline:
                raise TimeoutError("writer never finished")
            time.sleep(0.002)
        digest = hashlib.sha256(reader.aggregator.to_bytes()).digest()
        results.put(("ok", last_lsn, digest, refreshes))
        reader.close()
    except BaseException:
        results.put(("error", traceback.format_exc(), None, None))


@pytest.mark.parametrize("readers", [2])
def test_readers_tail_live_writer(readers, tmp_path):
    directory = tmp_path / "store"
    done_path = tmp_path / "writer-done"
    SketchStore.open(directory).close()  # generation 0 exists before readers start

    context = multiprocessing.get_context()
    results = context.Queue()
    processes = [
        context.Process(target=_writer_process, args=(directory, done_path))
    ] + [
        context.Process(target=_reader_process, args=(directory, done_path, results))
        for _ in range(readers)
    ]
    for process in processes:
        process.start()
    try:
        outcomes = [results.get(timeout=_DEADLINE) for _ in range(readers)]
    finally:
        for process in processes:
            process.join(timeout=_DEADLINE)
            if process.is_alive():
                process.terminate()

    failures = [outcome for outcome in outcomes if outcome[0] != "ok"]
    assert not failures, "reader process failed:\n" + "\n".join(
        outcome[1] for outcome in failures
    )

    packed = done_path.read_bytes()
    writer_lsn = struct.unpack("<q", packed[:8])[0]
    writer_digest = packed[8:]
    assert writer_lsn == BATCHES
    for _, lsn, digest, refreshes in outcomes:
        assert lsn == writer_lsn, f"reader stopped at LSN {lsn}, writer at {writer_lsn}"
        assert digest == writer_digest, "reader's final view is not bit-identical"
        assert refreshes >= 1
