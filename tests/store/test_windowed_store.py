"""Sliding-window counters retiring evicted buckets into a SketchStore."""

import pytest

from repro.core.exaloglog import ExaLogLog
from repro.store import SketchStore
from repro.windowed import SlidingWindowDistinctCounter


def _drive(counter, n=60):
    for i in range(n):
        counter.add(f"user{i}", at=float(i))


def _store_history_estimate(store, t=2, d=20, p=8):
    """Merge every retired bucket in the store into one estimate."""
    merged = ExaLogLog(t, d, p)
    for key in store.groups():
        sketch = store.aggregator._groups[key]
        if hasattr(sketch, "densify"):
            sketch = sketch.densify()
        merged.merge_inplace(sketch)
    return merged.estimate()


class TestRetirement:
    def test_evicted_buckets_land_in_store(self, tmp_path):
        store = SketchStore.open(tmp_path / "s", p=8)
        counter = SlidingWindowDistinctCounter(
            window=10.0, buckets=5, p=8, store=store
        )
        _drive(counter, 60)  # 30 buckets of width 2; 5 live, 25 evicted
        assert counter.active_buckets == 5
        assert len(store) == 25
        assert all(key.startswith(b"bucket:") for key in store.groups())
        store.close()

    def test_full_history_recoverable_from_store(self, tmp_path):
        store = SketchStore.open(tmp_path / "s", p=8)
        counter = SlidingWindowDistinctCounter(
            window=10.0, buckets=5, p=8, store=store
        )
        _drive(counter, 60)
        counter.flush_to_store()  # live buckets too
        reference = ExaLogLog(2, 20, 8)
        for i in range(60):
            reference.add(f"user{i}")
        assert _store_history_estimate(store) == reference.estimate()
        store.close()

    def test_flush_is_idempotent(self, tmp_path):
        store = SketchStore.open(tmp_path / "s", p=8)
        counter = SlidingWindowDistinctCounter(
            window=10.0, buckets=5, p=8, store=store
        )
        _drive(counter, 20)
        first = counter.flush_to_store()
        second = counter.flush_to_store()
        assert first == second == counter.active_buckets
        reference = ExaLogLog(2, 20, 8)
        for i in range(20):
            reference.add(f"user{i}")
        assert _store_history_estimate(store) == reference.estimate()
        store.close()

    def test_retired_buckets_survive_crash(self, tmp_path):
        store = SketchStore.open(tmp_path / "s", p=8)
        counter = SlidingWindowDistinctCounter(
            window=10.0, buckets=5, p=8, store=store
        )
        _drive(counter, 60)
        del store  # no close(): recovery must come from the WAL
        recovered = SketchStore.open(tmp_path / "s")
        assert len(recovered) == 25
        assert _store_history_estimate(recovered) > 0
        recovered.close()

    def test_empty_buckets_not_retired(self, tmp_path):
        store = SketchStore.open(tmp_path / "s", p=8)
        counter = SlidingWindowDistinctCounter(
            window=10.0, buckets=2, p=8, store=store
        )
        counter.add("a", at=0.0)
        # Jump far ahead: bucket 0 evicts, the gap buckets never existed.
        counter.add("b", at=100.0)
        assert len(store) == 1
        store.close()

    def test_window_estimates_unaffected_by_store(self, tmp_path):
        store = SketchStore.open(tmp_path / "s", p=8)
        with_store = SlidingWindowDistinctCounter(
            window=10.0, buckets=5, p=8, store=store
        )
        without = SlidingWindowDistinctCounter(window=10.0, buckets=5, p=8)
        _drive(with_store, 60)
        _drive(without, 60)
        assert with_store.estimate(now=59.0) == without.estimate(now=59.0)
        store.close()


class TestConfigValidation:
    def test_mismatched_store_params_rejected(self, tmp_path):
        store = SketchStore.open(tmp_path / "s", p=10)
        with pytest.raises(ValueError, match="retired"):
            SlidingWindowDistinctCounter(window=10.0, buckets=5, p=8, store=store)
        store.close()

    def test_mismatched_seed_rejected(self, tmp_path):
        store = SketchStore.open(tmp_path / "s", p=8, seed=0)
        with pytest.raises(ValueError, match="seed"):
            SlidingWindowDistinctCounter(
                window=10.0, buckets=5, p=8, seed=7, store=store
            )
        store.close()

    def test_flush_without_store_rejected(self):
        counter = SlidingWindowDistinctCounter(window=10.0, buckets=5, p=8)
        with pytest.raises(ValueError, match="no store"):
            counter.flush_to_store()

    def test_custom_prefix(self, tmp_path):
        store = SketchStore.open(tmp_path / "s", p=8)
        counter = SlidingWindowDistinctCounter(
            window=2.0, buckets=1, p=8, store=store, store_prefix="w7:"
        )
        counter.add("a", at=0.0)
        counter.add("b", at=10.0)
        assert list(store.groups()) == [b"w7:0"]
        store.close()
