"""Span tracing: nesting, ring-buffer retention, Chrome trace export."""

from __future__ import annotations

import json
import threading

from repro.obs import trace


def test_disabled_span_records_nothing():
    context = trace.span("noop")
    assert context is trace.span("noop")  # one shared no-op object
    with context:
        pass
    assert trace.spans() == []


def test_spans_record_name_attrs_and_depth():
    with trace.tracing():
        with trace.span("outer", layer="store"):
            with trace.span("inner"):
                pass
    outer = [s for s in trace.spans() if s.name == "outer"][0]
    inner = [s for s in trace.spans() if s.name == "inner"][0]
    assert outer.depth == 0 and inner.depth == 1
    assert dict(outer.attrs) == {"layer": "store"}
    assert outer.thread_id == threading.get_ident()


def test_nesting_is_monotonic():
    with trace.tracing():
        with trace.span("a"):
            with trace.span("b"):
                with trace.span("c"):
                    pass
    by_name = {s.name: s for s in trace.spans()}
    a, b, c = by_name["a"], by_name["b"], by_name["c"]
    # Children start no earlier and end no later than their parents.
    assert a.start <= b.start <= c.start
    assert c.end <= b.end <= a.end
    assert (a.depth, b.depth, c.depth) == (0, 1, 2)


def test_exception_unwinds_leaked_spans():
    with trace.tracing():
        try:
            with trace.span("outer"):
                span = trace.span("leaked")
                span.__enter__()  # never exited: the exception unwinds it
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with trace.span("after"):
            pass
    after = [s for s in trace.spans() if s.name == "after"][0]
    assert after.depth == 0  # the leaked span did not corrupt the stack


def test_ring_buffer_keeps_newest():
    original = trace.capacity()
    try:
        trace.set_capacity(4)
        with trace.tracing():
            for index in range(10):
                with trace.span(f"s{index}"):
                    pass
        names = [s.name for s in trace.spans()]
        assert names == ["s6", "s7", "s8", "s9"]
    finally:
        trace.set_capacity(original)


def test_chrome_trace_export(tmp_path):
    with trace.tracing():
        with trace.span("export", key="value"):
            pass
    document = json.loads(trace.to_chrome_trace())
    events = [e for e in document["traceEvents"] if e["name"] == "export"]
    assert len(events) == 1
    event = events[0]
    assert event["ph"] == "X"
    assert event["dur"] >= 0.0
    assert event["args"]["key"] == "value"
    assert event["args"]["depth"] == 0
    path = tmp_path / "trace.json"
    trace.save_chrome_trace(path)
    assert json.loads(path.read_text())["traceEvents"]


def test_reset_clears_spans():
    with trace.tracing():
        with trace.span("gone"):
            pass
    assert trace.spans()
    trace.reset()
    assert trace.spans() == []
