"""Isolation for the global obs state: every test starts clean."""

from __future__ import annotations

import pytest

from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def clean_obs():
    metrics_was = metrics.enabled()
    trace_was = trace.enabled()
    metrics.reset()
    trace.reset()
    yield
    if metrics_was:
        metrics.enable()
    else:
        metrics.disable()
    if trace_was:
        trace.enable()
    else:
        trace.disable()
    metrics.reset()
    trace.reset()
