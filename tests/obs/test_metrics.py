"""Metrics primitives: buckets, quantiles, merge semantics, exposition."""

from __future__ import annotations

import json
import math
import re

import pytest

from repro.obs import metrics


# -- counters and gauges -------------------------------------------------------


def test_counter_accumulates_and_rejects_decrease():
    with metrics.instrumented():
        c = metrics.counter("t.counter")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)


def test_disabled_mutations_are_noops():
    c = metrics.counter("t.off.counter")
    g = metrics.gauge("t.off.gauge")
    h = metrics.histogram("t.off.hist")
    c.inc()
    g.set(5)
    h.observe(1.0)
    assert c.value == 0.0
    assert g.value == 0.0
    assert h.count == 0


def test_gauge_modes_merge():
    with metrics.instrumented():
        last = metrics.gauge("t.g.last")
        peak = metrics.gauge("t.g.max", mode="max")
        total = metrics.gauge("t.g.sum", mode="sum")
        for g in (last, peak, total):
            g.set(10)
        snap = metrics.drain()  # zeroes in place, returns the delta
        assert last.value == 0.0
        for g in (last, peak, total):
            g.set(4)
        metrics.merge_snapshot(snap)
        assert last.value == 10.0  # merged value overwrites
        assert peak.value == 10.0  # max survives
        assert total.value == 14.0  # sums


def test_labels_key_distinct_metrics():
    with metrics.instrumented():
        a = metrics.counter("t.labeled", labels={"backend": "numpy"})
        b = metrics.counter("t.labeled", labels={"backend": "fast"})
        assert a is not b
        a.inc(2)
        b.inc(3)
        assert metrics.REGISTRY.get("t.labeled", {"backend": "numpy"}).value == 2
        assert metrics.REGISTRY.get("t.labeled", {"backend": "fast"}).value == 3
        # Same labels in any insertion order resolve to the same metric.
        assert metrics.counter("t.labeled", labels={"backend": "numpy"}) is a


# -- histograms ----------------------------------------------------------------


def test_histogram_bucket_boundaries_inclusive():
    with metrics.instrumented():
        h = metrics.histogram("t.h.bounds", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)  # exactly on a bound -> that bucket (le semantics)
        h.observe(1.5)
        h.observe(2.0)
        h.observe(7.0)  # overflow -> +inf bucket
        assert h.counts == [1, 2, 0, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(11.5)
        assert h.mean == pytest.approx(11.5 / 4)


def test_histogram_quantiles():
    with metrics.instrumented():
        h = metrics.histogram("t.h.q", buckets=tuple(float(i) for i in range(1, 11)))
        for value in range(1, 11):  # one observation per bucket bound
            h.observe(float(value))
        # Bound-aligned observations make quantiles exact at bucket edges.
        assert h.quantile(0.5) == pytest.approx(5.0, abs=0.51)
        assert h.quantile(1.0) == pytest.approx(10.0)
        assert h.quantile(0.0) <= 1.0
        with pytest.raises(ValueError):
            h.quantile(1.5)


def test_empty_histogram_quantile_is_nan():
    h = metrics.histogram("t.h.empty")
    assert math.isnan(h.quantile(0.5))
    assert math.isnan(h.mean)


def test_histogram_merge_requires_matching_buckets():
    with metrics.instrumented():
        h = metrics.histogram("t.h.merge", buckets=(1.0, 2.0))
        h.observe(0.5)
        snap = metrics.drain()
        h.observe(1.5)
        metrics.merge_snapshot(snap)
        assert h.counts == [1, 1, 0]
        bad = json.loads(json.dumps(snap))  # deep copy
        for entry in bad["metrics"]:
            if entry["name"] == "t.h.merge":
                entry["state"]["bounds"] = [3.0, 4.0]
        with pytest.raises(ValueError, match="mismatched buckets"):
            metrics.merge_snapshot(bad)


def test_observe_with_count_matches_repeats():
    with metrics.instrumented():
        a = metrics.histogram("t.h.bulk", buckets=(1.0, 2.0))
        b = metrics.histogram("t.h.loop", buckets=(1.0, 2.0))
        a.observe(1.5, count=4)
        for _ in range(4):
            b.observe(1.5)
        assert a.counts == b.counts and a.sum == b.sum and a.count == b.count


# -- snapshot / drain / merge --------------------------------------------------


def test_drain_is_delta_merge_is_sum():
    with metrics.instrumented():
        c = metrics.counter("t.drain")
        c.inc(5)
        first = metrics.drain()
        assert c.value == 0.0  # drained
        c.inc(2)
        second = metrics.drain()
        metrics.merge_snapshot(first)
        metrics.merge_snapshot(second)
        assert c.value == 7.0  # deltas never double count


def test_merge_snapshot_creates_missing_metrics():
    with metrics.instrumented():
        metrics.counter("t.fresh").inc(3)
        snap = metrics.snapshot()
        metrics.REGISTRY.reset()
        other = metrics.Registry()
        other.merge_snapshot(snap)
        assert other.get("t.fresh").value == 3.0


# -- exposition ----------------------------------------------------------------

_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? [^ ]+$"
)


def _parse_prometheus(text: str) -> dict:
    """Minimal exposition-format parser: returns {sample_name: [lines]}."""
    samples: dict = {}
    typed: dict = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            typed[name] = kind
            continue
        if line.startswith("# HELP "):
            continue
        assert _PROM_SAMPLE.match(line), f"malformed sample line: {line!r}"
        name = line.split("{")[0].split(" ")[0]
        value = float(line.rsplit(" ", 1)[1])
        samples.setdefault(name, []).append((line, value))
    return {"samples": samples, "typed": typed}


def test_prometheus_exposition_parses():
    with metrics.instrumented():
        metrics.counter("t.prom.counter", "a counter").inc(2)
        metrics.gauge("t.prom.gauge", "a gauge").set(1.5)
        h = metrics.histogram("t.prom.hist", "a histogram", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        metrics.counter("t.prom.labeled", labels={"kind": "x"}).inc()
        parsed = _parse_prometheus(metrics.to_prometheus())
    assert parsed["typed"]["repro_t_prom_counter"] == "counter"
    assert parsed["typed"]["repro_t_prom_hist"] == "histogram"
    samples = parsed["samples"]
    assert samples["repro_t_prom_counter"][0][1] == 2.0
    assert samples["repro_t_prom_gauge"][0][1] == 1.5
    # Cumulative buckets ending at +Inf == count.
    buckets = samples["repro_t_prom_hist_bucket"]
    values = [value for _, value in buckets]
    assert values == sorted(values)
    assert '+Inf"' in buckets[-1][0]
    assert buckets[-1][1] == samples["repro_t_prom_hist_count"][0][1] == 2.0
    assert samples["repro_t_prom_hist_sum"][0][1] == pytest.approx(5.5)
    labeled = samples["repro_t_prom_labeled"][0][0]
    assert 'kind="x"' in labeled


def test_json_export_round_trips():
    with metrics.instrumented():
        metrics.counter("t.json.counter").inc(4)
        metrics.histogram("t.json.hist").observe(2.0)
        payload = json.loads(metrics.to_json())
    assert payload["t.json.counter"]["value"] == 4.0
    hist = payload["t.json.hist"]
    assert hist["count"] == 1 and hist["p50"] is not None
