"""FastBulkBackend: bit-identity, selection API, and zero-copy guarantees.

The cache-blocked (and, where numba exists, JIT) kernels must be
indistinguishable from the reference NumPy kernels in results — only in
speed. These tests pin the identity across register widths (including the
t=0 extremes), the backend-selection surface (env variable, programmatic,
scoped), and the no-copy contracts the hot path relies on
(``np.shares_memory`` on chunk views, in-place clobber of the bit smear).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.backends import (
    HAVE_NUMBA,
    FastBulkBackend,
    ReferenceBulkBackend,
    active_backend,
    available_backends,
    exaloglog_registers,
    pick_chunk,
    set_backend,
    use_backend,
)
from repro.backends.bitops import bit_length_u64
from repro.backends.bulk import (
    _chunks,
    reference_exaloglog_registers,
    reference_merge_registers,
    reference_registers_from_pairs,
    split_hashes,
)
from repro.backends.fast import _workspace, release_workspaces
from repro.core.exaloglog import ExaLogLog
from repro.core.params import ExaLogLogParams

#: Register-geometry extremes plus the named configurations: the widest
#: int64 register (t=0, d=57), the narrowest window (d=1), d=0 (no window
#: bits at all), the ML-optimal ELL(2, 20), and a large-m precision.
PARAM_SETS = [
    (0, 57, 6),
    (0, 1, 4),
    (0, 0, 4),
    (1, 9, 6),
    (2, 16, 8),
    (2, 20, 8),
    (2, 20, 14),
]


def params_of(t: int, d: int, p: int) -> ExaLogLogParams:
    return ExaLogLogParams(t, d, p)


def random_hashes(seed: int, count: int) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


@pytest.fixture
def fast() -> FastBulkBackend:
    return FastBulkBackend(jit=False)


# -- bit-identity --------------------------------------------------------------


@pytest.mark.parametrize("t,d,p", PARAM_SETS)
@pytest.mark.parametrize("seed", [1, 2])
def test_fold_matches_reference(t, d, p, seed, fast):
    params = params_of(t, d, p)
    hashes = random_hashes(seed, 5000)
    expected = reference_exaloglog_registers(hashes, params)
    assert np.array_equal(fast.fold(hashes, params), expected)


@pytest.mark.parametrize("t,d,p", PARAM_SETS)
def test_pairs_match_reference(t, d, p, fast):
    params = params_of(t, d, p)
    index, k = split_hashes(random_hashes(3, 4000), params)
    expected = reference_registers_from_pairs(index, k, params)
    assert np.array_equal(fast.registers_from_pairs(index, k, params), expected)


@pytest.mark.parametrize("t,d,p", PARAM_SETS)
def test_merge_matches_reference(t, d, p, fast):
    params = params_of(t, d, p)
    r1 = reference_exaloglog_registers(random_hashes(5, 2000), params)
    r2 = reference_exaloglog_registers(random_hashes(6, 50), params)
    expected = reference_merge_registers(r1, r2, params.d)
    assert np.array_equal(fast.merge_registers(r1, r2, params.d), expected)


@pytest.mark.parametrize("count", [0, 1, 2, 7])
def test_tiny_batches(count, fast):
    params = params_of(2, 20, 8)
    hashes = random_hashes(11, count)
    assert np.array_equal(
        fast.fold(hashes, params), reference_exaloglog_registers(hashes, params)
    )


def test_blocked_fold_crosses_chunk_boundary(fast):
    """A batch larger than one cache block folds and merges identically."""
    params = params_of(1, 9, 4)  # m = 16 -> pick_chunk floor of 2**16
    count = pick_chunk(params.m) + 1234
    hashes = random_hashes(13, count)
    assert np.array_equal(
        fast.fold(hashes, params), reference_exaloglog_registers(hashes, params)
    )


def test_duplicate_heavy_stream(fast):
    params = params_of(2, 20, 8)
    rng = np.random.Generator(np.random.PCG64(17))
    pool = rng.integers(0, 1 << 64, size=100, dtype=np.uint64)
    hashes = rng.choice(pool, size=5000)
    assert np.array_equal(
        fast.fold(hashes, params), reference_exaloglog_registers(hashes, params)
    )


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
@pytest.mark.parametrize("t,d,p", PARAM_SETS)
def test_jit_matches_reference(t, d, p):
    params = params_of(t, d, p)
    backend = FastBulkBackend(jit=True, name="numba")
    hashes = random_hashes(19, 3000)
    assert np.array_equal(
        backend.fold(hashes, params), reference_exaloglog_registers(hashes, params)
    )
    index, k = split_hashes(hashes, params)
    assert np.array_equal(
        backend.registers_from_pairs(index, k, params),
        reference_registers_from_pairs(index, k, params),
    )
    r2 = reference_exaloglog_registers(random_hashes(20, 40), params)
    assert np.array_equal(
        backend.merge_registers(
            backend.fold(hashes, params), r2, params.d
        ),
        reference_merge_registers(
            reference_exaloglog_registers(hashes, params), r2, params.d
        ),
    )


# -- selection API -------------------------------------------------------------


def test_default_backend_is_reference():
    assert isinstance(active_backend(), ReferenceBulkBackend)


def test_available_backends_names():
    names = available_backends()
    assert "numpy" in names and "fast" in names
    assert ("numba" in names) == HAVE_NUMBA


def test_set_backend_by_name_and_restore():
    previous = active_backend()
    try:
        chosen = set_backend("fast")
        assert isinstance(chosen, FastBulkBackend)
        assert active_backend() is chosen
    finally:
        set_backend(previous)
    assert active_backend() is previous


def test_use_backend_scopes_selection():
    previous = active_backend()
    with use_backend("fast") as chosen:
        assert active_backend() is chosen
        assert chosen.name == "fast"
    assert active_backend() is previous


def test_unknown_backend_name_raises():
    with pytest.raises(ValueError, match="unknown backend"):
        set_backend("telepathy")


@pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
def test_numba_backend_requires_numba():
    with pytest.raises(RuntimeError, match="numba"):
        set_backend("numba")
    with pytest.raises(RuntimeError, match="numba"):
        FastBulkBackend(jit=True)


def test_env_variable_fallback_warns(monkeypatch):
    """A bad REPRO_BACKEND value warns and falls back instead of breaking."""
    from repro.backends import select

    monkeypatch.setenv(select.ENV_VAR, "warp-drive")
    with pytest.warns(RuntimeWarning, match="REPRO_BACKEND"):
        backend = select._startup_backend()
    assert isinstance(backend, ReferenceBulkBackend)


def test_env_variable_selects_fast(monkeypatch):
    from repro.backends import select

    monkeypatch.setenv(select.ENV_VAR, "fast")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        backend = select._startup_backend()
    assert isinstance(backend, FastBulkBackend)


def test_dispatch_follows_active_backend():
    """The public entry points route through whichever backend is active."""
    params = params_of(2, 20, 8)
    hashes = random_hashes(23, 2000)
    baseline = exaloglog_registers(hashes, params)
    with use_backend("fast"):
        assert np.array_equal(exaloglog_registers(hashes, params), baseline)


def test_sketch_ingest_identical_under_fast_backend():
    hashes = random_hashes(29, 6000)
    reference_sketch = ExaLogLog(2, 20, 8).add_hashes(hashes)
    with use_backend("fast"):
        fast_sketch = ExaLogLog(2, 20, 8).add_hashes(hashes)
    assert fast_sketch.to_bytes() == reference_sketch.to_bytes()


# -- zero-copy contracts -------------------------------------------------------


def test_chunks_yield_views():
    """Chunking the fold input never copies the hash batch."""
    from repro.backends.bulk import BULK_CHUNK

    hashes = random_hashes(31, BULK_CHUNK + 100)
    for chunk in _chunks(hashes):
        assert np.shares_memory(chunk, hashes)


def test_bit_length_clobber_skips_the_copy():
    """``clobber=True`` smears in place: no defensive copy on the hot path."""
    values = random_hashes(37, 1000)
    owned = values.copy()
    expected = bit_length_u64(values)  # non-clobbering reference
    assert np.array_equal(owned, values)  # default path left input intact
    result = bit_length_u64(owned, clobber=True)
    assert np.array_equal(result, expected)
    assert not np.array_equal(owned, values)  # smear ran in the caller's buffer


def test_fold_workspace_reused_across_calls(fast):
    params = params_of(2, 16, 8)
    release_workspaces()
    fast.fold(random_hashes(41, 3000), params)
    first = _workspace(1)
    fast.fold(random_hashes(42, 3000), params)
    assert _workspace(1) is first
    release_workspaces()


def test_batch_workspace_reused_across_calls():
    """``register_coefficients`` reuses its thread-local scratch buffers."""
    from repro.estimation.batch import (
        _WORKSPACE_LOCAL,
        register_coefficients,
        release_batch_workspaces,
    )

    params = params_of(2, 16, 8)
    rng = np.random.Generator(np.random.PCG64(43))
    matrix = np.array(
        [
            ExaLogLog(2, 16, 8)
            .add_hashes(rng.integers(0, 1 << 64, size=1500, dtype=np.uint64))
            .registers
            for _ in range(3)
        ],
        dtype=np.int64,
    )
    release_batch_workspaces()
    first_result = register_coefficients(matrix, params)
    workspace = _WORKSPACE_LOCAL.workspace
    assert workspace is not None
    second_result = register_coefficients(matrix, params)
    assert _WORKSPACE_LOCAL.workspace is workspace  # buffers reused, not realloced
    assert np.shares_memory(workspace.i32, _WORKSPACE_LOCAL.workspace.i32)
    assert np.array_equal(first_result.alpha_scaled, second_result.alpha_scaled)
    assert np.array_equal(first_result.beta, second_result.beta)
    release_batch_workspaces()
    assert _WORKSPACE_LOCAL.workspace is None
