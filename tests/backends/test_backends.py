"""Backend internals: vectorised primitives vs their scalar references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    BULK_CHUNK,
    exaloglog_registers,
    merge_exaloglog_registers,
    supports_int64_registers,
    token_hashes,
    tokenize_hashes,
)
from repro.core.exaloglog import ExaLogLog
from repro.core.params import make_params
from repro.core.register import merge as merge_register
from repro.core.register import update as update_register
from repro.core.token import hash_to_token, token_to_hash
from repro.simulation.events import filter_state_changes, simulate_event_schedule
from repro.simulation.replay import bulk_final_registers, replay
from tests.conftest import SMALL_PARAMS


def random_hashes(seed: int, count: int) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


@pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
def test_merge_matches_scalar_merge(params):
    d = params.d
    rng = np.random.Generator(np.random.PCG64(13))
    # Build two reachable register arrays from real insertions.
    a = exaloglog_registers(random_hashes(1, 2000), params)
    b = exaloglog_registers(random_hashes(2, 2000), params)
    merged = merge_exaloglog_registers(a.tolist(), b, d)
    expected = [merge_register(x, y, d) for x, y in zip(a.tolist(), b.tolist())]
    assert merged.tolist() == expected
    del rng


def test_token_hashes_matches_scalar():
    for v in (6, 10, 26, 58):
        hashes = random_hashes(v, 2000)
        tokens = tokenize_hashes(hashes, v)
        scalar_tokens = [hash_to_token(int(h), v) for h in hashes.tolist()]
        assert tokens.tolist() == scalar_tokens
        reconstructed = token_hashes(tokens, v)
        assert reconstructed.tolist() == [
            token_to_hash(w, v) for w in scalar_tokens
        ]


def test_token_hashes_nlz_zero_wraparound():
    # nlz == 0 exercises the 2**64 ≡ 0 uint64 wrap in the vectorised path.
    v = 26
    hashes = np.array([(1 << 64) - 1, 1 << 63, (1 << 63) | 5], dtype=np.uint64)
    tokens = tokenize_hashes(hashes, v)
    assert token_hashes(tokens, v).tolist() == [
        token_to_hash(hash_to_token(int(h), v), v) for h in hashes.tolist()
    ]


def test_chunked_fold_equals_single_fold():
    params = make_params(2, 20, 6)
    count = BULK_CHUNK + 4321  # force more than one chunk
    hashes = random_hashes(77, count)
    chunked = exaloglog_registers(hashes, params)
    sketch = ExaLogLog.from_params(params)
    for h in hashes[: 10_000].tolist():
        sketch.add_hash(h)
    # Spot-check the head sequentially, then full equality via two layouts.
    partial = exaloglog_registers(hashes[:10_000], params)
    assert partial.tolist() == list(sketch.registers)
    halves = merge_exaloglog_registers(
        exaloglog_registers(hashes[: count // 2], params).tolist(),
        exaloglog_registers(hashes[count // 2 :], params),
        params.d,
    )
    assert chunked.tolist() == halves.tolist()


def test_supports_int64_registers_guard():
    assert supports_int64_registers(make_params(2, 20, 8))
    assert not supports_int64_registers(make_params(0, 60, 4))


def test_wide_register_fallback_is_exact():
    # d large enough that registers exceed 63 bits: scalar fallback path.
    params = make_params(0, 60, 4)
    hashes = random_hashes(3, 500)
    bulk = ExaLogLog.from_params(params).add_hashes(hashes)
    seq = ExaLogLog.from_params(params)
    for h in hashes.tolist():
        seq.add_hash(h)
    assert bulk.to_bytes() == seq.to_bytes()


@pytest.mark.parametrize("params", [make_params(2, 20, 6), make_params(1, 9, 4)], ids=str)
def test_bulk_final_registers_matches_replay(params):
    rng = np.random.Generator(np.random.PCG64(99))
    schedule = simulate_event_schedule(params, 1e8, rng, n_exact=1 << 14)
    filtered = filter_state_changes(schedule, params)
    result = replay(filtered, params, checkpoints=[1e4, 1e6, 1e8])
    assert bulk_final_registers(filtered, params) == result.registers
    # The unfiltered schedule folds to the same final state.
    assert bulk_final_registers(schedule, params) == result.registers


def test_bulk_final_registers_scalar_fallback():
    params = make_params(0, 60, 2)
    rng = np.random.Generator(np.random.PCG64(5))
    schedule = simulate_event_schedule(params, 1e5, rng, n_exact=1 << 10)
    registers = [0] * params.m
    for i, k in zip(schedule.registers.tolist(), schedule.values.tolist()):
        registers[i] = update_register(registers[i], k, params.d)
    assert bulk_final_registers(schedule, params) == registers
