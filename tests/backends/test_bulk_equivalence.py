"""The BulkBackend contract: bulk state == sequential state, bit for bit.

Every sketch with a vectorised ``add_hashes`` must produce a state whose
``to_bytes()`` serialization is identical to the one the sequential
``add_hash`` loop produces — across random seeds, duplicate-heavy
streams, chunked ingestion, scalar/bulk interleaving, and (for the
sparse sketch) the sparse→dense transition.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.cpc import CpcSketch
from repro.baselines.exact import ExactCounter
from repro.baselines.hyperloglog import HyperLogLog, MartingaleHyperLogLog
from repro.baselines.pcsa import PCSA
from repro.baselines.spikesketch import SpikeSketch
from repro.baselines.ultraloglog import ExtendedHyperLogLog, UltraLogLog
from repro.backends import supports_bulk
from repro.core.exaloglog import ExaLogLog
from repro.core.martingale import MartingaleExaLogLog
from repro.core.sparse import SparseExaLogLog
from tests.conftest import SMALL_PARAMS

FACTORIES = [
    ("ELL(2,20,8)", lambda: ExaLogLog(2, 20, 8)),
    ("ELL(0,0,4)", lambda: ExaLogLog(0, 0, 4)),
    ("ELL(1,9,6)", lambda: ExaLogLog(1, 9, 6)),
    ("ELL(3,5,4)", lambda: ExaLogLog(3, 5, 4)),
    ("SparseELL(2,20,8)", lambda: SparseExaLogLog(2, 20, 8)),
    ("SparseELL(2,20,6,v=10)", lambda: SparseExaLogLog(2, 20, 6, v=10)),
    ("ULL(p=8)", lambda: UltraLogLog(8)),
    ("EHLL(p=6)", lambda: ExtendedHyperLogLog(6)),
    ("MartingaleELL(2,20,6)", lambda: MartingaleExaLogLog(2, 20, 6)),
    ("HLL(p=8)", lambda: HyperLogLog(8)),
    ("MartingaleHLL(p=6)", lambda: MartingaleHyperLogLog(6)),
    ("PCSA(p=6)", lambda: PCSA(6)),
    ("SpikeSketch(64)", lambda: SpikeSketch(64)),
    ("CPC(p=8)", lambda: CpcSketch(8)),
    ("Exact", lambda: ExactCounter()),
]


def random_stream(seed: int, count: int, pool: int | None = None) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    if pool is None:
        return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)
    values = rng.integers(0, 1 << 64, size=pool, dtype=np.uint64)
    return rng.choice(values, size=count)


def sequential(factory, hashes: np.ndarray):
    sketch = factory()
    for hash_value in hashes.tolist():
        sketch.add_hash(hash_value)
    return sketch


@pytest.mark.parametrize("name,factory", FACTORIES, ids=[n for n, _ in FACTORIES])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_bulk_matches_sequential(name, factory, seed):
    hashes = random_stream(seed, 4000)
    bulk = factory().add_hashes(hashes)
    assert bulk.to_bytes() == sequential(factory, hashes).to_bytes()


@pytest.mark.parametrize("name,factory", FACTORIES, ids=[n for n, _ in FACTORIES])
def test_bulk_matches_sequential_duplicate_heavy(name, factory):
    hashes = random_stream(7, 4000, pool=150)
    bulk = factory().add_hashes(hashes)
    assert bulk.to_bytes() == sequential(factory, hashes).to_bytes()


@pytest.mark.parametrize("name,factory", FACTORIES, ids=[n for n, _ in FACTORIES])
def test_chunked_and_interleaved_ingestion(name, factory):
    hashes = random_stream(9, 3000)
    chunked = factory()
    for part in np.array_split(hashes, 7):
        chunked.add_hashes(part)
    mixed = factory()
    mixed.add_hashes(hashes[:1000])
    for hash_value in hashes[1000:2000].tolist():
        mixed.add_hash(hash_value)
    mixed.add_hashes(hashes[2000:])
    expected = sequential(factory, hashes).to_bytes()
    assert chunked.to_bytes() == expected
    assert mixed.to_bytes() == expected


@pytest.mark.parametrize("name,factory", FACTORIES, ids=[n for n, _ in FACTORIES])
def test_empty_batch_is_identity(name, factory):
    sketch = factory().add_hashes(random_stream(4, 100))
    before = sketch.to_bytes()
    sketch.add_hashes(np.empty(0, dtype=np.uint64))
    sketch.add_hashes([])
    assert sketch.to_bytes() == before
    assert supports_bulk(sketch)


@pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
def test_exaloglog_all_structural_regimes(params):
    hashes = random_stream(11, 3000)
    factory = lambda: ExaLogLog.from_params(params)
    assert factory().add_hashes(hashes).to_bytes() == sequential(factory, hashes).to_bytes()


def test_bulk_accepts_plain_iterables_and_int64_views():
    hashes = random_stream(5, 500)
    expected = sequential(lambda: ExaLogLog(2, 20, 6), hashes).to_bytes()
    as_list = ExaLogLog(2, 20, 6).add_hashes(hashes.tolist())
    as_signed = ExaLogLog(2, 20, 6).add_hashes(hashes.view(np.int64))
    assert as_list.to_bytes() == expected
    assert as_signed.to_bytes() == expected


class TestSparseDenseTransition:
    """The break-even crossing must be bulk-exact in every split."""

    def break_even(self) -> int:
        return SparseExaLogLog(2, 20, 8).break_even_tokens

    @pytest.mark.parametrize("offset", [-2, -1, 0, 1, 2, 50])
    def test_crossing_in_one_batch(self, offset):
        count = self.break_even() + offset
        hashes = random_stream(20 + offset, count)
        factory = lambda: SparseExaLogLog(2, 20, 8)
        bulk = factory().add_hashes(hashes)
        seq = sequential(factory, hashes)
        assert bulk.is_sparse == seq.is_sparse
        assert bulk.to_bytes() == seq.to_bytes()

    @pytest.mark.parametrize("split", [1, 100, 223, 224, 225, 400])
    def test_crossing_between_batches(self, split):
        hashes = random_stream(31, 600)
        factory = lambda: SparseExaLogLog(2, 20, 8)
        bulk = factory()
        bulk.add_hashes(hashes[:split])
        bulk.add_hashes(hashes[split:])
        seq = sequential(factory, hashes)
        assert bulk.is_sparse == seq.is_sparse
        assert bulk.to_bytes() == seq.to_bytes()

    def test_huge_duplicate_heavy_batches(self):
        factory = lambda: SparseExaLogLog(2, 20, 8)
        for pool, seed in ((200, 40), (260, 41)):
            hashes = random_stream(seed, 50_000, pool=pool)
            bulk = factory().add_hashes(hashes)
            seq = sequential(factory, hashes)
            assert bulk.is_sparse == seq.is_sparse
            assert bulk.to_bytes() == seq.to_bytes()

    def test_bulk_after_dense(self):
        factory = lambda: SparseExaLogLog(2, 20, 8)
        hashes = random_stream(50, 2000)
        bulk = factory().add_hashes(hashes[:1500])
        assert not bulk.is_sparse
        bulk.add_hashes(hashes[1500:])
        assert bulk.to_bytes() == sequential(factory, hashes).to_bytes()


class TestMartingaleBulk:
    """Order-dependent estimators must keep their exact estimate sequence."""

    def test_martingale_exaloglog_estimate_preserved(self):
        hashes = random_stream(60, 2000)
        seq = sequential(lambda: MartingaleExaLogLog(2, 20, 6), hashes)
        bulk = MartingaleExaLogLog(2, 20, 6).add_hashes(hashes)
        assert bulk.martingale_estimate == seq.martingale_estimate
        assert bulk.mu == seq.mu

    def test_martingale_hyperloglog_estimate_preserved(self):
        hashes = random_stream(61, 2000)
        seq = sequential(lambda: MartingaleHyperLogLog(6), hashes)
        bulk = MartingaleHyperLogLog(6).add_hashes(hashes)
        assert bulk.estimate() == seq.estimate()
        assert bulk.mu == seq.mu


def test_signed_arrays_on_scalar_fallback_paths():
    """Scalar-loop fallbacks must canonicalize like as_hash_array does."""
    signed = np.array([-1, -12345, 7], dtype=np.int64)
    unsigned = signed.view(np.uint64)
    for factory in (
        lambda: MartingaleExaLogLog(2, 20, 8),
        lambda: MartingaleHyperLogLog(6),
        lambda: ExaLogLog(0, 60, 4),  # register_bits > 63: scalar fallback
    ):
        assert (
            factory().add_hashes(signed).to_bytes()
            == factory().add_hashes(unsigned).to_bytes()
        )


def test_exact_counter_mixed_scalar_bulk_canonicalizes():
    counter = ExactCounter()
    counter.add_hash(-1)
    counter.add_hashes(np.array([-1], dtype=np.int64))
    counter.add_hashes(np.array([(1 << 64) - 1], dtype=np.uint64))
    assert counter.estimate() == 1.0
