"""Vectorised hashing must match the scalar ``hash64`` bit for bit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import hash64
from repro.hashing.batch import hash_f64_array, hash_items, hash_u64_array


def test_uint64_edge_values_and_seeds():
    values = np.array(
        [0, 1, 2, 255, (1 << 63) - 1, 1 << 63, (1 << 63) + 1, (1 << 64) - 1],
        dtype=np.uint64,
    )
    for seed in (0, 1, 42, 0xDEADBEEF):
        expected = [hash64(int(v), seed) for v in values.tolist()]
        assert hash_u64_array(values, seed).tolist() == expected


def test_random_uint64_batch():
    rng = np.random.Generator(np.random.PCG64(2))
    values = rng.integers(0, 1 << 64, size=5000, dtype=np.uint64)
    expected = [hash64(int(v)) for v in values.tolist()]
    assert hash_u64_array(values).tolist() == expected


def test_signed_int64_including_min():
    values = np.array(
        [0, -1, 1, -(1 << 63), -(1 << 63) + 1, (1 << 63) - 1, -123456789],
        dtype=np.int64,
    )
    expected = [hash64(int(v), 3) for v in values.tolist()]
    assert hash_u64_array(values, 3).tolist() == expected


def test_narrow_integer_dtypes():
    for dtype in (np.int8, np.int16, np.int32, np.uint8, np.uint16, np.uint32):
        info = np.iinfo(dtype)
        values = np.array([info.min, 0, 1, info.max], dtype=dtype)
        expected = [hash64(int(v), 9) for v in values.tolist()]
        assert hash_items(values, 9).tolist() == expected


def test_float64_array():
    values = np.array([0.0, -0.0, 1.5, -2.75, 1e300, float("inf"), float("-inf")])
    expected = [hash64(float(v), 5) for v in values.tolist()]
    assert hash_f64_array(values, 5).tolist() == expected


def test_object_fallback_matches_scalar():
    items = ["alice", b"bob", bytearray(b"carol"), 7, -7, 3.5, True, False, ""]
    expected = [hash64(item, 1) for item in items]
    assert hash_items(items, 1).tolist() == expected


def test_generator_input():
    expected = [hash64(f"user-{i}") for i in range(100)]
    assert hash_items((f"user-{i}" for i in range(100))).tolist() == expected


def test_rejects_non_integer_fast_path():
    with pytest.raises(TypeError):
        hash_u64_array(np.array([1.5, 2.5]))


def test_empty_inputs():
    assert len(hash_items([])) == 0
    assert len(hash_items(np.empty(0, dtype=np.uint64))) == 0
