"""Workload generators."""

import pytest

from repro.workloads.streams import flow_stream, shard_stream, uniform_stream, zipf_stream


class TestZipf:
    def test_length(self):
        assert len(list(zipf_stream(1000, 100, seed=1))) == 1000

    def test_skew(self):
        from collections import Counter

        counts = Counter(zipf_stream(20000, 1000, exponent=1.5, seed=2))
        most_common = counts.most_common(1)[0][1]
        assert most_common > 20000 / 1000 * 10  # head far above uniform share

    def test_deterministic(self):
        assert list(zipf_stream(100, 50, seed=3)) == list(zipf_stream(100, 50, seed=3))

    def test_validation(self):
        with pytest.raises(ValueError):
            list(zipf_stream(10, 0))


class TestUniform:
    def test_coverage(self):
        keys = set(uniform_stream(5000, 10, seed=4))
        assert len(keys) == 10


class TestShards:
    def test_partition_counts(self):
        partitions = shard_stream(1000, 8, overlap=0.0, seed=5)
        assert len(partitions) == 8
        total = sum(len(p) for p in partitions)
        assert total == 1000

    def test_overlap_duplicates_keys(self):
        partitions = shard_stream(1000, 8, overlap=0.5, seed=6)
        total = sum(len(p) for p in partitions)
        assert total > 1000
        distinct = len({key for partition in partitions for key in partition})
        assert distinct == 1000

    def test_overlap_validation(self):
        with pytest.raises(ValueError):
            shard_stream(10, 2, overlap=1.5)


class TestFlows:
    def test_scanner_dominates_distinct_flows(self):
        flows = {}
        for record in flow_stream(20000, scanner_fraction=0.05, seed=7):
            flows.setdefault(record.source, set()).add(record.flow_key())
        scanner_flows = len(flows["10.0.0.666"])
        normal_max = max(len(v) for s, v in flows.items() if s != "10.0.0.666")
        assert scanner_flows > 3 * normal_max

    def test_no_scanner(self):
        sources = {r.source for r in flow_stream(2000, scanner=None, seed=8)}
        assert "10.0.0.666" not in sources
