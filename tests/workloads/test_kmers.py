"""Genomics workload generator."""

import pytest

from repro.workloads.kmers import canonical_kmers, kmers, random_genome, sequencing_reads


class TestGenome:
    def test_alphabet(self):
        genome = random_genome(1000, seed=1)
        assert set(genome) <= set(b"ACGT")
        assert len(genome) == 1000

    def test_deterministic(self):
        assert random_genome(100, seed=2) == random_genome(100, seed=2)


class TestReads:
    def test_read_length_and_count(self):
        genome = random_genome(10000, seed=3)
        reads = list(sequencing_reads(genome, read_length=100, coverage=2.0, seed=4))
        assert all(len(read) == 100 for read in reads)
        assert len(reads) == 200

    def test_reads_are_substrings_without_errors(self):
        genome = random_genome(2000, seed=5)
        for read in sequencing_reads(genome, read_length=50, coverage=1.0, seed=6):
            assert read in genome

    def test_errors_change_reads(self):
        genome = random_genome(5000, seed=7)
        noisy = list(
            sequencing_reads(genome, read_length=100, coverage=1.0, error_rate=0.1, seed=8)
        )
        assert any(read not in genome for read in noisy)

    def test_read_length_validation(self):
        with pytest.raises(ValueError):
            list(sequencing_reads(b"ACGT", read_length=10))


class TestKmers:
    def test_count(self):
        assert len(list(kmers(b"ACGTACGT", 3))) == 6

    def test_canonical_folding(self):
        # ACG's reverse complement is CGT; canonical picks the smaller.
        assert list(canonical_kmers(b"ACG", 3)) == [b"ACG"]
        assert list(canonical_kmers(b"CGT", 3)) == [b"ACG"]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            list(kmers(b"ACGT", 0))
