"""Event-schedule simulation (Sec. 5.1)."""

import numpy as np
import pytest

from repro.core.batch import exaloglog_state
from repro.core.params import make_params
from repro.simulation.events import (
    filter_state_changes,
    logspace_checkpoints,
    simulate_event_schedule,
)
from repro.simulation.rng import numpy_generator, random_hashes


class TestExactPhase:
    def test_first_occurrences_match_stream(self):
        """Events with times <= n reconstruct the exact n-element state."""
        params = make_params(2, 16, 4)
        rng = numpy_generator(1, 0)
        schedule = simulate_event_schedule(params, 5000, rng, n_exact=5000)
        # Recompute the state from the same stream.
        rng2 = numpy_generator(1, 0)
        hashes = random_hashes(rng2, 5000)
        reference = exaloglog_state(hashes, params)
        # Fold events through the register update.
        from repro.core.register import update

        registers = [0] * params.m
        for i in range(len(schedule)):
            registers[int(schedule.registers[i])] = update(
                registers[int(schedule.registers[i])],
                int(schedule.values[i]),
                params.d,
            )
        assert registers == reference

    def test_times_sorted_and_positive(self):
        params = make_params(2, 20, 4)
        schedule = simulate_event_schedule(params, 10000, numpy_generator(2, 0))
        times = schedule.times
        assert (times >= 1.0).all()
        assert (np.diff(times) >= 0).all()

    def test_events_unique_per_pair(self):
        params = make_params(1, 9, 3)
        schedule = simulate_event_schedule(params, 5000, numpy_generator(3, 0))
        keys = schedule.registers * (params.max_update_value + 2) + schedule.values
        assert len(np.unique(keys)) == len(keys)


class TestTailPhase:
    def test_reaches_large_n(self):
        params = make_params(2, 20, 4)
        schedule = simulate_event_schedule(
            params, 1e18, numpy_generator(4, 0), n_exact=1 << 12
        )
        assert schedule.times[-1] > 1e15

    def test_tail_event_count_bounded_by_pairs(self):
        params = make_params(2, 16, 4)
        schedule = simulate_event_schedule(
            params, 1e19, numpy_generator(5, 0), n_exact=1 << 12
        )
        assert len(schedule) <= params.m * params.max_update_value

    def test_tail_waiting_times_geometric(self):
        """Mean first-occurrence time of the rarest values matches 1/p."""
        params = make_params(0, 0, 2)
        k = 20  # rho = 2**-20, per-register prob 2**-22
        times = []
        for run in range(600):
            schedule = simulate_event_schedule(
                params, 1e9, numpy_generator(6, run), n_exact=0
            )
            mask = (schedule.values == k) & (schedule.registers == 0)
            if mask.any():
                times.append(float(schedule.times[mask][0]))
        mean = np.mean(times)
        expected = 2.0 ** 22
        assert mean == pytest.approx(expected, rel=0.15)


class TestStateChangeFilter:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_filtered_replay_equals_unfiltered(self, seed):
        from repro.core.register import update

        params = make_params(2, 8, 4)
        schedule = simulate_event_schedule(
            params, 1e8, numpy_generator(7, seed), n_exact=1 << 12
        )
        filtered = filter_state_changes(schedule, params)
        assert len(filtered) <= len(schedule)

        def fold(sched):
            registers = [0] * params.m
            for i in range(len(sched)):
                r = int(sched.registers[i])
                registers[r] = update(registers[r], int(sched.values[i]), params.d)
            return registers

        assert fold(filtered) == fold(schedule)

    def test_filter_drops_below_window_events(self):
        params = make_params(2, 4, 4)  # small d drops many events
        schedule = simulate_event_schedule(
            params, 1e10, numpy_generator(8, 0), n_exact=1 << 12
        )
        filtered = filter_state_changes(schedule, params)
        assert len(filtered) < len(schedule)

    def test_empty_schedule(self):
        params = make_params(2, 20, 4)
        schedule = simulate_event_schedule(params, 0, numpy_generator(9, 0), n_exact=0)
        assert len(filter_state_changes(schedule, params)) == 0


class TestCheckpoints:
    def test_logspace_125(self):
        checkpoints = logspace_checkpoints(1, 1000, 3)
        assert checkpoints == [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]

    def test_bounds_respected(self):
        checkpoints = logspace_checkpoints(10, 99, 3)
        assert checkpoints[0] >= 10
        assert checkpoints[-1] <= 99

    def test_single_per_decade(self):
        assert logspace_checkpoints(1, 100, 1) == [1, 10, 100]
