"""Replay: incremental coefficients must equal Algorithm 3 from scratch."""

import math

import pytest

from repro.core.mlestimation import compute_coefficients, ml_estimate
from repro.core.params import make_params
from repro.simulation.events import filter_state_changes, simulate_event_schedule
from repro.simulation.replay import replay
from repro.simulation.rng import numpy_generator

CONFIGS = [
    make_params(2, 20, 4),
    make_params(2, 16, 6),
    make_params(1, 9, 5),
    make_params(0, 2, 6),
    make_params(2, 24, 4),
]


def run_replay(params, n_max, seed, checkpoints=None, n_exact=1 << 13):
    rng = numpy_generator(seed, 0)
    schedule = simulate_event_schedule(params, n_max, rng, n_exact=n_exact)
    filtered = filter_state_changes(schedule, params)
    return replay(filtered, params, checkpoints or [n_max])


class TestCoefficientConsistency:
    @pytest.mark.parametrize("params", CONFIGS, ids=str)
    @pytest.mark.parametrize("n_max", [100, 1e5, 1e12, 1e19])
    def test_incremental_equals_scratch(self, params, n_max):
        result = run_replay(params, n_max, seed=hash((str(params), n_max)) & 0xFFF)
        reference = compute_coefficients(result.registers, params)
        assert result.alpha_scaled == reference.alpha_scaled
        assert {u: c for u, c in enumerate(result.beta) if c} == reference.beta

    @pytest.mark.parametrize("params", CONFIGS[:2], ids=str)
    def test_ml_estimate_matches_direct(self, params):
        checkpoints = [1e3, 1e6, 1e9]
        result = run_replay(params, 1e9, seed=11, checkpoints=checkpoints)
        direct = ml_estimate(result.registers, params)
        assert result.ml_estimates[-1] == pytest.approx(direct, rel=1e-12)


class TestEstimateQuality:
    def test_ml_errors_reasonable_across_range(self):
        params = make_params(2, 20, 8)
        checkpoints = [10.0 ** e for e in range(0, 19, 3)]
        result = run_replay(params, checkpoints[-1], seed=21, checkpoints=checkpoints)
        for n, estimate in zip(checkpoints, result.ml_estimates):
            assert estimate == pytest.approx(n, rel=0.2)

    def test_martingale_errors_reasonable_across_range(self):
        params = make_params(2, 16, 8)
        checkpoints = [10.0 ** e for e in range(0, 19, 3)]
        result = run_replay(params, checkpoints[-1], seed=22, checkpoints=checkpoints)
        for n, estimate in zip(checkpoints, result.martingale_estimates):
            assert estimate == pytest.approx(n, rel=0.2)

    def test_martingale_exact_at_n1(self):
        params = make_params(2, 20, 6)
        result = run_replay(params, 1.0, seed=23, checkpoints=[1.0])
        assert result.martingale_estimates[0] == pytest.approx(1.0)

    def test_newton_iteration_claim(self):
        """Appendix A: at most 10 iterations, 5-7 on average."""
        params = make_params(2, 20, 8)
        checkpoints = [10.0 ** e for e in range(0, 19)]
        result = run_replay(params, 1e18, seed=24, checkpoints=checkpoints)
        assert result.newton_iterations_max <= 10

    def test_estimates_increase_with_n(self):
        params = make_params(2, 20, 6)
        checkpoints = [10.0, 1e3, 1e6, 1e9, 1e12]
        result = run_replay(params, 1e12, seed=25, checkpoints=checkpoints)
        assert all(
            b >= a * 0.5 for a, b in zip(result.ml_estimates, result.ml_estimates[1:])
        )
        mart = result.martingale_estimates
        assert all(b >= a for a, b in zip(mart, mart[1:]))


class TestMuConsistency:
    def test_final_mu_matches_state_change_probability(self):
        from repro.core.register import state_change_probability

        params = make_params(2, 16, 4)
        result = run_replay(params, 1e6, seed=26)
        mu_incremental = result.alpha_scaled / ((params.m << (64 - params.p)) * 1.0)
        mu_direct = sum(
            state_change_probability(r, params) for r in result.registers
        ) / 1.0
        assert mu_incremental * params.m == pytest.approx(mu_direct * params.m, rel=1e-9)
