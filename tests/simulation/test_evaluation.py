"""Monte-Carlo error evaluation (the Figure 8 harness) — statistical checks."""

import pytest

from repro.core.params import make_params
from repro.simulation.evaluation import evaluate_estimation_error


@pytest.fixture(scope="module")
def evaluation():
    """One moderately sized evaluation reused by all checks (seconds)."""
    params = make_params(2, 20, 6)
    checkpoints = [1.0, 100.0, 1e4, 1e6, 1e9, 1e12]
    return evaluate_estimation_error(
        params, checkpoints, runs=48, seed=42, n_exact=1 << 13
    )


class TestShapes:
    def test_series_lengths(self, evaluation):
        assert len(evaluation.ml.relative_rmse) == 6
        assert len(evaluation.martingale.relative_rmse) == 6
        assert evaluation.runs == 48

    def test_rows_export(self, evaluation):
        rows = evaluation.ml.rows()
        assert rows[0]["n"] == 1.0
        assert set(rows[0]) == {"n", "bias", "rmse", "theory"}


class TestFigure8Claims:
    def test_rmse_matches_theory_at_intermediate_n(self, evaluation):
        """Perfect agreement with theory for intermediate n (Sec. 5.1) —
        within Monte-Carlo tolerance (~20 % of RMSE at 48 runs)."""
        theory = evaluation.ml.theoretical_rmse
        for index, n in enumerate(evaluation.ml.checkpoints):
            if n >= 1e4:
                assert evaluation.ml.relative_rmse[index] == pytest.approx(
                    theory, rel=0.45
                )

    def test_error_small_for_small_n(self, evaluation):
        """For small distinct counts the error is *much* smaller."""
        assert evaluation.ml.relative_rmse[0] < evaluation.ml.theoretical_rmse / 3
        assert evaluation.martingale.relative_rmse[0] < 0.01

    def test_martingale_beats_ml_theory(self, evaluation):
        assert (
            evaluation.martingale.theoretical_rmse < evaluation.ml.theoretical_rmse
        )

    def test_bias_negligible_vs_rmse(self, evaluation):
        for index, n in enumerate(evaluation.ml.checkpoints):
            if n >= 1e4:
                assert abs(evaluation.ml.relative_bias[index]) < max(
                    0.5 * evaluation.ml.relative_rmse[index], 0.01
                )

    def test_newton_bound(self, evaluation):
        assert evaluation.newton_iterations_max <= 10
