"""Pool observability: worker metric merge (fork + spawn), respawn visibility."""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.backends.bulk import reference_exaloglog_registers
from repro.core.params import ExaLogLogParams
from repro.obs import metrics
from repro.parallel.pool import PersistentIngestPool

PARAMS = ExaLogLogParams(2, 16, 8)


@pytest.fixture(autouse=True)
def clean_metrics():
    was_enabled = metrics.enabled()
    metrics.reset()
    yield
    if was_enabled:
        metrics.enable()
    else:
        metrics.disable()
    metrics.reset()


def random_hashes(seed: int, count: int) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


def _counter_value(name: str) -> float:
    metric = metrics.REGISTRY.get(name)
    return 0.0 if metric is None else metric.value


@pytest.mark.parametrize(
    "start_method",
    [
        pytest.param(
            "fork",
            marks=pytest.mark.skipif(
                "fork" not in multiprocessing.get_all_start_methods(),
                reason="fork unavailable",
            ),
        ),
        "spawn",
    ],
)
def test_worker_metrics_merge_into_parent(start_method):
    """Each worker's fold metrics ship back and sum in the parent registry.

    Spawn workers do not inherit the parent's programmatic ``enable()``,
    so this also pins the per-job obs flag: the dispatch tuple carries it
    and the worker enables collection before running the task.
    """
    pool = PersistentIngestPool(
        workers=2, start_method=start_method, idle_timeout=0.0
    )
    try:
        metrics.enable()
        before = _counter_value("backend.hashes_folded")
        hashes = random_hashes(41, 12000)
        ranges = [(0, 6000), (6000, 12000)]
        folded = pool.fold_registers(hashes, ranges, PARAMS, workers=2)
        assert np.array_equal(
            folded, reference_exaloglog_registers(hashes, PARAMS)
        )
        # Worker-side folds covered every hash exactly once; the drained
        # deltas merged additively into this (parent) registry.
        assert _counter_value("backend.hashes_folded") - before == 12000
        assert _counter_value("pool.jobs") >= 2
    finally:
        pool.shutdown()


def test_disabled_metrics_ship_nothing():
    pool = PersistentIngestPool(workers=2, start_method="spawn", idle_timeout=0.0)
    try:
        before = _counter_value("backend.hashes_folded")
        hashes = random_hashes(43, 4000)
        pool.fold_registers(hashes, [(0, 2000), (2000, 4000)], PARAMS, workers=2)
        assert _counter_value("backend.hashes_folded") == before
    finally:
        pool.shutdown()


def test_repeated_jobs_never_double_count():
    pool = PersistentIngestPool(workers=2, idle_timeout=0.0)
    try:
        metrics.enable()
        total = 0
        for seed in range(3):
            hashes = random_hashes(50 + seed, 5000)
            pool.fold_registers(
                hashes, [(0, 2500), (2500, 5000)], PARAMS, workers=2
            )
            total += len(hashes)
        # drain() (not snapshot()) per job: three calls sum exactly.
        assert _counter_value("backend.hashes_folded") == total
    finally:
        pool.shutdown()


def test_killed_worker_increments_respawn_counter(caplog):
    pool = PersistentIngestPool(workers=2, idle_timeout=0.0)
    try:
        metrics.enable()
        pool.warm(2)
        assert pool.respawn_count == 0
        victim = pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if victim not in pool.worker_pids():
                break
            time.sleep(0.02)
        before = _counter_value("pool.worker_respawns")
        with caplog.at_level(logging.WARNING, logger="repro.parallel.pool"):
            hashes = random_hashes(61, 6000)
            folded = pool.fold_registers(
                hashes, [(0, 3000), (3000, 6000)], PARAMS, workers=2
            )
        assert np.array_equal(
            folded, reference_exaloglog_registers(hashes, PARAMS)
        )
        assert pool.respawn_count == 1
        assert _counter_value("pool.worker_respawns") == before + 1
        assert any(
            "died unexpectedly" in record.message for record in caplog.records
        )
    finally:
        pool.shutdown()
