"""PersistentIngestPool lifecycle: reuse, reaping, crashes, fork safety.

The pool's pitch is *warm* calls — workers and the shared-memory segment
persist between ``workers=`` calls — so these tests pin the lifecycle
properties that make that safe: identical results to the sequential fold,
stable worker identity across calls, idle-timeout retirement, crash
detection with retry-once (and refusal to retry non-idempotent spills),
and a clean reset when a pool object is inherited through ``os.fork``.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.backends.bulk import reference_exaloglog_registers
from repro.core.params import ExaLogLogParams
from repro.parallel.pool import (
    PersistentIngestPool,
    ShmSlice,
    attach_slice,
    pool_task,
)

PARAMS = ExaLogLogParams(2, 16, 8)


def random_hashes(seed: int, count: int) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


def halves(count: int) -> list[tuple[int, int]]:
    return [(0, count // 2), (count // 2, count)]


@pytest.fixture
def pool():
    instance = PersistentIngestPool(workers=2, idle_timeout=0.0)
    yield instance
    instance.shutdown()


# -- pool-task plumbing for the crash tests (registered at import time so
# -- fork-started workers inherit them) ----------------------------------------


@pool_task("test_echo")
def _task_echo(payload):
    return payload["value"]


@pool_task("test_crash_once")
def _task_crash_once(payload):
    flag = payload["flag"]
    if os.path.exists(flag):
        os.unlink(flag)
        os._exit(23)  # die hard: no exception, no result
    return payload["value"]


@pool_task("test_crash_always")
def _task_crash_always(payload):
    os._exit(24)


# -- correctness and reuse -----------------------------------------------------


def test_fold_matches_sequential(pool):
    hashes = random_hashes(1, 20000)
    folded = pool.fold_registers(hashes, halves(len(hashes)), PARAMS, workers=2)
    assert np.array_equal(folded, reference_exaloglog_registers(hashes, PARAMS))


def test_workers_survive_across_calls(pool):
    pool.warm(2)
    pids = sorted(pool.worker_pids())
    spawned = pool.spawn_count
    assert len(pids) == 2 and spawned == 2
    for seed in range(3):
        hashes = random_hashes(seed, 5000)
        folded = pool.fold_registers(hashes, halves(len(hashes)), PARAMS, workers=2)
        assert np.array_equal(
            folded, reference_exaloglog_registers(hashes, PARAMS)
        )
    assert sorted(pool.worker_pids()) == pids  # same processes served all calls
    assert pool.spawn_count == spawned  # ... without a single respawn


def test_pool_grows_to_largest_request(pool):
    pool.warm(1)
    assert len(pool.worker_pids()) == 1
    pool.warm(3)
    assert len(pool.worker_pids()) == 3
    pool.warm(2)  # warm never shrinks; reaping does
    assert len(pool.worker_pids()) == 3


def test_map_runs_registered_tasks(pool):
    values = list(range(7))
    results = pool.map("test_echo", [{"value": v} for v in values], workers=2)
    assert results == values


def test_workers_validation():
    with pytest.raises(ValueError, match="workers"):
        PersistentIngestPool(workers=0)


# -- idle reaping --------------------------------------------------------------


def test_idle_reap_retires_workers():
    pool = PersistentIngestPool(workers=2, idle_timeout=0.2)
    try:
        pool.warm(2)
        spawned = pool.spawn_count
        deadline = time.monotonic() + 5.0
        while pool.worker_pids() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.worker_pids() == []  # the reaper retired the idle workers
        # The pool stays usable: the next call respawns lazily.
        hashes = random_hashes(5, 4000)
        folded = pool.fold_registers(hashes, halves(len(hashes)), PARAMS, workers=2)
        assert np.array_equal(
            folded, reference_exaloglog_registers(hashes, PARAMS)
        )
        assert pool.spawn_count > spawned
    finally:
        pool.shutdown()


# -- crash handling ------------------------------------------------------------


def test_killed_idle_worker_respawns(pool):
    pool.warm(2)
    victim = pool.worker_pids()[0]
    spawned = pool.spawn_count
    os.kill(victim, signal.SIGKILL)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if victim not in pool.worker_pids():
            break
        time.sleep(0.02)
    hashes = random_hashes(7, 8000)
    folded = pool.fold_registers(hashes, halves(len(hashes)), PARAMS, workers=2)
    assert np.array_equal(folded, reference_exaloglog_registers(hashes, PARAMS))
    assert pool.spawn_count == spawned + 1  # exactly the victim was replaced
    assert len(pool.worker_pids()) == 2


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="crash tasks are registered in this module; workers must fork",
)
def test_mid_job_crash_retries_once(tmp_path):
    pool = PersistentIngestPool(workers=1, start_method="fork", idle_timeout=0.0)
    try:
        flag = tmp_path / "crash-once"
        flag.touch()
        spawned_before = pool.warm(1).spawn_count
        results = pool.map(
            "test_crash_once", [{"flag": str(flag), "value": 42}], workers=1
        )
        assert results == [42]  # the retry (flag consumed) succeeded
        assert pool.spawn_count == spawned_before + 1
        assert not flag.exists()
    finally:
        pool.shutdown()


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="crash tasks are registered in this module; workers must fork",
)
def test_double_crash_gives_up(tmp_path):
    pool = PersistentIngestPool(workers=1, start_method="fork", idle_timeout=0.0)
    try:
        with pytest.raises(RuntimeError, match="crashed its worker twice"):
            pool.map("test_crash_always", [{}], workers=1)
    finally:
        pool.shutdown()


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="crash tasks are registered in this module; workers must fork",
)
def test_non_retryable_crash_raises(tmp_path):
    pool = PersistentIngestPool(workers=1, start_method="fork", idle_timeout=0.0)
    try:
        flag = tmp_path / "crash-once"
        flag.touch()
        with pytest.raises(RuntimeError, match="non-retryable"):
            pool.map(
                "test_crash_once",
                [{"flag": str(flag), "value": 42}],
                workers=1,
                retryable=False,
            )
    finally:
        pool.shutdown()


def test_worker_exception_surfaces(pool):
    with pytest.raises(RuntimeError, match="pool task"):
        pool.map("fold", [{"hashes": None, "params": None, "backend": "numpy"}])


# -- fork safety ---------------------------------------------------------------


@pytest.mark.skipif(not hasattr(os, "fork"), reason="requires os.fork")
def test_fork_after_pool_resets_child_state():
    pool = PersistentIngestPool(workers=2, start_method="fork", idle_timeout=0.0)
    try:
        pool.warm(2)
        parent_pids = sorted(pool.worker_pids())
        child = os.fork()
        if child == 0:
            # Forked copy: inherited workers belong to the parent and must
            # be invisible; the child can still spawn and use its own.
            status = 0
            try:
                if pool.worker_pids():
                    status = 1
                if pool.spawn_count != 0:
                    status = 2
                hashes = random_hashes(11, 3000)
                folded = pool.fold_registers(
                    hashes, halves(len(hashes)), PARAMS, workers=2
                )
                if not np.array_equal(
                    folded, reference_exaloglog_registers(hashes, PARAMS)
                ):
                    status = 3
                pool.shutdown()
            except BaseException:
                status = 4
            os._exit(status)
        _, exit_status = os.waitpid(child, 0)
        assert os.waitstatus_to_exitcode(exit_status) == 0
        # The parent's workers were untouched by the child's lifetime.
        assert sorted(pool.worker_pids()) == parent_pids
        hashes = random_hashes(13, 3000)
        folded = pool.fold_registers(hashes, halves(len(hashes)), PARAMS, workers=2)
        assert np.array_equal(
            folded, reference_exaloglog_registers(hashes, PARAMS)
        )
    finally:
        pool.shutdown()


# -- spawn transport -----------------------------------------------------------


def test_spawn_pool_fold_identical():
    pool = PersistentIngestPool(workers=2, start_method="spawn", idle_timeout=0.0)
    try:
        hashes = random_hashes(17, 10000)
        folded = pool.fold_registers(hashes, halves(len(hashes)), PARAMS, workers=2)
        assert np.array_equal(
            folded, reference_exaloglog_registers(hashes, PARAMS)
        )
        pids = sorted(pool.worker_pids())
        folded = pool.fold_registers(hashes, halves(len(hashes)), PARAMS, workers=2)
        assert np.array_equal(
            folded, reference_exaloglog_registers(hashes, PARAMS)
        )
        assert sorted(pool.worker_pids()) == pids  # spawn workers persist too
    finally:
        pool.shutdown()


# -- shared-memory descriptors -------------------------------------------------


def test_shm_slice_sub_scales_offsets():
    item = ShmSlice("seg", 128, 100, "<u8")
    sub = item.sub(10, 30)
    assert sub == ShmSlice("seg", 128 + 10 * 8, 20, "<u8")


def test_attach_slice_passthrough():
    array = np.arange(5)
    assert np.array_equal(attach_slice(array), array)
    assert np.array_equal(attach_slice([1, 2, 3]), np.array([1, 2, 3]))


# -- higher-level entry points through the pool --------------------------------


def test_group_fold_matches_sequential(pool):
    from repro.aggregate import DistinctCountAggregator

    config = (2, 16, 8, False, 0)
    keyed = [
        (f"g{i}".encode(), random_hashes(20 + i, 2000)) for i in range(4)
    ]
    shards = [[0, 2], [1, 3]]
    blobs = pool.group_fold(config, keyed, shards, workers=2)
    for shard, blob in zip(shards, blobs):
        expected = DistinctCountAggregator._from_keyed_hashes(
            config, [keyed[i] for i in shard]
        )
        assert blob == expected.to_bytes()


def test_spill_via_pool_writes_all_segments(pool, tmp_path):
    keyed = [
        (f"g{i}".encode(), random_hashes(30 + i, 500)) for i in range(4)
    ]
    shards = [[0, 1], [2, 3]]
    written = pool.spill(str(tmp_path), 4, keyed, shards, "xtest", workers=2)
    assert written == 4  # one record per segment
    assert any(tmp_path.iterdir())


def test_replay_many_matches_sequential(pool):
    from repro.simulation.events import simulate_event_schedule
    from repro.simulation.replay import replay, replay_many

    params = ExaLogLogParams(1, 9, 4)
    rng = np.random.Generator(np.random.PCG64(99))
    schedules = [
        simulate_event_schedule(params, 3000.0, rng, n_exact=200)
        for _ in range(3)
    ]
    checkpoints = [10.0, 100.0, 1000.0]
    sequential = [replay(s, params, checkpoints) for s in schedules]
    pooled = replay_many(schedules, params, checkpoints, workers=2, pool=pool)
    assert len(pooled) == len(sequential)
    for mine, theirs in zip(sequential, pooled):
        assert mine.registers == theirs.registers
        assert mine.ml_estimates == theirs.ml_estimates
        assert mine.martingale_estimates == theirs.martingale_estimates
        assert mine.alpha_scaled == theirs.alpha_scaled
        assert mine.beta == theirs.beta
