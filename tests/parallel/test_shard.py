"""Property tests for ``shard_of`` — the routing function a cluster trusts.

Horizontal sharding (``repro.cluster``) stakes bit-identity on three
properties of ``shard_of(key, N) = murmur3_64(key) % N``:

* **stability** — the same key routes identically across processes,
  sessions, and machines (no PYTHONHASHSEED, no dict-order dependence),
  or a cluster reopened tomorrow would look for groups on the wrong
  shard;
* **uniformity** — partitions stay balanced (a chi-square bound over
  1e5 keys), or one hot shard erases the point of sharding;
* **exactly-one-owner** — every key has one owner before *and after* a
  fan-out change, which is what makes scatter-gather concatenation and
  rebalance-by-difference exact.
"""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.parallel.shard import shard_of

#: Pinned routing values: these are forever. A change here is a cluster
#: corruption bug (every existing cluster directory routes by them), not
#: a test to update.
PINNED = {
    (b"", 2): 0,
    (b"", 1024): 0,
    (b"alpha", 4): 1,
    (b"alpha", 16): 5,
    (b"alpha", 1024): 661,
    (b"country:DE", 16): 13,
    (b"country:DE", 1024): 349,
    (b"g0", 16): 12,
    (b"g0", 1024): 28,
    (b"\x00\xff", 1024): 64,
}


def test_pinned_values_are_stable():
    for (key, shards), expected in PINNED.items():
        assert shard_of(key, shards) == expected, (key, shards)


def test_cross_process_stability():
    """A fresh interpreter (fresh hash randomisation) routes identically."""
    keys = [b"alpha", b"country:DE", b"g0", b"", b"\x00\xff"]
    script = (
        "import sys\n"
        "from repro.parallel.shard import shard_of\n"
        "for line in sys.stdin.read().splitlines():\n"
        "    key, shards = line.rsplit(':', 1)\n"
        "    print(shard_of(key.encode('latin-1'), int(shards)))\n"
    )
    payload = "\n".join(
        f"{key.decode('latin-1')}:{shards}" for key in keys for shards in (4, 16)
    )
    source_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
    environment = {
        **os.environ,
        "PYTHONPATH": source_root
        + os.pathsep
        + os.environ.get("PYTHONPATH", ""),
        "PYTHONHASHSEED": "random",
    }
    result = subprocess.run(
        [sys.executable, "-c", script],
        input=payload,
        capture_output=True,
        text=True,
        check=True,
        env=environment,
    )
    remote = [int(line) for line in result.stdout.split()]
    local = [shard_of(key, shards) for key in keys for shards in (4, 16)]
    assert remote == local


def test_determinism_is_input_only():
    """Repeated calls, interleaved orders, copied buffers: same shard."""
    keys = [f"key-{i}".encode() for i in range(200)]
    first = [shard_of(key, 16) for key in keys]
    second = [shard_of(bytes(bytearray(key)), 16) for key in reversed(keys)]
    assert first == list(reversed(second))


@pytest.mark.parametrize("shards", [4, 16, 64])
def test_uniformity_chi_square(shards):
    """1e5 sequential keys spread uniformly: chi-square under the 99.9th
    percentile of the chi-square distribution with ``shards - 1`` degrees
    of freedom (so a sound hash fails with probability 1e-3, and a biased
    one — e.g. routing by key length or a weak low-bit hash — fails hard).
    """
    # chi2.ppf(0.999, df) for df = 3, 15, 63 (precomputed; scipy-free).
    critical = {4: 16.266, 16: 37.697, 64: 103.442}[shards]
    counts = np.zeros(shards, dtype=np.int64)
    total = 100_000
    for index in range(total):
        counts[shard_of(f"key-{index}".encode(), shards)] += 1
    expected = total / shards
    statistic = float(((counts - expected) ** 2 / expected).sum())
    assert statistic < critical, f"chi2={statistic:.2f} >= {critical} at N={shards}"


@pytest.mark.parametrize("shards", [1, 2, 5, 16])
def test_every_key_has_exactly_one_owner(shards):
    keys = [f"group-{i}".encode() for i in range(1000)]
    for key in keys:
        owners = [s for s in range(shards) if shard_of(key, shards) == s]
        assert len(owners) == 1
        assert 0 <= owners[0] < shards


def test_ownership_is_total_after_resharding():
    """Before and after a fan-out change, the shard sets partition the
    key space: every key owned exactly once under each fan-out, and the
    moved set is exactly the keys whose owner differs (what rebalance
    ships)."""
    keys = [f"group-{i}".encode() for i in range(5000)]
    before = {key: shard_of(key, 4) for key in keys}
    after = {key: shard_of(key, 6) for key in keys}
    assert set(before) == set(after) == set(keys)
    assert all(0 <= owner < 4 for owner in before.values())
    assert all(0 <= owner < 6 for owner in after.values())
    moved = [key for key in keys if before[key] != after[key]]
    stayed = [key for key in keys if before[key] == after[key]]
    assert len(moved) + len(stayed) == len(keys)
    # A fan-out change moves *some* keys (else rebalance is vacuous) but
    # far from all (consistent modulo routing keeps 1/lcm residues home).
    assert moved and stayed
