"""Sharded GROUP BY: partial aggregators must merge to the sequential state."""

import numpy as np
import pytest

from repro.aggregate import DistinctCountAggregator
from repro.parallel import parallel_group_fold, partition_groups, shard_of


def _batch(n, groups, seed=0):
    rng = np.random.Generator(np.random.PCG64(seed))
    return (
        rng.integers(0, groups, size=n).astype(np.int64),
        rng.integers(0, 1 << 40, size=n, dtype=np.int64),
    )


class TestPartitioning:
    def test_shard_of_deterministic_and_in_range(self):
        for key in (b"DE", b"AT", b"", b"\x00\x01", b"long-key" * 10):
            for shards in (1, 2, 4, 7):
                shard = shard_of(key, shards)
                assert 0 <= shard < shards
                assert shard == shard_of(key, shards)

    def test_partition_covers_every_key(self):
        keyed = [(bytes([i]), np.array([i], dtype=np.uint64)) for i in range(50)]
        shards = partition_groups(keyed, 4)
        assert sum(len(shard) for shard in shards) == 50
        seen = {key for shard in shards for key, _ in shard}
        assert seen == {key for key, _ in keyed}

    def test_empty_fold(self):
        assert parallel_group_fold((2, 20, 8, True, 0), [], 4) == []

    def test_single_shard_skips_pool(self):
        keyed = [(b"only", np.array([1, 2, 3], dtype=np.uint64))]
        partials = parallel_group_fold((2, 20, 8, True, 0), keyed, 4)
        assert len(partials) == 1
        assert b"only" in partials[0]._groups


class TestEquivalence:
    """workers= must leave the aggregator bit-identical to the scatter path."""

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("sparse", [True, False])
    def test_matches_sequential_add_batch(self, workers, sparse):
        groups, items = _batch(20_000, 37, seed=5)
        sequential = DistinctCountAggregator(p=6, sparse=sparse)
        sequential.add_batch(groups, items)
        sharded = DistinctCountAggregator(p=6, sparse=sparse)
        sharded.add_batch(groups, items, workers=workers)
        assert sharded == sequential
        assert sharded.to_bytes() == sequential.to_bytes()

    def test_matches_per_item_loop(self):
        groups, items = _batch(3_000, 11, seed=6)
        reference = DistinctCountAggregator(p=6)
        for group, item in zip(groups.tolist(), items.tolist()):
            reference.add(group, item)
        sharded = DistinctCountAggregator(p=6)
        sharded.add_batch(groups, items, workers=3)
        assert sharded == reference
        assert sharded.estimates() == reference.estimates()

    def test_densifying_groups(self):
        # One heavy group crosses the sparse break-even inside the worker.
        groups = np.concatenate(
            [np.zeros(30_000, dtype=np.int64), np.arange(1, 40, dtype=np.int64)]
        )
        items = np.arange(len(groups), dtype=np.int64)
        sequential = DistinctCountAggregator(p=8).add_batch(groups, items)
        sharded = DistinctCountAggregator(p=8).add_batch(groups, items, workers=2)
        assert sharded == sequential
        assert not sequential._groups[sequential._group_key(0)].is_sparse

    def test_merge_into_pre_populated_aggregator(self):
        groups_a, items_a = _batch(5_000, 13, seed=7)
        groups_b, items_b = _batch(5_000, 13, seed=8)
        sequential = DistinctCountAggregator(p=6)
        sequential.add_batch(groups_a, items_a)
        sequential.add_batch(groups_b, items_b)
        sharded = DistinctCountAggregator(p=6)
        sharded.add_batch(groups_a, items_a)  # existing single-process state
        sharded.add_batch(groups_b, items_b, workers=4)
        assert sharded == sequential
        assert sharded.to_bytes() == sequential.to_bytes()

    def test_single_group_batch(self):
        items = np.arange(2_000, dtype=np.int64)
        sequential = DistinctCountAggregator(p=6).add_batch(["g"] * 2_000, items)
        sharded = DistinctCountAggregator(p=6).add_batch(
            ["g"] * 2_000, items, workers=4
        )
        assert sharded == sequential

    def test_workers_one_is_sequential(self):
        groups, items = _batch(1_000, 5, seed=9)
        a = DistinctCountAggregator(p=6).add_batch(groups, items)
        b = DistinctCountAggregator(p=6).add_batch(groups, items, workers=1)
        assert a == b
