"""Process-pool fan-out: parallel ingest must be bit-identical to sequential."""

import multiprocessing

import numpy as np
import pytest

from repro.backends import BULK_CHUNK, exaloglog_registers
from repro.core.exaloglog import ExaLogLog
from repro.core.params import make_params
from repro.parallel import (
    ParallelBulkIngestor,
    parallel_exaloglog_registers,
    preferred_start_method,
)
from repro.windowed import SlidingWindowDistinctCounter

PARAMS = make_params(2, 20, 8)


def _hashes(n, seed=7):
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=n, dtype=np.uint64)


class TestSliceBounds:
    def test_empty(self):
        assert ParallelBulkIngestor(PARAMS, 4).slice_bounds(0) == []

    def test_single_chunk_single_slice(self):
        ingestor = ParallelBulkIngestor(PARAMS, 4, chunk=1000)
        assert ingestor.slice_bounds(999) == [(0, 999)]

    @pytest.mark.parametrize("n", [1, 999, 1000, 1001, 4096, 12345])
    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_alignment_and_coverage(self, n, workers):
        ingestor = ParallelBulkIngestor(PARAMS, workers, chunk=1000)
        bounds = ingestor.slice_bounds(n)
        # Contiguous cover of [0, n) with at most `workers` slices.
        assert len(bounds) <= workers
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
        # Every interior boundary is chunk-aligned.
        for start, _ in bounds[1:]:
            assert start % 1000 == 0


class TestBitIdentical:
    """The BulkBackend contract must survive the pool."""

    @pytest.mark.parametrize("workers", [2, 3])
    def test_registers_equal_sequential_fold(self, workers):
        hashes = _hashes(50_000)
        expected = exaloglog_registers(hashes, PARAMS)
        ingestor = ParallelBulkIngestor(PARAMS, workers, chunk=1 << 12)
        assert np.array_equal(ingestor.registers(hashes), expected)

    def test_functional_shorthand(self):
        hashes = _hashes(20_000, seed=11)
        expected = exaloglog_registers(hashes, PARAMS)
        result = parallel_exaloglog_registers(hashes, PARAMS, 2, chunk=1 << 12)
        assert np.array_equal(result, expected)

    def test_add_hashes_workers_matches_scalar_loop(self):
        # Large enough to actually fan out at the default chunk size.
        hashes = _hashes(2 * BULK_CHUNK + 123, seed=3)
        sequential = ExaLogLog(2, 20, 8).add_hashes(hashes)
        parallel = ExaLogLog(2, 20, 8).add_hashes(hashes, workers=2)
        assert parallel.to_bytes() == sequential.to_bytes()

    def test_merge_into_non_empty_sketch(self):
        first, second = _hashes(30_000, seed=1), _hashes(40_000, seed=2)
        sequential = ExaLogLog(2, 20, 8).add_hashes(first).add_hashes(second)
        ingestor = ParallelBulkIngestor(PARAMS, 3, chunk=1 << 12)
        parallel = ExaLogLog(2, 20, 8).add_hashes(first)
        batch = ingestor.registers(second)
        from repro.backends import merge_exaloglog_registers

        merged = merge_exaloglog_registers(parallel.registers, batch, PARAMS.d)
        assert merged.tolist() == list(sequential.registers)

    def test_spawn_start_method(self):
        hashes = _hashes(8_000, seed=5)
        expected = exaloglog_registers(hashes, PARAMS)
        ingestor = ParallelBulkIngestor(
            PARAMS, 2, chunk=1 << 12, start_method="spawn"
        )
        assert np.array_equal(ingestor.registers(hashes), expected)

    def test_small_batch_degenerates_in_process(self):
        # One slice: no pool, same result.
        hashes = _hashes(100, seed=9)
        ingestor = ParallelBulkIngestor(PARAMS, 4)
        assert np.array_equal(
            ingestor.registers(hashes), exaloglog_registers(hashes, PARAMS)
        )


class TestValidation:
    def test_bad_workers(self):
        with pytest.raises(ValueError):
            ParallelBulkIngestor(PARAMS, 0)

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            ParallelBulkIngestor(PARAMS, 2, chunk=0)

    def test_unsupported_registers(self):
        wide = make_params(0, 64, 8)  # 70-bit registers exceed int64
        with pytest.raises(ValueError):
            ParallelBulkIngestor(wide, 2)

    def test_bad_start_method(self):
        with pytest.raises(ValueError):
            ParallelBulkIngestor(PARAMS, 2, start_method="telepathy")

    def test_preferred_start_method_is_available(self):
        assert preferred_start_method() in multiprocessing.get_all_start_methods()


class TestWindowedWorkers:
    def test_windowed_counter_workers_equivalence(self):
        rng = np.random.Generator(np.random.PCG64(21))
        items = rng.integers(0, 1 << 62, size=5_000, dtype=np.int64)
        times = rng.uniform(0.0, 300.0, size=5_000)
        plain = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=6)
        plain.add_batch(items, at=times)
        pooled = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=6)
        pooled.add_batch(items, at=times, workers=2)
        assert {
            bucket: sketch.to_bytes() for bucket, sketch in pooled._sketches.items()
        } == {bucket: sketch.to_bytes() for bucket, sketch in plain._sketches.items()}
