"""One plan, five sources: the query plane joins the identity matrix.

The unified query layer promises that a logical plan is *portable*: the
same tree executed over the in-memory aggregator, the durable store, a
lock-free reader, a WAL-shipped follower, and a spilled GROUP BY must
return identical group keys and bit-identical estimate floats — not
merely close ones. These tests run randomized scenarios through
:func:`tests.invariants.harness.build_query_plane_sources` and assert
exact row equality (and, for sketch-valued plans, byte-identical
materialised sketches) against the aggregator reference.
"""

import pytest

from repro.query import (
    Estimate,
    Filter,
    Scan,
    access_path,
    execute,
    execute_sketches,
)
from tests.invariants.harness import (
    build_query_plane_sources,
    build_query_plans,
    random_scenario,
    rounds,
)

SOURCE_NAMES = ("aggregator", "store", "reader", "follower", "spill")


@pytest.mark.parametrize("seed", rounds())
def test_same_plan_same_rows_across_all_sources(seed, tmp_path):
    """Every representative plan returns exactly equal rows on each layer."""
    scenario = random_scenario(6000 + seed)
    sources, close = build_query_plane_sources(scenario, tmp_path)
    try:
        assert set(sources) == set(SOURCE_NAMES)
        for name, plan in build_query_plans(scenario).items():
            reference = execute(plan, sources["aggregator"])
            for source_name in SOURCE_NAMES[1:]:
                result = execute(plan, sources[source_name])
                assert result.kind == reference.kind
                assert result.rows == reference.rows, (
                    f"plan {name!r} over {source_name!r} diverges from the "
                    f"aggregator reference (seed {scenario.seed})"
                )
    finally:
        close()


@pytest.mark.parametrize("seed", rounds())
def test_materialised_sketches_are_bit_identical(seed, tmp_path):
    """Sketch-valued plans land on byte-identical sketches per layer.

    Stronger than equal floats: the executor's materialisation (full
    scan, selective replay, or partition iteration — whichever the
    planner picked for that layer) must reach the same serialized bytes.
    """
    scenario = random_scenario(7000 + seed)
    sources, close = build_query_plane_sources(scenario, tmp_path)
    try:
        groups = scenario.groups
        plans = {
            "scan": Scan(),
            "filter-keys": Filter(Scan(), keys=tuple(groups[: max(1, len(groups) // 2)])),
            "filter-prefix": Filter(Scan(), prefix="g"),
        }
        for name, plan in plans.items():
            reference = {
                key: sketch.to_bytes()
                for key, sketch in execute_sketches(plan, sources["aggregator"]).items()
            }
            for source_name in SOURCE_NAMES[1:]:
                materialised = {
                    key: sketch.to_bytes()
                    for key, sketch in execute_sketches(plan, sources[source_name]).items()
                }
                assert materialised.keys() == reference.keys(), (
                    f"plan {name!r}: group sets differ on {source_name!r} "
                    f"(seed {scenario.seed})"
                )
                for key, payload in reference.items():
                    assert materialised[key] == payload, (
                        f"plan {name!r}: sketch of group {key!r} on "
                        f"{source_name!r} is not bit-identical (seed {scenario.seed})"
                    )
    finally:
        close()


def test_planner_picks_layer_appropriate_access_paths(tmp_path):
    """Same filter, different physical paths — the results above prove
    they agree; this pins *which* path each layer gets."""
    scenario = random_scenario(8001)
    sources, close = build_query_plane_sources(scenario, tmp_path)
    try:
        selective = Filter(Scan(), keys=(scenario.groups[0],))
        assert access_path(sources["aggregator"], selective).kind == "selective"
        assert access_path(sources["reader"], selective).kind == "selective"
        assert access_path(sources["spill"], selective).kind == "selective"
        assert access_path(sources["spill"], None).kind == "partitions"
        assert access_path(sources["reader"], None).kind == "scan"
        prefixed = Filter(Scan(), prefix="g")
        assert access_path(sources["aggregator"], prefixed).kind == "scan"
    finally:
        close()


@pytest.mark.parametrize("seed", rounds(3))
def test_estimates_match_per_source_native_surface(seed, tmp_path):
    """``Estimate(Scan())`` equals each source's own ``estimates()``.

    Guards the fast path: the executor may answer a whole-source
    estimate from the source directly, so that shortcut must be float-
    identical to the materialise-then-solve route.
    """
    scenario = random_scenario(9000 + seed)
    sources, close = build_query_plane_sources(scenario, tmp_path)
    try:
        generic = Estimate(Filter(Scan(), predicate=lambda key: True))
        for name, source in sources.items():
            fast = execute(Estimate(Scan()), source)
            slow = execute(generic, source)
            assert fast.rows == slow.rows, (
                f"fast-path estimates diverge on {name!r} (seed {scenario.seed})"
            )
            native = dict(source.estimates())
            assert dict(fast.rows) == native, (
                f"plan estimates diverge from {name!r}.estimates() "
                f"(seed {scenario.seed})"
            )
    finally:
        close()
