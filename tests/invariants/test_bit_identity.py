"""Cross-layer bit-identity over randomized scenarios (one seed = one id).

Replaces the per-PR equivalence boilerplate: every ingest layer builds
the same seeded workload and must land on byte-identical state; every
query layer must produce float-identical estimates.
"""

import numpy as np
import pytest

from tests.invariants.harness import (
    assert_identical,
    build_bulk,
    build_fast_backend,
    build_follower,
    build_instrumented,
    build_memmap_registers,
    build_parallel,
    build_rebalanced_cluster,
    build_scalar,
    build_sharded_cluster,
    build_store,
    build_warm_pool,
    random_scenario,
    register_bytes,
    rounds,
)


@pytest.fixture(scope="module", params=rounds())
def scenario(request):
    return random_scenario(request.param)


@pytest.fixture(scope="module")
def reference(scenario):
    return build_scalar(scenario)


def test_bulk_matches_scalar(scenario, reference):
    assert_identical(reference, build_bulk(scenario), "add_hashes vs add_hash")


def test_fast_backend_matches_scalar(scenario, reference):
    assert_identical(
        reference, build_fast_backend(scenario), "fast backend vs add_hash"
    )


def test_numba_backend_matches_scalar(scenario, reference):
    from repro.backends import HAVE_NUMBA

    if not HAVE_NUMBA:
        pytest.skip("numba not installed")
    assert_identical(
        reference, build_fast_backend(scenario, "numba"), "numba backend vs add_hash"
    )


def test_store_replay_matches_scalar(scenario, reference, tmp_path):
    recovered = build_store(scenario, tmp_path / "store")
    assert_identical(reference, recovered, "store-replayed vs add_hash")


def test_follower_matches_scalar(scenario, reference, tmp_path):
    replica = build_follower(scenario, tmp_path / "leader", tmp_path / "replica")
    assert_identical(reference, replica, "follower-replicated vs add_hash")


def test_sharded_cluster_matches_scalar(scenario, reference, tmp_path):
    """A hash-partitioned cluster ≡ one store: registers AND estimates.

    The sharding claim is exactly the paper's mergeability claim worn
    sideways — each group's shard sees the same stream a single store
    would, so recovery from N shard directories must reassemble the
    byte-identical aggregator and float-identical estimates.
    """
    clustered = build_sharded_cluster(scenario, tmp_path / "cluster")
    assert_identical(reference, clustered, "sharded cluster vs add_hash")
    assert clustered.estimates() == reference.estimates(), (
        "cluster estimates drifted from the single-store floats"
    )


def test_rebalanced_cluster_matches_scalar(scenario, reference, tmp_path):
    """Shipping whole sketches between shards mid-stream changes nothing."""
    rebalanced = build_rebalanced_cluster(scenario, tmp_path / "cluster")
    assert_identical(reference, rebalanced, "rebalanced cluster vs add_hash")
    assert rebalanced.estimates() == reference.estimates(), (
        "post-rebalance estimates drifted from the single-store floats"
    )


def test_instrumented_matches_uninstrumented(scenario, reference, tmp_path):
    """Metrics + tracing on cannot change a byte or a float anywhere."""
    from repro.obs import metrics, trace

    spans_before = len(trace.spans())
    observed = build_instrumented(scenario, tmp_path / "obs_store")
    assert_identical(reference, observed, "instrumented vs add_hash")
    assert observed.estimates() == reference.estimates(), (
        "estimates drifted under instrumentation"
    )
    # The instrumentation actually ran: spans were recorded and the
    # WAL-append counters moved (guards against a silently-disabled pass).
    assert len(trace.spans()) > spans_before
    appended = metrics.REGISTRY.get("store.wal_append_records")
    assert appended is not None and appended.value > 0


def test_memmap_registers_match_scalar(scenario, reference, tmp_path):
    arrays = build_memmap_registers(scenario, tmp_path)
    from repro.aggregate import DistinctCountAggregator

    for group, array in arrays.items():
        key = DistinctCountAggregator._group_key(group)
        sketch = reference._groups[key].copy()
        dense = sketch.densify() if hasattr(sketch, "densify") else sketch
        assert array.tolist() == list(dense._registers), (
            f"memmap registers of group {group!r} differ from the scalar fold"
        )


def test_batched_estimates_match_scalar(scenario, reference):
    """``estimates()`` (one simultaneous solve) vs per-sketch ``estimate()``."""
    batched = reference.estimates()
    for key, sketch in reference._groups.items():
        assert batched[key] == sketch.estimate(), (
            f"batched estimate of group {key!r} differs from the scalar solve"
        )


def test_estimate_register_stacks_matches_scalar(scenario, reference):
    """The foreign-row batched solve equals scalar estimation row by row."""
    from repro.estimation.batch import estimate_register_stacks

    dense = {
        key: (
            sketch.copy().densify() if hasattr(sketch, "densify") else sketch
        )
        for key, sketch in register_items(reference)
    }
    if not dense:
        pytest.skip("scenario produced no groups")
    params = next(iter(dense.values()))._params
    keys = sorted(dense)
    stacked = estimate_register_stacks(
        [dense[key]._registers for key in keys], params
    )
    for key, value in zip(keys, stacked.tolist()):
        assert value == dense[key].estimate()


def register_items(aggregator):
    return sorted(aggregator._groups.items())


@pytest.mark.parametrize("seed", rounds(3))
def test_parallel_matches_scalar(seed, tmp_path):
    """``workers=N`` process-pool folds vs the scalar loop.

    Separate (and fewer) seeds: pool start-up per group makes this the
    most expensive builder, and rebatching per group is itself part of
    the invariant (commutative + idempotent + exact merge).
    """
    scenario = random_scenario(1000 + seed)
    reference = build_scalar(scenario)
    parallel = build_parallel(scenario, workers=2)
    assert register_bytes(reference) == register_bytes(parallel)


@pytest.mark.parametrize("seed", rounds(3))
def test_warm_pool_matches_scalar(seed):
    """Pre-warmed persistent-pool folds vs the scalar loop.

    The same seeds as the per-call parallel test, so a divergence here
    but not there isolates the shared-memory transport / worker-reuse
    layer rather than the rebatching.
    """
    scenario = random_scenario(1000 + seed)
    reference = build_scalar(scenario)
    warm = build_warm_pool(scenario, workers=2)
    assert register_bytes(reference) == register_bytes(warm)
