"""Randomized store/reader/replication invariants (single-process interleaving).

The multiprocess stress lives in ``tests/store/test_concurrent_readers.py``;
here the same interleavings run deterministically in one process — writer
appends, reader refreshes, compactions, follower syncs at random points —
so failures are reproducible from the seed alone.
"""

import numpy as np
import pytest

from repro.aggregate import DistinctCountAggregator
from repro.store import (
    FollowerStore,
    SketchStore,
    SnapshotReader,
    WalShipper,
)
from tests.invariants.harness import (
    OP_COMPACT,
    OP_HASHES,
    OP_SKETCH,
    _merge_sketch,
    random_scenario,
    rounds,
)


def _run_schedule(scenario, store, on_step):
    for index, step in enumerate(scenario.steps):
        if step.op == OP_HASHES:
            store.append_hashes(step.group, step.hashes)
        elif step.op == OP_SKETCH:
            store.merge_sketch(step.group, _merge_sketch(scenario, step))
        elif step.op == OP_COMPACT:
            store.compact()
        on_step(index, step)


@pytest.mark.parametrize("seed", rounds())
def test_reader_interleaved_with_writer(seed, tmp_path):
    """A reader refreshing at arbitrary points always sees a consistent
    prefix: monotone horizon, and exact writer state whenever quiesced."""
    scenario = random_scenario(2000 + seed)
    t, d, p, sparse, config_seed = scenario.config
    store = SketchStore.open(
        tmp_path / "s", t=t, d=d, p=p, sparse=sparse, seed=config_seed
    )
    rng = np.random.Generator(np.random.PCG64(seed))
    reader = SnapshotReader.open(tmp_path / "s")
    horizons = [reader.durable_lsn]

    def on_step(index, step):
        if rng.random() < 0.5:
            result = reader.refresh()
            horizons.append(result.durable_lsn)
            # Quiesced between appends: the view must equal the writer.
            assert result.durable_lsn == store.durable_lsn
            assert reader.aggregator.to_bytes() == store.aggregator.to_bytes()

    _run_schedule(scenario, store, on_step)
    reader.refresh()
    assert reader.aggregator.to_bytes() == store.aggregator.to_bytes()
    assert horizons == sorted(horizons), "durable horizon regressed"
    reader.close()
    store.close()


@pytest.mark.parametrize("seed", rounds())
def test_selective_replay_equals_full_replay(seed, tmp_path):
    """WAL-index single-group replay == the full-log view, for every group."""
    scenario = random_scenario(3000 + seed)
    t, d, p, sparse, config_seed = scenario.config
    store = SketchStore.open(
        tmp_path / "s", t=t, d=d, p=p, sparse=sparse, seed=config_seed
    )
    _run_schedule(scenario, store, lambda index, step: None)
    with SnapshotReader.open(tmp_path / "s") as reader:
        for group in scenario.groups:
            key = DistinctCountAggregator._group_key(group)
            full = reader.aggregator._groups.get(key)
            selective = reader.group_sketch(group)
            if full is None:
                assert selective is None
                continue
            assert selective.to_bytes() == full.to_bytes(), (
                f"selective replay of group {group!r} diverges from full replay"
            )
            assert reader.estimate_group(group) == reader.estimate(group)
    store.close()


@pytest.mark.parametrize("seed", rounds())
def test_follower_sync_points_are_arbitrary(seed, tmp_path):
    """Syncing the follower at random points (at-least-once, overlapping)
    still converges to bit-identical state at catch-up."""
    scenario = random_scenario(4000 + seed)
    t, d, p, sparse, config_seed = scenario.config
    store = SketchStore.open(
        tmp_path / "leader", t=t, d=d, p=p, sparse=sparse, seed=config_seed
    )
    follower = FollowerStore.open(tmp_path / "replica")
    shipper = WalShipper(tmp_path / "leader")
    rng = np.random.Generator(np.random.PCG64(seed))

    def on_step(index, step):
        if rng.random() < 0.4:
            shipper.sync(follower)
            assert follower.applied_lsn == store.durable_lsn

    _run_schedule(scenario, store, on_step)
    result = shipper.sync(follower)
    assert result.follower_lsn == store.durable_lsn
    # Re-sync is a no-op (idempotent by LSN).
    again = shipper.sync(follower)
    assert again.records_shipped == 0 and not again.snapshot_installed
    assert follower.aggregator.to_bytes() == store.aggregator.to_bytes()
    for key, sketch in store.aggregator._groups.items():
        assert follower.aggregator._groups[key].to_bytes() == sketch.to_bytes()
    store.close()
    follower.close()


@pytest.mark.parametrize("seed", rounds())
def test_read_only_open_preserves_torn_tail(seed, tmp_path):
    """Regression (+fuzz): read-only open must not truncate a torn WAL tail.

    Cuts the WAL at a random non-boundary offset; ``read_only=True`` must
    (a) recover the exact durable prefix and (b) leave the file
    byte-identical — it may be a live writer's in-flight append.
    """
    scenario = random_scenario(5000 + seed, with_compaction=False)
    t, d, p, sparse, config_seed = scenario.config
    directory = tmp_path / "s"
    store = SketchStore.open(
        directory, t=t, d=d, p=p, sparse=sparse, seed=config_seed
    )
    _run_schedule(scenario, store, lambda index, step: None)
    store.close()
    wal = next(directory.glob("wal-*.log"))
    original = wal.read_bytes()
    rng = np.random.Generator(np.random.PCG64(seed))
    cut = int(rng.integers(4, len(original)))
    wal.write_bytes(original[:cut])

    torn = wal.read_bytes()
    ro = SketchStore.open(directory, read_only=True)
    assert wal.read_bytes() == torn, "read-only open mutated the WAL"
    assert ro.durable_lsn <= store.durable_lsn
    with pytest.raises(ValueError, match="read-only"):
        ro.append_hashes("g0", np.array([1], dtype=np.uint64))
    with pytest.raises(ValueError, match="read-only"):
        ro.compact()
    ro.close()

    # The same cut through SnapshotReader: also non-mutating.
    with SnapshotReader.open(directory) as reader:
        assert wal.read_bytes() == torn, "SnapshotReader mutated the WAL"
        assert reader.durable_lsn == ro.durable_lsn
        assert reader.aggregator.to_bytes() == ro.aggregator.to_bytes()

    # A writer-mode open *does* truncate, and recovers the same prefix.
    rw = SketchStore.open(directory)
    assert len(wal.read_bytes()) <= len(torn)
    assert rw.aggregator.to_bytes() == ro.aggregator.to_bytes()
    assert rw.durable_lsn == ro.durable_lsn
    rw.close()
