"""Randomized cross-layer invariant harness: one generator, every ingest path.

The library's core promise — repeated by every PR since the bulk backend
landed — is that all ingest and query paths are *bit-identical*: scalar
``add_hash`` loops, vectorised ``add_hashes``, process-pool parallel
folds, mmap-backed registers, WAL-replayed stores, WAL-shipped follower
replicas, and scalar vs simultaneous batched estimation all produce
exactly the same register bytes and exactly the same floats. Before this
harness each PR asserted its own corner with bespoke fixtures; this
module generates one seeded scenario — parameters, per-group hash
streams, a merge/compaction/window schedule — and hands it to *every*
layer, so a new path joins the identity matrix by adding one builder
instead of a new test file.

Scenario generation is deterministic per seed (``numpy.random.PCG64``),
so a CI failure reproduces locally with just the seed from the test id.
Scale the number of seeds with ``INVARIANT_ROUNDS`` (default keeps the
quick-mode budget of the CI matrix).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.aggregate import DistinctCountAggregator

#: Configurations covering the structural regimes: sparse/dense start,
#: the ML-optimal ELL(2, 20), small-register ELL(1, 9), a batched-solve
#: fast-path precision (m >= 1024), and non-zero seeds.
CONFIG_POOL = [
    (2, 20, 8, True, 0),
    (2, 20, 8, False, 0),
    (1, 9, 6, True, 3),
    (2, 16, 7, False, 1),
    (2, 20, 10, False, 0),
    (2, 24, 6, True, 0),
]

#: ``(kind, op, group)`` ops a schedule is built from.
OP_HASHES = "hashes"
OP_SKETCH = "sketch"
OP_COMPACT = "compact"


@dataclass(frozen=True)
class Step:
    """One schedule step: a keyed hash batch, a sketch merge, or a compact."""

    op: str
    group: str = ""
    hashes: "np.ndarray | None" = None  # OP_HASHES: the batch; OP_SKETCH: the
    # hashes the merged sketch was built from (built fresh per builder so no
    # state leaks between paths)


@dataclass(frozen=True)
class Scenario:
    """A reproducible cross-layer workload."""

    seed: int
    config: tuple  # (t, d, p, sparse, seed)
    steps: tuple

    @property
    def groups(self) -> list[str]:
        return sorted({step.group for step in self.steps if step.group})

    def hash_steps(self) -> "list[Step]":
        return [step for step in self.steps if step.op == OP_HASHES]

    def __repr__(self) -> str:  # short ids in pytest parametrisation
        return f"Scenario(seed={self.seed}, config={self.config}, steps={len(self.steps)})"


def rounds(default: int = 5) -> list[int]:
    """Seeds to run, scaled by the ``INVARIANT_ROUNDS`` env variable."""
    count = int(os.environ.get("INVARIANT_ROUNDS", default))
    return list(range(1, count + 1))


def random_scenario(seed: int, with_compaction: bool = True) -> Scenario:
    """Generate a seeded scenario: config, item streams, schedule."""
    rng = np.random.Generator(np.random.PCG64(seed))
    config = CONFIG_POOL[int(rng.integers(len(CONFIG_POOL)))]
    group_count = int(rng.integers(2, 6))
    groups = [f"g{index}" for index in range(group_count)]
    steps: list[Step] = []
    for _ in range(int(rng.integers(4, 12))):
        roll = rng.random()
        group = groups[int(rng.integers(group_count))]
        if roll < 0.70:
            # Hash batch: sizes span sparse-mode, densification-crossing
            # and comfortably-dense regimes.
            size = int(rng.integers(1, int(rng.choice([20, 200, 2000]))))
            hashes = rng.integers(0, 1 << 64, size=size, dtype=np.uint64)
            steps.append(Step(OP_HASHES, group, hashes))
        elif roll < 0.85:
            # Sketch merge (the windowed-bucket-retirement record kind).
            size = int(rng.integers(1, 300))
            hashes = rng.integers(0, 1 << 64, size=size, dtype=np.uint64)
            steps.append(Step(OP_SKETCH, group, hashes))
        elif with_compaction:
            steps.append(Step(OP_COMPACT))
    if not any(step.op == OP_HASHES for step in steps):
        hashes = rng.integers(0, 1 << 64, size=50, dtype=np.uint64)
        steps.append(Step(OP_HASHES, groups[0], hashes))
    return Scenario(seed=seed, config=config, steps=tuple(steps))


def _merge_sketch(scenario: Scenario, step: Step):
    """The sketch a ``OP_SKETCH`` step merges (deterministic per step)."""
    t, d, p, sparse, _ = scenario.config
    from repro.core.exaloglog import ExaLogLog
    from repro.core.sparse import SparseExaLogLog

    sketch = SparseExaLogLog(t, d, p) if len(step.hashes) < 30 else ExaLogLog(t, d, p)
    sketch.add_hashes(step.hashes)
    return sketch


def _apply_sketch_step(aggregator: DistinctCountAggregator, scenario, step) -> None:
    from repro.store.sketchstore import _merge_sketch_into

    key = DistinctCountAggregator._group_key(step.group)
    _merge_sketch_into(aggregator, key, _merge_sketch(scenario, step))


# -- builders: one per layer ---------------------------------------------------


def build_scalar(scenario: Scenario) -> DistinctCountAggregator:
    """Reference state: per-item ``add_hash`` loops, scalar merges."""
    aggregator = DistinctCountAggregator(*scenario.config)
    for step in scenario.steps:
        if step.op == OP_HASHES:
            key = DistinctCountAggregator._group_key(step.group)
            sketch = aggregator._groups.get(key)
            if sketch is None:
                sketch = aggregator._new_sketch()
                aggregator._groups[key] = sketch
            for value in step.hashes.tolist():
                sketch.add_hash(value)
        elif step.op == OP_SKETCH:
            _apply_sketch_step(aggregator, scenario, step)
    return aggregator


def build_bulk(scenario: Scenario) -> DistinctCountAggregator:
    """Vectorised path: per-batch ``add_hashes`` folds."""
    aggregator = DistinctCountAggregator(*scenario.config)
    for step in scenario.steps:
        if step.op == OP_HASHES:
            key = DistinctCountAggregator._group_key(step.group)
            sketch = aggregator._groups.get(key)
            if sketch is None:
                sketch = aggregator._new_sketch()
                aggregator._groups[key] = sketch
            sketch.add_hashes(step.hashes)
        elif step.op == OP_SKETCH:
            _apply_sketch_step(aggregator, scenario, step)
    return aggregator


def build_parallel(scenario: Scenario, workers: int = 2) -> DistinctCountAggregator:
    """Process-pool path: each group's full stream folds with ``workers``.

    Insertions are commutative and idempotent and the Algorithm 5 merge
    is exact, so rebatching per group cannot change the result — which
    is exactly the invariant being asserted.
    """
    aggregator = DistinctCountAggregator(*scenario.config)
    per_group: dict[str, list] = {}
    for step in scenario.steps:
        if step.op == OP_HASHES:
            per_group.setdefault(step.group, []).append(step.hashes)
    for group, arrays in per_group.items():
        key = DistinctCountAggregator._group_key(group)
        sketch = aggregator._groups.get(key)
        if sketch is None:
            sketch = aggregator._new_sketch()
            aggregator._groups[key] = sketch
        stream = np.concatenate(arrays)
        if hasattr(sketch, "is_sparse") and sketch.is_sparse:
            sketch.add_hashes(stream)  # sparse mode has no workers= knob
        else:
            sketch.add_hashes(stream, workers=workers)
    for step in scenario.steps:
        if step.op == OP_SKETCH:
            _apply_sketch_step(aggregator, scenario, step)
    return aggregator


def build_fast_backend(scenario: Scenario, backend: str = "fast") -> DistinctCountAggregator:
    """Kernel-backend path: the bulk builder under a non-default backend.

    ``backend`` is a :func:`repro.backends.set_backend` name — ``"fast"``
    exercises the cache-blocked NumPy kernels (and the JIT kernels where
    numba is installed); the selection is scoped so other builders keep
    running on whatever the session default is.
    """
    from repro.backends import use_backend

    with use_backend(backend):
        return build_bulk(scenario)


def build_warm_pool(scenario: Scenario, workers: int = 2) -> DistinctCountAggregator:
    """Persistent-pool path: parallel folds over pre-warmed shared workers.

    Warming first means the folds hit the shared-memory transport of
    already-alive workers — the steady-state production path — rather
    than paying (and implicitly testing only) first-call spawns.
    """
    from repro.parallel import get_pool

    get_pool().warm(workers)
    return build_parallel(scenario, workers=workers)


def build_store(scenario: Scenario, directory) -> DistinctCountAggregator:
    """Durable path: WAL appends (+ scheduled compactions), then recovery.

    The returned state is what a *fresh process* recovers from disk —
    snapshot load plus WAL-tail replay — not the writer's live memory.
    """
    from repro.store import SketchStore

    t, d, p, sparse, seed = scenario.config
    store = SketchStore.open(directory, t=t, d=d, p=p, sparse=sparse, seed=seed)
    for step in scenario.steps:
        if step.op == OP_HASHES:
            store.append_hashes(step.group, step.hashes)
        elif step.op == OP_SKETCH:
            store.merge_sketch(step.group, _merge_sketch(scenario, step))
        elif step.op == OP_COMPACT:
            store.compact()
    store.close()
    recovered = SketchStore.open(directory)
    aggregator = recovered.aggregator
    recovered.close()
    return aggregator


def build_follower(scenario: Scenario, leader_directory, follower_directory):
    """Replication path: run the schedule on a leader, ship every record.

    Syncs mid-schedule (after every compaction, where the follower must
    fall back to a snapshot install) and once at the end; returns the
    caught-up follower's aggregator.
    """
    from repro.store import FollowerStore, SketchStore, WalShipper

    t, d, p, sparse, seed = scenario.config
    store = SketchStore.open(leader_directory, t=t, d=d, p=p, sparse=sparse, seed=seed)
    follower = FollowerStore.open(follower_directory)
    shipper = WalShipper(leader_directory)
    for step in scenario.steps:
        if step.op == OP_HASHES:
            store.append_hashes(step.group, step.hashes)
        elif step.op == OP_SKETCH:
            store.merge_sketch(step.group, _merge_sketch(scenario, step))
        elif step.op == OP_COMPACT:
            shipper.sync(follower)  # sometimes catch up just before the log dies
            store.compact()
    shipper.sync(follower)
    assert follower.applied_lsn == store.durable_lsn
    store.close()
    follower.close()
    return follower.aggregator


def build_memmap_registers(scenario: Scenario, directory) -> dict[str, np.ndarray]:
    """Disk-backed fold targets: one register file per group.

    Only meaningful for dense-register comparison; the caller densifies
    the reference aggregator's sketches to compare register values.
    """
    from repro.store import MemmapRegisters

    t, d, p, _, _ = scenario.config
    arrays: dict[str, np.ndarray] = {}
    per_group: dict[str, list] = {}
    for step in scenario.steps:
        if step.op == OP_HASHES:
            per_group.setdefault(step.group, []).append(step.hashes)
        elif step.op == OP_SKETCH:
            per_group.setdefault(step.group, []).append(step.hashes)
    for group, streams in per_group.items():
        with MemmapRegisters.create(
            directory / f"{group}.reg", "exaloglog", t, d, p
        ) as registers:
            for stream in streams:
                registers.add_hashes(stream)
            arrays[group] = np.asarray(registers.registers).copy()
    return arrays


def build_instrumented(scenario: Scenario, directory) -> DistinctCountAggregator:
    """Observability path: the durable pipeline with metrics + tracing on.

    Instrumentation must be purely observational — collecting counters,
    histograms, and spans through bulk ingest, WAL appends, compaction,
    recovery replay, and the batched estimate solve cannot perturb one
    register byte or one estimate float. Runs the same schedule as
    :func:`build_store` with ``REPRO_METRICS``/``REPRO_TRACE`` semantics
    scoped programmatically, exercises the estimation instrumentation,
    and returns the recovered state for comparison against a reference
    built with instrumentation off.
    """
    from repro.obs import metrics, trace

    with metrics.instrumented(), trace.tracing():
        aggregator = build_store(scenario, directory)
        aggregator.estimates()  # the Newton/solve histograms collect too
    return aggregator


def build_sharded_cluster(
    scenario: Scenario, directory, shards: int = 4
) -> DistinctCountAggregator:
    """Horizontal-sharding path: the schedule routed by ``shard_of``.

    Every keyed op lands on its owner shard (own WAL, own snapshot
    cadence); compactions hit every shard. The returned state is what a
    fresh process recovers from the cluster directory — per-shard
    snapshot load + WAL-tail replay — reassembled into one aggregator.
    Exact mergeability is why this must be bit-identical to a single
    store over the same stream.
    """
    from repro.cluster import ShardedStore

    t, d, p, sparse, seed = scenario.config
    cluster = ShardedStore.open(
        directory, shards=shards, t=t, d=d, p=p, sparse=sparse, seed=seed
    )
    for step in scenario.steps:
        if step.op == OP_HASHES:
            cluster.append_hashes(step.group, step.hashes)
        elif step.op == OP_SKETCH:
            cluster.merge_sketch(step.group, _merge_sketch(scenario, step))
        elif step.op == OP_COMPACT:
            cluster.compact()
    cluster.close()
    recovered = ShardedStore.open(directory)
    aggregator = recovered.to_aggregator()
    recovered.close()
    return aggregator


def build_rebalanced_cluster(
    scenario: Scenario, directory, shards: int = 3, new_shards: int = 5
) -> DistinctCountAggregator:
    """Sharding path with a mid-schedule rebalance (``shards`` → ``new_shards``).

    Half the schedule lands under the old fan-out, then whole group
    sketches ship to their new owners behind cutover fences, then the
    rest of the schedule lands under the new fan-out — the moved-sketch
    merges and drops must be invisible in the final registers.
    """
    from repro.cluster import ShardedStore

    t, d, p, sparse, seed = scenario.config
    cluster = ShardedStore.open(
        directory, shards=shards, t=t, d=d, p=p, sparse=sparse, seed=seed
    )
    pivot = len(scenario.steps) // 2
    for index, step in enumerate(scenario.steps):
        if index == pivot:
            cluster.rebalance(new_shards)
        if step.op == OP_HASHES:
            cluster.append_hashes(step.group, step.hashes)
        elif step.op == OP_SKETCH:
            cluster.merge_sketch(step.group, _merge_sketch(scenario, step))
        elif step.op == OP_COMPACT:
            cluster.compact()
    cluster.close()
    recovered = ShardedStore.open(directory)
    aggregator = recovered.to_aggregator()
    recovered.close()
    return aggregator


# -- query plane ---------------------------------------------------------------


def build_query_plane_sources(scenario: Scenario, directory):
    """Every read surface over one identical hash stream, as sources.

    Replays the scenario's *hash* steps (the one record kind every layer
    ingests natively — sketch merges and compactions are covered by the
    ingest-path builders above) into five independently-built
    :class:`repro.query.SketchSource` layers:

    ``aggregator``
        In-memory :class:`~repro.aggregate.DistinctCountAggregator`.
    ``store``
        Live :class:`~repro.store.SketchStore` writer (WAL + snapshots).
    ``reader``
        Lock-free :class:`~repro.store.SnapshotReader` over the live
        writer's directory.
    ``follower``
        WAL-shipped :class:`~repro.store.FollowerStore` replica.
    ``spill``
        Hash-partitioned external :class:`~repro.store.SpilledGroupBy`.

    Returns ``(sources, close)``; call ``close()`` when done.
    """
    from repro.store import (
        FollowerStore,
        SketchStore,
        SnapshotReader,
        SpilledGroupBy,
        WalShipper,
    )

    t, d, p, sparse, seed = scenario.config
    steps = scenario.hash_steps()

    aggregator = DistinctCountAggregator(*scenario.config)
    store = SketchStore.open(
        directory / "store", t=t, d=d, p=p, sparse=sparse, seed=seed
    )
    spill = SpilledGroupBy(
        directory / "spill", t=t, d=d, p=p, sparse=sparse, seed=seed, partitions=4
    )
    for step in steps:
        key = DistinctCountAggregator._group_key(step.group)
        sketch = aggregator._groups.get(key)
        if sketch is None:
            sketch = aggregator._new_sketch()
            aggregator._groups[key] = sketch
        sketch.add_hashes(step.hashes)
        store.append_hashes(step.group, step.hashes)
        spill.write_segments([(key, step.hashes)])

    reader = SnapshotReader.open(directory / "store")
    follower = FollowerStore.open(directory / "follower")
    WalShipper(directory / "store").sync(follower)
    assert follower.applied_lsn == store.durable_lsn

    sources = {
        "aggregator": aggregator,
        "store": store,
        "reader": reader,
        "follower": follower,
        "spill": spill,
    }

    def close() -> None:
        reader.close()
        follower.close()
        store.close()
        spill.close()

    return sources, close


def build_query_plans(scenario: Scenario) -> dict:
    """Representative logical plans for one scenario (source-agnostic).

    Keys name the shape; every plan references only the default scan, so
    the same tree executes over each layer of
    :func:`build_query_plane_sources` and must return identical rows.
    """
    from repro.query import Estimate, Filter, Scan, SetOp, TopK

    groups = scenario.groups
    half = max(1, len(groups) // 2)
    plans = {
        "estimate-all": Estimate(Scan()),
        "top-3": TopK(Scan(), 3),
        "filter-keys": Estimate(Filter(Scan(), keys=tuple(groups[:half]))),
        "filter-prefix": TopK(Filter(Scan(), prefix="g"), 2),
        "union-halves": SetOp(
            "union",
            Filter(Scan(), keys=tuple(groups[:half])),
            Filter(Scan(), keys=tuple(groups[half:]) or tuple(groups[:1])),
        ),
        "intersect-self": SetOp(
            "intersect",
            Filter(Scan(), keys=tuple(groups[:half])),
            Filter(Scan(), keys=tuple(groups[:half])),
        ),
    }
    return plans


# -- comparisons ---------------------------------------------------------------


def register_bytes(aggregator: DistinctCountAggregator) -> dict[bytes, bytes]:
    """Per-group serialized sketch bytes (the bit-identity currency)."""
    return {
        key: sketch.to_bytes() for key, sketch in sorted(aggregator._groups.items())
    }


def assert_identical(reference: DistinctCountAggregator, other, label: str) -> None:
    """Byte-level equality of two aggregator states, with a precise diff."""
    mine = register_bytes(reference)
    theirs = register_bytes(other)
    assert mine.keys() == theirs.keys(), (
        f"{label}: group sets differ: {sorted(mine)} vs {sorted(theirs)}"
    )
    for key in mine:
        assert mine[key] == theirs[key], (
            f"{label}: registers of group {key!r} are not bit-identical"
        )
    assert reference.to_bytes() == other.to_bytes(), f"{label}: aggregator bytes differ"
