"""Smoke tests: every experiment runner produces sane rows at tiny scale."""

import math

import pytest

from repro.experiments import figure1, figure2, figure4to7, figure8, figure9, table2
from repro.experiments.common import env_int, format_table
from repro.experiments.suite import figure10_suite, figure11_suite, table2_suite


class TestCommon:
    def test_env_int(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "17")
        assert env_int("REPRO_TEST_KNOB", 5) == 17
        assert env_int("REPRO_MISSING_KNOB", 5) == 5
        monkeypatch.setenv("REPRO_TEST_KNOB", "xyz")
        with pytest.raises(ValueError):
            env_int("REPRO_TEST_KNOB", 5)

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}])
        assert "a" in text and "10" in text

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"


class TestFigure1:
    def test_memory_monotone_in_mvp(self):
        rows = figure1.run()
        for row in rows:
            assert row["MVP=8_bytes"] > row["MVP=2_bytes"]

    def test_eq1_inverse_square(self):
        rows = figure1.run()
        first, last = rows[0], rows[-1]
        ratio = first["MVP=4_bytes"] / last["MVP=4_bytes"]
        assert ratio == pytest.approx((5.0 / 1.0) ** 2)


class TestFigure2:
    def test_chunk_identity_rows(self):
        for t in (1, 2):
            for row in figure2.chunk_check(t):
                assert row["geometric_sum"] == pytest.approx(row["expected_2^-(c+1)"])
                assert row["approximate_sum"] == pytest.approx(row["expected_2^-(c+1)"])


class TestFigure4to7:
    def test_named_points_match_paper(self):
        rows = {row["config"]: row for row in figure4to7.named_points()}
        assert rows["ELL(2,20)"]["dense_ml"] == pytest.approx(3.67, abs=0.01)
        assert rows["ELL(2,20)"]["saving_vs_hll_%"] == pytest.approx(43.0, abs=0.5)
        assert rows["ELL(2,16)"]["dense_martingale"] == pytest.approx(2.77, abs=0.01)

    def test_sweep_contains_all_t(self):
        rows = figure4to7.sweep("figure4", d_step=8)
        assert set(rows[0]) == {"d", "t=0", "t=1", "t=2", "t=3"}

    def test_minima(self):
        minima = {row["t"]: row for row in figure4to7.minima("figure4")}
        assert minima[2]["optimal_d"] == 20


class TestFigure8Tiny:
    def test_single_panel_runs(self):
        evaluation = figure8.run_panel(2, 20, 4, runs=4, per_decade=1)
        assert evaluation.runs == 4
        rows = figure8.panel_rows(evaluation)
        assert rows[0]["n"] == 1.0
        assert all(math.isfinite(row["ml_rmse"]) for row in rows)


class TestFigure9Tiny:
    def test_single_v_runs(self):
        rows = figure9.run_v(10, runs=3, n_max=1000)
        assert rows[-1]["n"] == 1000
        for row in rows:
            assert abs(row["bias"]) < 0.5


class TestTable2Tiny:
    def test_rows_complete_and_ordered(self):
        rows = table2.run(n=2000, runs=3)
        assert len(rows) == len(table2_suite())
        mvps = [row["mvp_memory"] for row in rows]
        assert mvps == sorted(mvps, reverse=True)
        for row in rows:
            assert row["serialized_bytes"] > 0
            assert 0 < row["rmse_%"] < 50


class TestSuites:
    def test_suite_names_unique(self):
        names = [spec.name for spec in figure11_suite()]
        assert len(names) == len(set(names))

    def test_loaders_match_factories(self):
        """Batch loaders must produce the same estimates as sequential
        insertion for every algorithm in the suite."""
        import numpy as np

        rng = np.random.Generator(np.random.PCG64(3)).integers(
            0, 1 << 64, size=2000, dtype=np.uint64
        )
        for spec in figure10_suite():
            batch = spec.from_hashes(rng)
            sequential = spec.factory()
            for h in rng.tolist():
                sequential.add_hash(h)
            assert batch.estimate() == pytest.approx(
                sequential.estimate(), rel=1e-9
            ), spec.name
