"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.params import make_params


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


def random_hashes(seed: int, count: int) -> list[int]:
    """Deterministic list of 64-bit pseudo-hash values."""
    generator = random.Random(seed)
    return [generator.getrandbits(64) for _ in range(count)]


#: Small parameter sets that exercise all structural regimes
#: (t = 0/1/2, d = 0 / small / larger-than-typical-u, various p).
SMALL_PARAMS = [
    make_params(0, 0, 2),
    make_params(0, 1, 3),
    make_params(0, 2, 4),
    make_params(1, 3, 3),
    make_params(1, 9, 4),
    make_params(2, 6, 2),
    make_params(2, 16, 4),
    make_params(2, 20, 5),
    make_params(2, 24, 6),
    make_params(3, 5, 4),
]

#: The paper's named configurations at moderate precision.
PAPER_PARAMS = [
    make_params(1, 9, 6),
    make_params(2, 16, 6),
    make_params(2, 20, 6),
    make_params(2, 24, 6),
]
