"""SMHasher-lite quality battery on the from-scratch hash functions.

These assertions substantiate the paper's Sec. 5.1 premise that hash
outputs behave like uniform random values (which the simulation
methodology depends on).
"""

import pytest

from repro.hashing import murmur3_64, xxhash64
from repro.hashing.quality import (
    avalanche_test,
    bucket_chi_square,
    collision_estimate,
    nlz_geometric_deviation,
)
from repro.hashing.splitmix64 import splitmix64_mix

HASHES = {
    "murmur3": murmur3_64,
    "xxhash64": xxhash64,
    "splitmix64": lambda data: splitmix64_mix(int.from_bytes(data[:8], "little")),
}


@pytest.mark.parametrize("name", sorted(HASHES), ids=str)
class TestQualityBattery:
    def test_avalanche(self, name):
        report = avalanche_test(HASHES[name], samples=120)
        assert 28.0 < report.mean_flips < 36.0
        assert report.worst_bias < 0.2  # 120 samples -> sd ~0.046 per cell

    def test_bucket_uniformity(self, name):
        # 255 dof: mean 255, sd ~22.6; allow 5 sigma.
        statistic = bucket_chi_square(HASHES[name], buckets_log2=8, samples=40000)
        assert statistic < 255 + 5 * 23

    def test_nlz_geometric(self, name):
        assert nlz_geometric_deviation(HASHES[name], samples=40000) < 0.25

    def test_no_collisions(self, name):
        assert collision_estimate(HASHES[name], samples=100000) == 0


def test_quality_battery_detects_a_bad_hash():
    """Sanity: the battery must flag an obviously broken hash."""

    def terrible(data: bytes) -> int:
        return int.from_bytes(data[:8], "little") * 3  # linear, no mixing

    report = avalanche_test(terrible, samples=60)
    statistic = bucket_chi_square(terrible, buckets_log2=8, samples=20000)
    assert report.mean_flips < 28.0 or report.worst_bias > 0.2 or statistic > 400
