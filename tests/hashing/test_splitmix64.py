"""SplitMix64 against its published test vectors and basic statistics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.bits import MASK64
from repro.hashing.splitmix64 import SplitMix64, splitmix64_at, splitmix64_mix

#: First outputs of the reference implementation for seed 0.
SEED0_OUTPUTS = (0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F)


class TestVectors:
    def test_seed0_sequence(self):
        generator = SplitMix64(0)
        for expected in SEED0_OUTPUTS:
            assert generator.next_u64() == expected

    def test_random_access_matches_sequence(self):
        generator = SplitMix64(12345)
        sequential = [generator.next_u64() for _ in range(10)]
        indexed = [splitmix64_at(12345, i) for i in range(10)]
        assert sequential == indexed


class TestMix:
    @given(st.integers(min_value=0, max_value=MASK64))
    def test_output_in_range(self, x):
        assert 0 <= splitmix64_mix(x) <= MASK64

    def test_bijection_no_collisions_sample(self):
        outputs = {splitmix64_mix(i) for i in range(10000)}
        assert len(outputs) == 10000

    def test_avalanche(self):
        """Flipping one input bit flips roughly half the output bits."""
        total_flips = 0
        samples = 200
        for i in range(samples):
            base = splitmix64_mix(i * 0x9E3779B97F4A7C15)
            flipped = splitmix64_mix((i * 0x9E3779B97F4A7C15) ^ 1)
            total_flips += bin(base ^ flipped).count("1")
        average = total_flips / samples
        assert 24 < average < 40


class TestGenerator:
    def test_next_double_range(self):
        generator = SplitMix64(7)
        for _ in range(1000):
            value = generator.next_double()
            assert 0.0 <= value < 1.0

    def test_next_below_range(self):
        generator = SplitMix64(7)
        for _ in range(1000):
            assert 0 <= generator.next_below(13) < 13

    def test_next_below_rejects_nonpositive(self):
        import pytest

        with pytest.raises(ValueError):
            SplitMix64(0).next_below(0)

    def test_fork_independence(self):
        parent = SplitMix64(99)
        child = parent.fork()
        assert child.next_u64() != parent.next_u64()

    def test_mean_is_centered(self):
        generator = SplitMix64(3)
        mean = sum(generator.next_double() for _ in range(20000)) / 20000
        assert abs(mean - 0.5) < 0.01
