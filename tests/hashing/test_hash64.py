"""Tests for the hash64 dispatcher and object encoding."""

import pytest

from repro.hashing import hash64, to_bytes


class TestToBytes:
    def test_bytes_passthrough(self):
        assert to_bytes(b"abc") == b"abc"

    def test_bytearray(self):
        assert to_bytes(bytearray(b"abc")) == b"abc"

    def test_str_utf8(self):
        assert to_bytes("héllo") == "héllo".encode("utf-8")

    def test_int_fixed_width(self):
        assert to_bytes(1) == (1).to_bytes(8, "little", signed=True)

    def test_negative_int(self):
        assert to_bytes(-1) == (-1).to_bytes(8, "little", signed=True)

    def test_int_and_str_differ(self):
        assert to_bytes(1) != to_bytes("1")

    def test_bool_distinct_from_int(self):
        assert to_bytes(True) != to_bytes(1)

    def test_float(self):
        assert len(to_bytes(3.14)) == 8

    def test_rejects_unsupported(self):
        with pytest.raises(TypeError):
            to_bytes(["list"])


class TestHash64:
    def test_deterministic(self):
        assert hash64("user-42") == hash64("user-42")

    def test_seed_sensitivity(self):
        assert hash64("user-42", 0) != hash64("user-42", 1)

    def test_algorithm_selection(self):
        assert hash64(b"x", algorithm="murmur3") != hash64(b"x", algorithm="xxhash64")

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            hash64(b"x", algorithm="md5")

    def test_range(self):
        for i in range(100):
            assert 0 <= hash64(i) < 1 << 64
