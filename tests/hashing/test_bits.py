"""Tests for the 64-bit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.bits import (
    MASK64,
    bit_reverse64,
    bit_slice,
    nlz64,
    ntz64,
    rotl32,
    rotl64,
    rotr64,
    to_signed64,
    to_unsigned64,
)

u64 = st.integers(min_value=0, max_value=MASK64)


class TestNlz64:
    def test_zero(self):
        assert nlz64(0) == 64

    def test_one(self):
        assert nlz64(1) == 63

    def test_msb(self):
        assert nlz64(1 << 63) == 0

    def test_paper_table1_example(self):
        assert nlz64(0b10110) == 59

    def test_all_powers_of_two(self):
        for bit in range(64):
            assert nlz64(1 << bit) == 63 - bit

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            nlz64(-1)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            nlz64(1 << 64)

    @given(u64)
    def test_matches_bit_length(self, x):
        assert nlz64(x) == 64 - x.bit_length()


class TestNtz64:
    def test_zero(self):
        assert ntz64(0) == 64

    def test_one(self):
        assert ntz64(1) == 0

    def test_msb(self):
        assert ntz64(1 << 63) == 63

    @given(u64.filter(lambda x: x != 0))
    def test_definition(self, x):
        count = ntz64(x)
        assert (x >> count) & 1 == 1
        assert x & ((1 << count) - 1) == 0


class TestRotations:
    @given(u64, st.integers(min_value=0, max_value=200))
    def test_rotl_rotr_inverse(self, x, r):
        assert rotr64(rotl64(x, r), r) == x

    @given(u64)
    def test_rotl_zero_is_identity(self, x):
        assert rotl64(x, 0) == x

    @given(u64, st.integers(min_value=0, max_value=63))
    def test_rotl_preserves_popcount(self, x, r):
        assert bin(rotl64(x, r)).count("1") == bin(x).count("1")

    def test_rotl64_wraps(self):
        assert rotl64(1 << 63, 1) == 1

    def test_rotl32_wraps(self):
        assert rotl32(1 << 31, 1) == 1


class TestSignedness:
    def test_to_signed_negative(self):
        assert to_signed64(MASK64) == -1

    def test_to_signed_positive(self):
        assert to_signed64(5) == 5

    @given(u64)
    def test_roundtrip(self, x):
        assert to_unsigned64(to_signed64(x)) == x


class TestBitSlice:
    def test_basic(self):
        assert bit_slice(0b110110, 1, 3) == 0b011

    def test_zero_width(self):
        assert bit_slice(12345, 3, 0) == 0

    @given(u64, st.integers(0, 63), st.integers(0, 64))
    def test_range(self, x, low, width):
        assert 0 <= bit_slice(x, low, width) < (1 << width) if width else True


class TestBitReverse:
    def test_involution_examples(self):
        for x in (0, 1, MASK64, 0x8000000000000001, 0x0123456789ABCDEF):
            assert bit_reverse64(bit_reverse64(x)) == x

    def test_one_maps_to_msb(self):
        assert bit_reverse64(1) == 1 << 63
