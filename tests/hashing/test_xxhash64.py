"""XXH64 tests: the published empty-input vector + structural properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.xxhash64 import xxhash64


class TestVectors:
    def test_empty_seed0(self):
        assert xxhash64(b"", 0) == 0xEF46DB3751D8E999


class TestStructure:
    def test_deterministic(self):
        data = b"xxhash test input"
        assert xxhash64(data, 3) == xxhash64(data, 3)

    def test_seed_sensitivity(self):
        assert xxhash64(b"abc", 0) != xxhash64(b"abc", 1)

    @given(st.binary(max_size=100))
    def test_range(self, data):
        assert 0 <= xxhash64(data) < 1 << 64

    def test_all_length_paths(self):
        """Lengths 0..64 cover the <32 path, 8/4/1-byte tails, and blocks."""
        digests = {xxhash64(b"q" * i) for i in range(65)}
        assert len(digests) == 65

    def test_avalanche(self):
        flips = 0
        samples = 100
        for i in range(samples):
            a = xxhash64(i.to_bytes(8, "little"))
            b = xxhash64((i ^ 1).to_bytes(8, "little"))
            flips += bin(a ^ b).count("1")
        assert 24 < flips / samples < 40

    def test_long_input_block_path(self):
        data = bytes(range(256)) * 4
        assert xxhash64(data) != xxhash64(data[:-1])
