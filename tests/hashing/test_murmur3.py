"""MurmurHash3 tests: published x86-32 vectors + structural properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.murmur3 import murmur3_64, murmur3_x64_128, murmur3_x86_32


class TestX86_32Vectors:
    """Widely published reference vectors for the 32-bit variant, which
    shares tail handling and finalization structure with the 128-bit one."""

    def test_empty_seed0(self):
        assert murmur3_x86_32(b"", 0) == 0x00000000

    def test_empty_seed1(self):
        assert murmur3_x86_32(b"", 1) == 0x514E28B7

    def test_empty_seed_ffffffff(self):
        assert murmur3_x86_32(b"", 0xFFFFFFFF) == 0x81F16F39

    def test_incremental_lengths_differ(self):
        digests = {murmur3_x86_32(b"a" * i, 0) for i in range(32)}
        assert len(digests) == 32


class TestX64_128:
    def test_empty_seed0_is_zero(self):
        # h1 = h2 = 0, no blocks, fmix64(0) == 0 -> (0, 0).
        assert murmur3_x64_128(b"", 0) == (0, 0)

    def test_deterministic(self):
        assert murmur3_x64_128(b"hello world") == murmur3_x64_128(b"hello world")

    def test_seed_changes_output(self):
        assert murmur3_x64_128(b"hello", 0) != murmur3_x64_128(b"hello", 1)

    @given(st.binary(max_size=64))
    def test_output_ranges(self, data):
        h1, h2 = murmur3_x64_128(data)
        assert 0 <= h1 < 1 << 64
        assert 0 <= h2 < 1 << 64

    def test_all_tail_lengths(self):
        """Every tail length 0..16 takes a distinct code path."""
        digests = {murmur3_x64_128(b"x" * i, 7) for i in range(40)}
        assert len(digests) == 40

    def test_block_boundary_sensitivity(self):
        base = b"0123456789abcdef" * 2  # two full 16-byte blocks
        assert murmur3_x64_128(base) != murmur3_x64_128(base[:-1] + b"g")

    def test_avalanche(self):
        flips = 0
        samples = 100
        for i in range(samples):
            data = i.to_bytes(8, "little")
            tweaked = (i ^ 1).to_bytes(8, "little")
            flips += bin(murmur3_64(data) ^ murmur3_64(tweaked)).count("1")
        assert 24 < flips / samples < 40

    def test_uniformity_of_low_bits(self):
        """Low 8 bits should be close to uniform over many inputs."""
        buckets = [0] * 256
        for i in range(25600):
            buckets[murmur3_64(i.to_bytes(8, "little")) & 0xFF] += 1
        expected = 100
        chi2 = sum((c - expected) ** 2 / expected for c in buckets)
        # 255 dof; mean 255, sd ~22.6; allow generous 5-sigma band.
        assert chi2 < 400

    def test_murmur3_64_is_low_lane(self):
        data = b"The quick brown fox"
        assert murmur3_64(data, 5) == murmur3_x64_128(data, 5)[0]
