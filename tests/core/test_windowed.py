"""Sliding-window distinct counting."""

import pytest

from repro.windowed import SlidingWindowDistinctCounter


class TestBasics:
    def test_empty(self):
        counter = SlidingWindowDistinctCounter(window=60.0)
        assert counter.estimate(now=100.0) == 0.0

    def test_single_bucket_counts(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=10)
        for i in range(1000):
            counter.add(f"user-{i}", at=5.0)
        assert counter.estimate(now=5.0) == pytest.approx(1000, rel=0.1)

    def test_duplicates_across_buckets_not_double_counted(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=10)
        for at in (0.0, 15.0, 30.0, 45.0):
            for i in range(500):
                counter.add(f"user-{i}", at=at)
        assert counter.estimate(now=45.0) == pytest.approx(500, rel=0.1, abs=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowDistinctCounter(window=0.0)
        with pytest.raises(ValueError):
            SlidingWindowDistinctCounter(window=10.0, buckets=0)


class TestExpiry:
    def test_old_items_leave_the_window(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=10)
        for i in range(1000):
            counter.add(f"old-{i}", at=0.0)
        for i in range(100):
            counter.add(f"new-{i}", at=300.0)
        assert counter.estimate(now=300.0) == pytest.approx(100, rel=0.15, abs=3)

    def test_memory_bounded(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=4, p=6)
        for step in range(200):
            counter.add(f"item-{step}", at=float(step * 10))
        assert counter.active_buckets <= 5
        assert counter.memory_bytes <= 5 * (16 + 224)

    def test_partial_expiry(self):
        """Items age out bucket by bucket."""
        counter = SlidingWindowDistinctCounter(window=40.0, buckets=4, p=10)
        for i in range(400):
            counter.add(f"a-{i}", at=5.0)   # bucket 0
        for i in range(400):
            counter.add(f"b-{i}", at=35.0)  # bucket 3
        # At now=45 bucket 0 has left the window (buckets 1..4).
        assert counter.estimate(now=45.0) == pytest.approx(400, rel=0.15)
        # At now=35 both are covered.
        assert counter.estimate(now=35.0) == pytest.approx(800, rel=0.12)


class TestQueries:
    def test_per_bucket_breakdown(self):
        counter = SlidingWindowDistinctCounter(window=30.0, buckets=3, p=10)
        for i in range(300):
            counter.add(f"x-{i}", at=1.0)
        for i in range(600):
            counter.add(f"y-{i}", at=11.0)
        breakdown = dict(counter.estimate_per_bucket(now=21.0))
        assert breakdown[0] == pytest.approx(300, rel=0.15)
        assert breakdown[1] == pytest.approx(600, rel=0.15)

    def test_per_bucket_breakdown_is_bit_identical_to_scalar(self):
        """The batched per-bucket solve equals per-sketch ``estimate()``.

        ``estimate_per_bucket`` routes every live bucket through one
        simultaneous Newton solve; the floats must be *bit*-identical to
        estimating each bucket sketch on its own, not just close.
        """
        import numpy as np

        rng = np.random.Generator(np.random.PCG64(21))
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=8)
        for at in (1.0, 11.0, 21.0, 31.0, 41.0, 51.0):
            size = int(rng.integers(1, 2000))
            counter.add_batch(
                rng.integers(0, 1 << 62, size=size, dtype=np.int64), at=at
            )
        batched = counter.estimate_per_bucket(now=51.0)
        assert len(batched) == counter.active_buckets
        for bucket, value in batched:
            assert value == counter._sketches[bucket].estimate(), (
                f"bucket {bucket}: batched estimate is not bit-identical"
            )

    def test_per_bucket_empty_window(self):
        counter = SlidingWindowDistinctCounter(window=30.0, buckets=3, p=8)
        assert counter.estimate_per_bucket(now=10.0) == []
        counter.add("x", at=5.0)
        assert counter.estimate_per_bucket(now=1000.0) == []  # all expired

    def test_out_of_order_arrival(self):
        counter = SlidingWindowDistinctCounter(window=30.0, buckets=3, p=10)
        counter.add("late", at=25.0)
        counter.add("early", at=5.0)
        assert counter.estimate(now=25.0) == pytest.approx(2.0, abs=0.5)

    def test_repr(self):
        assert "active=0" in repr(SlidingWindowDistinctCounter(window=10.0))


class TestExpiredBucketRegression:
    """Late events older than the window must hit an explicit skip path.

    Regression: ``_sketch_for`` used to create a sketch for an expired
    bucket, evict it immediately, and hand the detached sketch back —
    writes landed in state that was silently discarded (and every
    creation re-sorted the whole bucket dict).
    """

    def _counter(self):
        counter = SlidingWindowDistinctCounter(window=50.0, buckets=5, p=6)
        for i in range(200):
            counter.add(f"live-{i}", at=1000.0 + (i % 5) * 10.0)
        return counter

    def test_sketch_for_expired_bucket_is_none(self):
        counter = self._counter()
        assert counter._sketch_for(0) is None
        assert counter._sketch_for(counter._bucket_of(10.0)) is None

    def test_expired_add_leaves_state_unchanged(self):
        counter = self._counter()
        sketches = counter._sketches
        before = (
            counter.active_buckets,
            counter.memory_bytes,
            counter.estimate(now=1040.0),
            {bucket: sketch.to_bytes() for bucket, sketch in sketches.items()},
        )
        for i in range(50):
            counter.add(f"ancient-{i}", at=float(i))
        after = (
            counter.active_buckets,
            counter.memory_bytes,
            counter.estimate(now=1040.0),
            {bucket: sketch.to_bytes() for bucket, sketch in counter._sketches.items()},
        )
        assert after == before
        # No re-sort churn either: the bucket dict is never rebound.
        assert counter._sketches is sketches

    def test_scalar_and_bulk_drop_expired_identically(self):
        import numpy as np

        rng = np.random.Generator(np.random.PCG64(12))
        items = rng.integers(0, 1 << 62, size=2000, dtype=np.int64)
        # Half recent, half far older than the window, interleaved unsorted.
        times = np.where(
            rng.uniform(size=2000) < 0.5,
            rng.uniform(950.0, 1050.0, size=2000),
            rng.uniform(0.0, 100.0, size=2000),
        )
        scalar = SlidingWindowDistinctCounter(window=50.0, buckets=5, p=6)
        for i in range(200):
            scalar.add(f"live-{i}", at=1000.0 + (i % 5) * 10.0)
        bulk = SlidingWindowDistinctCounter(window=50.0, buckets=5, p=6)
        for i in range(200):
            bulk.add(f"live-{i}", at=1000.0 + (i % 5) * 10.0)

        from repro.hashing import hash64

        for item, at in zip(items.tolist(), times.tolist()):
            scalar.add_hash(hash64(item, 0), at)
        bulk.add_batch(items, at=times)

        assert {
            bucket: sketch.to_bytes() for bucket, sketch in bulk._sketches.items()
        } == {bucket: sketch.to_bytes() for bucket, sketch in scalar._sketches.items()}
        assert bulk.estimate(now=1050.0) == scalar.estimate(now=1050.0)

    def test_whole_expired_batch_scalar_timestamp(self):
        counter = self._counter()
        before = {b: s.to_bytes() for b, s in counter._sketches.items()}
        import numpy as np

        counter.add_batch(np.arange(500, dtype=np.int64), at=3.0)
        assert {b: s.to_bytes() for b, s in counter._sketches.items()} == before

    def test_out_of_order_in_window_creation_keeps_sorted_order(self):
        counter = SlidingWindowDistinctCounter(window=50.0, buckets=5, p=6)
        counter.add("newest", at=100.0)
        counter.add("late-but-live", at=70.0)  # older bucket, still in window
        counter.add("middle", at=85.0)
        buckets = list(counter._sketches)
        assert buckets == sorted(buckets)
        assert counter.estimate(now=100.0) == pytest.approx(3.0, abs=0.5)


class TestBulkIngestion:
    """add_batch/add_hashes must equal the sequential add loop exactly."""

    def _reference(self, pairs, **kwargs):
        counter = SlidingWindowDistinctCounter(**kwargs)
        for item, at in pairs:
            counter.add(item, at=at)
        return counter

    @staticmethod
    def _state(counter):
        return {
            bucket: sketch.to_bytes()
            for bucket, sketch in counter._sketches.items()
        }

    def test_scalar_timestamp_batch(self):
        import numpy as np

        items = np.arange(500, dtype=np.int64)
        reference = self._reference(
            [(int(i), 7.0) for i in items], window=60.0, buckets=6, p=6
        )
        bulk = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=6)
        bulk.add_batch(items, at=7.0)
        assert self._state(bulk) == self._state(reference)

    def test_per_item_timestamps_with_expiry(self):
        import numpy as np

        rng = np.random.Generator(np.random.PCG64(8))
        items = rng.integers(0, 1 << 62, size=3000, dtype=np.int64)
        times = np.sort(rng.uniform(0.0, 500.0, size=3000))
        reference = self._reference(
            zip(items.tolist(), times.tolist()), window=60.0, buckets=6, p=6
        )
        bulk = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=6)
        bulk.add_batch(items, at=times)
        assert self._state(bulk) == self._state(reference)
        assert bulk.estimate(now=500.0) == reference.estimate(now=500.0)

    def test_out_of_order_timestamps(self):
        import numpy as np

        rng = np.random.Generator(np.random.PCG64(9))
        items = rng.integers(0, 1 << 62, size=2000, dtype=np.int64)
        times = rng.uniform(0.0, 300.0, size=2000)  # unsorted
        reference = self._reference(
            zip(items.tolist(), times.tolist()), window=50.0, buckets=5, p=6
        )
        bulk = SlidingWindowDistinctCounter(window=50.0, buckets=5, p=6)
        bulk.add_batch(items, at=times)
        assert self._state(bulk) == self._state(reference)

    def test_chunked_equals_single_batch(self):
        import numpy as np

        rng = np.random.Generator(np.random.PCG64(10))
        items = rng.integers(0, 1 << 62, size=1500, dtype=np.int64)
        times = np.sort(rng.uniform(0.0, 200.0, size=1500))
        single = SlidingWindowDistinctCounter(window=40.0, buckets=4, p=6)
        single.add_batch(items, at=times)
        chunked = SlidingWindowDistinctCounter(window=40.0, buckets=4, p=6)
        for start in range(0, 1500, 250):
            chunked.add_batch(items[start : start + 250], at=times[start : start + 250])
        assert self._state(chunked) == self._state(single)

    def test_length_mismatch_raises(self):
        import numpy as np

        counter = SlidingWindowDistinctCounter(window=10.0)
        with pytest.raises(ValueError):
            counter.add_hashes(
                np.array([1, 2, 3], dtype=np.uint64), at=np.array([1.0, 2.0])
            )
