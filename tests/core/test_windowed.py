"""Sliding-window distinct counting."""

import pytest

from repro.windowed import SlidingWindowDistinctCounter


class TestBasics:
    def test_empty(self):
        counter = SlidingWindowDistinctCounter(window=60.0)
        assert counter.estimate(now=100.0) == 0.0

    def test_single_bucket_counts(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=10)
        for i in range(1000):
            counter.add(f"user-{i}", at=5.0)
        assert counter.estimate(now=5.0) == pytest.approx(1000, rel=0.1)

    def test_duplicates_across_buckets_not_double_counted(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=10)
        for at in (0.0, 15.0, 30.0, 45.0):
            for i in range(500):
                counter.add(f"user-{i}", at=at)
        assert counter.estimate(now=45.0) == pytest.approx(500, rel=0.1, abs=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowDistinctCounter(window=0.0)
        with pytest.raises(ValueError):
            SlidingWindowDistinctCounter(window=10.0, buckets=0)


class TestExpiry:
    def test_old_items_leave_the_window(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=10)
        for i in range(1000):
            counter.add(f"old-{i}", at=0.0)
        for i in range(100):
            counter.add(f"new-{i}", at=300.0)
        assert counter.estimate(now=300.0) == pytest.approx(100, rel=0.15, abs=3)

    def test_memory_bounded(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=4, p=6)
        for step in range(200):
            counter.add(f"item-{step}", at=float(step * 10))
        assert counter.active_buckets <= 5
        assert counter.memory_bytes <= 5 * (16 + 224)

    def test_partial_expiry(self):
        """Items age out bucket by bucket."""
        counter = SlidingWindowDistinctCounter(window=40.0, buckets=4, p=10)
        for i in range(400):
            counter.add(f"a-{i}", at=5.0)   # bucket 0
        for i in range(400):
            counter.add(f"b-{i}", at=35.0)  # bucket 3
        # At now=45 bucket 0 has left the window (buckets 1..4).
        assert counter.estimate(now=45.0) == pytest.approx(400, rel=0.15)
        # At now=35 both are covered.
        assert counter.estimate(now=35.0) == pytest.approx(800, rel=0.12)


class TestQueries:
    def test_per_bucket_breakdown(self):
        counter = SlidingWindowDistinctCounter(window=30.0, buckets=3, p=10)
        for i in range(300):
            counter.add(f"x-{i}", at=1.0)
        for i in range(600):
            counter.add(f"y-{i}", at=11.0)
        breakdown = dict(counter.estimate_per_bucket(now=21.0))
        assert breakdown[0] == pytest.approx(300, rel=0.15)
        assert breakdown[1] == pytest.approx(600, rel=0.15)

    def test_out_of_order_arrival(self):
        counter = SlidingWindowDistinctCounter(window=30.0, buckets=3, p=10)
        counter.add("late", at=25.0)
        counter.add("early", at=5.0)
        assert counter.estimate(now=25.0) == pytest.approx(2.0, abs=0.5)

    def test_repr(self):
        assert "active=0" in repr(SlidingWindowDistinctCounter(window=10.0))
