"""DistinctCountAggregator.add_batch: exact vs per-item, round-trippable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregate import DistinctCountAggregator


def make_pairs(count: int, groups: int, seed: int = 0):
    rng = np.random.Generator(np.random.PCG64(seed))
    keys = [f"group-{int(g)}" for g in rng.integers(0, groups, size=count)]
    items = rng.integers(0, 1 << 63, size=count, dtype=np.int64)
    return keys, items


@pytest.mark.parametrize("sparse", [True, False], ids=["sparse", "dense"])
def test_add_batch_matches_per_item_add_exactly(sparse):
    keys, items = make_pairs(5000, 12, seed=1)
    one_by_one = DistinctCountAggregator(t=2, d=20, p=6, sparse=sparse)
    for key, item in zip(keys, items.tolist()):
        one_by_one.add(key, item)
    batched = DistinctCountAggregator(t=2, d=20, p=6, sparse=sparse)
    batched.add_batch(keys, items)
    assert batched == one_by_one
    assert batched.estimates() == one_by_one.estimates()
    assert batched.to_bytes() == one_by_one.to_bytes()


def test_add_batch_round_trips_through_serialization():
    keys, items = make_pairs(4000, 8, seed=2)
    aggregator = DistinctCountAggregator(t=2, d=20, p=6)
    aggregator.add_batch(keys, items)
    restored = DistinctCountAggregator.from_bytes(aggregator.to_bytes())
    assert restored == aggregator
    assert restored.estimates() == aggregator.estimates()
    assert restored.to_bytes() == aggregator.to_bytes()


def test_add_batch_incremental_equals_single_batch():
    keys, items = make_pairs(3000, 5, seed=3)
    single = DistinctCountAggregator().add_batch(keys, items)
    incremental = DistinctCountAggregator()
    for start in range(0, len(keys), 500):
        incremental.add_batch(keys[start : start + 500], items[start : start + 500])
    assert incremental == single


def test_add_batch_mixed_with_add_and_merge():
    keys, items = make_pairs(2000, 6, seed=4)
    reference = DistinctCountAggregator()
    for key, item in zip(keys, items.tolist()):
        reference.add(key, item)
    left = DistinctCountAggregator().add_batch(keys[:1000], items[:1000])
    right = DistinctCountAggregator().add_batch(keys[1000:], items[1000:])
    assert left.merge(right) == reference


def test_add_pairs_routes_through_batch():
    keys, items = make_pairs(800, 4, seed=5)
    via_pairs = DistinctCountAggregator().add_pairs(zip(keys, items.tolist()))
    via_batch = DistinctCountAggregator().add_batch(keys, items)
    assert via_pairs == via_batch


def test_add_batch_length_mismatch_raises():
    with pytest.raises(ValueError):
        DistinctCountAggregator().add_batch(["a", "b"], np.array([1], dtype=np.int64))


def test_add_batch_empty_is_identity():
    aggregator = DistinctCountAggregator().add_batch([], np.empty(0, dtype=np.int64))
    assert len(aggregator) == 0


def test_add_batch_heterogeneous_group_keys():
    keys = ["de", b"at", 7, 7.0, "de"] * 100
    items = np.arange(500, dtype=np.int64)
    reference = DistinctCountAggregator()
    for key, item in zip(keys, items.tolist()):
        reference.add(key, item)
    assert DistinctCountAggregator().add_batch(keys, items) == reference


def test_add_batch_ndarray_group_keys():
    rng = np.random.Generator(np.random.PCG64(6))
    keys = rng.integers(0, 5, size=400)
    items = rng.integers(0, 1 << 40, size=400, dtype=np.int64)
    reference = DistinctCountAggregator()
    for key, item in zip(keys.tolist(), items.tolist()):
        reference.add(key, item)
    assert DistinctCountAggregator().add_batch(keys, items) == reference
