"""Hash tokens (paper Sec. 4.3, Alg. 7)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exaloglog import ExaLogLog
from repro.core.params import make_params
from repro.core.token import (
    estimate_from_tokens,
    hash_to_token,
    rho_token,
    token_bits,
    token_bytes,
    token_coefficients,
    token_to_hash,
)
from tests.conftest import random_hashes

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestTokenMapping:
    def test_token_bits(self):
        assert token_bits(26) == 32
        assert token_bytes(26) == 4
        assert token_bytes(10) == 2

    def test_v_bounds(self):
        with pytest.raises(ValueError):
            hash_to_token(0, 0)
        with pytest.raises(ValueError):
            hash_to_token(0, 59)

    @given(u64, st.sampled_from([1, 6, 10, 26, 58]))
    @settings(max_examples=200)
    def test_token_range(self, h, v):
        token = hash_to_token(h, v)
        assert 0 <= token < (1 << (v + 6))
        assert token & 63 <= 64 - v

    @given(u64, st.sampled_from([6, 10, 26]))
    @settings(max_examples=200)
    def test_tokenisation_idempotent_through_reconstruction(self, h, v):
        """token(reconstruct(token(h))) == token(h)."""
        token = hash_to_token(h, v)
        assert hash_to_token(token_to_hash(token, v), v) == token

    @given(u64, u64)
    @settings(max_examples=150)
    def test_equal_hashes_equal_tokens(self, a, b):
        v = 26
        if a == b:
            assert hash_to_token(a, v) == hash_to_token(b, v)

    def test_reconstruction_validation(self):
        with pytest.raises(ValueError):
            token_to_hash((64 - 6 + 1), 10)  # NLZ field too large for v


class TestInsertionEquivalence:
    """Sec. 4.3: reconstructed hashes are equivalent for insertion into
    any ELL sketch with p + t <= v."""

    @pytest.mark.parametrize(
        "params,v",
        [
            (make_params(2, 20, 8), 26),
            (make_params(2, 20, 8), 10),   # exactly p + t = v
            (make_params(1, 9, 5), 6),
            (make_params(0, 2, 6), 8),
        ],
        ids=lambda x: str(x),
    )
    def test_state_equality(self, params, v):
        hashes = random_hashes(21, 3000)
        direct = ExaLogLog.from_params(params)
        via_tokens = ExaLogLog.from_params(params)
        for h in hashes:
            direct.add_hash(h)
            via_tokens.add_hash(token_to_hash(hash_to_token(h, v), v))
        assert direct == via_tokens


class TestTokenPmf:
    @pytest.mark.parametrize("v", [1, 4, 6, 10])
    def test_normalised(self, v):
        """Eq. (25): the token PMF sums to one over all tokens."""
        total = sum(rho_token(w, v) for w in range(1 << (v + 6)))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_invalid_tokens_zero(self):
        v = 10
        # NLZ field larger than 64 - v cannot occur.
        impossible = ((1 << v) - 1) << 6 | (64 - v + 1)
        assert rho_token(impossible, v) == 0.0

    def test_empirical_token_distribution(self):
        import collections
        import random as pyrandom

        v = 3  # tiny so every token accumulates counts (but >= MIN_V)
        generator = pyrandom.Random(2)
        counts: collections.Counter = collections.Counter()
        samples = 200000
        for _ in range(samples):
            counts[hash_to_token(generator.getrandbits(64), v)] += 1
        for token, count in counts.most_common(8):
            assert count / samples == pytest.approx(rho_token(token, v), rel=0.05)


class TestTokenEstimation:
    def test_coefficients_alpha_range(self):
        hashes = random_hashes(5, 1000)
        tokens = {hash_to_token(h, 26) for h in hashes}
        alpha, beta = token_coefficients(tokens, 26)
        assert 0.0 < alpha <= 1.0
        assert sum(beta.values()) == len(tokens)

    def test_empty_set_estimates_zero(self):
        assert estimate_from_tokens([], 26) == 0.0

    @pytest.mark.parametrize("v", [10, 18, 26])
    @pytest.mark.parametrize("n", [1, 10, 100, 2000])
    def test_estimate_accuracy(self, v, n):
        hashes = random_hashes(n * 31 + v, n)
        tokens = {hash_to_token(h, v) for h in hashes}
        estimate = estimate_from_tokens(tokens, v)
        # Figure 9: token error is tiny for n far below 2**v.
        sigma = max(3.0 * math.sqrt(n * n / (2 ** v)) + 3.0, 0.05 * n)
        assert abs(estimate - n) <= sigma

    def test_estimate_better_than_matched_sketch(self):
        """Sec. 5.1: token sets behave like an ELL with d -> infinity, so
        the error should not exceed that of a matching sketch setup."""
        n = 5000
        v = 12
        errors_tokens = []
        for seed in range(20):
            hashes = random_hashes(seed, n)
            tokens = {hash_to_token(h, v) for h in hashes}
            errors_tokens.append(estimate_from_tokens(tokens, v) / n - 1.0)
        rmse = math.sqrt(sum(e * e for e in errors_tokens) / len(errors_tokens))
        # RMSE for v=12 at n=5000 is ~1.1 % in Figure 9; allow slack.
        assert rmse < 0.03
