"""Reducibility (paper Alg. 6): reduction must equal direct recording."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exaloglog import ExaLogLog
from repro.core.params import make_params
from repro.core.reduction import reduce_registers
from tests.conftest import random_hashes

hash_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=400
)


def filled(params, hashes):
    sketch = ExaLogLog.from_params(params)
    for h in hashes:
        sketch.add_hash(h)
    return sketch


class TestReduceEqualsDirect:
    """The paper's own validation strategy (Sec. 5): insert identical
    elements into two differently configured sketches and compare after
    reduction to common parameters."""

    @pytest.mark.parametrize(
        "t,d,p,d2,p2",
        [
            (2, 20, 8, 20, 8),   # no-op
            (2, 20, 8, 16, 8),   # d only
            (2, 20, 8, 20, 5),   # p only
            (2, 20, 8, 12, 4),   # both
            (2, 20, 8, 0, 3),    # down to d = 0
            (1, 9, 7, 4, 3),
            (0, 2, 8, 1, 4),     # ULL -> EHLL-style
            (0, 2, 8, 0, 2),     # minimal target precision
            (3, 5, 6, 2, 4),
        ],
    )
    def test_matches_direct_recording(self, t, d, p, d2, p2):
        hashes = random_hashes(hash((t, d, p, d2, p2)) & 0xFFFF, 3000)
        big = filled(make_params(t, d, p), hashes)
        small = filled(make_params(t, d2, p2), hashes)
        assert big.reduce(d=d2, p=p2) == small

    @given(hash_lists, st.integers(0, 16), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_property_random_targets(self, hashes, d2, p2):
        source = make_params(2, 16, 6)
        target_d = min(d2, source.d)
        target_p = min(p2, source.p)
        big = filled(source, hashes)
        small = filled(make_params(2, target_d, target_p), hashes)
        assert big.reduce(d=target_d, p=target_p) == small

    def test_reduction_near_saturation(self):
        """Registers with maximal NLZ exercise Alg. 6's u >= a branch."""
        params = make_params(2, 8, 6)
        sketch = ExaLogLog.from_params(params)
        direct = ExaLogLog(2, 8, 3)
        # Hashes with long runs of leading zeros (tiny values).
        for h in range(200):
            sketch.add_hash(h)
            direct.add_hash(h)
        assert sketch.reduce(p=3) == direct


class TestReduceProperties:
    def test_two_step_equals_one_step(self):
        hashes = random_hashes(12, 2000)
        sketch = filled(make_params(2, 20, 8), hashes)
        direct = sketch.reduce(d=10, p=4)
        staged = sketch.reduce(d=16, p=6).reduce(d=10, p=4)
        assert staged == direct

    def test_reduce_then_merge_commutes(self):
        hashes = random_hashes(13, 2000)
        a = filled(make_params(2, 20, 8), hashes[:1200])
        b = filled(make_params(2, 20, 8), hashes[800:])
        reduced_then_merged = a.reduce(d=12, p=5).merge(b.reduce(d=12, p=5))
        merged_then_reduced = a.merge(b).reduce(d=12, p=5)
        assert reduced_then_merged == merged_then_reduced

    def test_noop_returns_copy(self):
        sketch = filled(make_params(2, 20, 5), random_hashes(14, 100))
        clone = sketch.reduce()
        assert clone == sketch
        assert clone is not sketch

    def test_estimates_consistent_after_reduction(self):
        hashes = random_hashes(15, 20000)
        sketch = filled(make_params(2, 20, 9), hashes)
        reduced = sketch.reduce(p=6)
        assert reduced.estimate() == pytest.approx(20000, rel=0.25)

    def test_rejects_growth(self):
        sketch = ExaLogLog(2, 16, 6)
        with pytest.raises(ValueError):
            sketch.reduce(d=20)
        with pytest.raises(ValueError):
            sketch.reduce(p=8)

    def test_raw_register_validation(self):
        with pytest.raises(ValueError):
            reduce_registers([0] * 3, 2, 20, 8, 16, 4)  # wrong register count
        with pytest.raises(ValueError):
            reduce_registers([0] * 4, 2, 4, 2, 8, 2)  # d grows
