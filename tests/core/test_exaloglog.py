"""ExaLogLog sketch: insertion, merging, serialization, estimation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exaloglog import ExaLogLog
from repro.core.params import make_params
from repro.storage.serialization import SerializationError
from tests.conftest import PAPER_PARAMS, random_hashes

hash_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=300
)


def filled(params, hashes):
    sketch = ExaLogLog.from_params(params)
    for h in hashes:
        sketch.add_hash(h)
    return sketch


class TestBasics:
    def test_empty(self):
        sketch = ExaLogLog(2, 20, 8)
        assert sketch.is_empty
        assert sketch.estimate() == 0.0
        assert sketch.m == 256

    def test_add_returns_self(self):
        sketch = ExaLogLog(2, 20, 4)
        assert sketch.add("x") is sketch

    def test_add_all(self):
        sketch = ExaLogLog(2, 20, 8).add_all(["a", "b", "c"])
        assert not sketch.is_empty

    def test_repr(self):
        assert "t=2" in repr(ExaLogLog(2, 20, 8))

    def test_equality(self):
        a = ExaLogLog(2, 20, 4).add("x")
        b = ExaLogLog(2, 20, 4).add("x")
        c = ExaLogLog(2, 20, 4).add("y")
        assert a == b
        assert a != c
        assert a != "not a sketch"

    def test_copy_is_independent(self):
        a = ExaLogLog(2, 20, 4).add("x")
        b = a.copy()
        b.add("y")
        assert a != b

    def test_from_registers_validation(self):
        params = make_params(2, 20, 4)
        with pytest.raises(ValueError):
            ExaLogLog.from_registers(params, [0] * 3)
        with pytest.raises(ValueError):
            ExaLogLog.from_registers(params, [-1] * params.m)
        with pytest.raises(ValueError):
            ExaLogLog.from_registers(
                params, [params.max_register_value + 1] * params.m
            )


class TestIdempotency:
    """Paper Sec. 1: further insertions of the same element never change
    the state."""

    @given(hash_lists)
    @settings(max_examples=60)
    def test_duplicate_stream(self, hashes):
        params = make_params(2, 16, 4)
        once = filled(params, hashes)
        twice = filled(params, hashes + hashes)
        assert once == twice

    def test_add_hash_change_flag(self):
        sketch = ExaLogLog(2, 20, 4)
        h = 0xDEADBEEFCAFEBABE
        assert sketch.add_hash(h) is True
        assert sketch.add_hash(h) is False


class TestCommutativity:
    """Paper Sec. 1 reproducibility: order never matters."""

    @given(hash_lists)
    @settings(max_examples=60)
    def test_reversed_stream(self, hashes):
        params = make_params(1, 9, 4)
        assert filled(params, hashes) == filled(params, list(reversed(hashes)))


class TestMerge:
    @given(hash_lists, hash_lists)
    @settings(max_examples=60)
    def test_merge_equals_union(self, left, right):
        params = make_params(2, 16, 4)
        merged = filled(params, left).merge(filled(params, right))
        assert merged == filled(params, left + right)

    @given(hash_lists, hash_lists)
    @settings(max_examples=40)
    def test_merge_commutative(self, left, right):
        params = make_params(2, 20, 4)
        a, b = filled(params, left), filled(params, right)
        assert a.merge(b) == b.merge(a)

    def test_or_operator(self):
        params = make_params(2, 20, 4)
        hashes = random_hashes(1, 100)
        a = filled(params, hashes[:50])
        b = filled(params, hashes[50:])
        assert (a | b) == filled(params, hashes)

    def test_merge_mixed_parameters_reduces(self):
        hashes = random_hashes(2, 500)
        coarse = filled(make_params(2, 16, 4), hashes[:300])
        fine = filled(make_params(2, 20, 6), hashes[200:])
        merged = coarse.merge(fine)
        assert merged.params == make_params(2, 16, 4)
        assert merged == filled(make_params(2, 16, 4), hashes)

    def test_merge_requires_same_t(self):
        with pytest.raises(ValueError):
            ExaLogLog(2, 20, 4).merge(ExaLogLog(1, 9, 4))

    def test_merge_inplace_requires_same_params(self):
        with pytest.raises(ValueError):
            ExaLogLog(2, 20, 4).merge_inplace(ExaLogLog(2, 20, 6))

    def test_merge_rejects_foreign_type(self):
        with pytest.raises(TypeError):
            ExaLogLog(2, 20, 4).merge("nope")  # type: ignore[arg-type]


class TestSerialization:
    @pytest.mark.parametrize("params", PAPER_PARAMS, ids=str)
    def test_roundtrip(self, params):
        sketch = filled(params, random_hashes(3, 2000))
        data = sketch.to_bytes()
        assert len(data) == sketch.serialized_size_bytes
        assert ExaLogLog.from_bytes(data) == sketch

    def test_empty_roundtrip(self):
        sketch = ExaLogLog(2, 20, 8)
        assert ExaLogLog.from_bytes(sketch.to_bytes()) == sketch

    def test_register_array_bytes_matches_paper(self):
        """Table 2: ELL(2,20,p=8) register array = 896 bytes."""
        assert ExaLogLog(2, 20, 8).register_array_bytes == 896
        assert ExaLogLog(2, 24, 8).register_array_bytes == 1024

    def test_truncated_rejected(self):
        data = ExaLogLog(2, 20, 4).to_bytes()
        with pytest.raises(SerializationError):
            ExaLogLog.from_bytes(data[:-1])

    def test_foreign_data_rejected(self):
        with pytest.raises(SerializationError):
            ExaLogLog.from_bytes(b"garbage-bytes-here")


class TestEstimation:
    @pytest.mark.parametrize("n", [1, 10, 100, 1000])
    def test_small_counts_accurate(self, n):
        sketch = filled(make_params(2, 20, 8), random_hashes(n, n))
        assert sketch.estimate() == pytest.approx(n, rel=0.15, abs=1.5)

    def test_large_count_within_theory(self):
        params = make_params(2, 20, 8)
        n = 50000
        sketch = filled(params, random_hashes(77, n))
        # Theoretical relative standard error ~2.26 %; allow 5 sigma.
        assert sketch.estimate() == pytest.approx(n, rel=0.12)

    def test_estimate_monotone_under_more_elements(self):
        """More distinct elements never decrease the register values."""
        params = make_params(2, 16, 4)
        sketch = ExaLogLog.from_params(params)
        previous = tuple(sketch.registers)
        for h in random_hashes(5, 400):
            sketch.add_hash(h)
            current = tuple(sketch.registers)
            assert all(c >= p for c, p in zip(current, previous))
            previous = current

    def test_state_change_probability_decreases(self):
        sketch = ExaLogLog(2, 20, 4)
        assert sketch.state_change_probability() == pytest.approx(1.0)
        for h in random_hashes(6, 2000):
            sketch.add_hash(h)
        assert sketch.state_change_probability() < 0.5

    def test_bias_correction_shrinks_estimate(self):
        sketch = filled(make_params(2, 20, 4), random_hashes(9, 3000))
        assert sketch.estimate(bias_correction=True) < sketch.estimate(
            bias_correction=False
        )


class TestHashConsumption:
    def test_different_seeds_give_different_states(self):
        a = ExaLogLog(2, 20, 4)
        b = ExaLogLog(2, 20, 4)
        for i in range(100):
            a.add(f"item-{i}", seed=0)
            b.add(f"item-{i}", seed=1)
        assert a != b
