"""``registers_array()`` cache coherence under every mutation interleaving.

The batch estimation engine reads registers through a cached int64 array
(fed by ``add_hashes``, invalidated by scalar mutators). A stale cache
would silently produce wrong estimates while every register test still
passes — so this suite drives interleaved mutation/query sequences and
asserts after *every* step that the cached array matches the live list
(and stays read-only), including through the aggregator and windowed
front ends.
"""

import numpy as np
import pytest

from repro.aggregate import DistinctCountAggregator
from repro.core.exaloglog import ExaLogLog
from repro.windowed import SlidingWindowDistinctCounter


def _hashes(seed, count):
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


def _assert_coherent(sketch):
    array = sketch.registers_array()
    assert array.tolist() == list(sketch._registers), (
        "registers_array() serves a matrix that differs from the registers"
    )
    assert not array.flags.writeable
    # The estimate must be computed from the *current* registers: compare
    # against a pristine sketch rebuilt from them (no cache to go stale).
    rebuilt = ExaLogLog.from_registers(sketch.params, list(sketch._registers))
    assert sketch.estimate() == rebuilt.estimate()


def test_add_hash_after_add_hashes_invalidates():
    sketch = ExaLogLog(2, 20, 6)
    sketch.add_hashes(_hashes(1, 500))
    _assert_coherent(sketch)
    for value in _hashes(2, 50).tolist():
        sketch.add_hash(value)
        _assert_coherent(sketch)


def test_merge_inplace_after_add_hashes_invalidates():
    sketch = ExaLogLog(2, 20, 6)
    sketch.add_hashes(_hashes(3, 400))
    _assert_coherent(sketch)
    other = ExaLogLog(2, 20, 6)
    other.add_hashes(_hashes(4, 400))
    sketch.merge_inplace(other)
    _assert_coherent(sketch)
    # ...and the merge source's cache must be untouched by the merge.
    _assert_coherent(other)


def test_interleaved_mutation_sequences():
    """add_hash / add_hashes / merge_inplace in every pairwise order."""
    sketch = ExaLogLog(2, 20, 6)
    other = ExaLogLog(2, 20, 6).add_hashes(_hashes(5, 300))
    steps = [
        lambda: sketch.add_hash(int(_hashes(6, 1)[0])),
        lambda: sketch.add_hashes(_hashes(7, 200)),
        lambda: sketch.merge_inplace(other),
        lambda: sketch.add_hashes(_hashes(8, 100)),
        lambda: sketch.add_hash(int(_hashes(9, 1)[0])),
        lambda: sketch.merge_inplace(other),
    ]
    for step in steps:
        step()
        _assert_coherent(sketch)


def test_estimate_between_every_mutation():
    """Calling estimate() (which *reads* the cache) never pins a stale one."""
    sketch = ExaLogLog(2, 20, 10)  # m = 1024: the batched fast path
    for round_index in range(5):
        sketch.add_hashes(_hashes(10 + round_index, 200))
        first = sketch.estimate()
        sketch.add_hash(int(_hashes(20 + round_index, 1)[0]))
        _assert_coherent(sketch)
        # A scalar mutation that changed registers must move the estimate
        # computation onto the new state (value may coincide, bytes not).
        assert sketch.estimate() == ExaLogLog.from_registers(
            sketch.params, list(sketch._registers)
        ).estimate()
        del first


def test_aggregator_paths_stay_coherent():
    """Mixed scalar add / add_batch / merge through the aggregator."""
    aggregator = DistinctCountAggregator(2, 20, 6, sparse=False)
    aggregator.add_batch(["a", "b", "a"], [1, 2, 3])
    aggregator.add("a", 4)
    other = DistinctCountAggregator(2, 20, 6, sparse=False)
    other.add_batch(["a", "c"], [5, 6])
    aggregator.merge_inplace(other)
    for sketch in aggregator._groups.values():
        _assert_coherent(sketch)
    batched = aggregator.estimates()
    for key, sketch in aggregator._groups.items():
        assert batched[key] == sketch.estimate()


def test_windowed_paths_stay_coherent():
    """Bulk + scalar adds and bucket eviction through the windowed counter."""
    counter = SlidingWindowDistinctCounter(window=10.0, buckets=4, p=6)
    counter.add_batch(list(range(100)), at=0.0)
    counter.add("late", at=1.0)
    counter.add_batch(list(range(100, 160)), at=4.0)
    counter.add("later", at=9.0)
    counter.add_batch(list(range(200, 230)), at=12.0)  # evicts the oldest bucket
    for sketch in counter._sketches.values():
        _assert_coherent(sketch)
    # Per-bucket and total estimates agree with pristine rebuilds.
    total = counter.estimate(now=12.0)
    assert total >= 0.0


def test_registers_array_is_shared_not_copied():
    """The cache exists to avoid conversions: repeated reads are the same
    object until a mutation, then a fresh one."""
    sketch = ExaLogLog(2, 20, 6)
    sketch.add_hashes(_hashes(42, 300))
    first = sketch.registers_array()
    assert sketch.registers_array() is first
    # A no-op insert (state unchanged) may keep the cache; force a real
    # state change and require a fresh array.
    changed = False
    for seed in range(43, 143):
        if sketch.add_hash(int(_hashes(seed, 1)[0])):
            changed = True
            break
    assert changed, "could not find a state-changing hash"
    second = sketch.registers_array()
    assert second is not first
    assert second.tolist() == list(sketch._registers)


def test_from_registers_and_copy_are_coherent():
    """Wholesale register replacement is detected by identity."""
    sketch = ExaLogLog(2, 20, 6).add_hashes(_hashes(44, 300))
    _assert_coherent(sketch)
    clone = sketch.copy()
    _assert_coherent(clone)
    clone.add_hash(int(_hashes(45, 1)[0]))
    _assert_coherent(clone)
    _assert_coherent(sketch)  # the original must not see the clone's write
