"""Vectorised batch insertion must equal sequential Algorithm 2."""

import numpy as np
import pytest

from repro.baselines.hyperloglog import HyperLogLog
from repro.baselines.pcsa import PCSA
from repro.baselines.spikesketch import SpikeSketch
from repro.core.batch import (
    exaloglog_state,
    hyperloglog_state,
    nlz64_array,
    ntz64_array,
    pcsa_state,
    spikesketch_state,
    split_hashes,
)
from repro.core.exaloglog import ExaLogLog
from repro.core.params import make_params
from tests.conftest import SMALL_PARAMS


def hashes_for(seed: int, count: int) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


class TestBitPrimitives:
    def test_nlz_matches_scalar(self):
        values = np.array(
            [0, 1, 2, 0b10110, 1 << 63, (1 << 64) - 1, 12345678901234567],
            dtype=np.uint64,
        )
        expected = [64 - int(v).bit_length() for v in values]
        assert nlz64_array(values).tolist() == expected

    def test_ntz_matches_scalar(self):
        values = np.array([0, 1, 2, 8, 1 << 63, 0xF0], dtype=np.uint64)
        def scalar_ntz(x):
            x = int(x)
            return 64 if x == 0 else (x & -x).bit_length() - 1
        assert ntz64_array(values).tolist() == [scalar_ntz(v) for v in values]

    def test_random_agreement(self):
        values = hashes_for(1, 5000)
        nlz = nlz64_array(values)
        for i in range(0, 5000, 271):
            assert nlz[i] == 64 - int(values[i]).bit_length()


class TestSplitHashes:
    @pytest.mark.parametrize("params", SMALL_PARAMS[:6], ids=str)
    def test_matches_scalar_split(self, params):
        from repro.core.distribution import update_value_from_hash

        hashes = hashes_for(2, 2000)
        index, k = split_hashes(hashes, params)
        for i in range(0, 2000, 97):
            expected = update_value_from_hash(int(hashes[i]), params)
            assert (int(index[i]), int(k[i])) == expected


class TestExaLogLogState:
    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
    def test_matches_sequential(self, params):
        hashes = hashes_for(3, 4000)
        sequential = ExaLogLog.from_params(params)
        for h in hashes.tolist():
            sequential.add_hash(h)
        assert exaloglog_state(hashes, params) == list(sequential.registers)

    def test_empty_batch(self):
        params = make_params(2, 20, 4)
        assert exaloglog_state(np.empty(0, dtype=np.uint64), params) == [0] * 16

    def test_hashes_with_leading_zero_runs(self):
        """Small integer 'hashes' hit the NLZ saturation paths."""
        params = make_params(2, 8, 4)
        hashes = np.arange(0, 500, dtype=np.uint64)
        sequential = ExaLogLog.from_params(params)
        for h in hashes.tolist():
            sequential.add_hash(h)
        assert exaloglog_state(hashes, params) == list(sequential.registers)


class TestBaselineStates:
    def test_hyperloglog_matches_sequential(self):
        hashes = hashes_for(4, 3000)
        sequential = HyperLogLog(p=8)
        for h in hashes.tolist():
            sequential.add_hash(h)
        assert hyperloglog_state(hashes, 8) == list(sequential.registers)

    def test_pcsa_matches_sequential(self):
        hashes = hashes_for(5, 3000)
        sequential = PCSA(p=6)
        for h in hashes.tolist():
            sequential.add_hash(h)
        assert pcsa_state(hashes, 6) == list(sequential.bitmaps)

    def test_spikesketch_matches_sequential(self):
        hashes = hashes_for(6, 3000)
        sequential = SpikeSketch(64)
        for h in hashes.tolist():
            sequential.add_hash(h)
        assert spikesketch_state(hashes, 64) == list(sequential._registers)
