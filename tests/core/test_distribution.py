"""Update-value distribution laws (paper Eq. (2), (8), (10), (11), (14))."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import (
    approx_pmf_unbounded,
    geometric_pmf,
    kl_divergence_to_geometric,
    omega,
    omega_bruteforce,
    omega_scaled,
    phi,
    rho_table,
    rho_update,
    update_value_from_hash,
)
from repro.core.params import make_params
from tests.conftest import SMALL_PARAMS


class TestGeometricPmf:
    def test_normalised(self):
        for base in (2.0, 2.0 ** 0.5, 2.0 ** 0.25):
            total = sum(geometric_pmf(k, base) for k in range(1, 3000))
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_zero_outside_support(self):
        assert geometric_pmf(0, 2.0) == 0.0

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            geometric_pmf(1, 1.0)


class TestApproxPmf:
    def test_t0_equals_geometric_base2(self):
        """Sec. 2.3: for t = 0 the distributions are identical."""
        for k in range(1, 60):
            assert approx_pmf_unbounded(k, 0) == pytest.approx(geometric_pmf(k, 2.0))

    @pytest.mark.parametrize("t", [0, 1, 2, 3])
    def test_normalised(self, t):
        total = sum(approx_pmf_unbounded(k, t) for k in range(1, 5000))
        assert total == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_chunk_identity(self, t):
        """Sec. 2.2: chunks of 2**t values carry probability 2**-(c+1)."""
        base = 2.0 ** (2.0 ** -t)
        for c in range(6):
            lo = c * (1 << t) + 1
            hi = (c + 1) * (1 << t)
            approx_sum = sum(approx_pmf_unbounded(k, t) for k in range(lo, hi + 1))
            geom_sum = sum(geometric_pmf(k, base) for k in range(lo, hi + 1))
            assert approx_sum == pytest.approx(2.0 ** -(c + 1))
            assert geom_sum == pytest.approx(2.0 ** -(c + 1))

    def test_kl_divergence_small_and_decreasing_relevance(self):
        """Eq. (8) tracks Eq. (2) closely (the Figure 2 visual claim)."""
        for t in (1, 2, 3):
            assert 0.0 < kl_divergence_to_geometric(t) < 0.05


class TestTruncatedPmf:
    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
    def test_normalised(self, params):
        total = sum(
            rho_update(k, params) for k in range(1, params.max_update_value + 1)
        )
        assert total == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
    def test_zero_outside_support(self, params):
        assert rho_update(0, params) == 0.0
        assert rho_update(params.max_update_value + 1, params) == 0.0

    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
    def test_phi_bounds(self, params):
        for k in range(1, params.max_update_value + 1):
            assert params.t + 1 <= phi(k, params) <= 64 - params.p

    def test_phi_matches_eq11(self):
        params = make_params(2, 20, 8)
        assert phi(1, params) == 3
        assert phi(4, params) == 3
        assert phi(5, params) == 4
        assert phi(params.max_update_value, params) == 56


class TestOmega:
    """Lemma B.1: the closed form equals the brute-force tail sum."""

    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
    def test_matches_bruteforce(self, params):
        for u in range(0, params.max_update_value + 1):
            assert omega(u, params) == pytest.approx(
                omega_bruteforce(u, params), abs=1e-12
            )

    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
    def test_boundary_values(self, params):
        assert omega(0, params) == pytest.approx(1.0)
        assert omega(params.max_update_value, params) == 0.0

    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
    def test_monotone_decreasing(self, params):
        values = [omega(u, params) for u in range(params.max_update_value + 1)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
    def test_scaled_is_exact_integer(self, params):
        for u in range(0, params.max_update_value + 1, 7):
            scaled = omega_scaled(u, params)
            assert scaled == round(omega(u, params) * 2 ** (64 - params.p))

    def test_rejects_out_of_range(self):
        params = make_params(2, 20, 8)
        with pytest.raises(ValueError):
            omega(-1, params)
        with pytest.raises(ValueError):
            omega(params.max_update_value + 1, params)


class TestHashSplitting:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=200)
    def test_ranges(self, hash_value):
        params = make_params(2, 20, 8)
        index, k = update_value_from_hash(hash_value, params)
        assert 0 <= index < params.m
        assert 1 <= k <= params.max_update_value

    def test_eq9_worked_example(self):
        """Update value = NLZ * 2**t + (t low bits) + 1 (Eq. (9))."""
        params = make_params(2, 20, 8)
        # Hash with bit 63 set: NLZ of the masked value is 0.
        h = (1 << 63) | 0b11  # low t bits = 3
        index, k = update_value_from_hash(h, params)
        assert k == 0 * 4 + 3 + 1
        # Hash that is all zeros: NLZ takes its maximum 64 - p - t.
        index, k = update_value_from_hash(0, params)
        assert k == (64 - 8 - 2) * 4 + 0 + 1
        assert index == 0

    def test_register_index_bits(self):
        """The index comes from bits [t, t+p) (Algorithm 2)."""
        params = make_params(2, 20, 8)
        h = 0b1010_1010 << 2  # index bits = 0b10101010, low t bits zero
        index, _ = update_value_from_hash(h, params)
        assert index == 0b10101010

    def test_empirical_distribution(self):
        """Update values from uniform hashes follow Eq. (10)."""
        import random

        params = make_params(2, 6, 4)
        generator = random.Random(5)
        counts: dict[int, int] = {}
        samples = 200000
        for _ in range(samples):
            _, k = update_value_from_hash(generator.getrandbits(64), params)
            counts[k] = counts.get(k, 0) + 1
        for k in range(1, 13):
            expected = rho_update(k, params)
            observed = counts.get(k, 0) / samples
            assert observed == pytest.approx(expected, rel=0.1)


class TestTables:
    @pytest.mark.parametrize("params", SMALL_PARAMS[:4], ids=str)
    def test_rho_table_contents(self, params):
        table = rho_table(params)
        assert table[0] == 0.0
        for k in range(1, params.max_update_value + 1):
            assert table[k] == rho_update(k, params)
