"""Algorithm 3 coefficient extraction and the ML estimate."""

import math

import pytest

from repro.core.exaloglog import ExaLogLog
from repro.core.mlestimation import (
    bias_correction_factor,
    compute_coefficients,
    estimate_from_coefficients,
    ml_estimate,
    solve_from_coefficients,
)
from repro.core.params import make_params
from repro.core.register import alpha_contribution_scaled, beta_contribution
from repro.estimation.likelihood import log_likelihood
from tests.conftest import PAPER_PARAMS, SMALL_PARAMS, random_hashes


def filled_registers(params, hashes):
    sketch = ExaLogLog.from_params(params)
    for h in hashes:
        sketch.add_hash(h)
    return list(sketch.registers)


class TestCoefficients:
    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=str)
    def test_matches_per_register_contributions(self, params):
        registers = filled_registers(params, random_hashes(1, 2000))
        coefficients = compute_coefficients(registers, params)
        expected_alpha = sum(alpha_contribution_scaled(r, params) for r in registers)
        assert coefficients.alpha_scaled == expected_alpha
        expected_beta: dict[int, int] = {}
        for r in registers:
            for exponent in beta_contribution(r, params):
                expected_beta[exponent] = expected_beta.get(exponent, 0) + 1
        assert coefficients.beta == expected_beta

    def test_empty_sketch(self):
        params = make_params(2, 20, 4)
        coefficients = compute_coefficients([0] * params.m, params)
        assert coefficients.is_empty
        assert coefficients.alpha == pytest.approx(params.m)

    def test_saturated_sketch(self):
        params = make_params(2, 6, 2)
        saturated = (params.max_update_value << params.d) | ((1 << params.d) - 1)
        coefficients = compute_coefficients([saturated] * params.m, params)
        assert coefficients.is_saturated

    @pytest.mark.parametrize("params", SMALL_PARAMS[:5], ids=str)
    def test_beta_exponent_range(self, params):
        registers = filled_registers(params, random_hashes(2, 5000))
        coefficients = compute_coefficients(registers, params)
        for exponent in coefficients.beta:
            assert params.t + 1 <= exponent <= 64 - params.p


class TestMLEstimate:
    @pytest.mark.parametrize("params", PAPER_PARAMS, ids=str)
    def test_root_maximises_likelihood(self, params):
        registers = filled_registers(params, random_hashes(3, 3000))
        coefficients = compute_coefficients(registers, params)
        solution = solve_from_coefficients(coefficients, params)
        nu = solution.nu
        best = log_likelihood(nu, coefficients.alpha, coefficients.beta)
        for factor in (0.9, 0.95, 1.05, 1.1):
            assert log_likelihood(
                nu * factor, coefficients.alpha, coefficients.beta
            ) <= best + 1e-9

    def test_estimate_zero_for_empty(self):
        params = make_params(2, 20, 4)
        assert ml_estimate([0] * params.m, params) == 0.0

    def test_estimate_infinite_for_saturated(self):
        params = make_params(2, 6, 2)
        saturated = (params.max_update_value << params.d) | ((1 << params.d) - 1)
        assert math.isinf(ml_estimate([saturated] * params.m, params))

    def test_newton_iterations_bounded(self):
        """Appendix A: never more than 10 iterations in practice."""
        worst = 0
        for seed, n in enumerate((1, 10, 100, 1000, 10000, 50000)):
            params = make_params(2, 20, 6)
            registers = filled_registers(params, random_hashes(seed, n))
            coefficients = compute_coefficients(registers, params)
            worst = max(worst, solve_from_coefficients(coefficients, params).iterations)
        assert worst <= 10

    @pytest.mark.parametrize("params", PAPER_PARAMS, ids=str)
    def test_accuracy_at_moderate_n(self, params):
        n = 20000
        estimate = ml_estimate(filled_registers(params, random_hashes(7, n)), params)
        assert estimate == pytest.approx(n, rel=0.12)


class TestBiasCorrection:
    def test_factor_below_one(self):
        for params in PAPER_PARAMS:
            assert 0.9 < bias_correction_factor(params) < 1.0

    def test_factor_approaches_one_with_precision(self):
        low = bias_correction_factor(make_params(2, 20, 4))
        high = bias_correction_factor(make_params(2, 20, 12))
        assert low < high < 1.0

    def test_bias_correction_reduces_mean_error(self):
        """Eq. (4): without the correction the ML estimate is biased high."""
        params = make_params(2, 20, 4)
        n = 3000
        raw_errors = []
        corrected_errors = []
        for seed in range(40):
            registers = filled_registers(params, random_hashes(seed + 500, n))
            coefficients = compute_coefficients(registers, params)
            raw = estimate_from_coefficients(coefficients, params, bias_correction=False)
            corrected = estimate_from_coefficients(coefficients, params, True)
            raw_errors.append(raw / n - 1.0)
            corrected_errors.append(corrected / n - 1.0)
        raw_mean = sum(raw_errors) / len(raw_errors)
        corrected_mean = sum(corrected_errors) / len(corrected_errors)
        assert abs(corrected_mean) < abs(raw_mean)
        assert raw_mean > 0.0
