"""Set-operation estimators."""

import pytest

from repro.core.exaloglog import ExaLogLog
from repro.setops import (
    containment_estimate,
    difference_estimate,
    intersection_estimate,
    jaccard_estimate,
    union_estimate,
)


def sketch_of(keys, p=10):
    sketch = ExaLogLog(2, 20, p)
    for key in keys:
        sketch.add(key)
    return sketch


@pytest.fixture(scope="module")
def overlapping():
    a = sketch_of(f"k{i}" for i in range(20000))
    b = sketch_of(f"k{i}" for i in range(10000, 40000))
    return a, b  # |A|=20k, |B|=30k, |AnB|=10k, |AuB|=40k


class TestUnion:
    def test_value(self, overlapping):
        a, b = overlapping
        assert union_estimate(a, b) == pytest.approx(40000, rel=0.06)

    def test_symmetry(self, overlapping):
        a, b = overlapping
        assert union_estimate(a, b) == union_estimate(b, a)

    def test_self_union(self, overlapping):
        a, _ = overlapping
        assert union_estimate(a, a) == pytest.approx(a.estimate())


class TestIntersection:
    def test_value(self, overlapping):
        a, b = overlapping
        assert intersection_estimate(a, b) == pytest.approx(10000, rel=0.3)

    def test_disjoint_near_zero(self):
        a = sketch_of(f"a{i}" for i in range(5000))
        b = sketch_of(f"b{i}" for i in range(5000))
        assert intersection_estimate(a, b) < 1500  # absolute-error regime

    def test_clamped_nonnegative(self):
        a = sketch_of(["x"])
        b = sketch_of(["y"])
        assert intersection_estimate(a, b) >= 0.0


class TestDifference:
    def test_value(self, overlapping):
        a, b = overlapping
        assert difference_estimate(a, b) == pytest.approx(10000, rel=0.35)

    def test_empty_difference(self, overlapping):
        a, _ = overlapping
        assert difference_estimate(a, a) == 0.0


class TestJaccard:
    def test_value(self, overlapping):
        a, b = overlapping
        assert jaccard_estimate(a, b) == pytest.approx(0.25, abs=0.08)

    def test_identical_sets(self, overlapping):
        a, _ = overlapping
        assert jaccard_estimate(a, a) == pytest.approx(1.0, abs=1e-9)

    def test_both_empty(self):
        assert jaccard_estimate(ExaLogLog(2, 20, 4), ExaLogLog(2, 20, 4)) == 1.0

    def test_range(self, overlapping):
        a, b = overlapping
        assert 0.0 <= jaccard_estimate(a, b) <= 1.0


class TestContainment:
    def test_subset_near_one(self):
        a = sketch_of((f"k{i}" for i in range(5000)), p=11)
        b = sketch_of((f"k{i}" for i in range(20000)), p=11)
        assert containment_estimate(a, b) == pytest.approx(1.0, abs=0.15)

    def test_disjoint_near_zero(self):
        a = sketch_of((f"a{i}" for i in range(10000)), p=11)
        b = sketch_of((f"b{i}" for i in range(10000)), p=11)
        assert containment_estimate(a, b) < 0.2


class TestSparseOperands:
    def test_sparse_dense_mix(self):
        from repro.core.sparse import SparseExaLogLog

        sparse = SparseExaLogLog(2, 20, 10)
        for i in range(20):
            sparse.add(f"k{i}")
        dense = sketch_of((f"k{i}" for i in range(10, 30)), p=10)
        assert union_estimate(sparse, dense) == pytest.approx(30, abs=2)
        assert union_estimate(dense, sparse) == union_estimate(sparse, dense)
        assert intersection_estimate(sparse, dense) == pytest.approx(10, abs=4)

    def test_sparse_sparse(self):
        from repro.core.sparse import SparseExaLogLog

        a = SparseExaLogLog(2, 20, 10)
        b = SparseExaLogLog(2, 20, 10)
        for i in range(15):
            a.add(f"k{i}")
            b.add(f"k{i + 5}")
        assert union_estimate(a, b) == pytest.approx(20, abs=2)
        assert jaccard_estimate(a, b) == pytest.approx(0.5, abs=0.2)


class TestSingleMergeBatchedSolve:
    """The refactor's contract: one union merge, one three-row solve."""

    def test_one_merge_per_operation(self, overlapping, monkeypatch):
        a, b = overlapping
        merges = []
        original = ExaLogLog.merge

        def counting_merge(self, other):
            merges.append(1)
            return original(self, other)

        monkeypatch.setattr(ExaLogLog, "merge", counting_merge)
        for operation in (
            intersection_estimate,
            difference_estimate,
            jaccard_estimate,
            containment_estimate,
        ):
            merges.clear()
            operation(a, b)
            assert len(merges) == 1, f"{operation.__name__} merged {len(merges)}x"

    def test_batched_solve_is_bit_identical_to_scalar(self, overlapping):
        """Inclusion-exclusion from the batched triple equals the same
        arithmetic on three scalar ``estimate()`` calls, bit for bit."""
        from repro.setops import union_sketch

        a, b = overlapping
        size_a, size_b = a.estimate(), b.estimate()
        size_union = union_sketch(a, b).estimate()
        assert intersection_estimate(a, b) == max(
            0.0, size_a + size_b - size_union
        )
        assert difference_estimate(a, b) == max(0.0, size_union - size_b)
        assert union_estimate(a, b) == size_union


class TestValidation:
    def test_different_t_rejected(self):
        with pytest.raises(ValueError):
            union_estimate(ExaLogLog(2, 20, 4), ExaLogLog(1, 9, 4))

    def test_type_rejected(self):
        with pytest.raises(TypeError):
            union_estimate(ExaLogLog(2, 20, 4), "nope")  # type: ignore[arg-type]

    def test_mixed_precisions_allowed(self):
        a = sketch_of((f"k{i}" for i in range(5000)), p=10)
        b = ExaLogLog(2, 16, 8)
        for i in range(2500, 7500):
            b.add(f"k{i}")
        assert union_estimate(a, b) == pytest.approx(7500, rel=0.15)
