"""Register semantics: Alg. 2 update, Alg. 5 merge, Sec. 3.1 PMF."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import rho_update
from repro.core.params import make_params
from repro.core.register import (
    alpha_contribution,
    alpha_contribution_scaled,
    beta_contribution,
    decode,
    enumerate_reachable,
    is_reachable,
    merge,
    register_pmf,
    state_change_probability,
    update,
    window_values,
)
from tests.conftest import SMALL_PARAMS

TINY_PARAMS = [make_params(2, 6, 2), make_params(1, 3, 3), make_params(0, 2, 4)]


def apply_sequence(values: list[int], d: int) -> int:
    register = 0
    for k in values:
        register = update(register, k, d)
    return register


class TestUpdate:
    def test_first_update_sets_max_and_phantom(self):
        # From the empty register, value k <= d leaves the deterministic
        # value-0 bit at position d - k (module docstring).
        d = 6
        assert update(0, 3, d) == (3 << d) | (1 << (d - 3))

    def test_first_update_beyond_d(self):
        d = 3
        assert update(0, 10, d) == 10 << d

    def test_smaller_value_sets_window_bit(self):
        d = 6
        register = update(0, 10, d)
        updated = update(register, 8, d)
        assert updated == register | (1 << (d - 2))

    def test_value_below_window_ignored(self):
        d = 3
        register = update(0, 10, d)
        assert update(register, 6, d) == register

    def test_idempotent(self):
        d = 6
        register = 0
        for k in (5, 9, 7, 9, 5, 7):
            register = update(register, k, d)
        for k in (5, 9, 7):
            assert update(register, k, d) == register

    def test_window_shift_on_max_increase(self):
        d = 6
        register = update(0, 8, d)       # max 8, phantom would be gone (8 > 6)
        register = update(register, 7, d)  # bit for 7 at position d-1
        shifted = update(register, 9, d)   # max 9: bit for 8 enters, 7 shifts
        assert decode(shifted, d)[0] == 9
        occurrences = dict(window_values(shifted, make_params(2, 6, 2)))
        assert occurrences[8] is True
        assert occurrences[7] is True
        assert occurrences[6] is False

    def test_figure3_style_walkthrough(self):
        """Two insertions with p=2, t=2, d=6 (the Figure 3 setting)."""
        params = make_params(2, 6, 2)
        d = params.d
        r = update(0, 13, d)
        assert decode(r, d) == (13, 0)
        r = update(r, 10, d)
        u, low = decode(r, d)
        assert u == 13
        assert (low >> (d - 3)) & 1  # value 10 = u - 3 recorded

    def test_d_zero_is_pure_max(self):
        register = 0
        for k in (3, 7, 5):
            register = update(register, k, 0)
        assert register == 7

    @given(st.lists(st.integers(1, 40), min_size=1, max_size=30))
    @settings(max_examples=150)
    def test_order_independence(self, values):
        d = 6
        shuffled = list(values)
        random.Random(42).shuffle(shuffled)
        assert apply_sequence(values, d) == apply_sequence(shuffled, d)

    @given(st.lists(st.integers(1, 40), min_size=0, max_size=30))
    @settings(max_examples=100)
    def test_monotone_nondecreasing(self, values):
        d = 4
        register = 0
        for k in values:
            updated = update(register, k, d)
            assert updated >= register
            register = updated


class TestMerge:
    @given(
        st.lists(st.integers(1, 40), min_size=0, max_size=20),
        st.lists(st.integers(1, 40), min_size=0, max_size=20),
    )
    @settings(max_examples=150)
    def test_merge_equals_union(self, left, right):
        d = 6
        merged = merge(apply_sequence(left, d), apply_sequence(right, d), d)
        assert merged == apply_sequence(left + right, d)

    @given(
        st.lists(st.integers(1, 30), max_size=15),
        st.lists(st.integers(1, 30), max_size=15),
    )
    @settings(max_examples=100)
    def test_commutative(self, left, right):
        d = 4
        a = apply_sequence(left, d)
        b = apply_sequence(right, d)
        assert merge(a, b, d) == merge(b, a, d)

    @given(
        st.lists(st.integers(1, 30), max_size=10),
        st.lists(st.integers(1, 30), max_size=10),
        st.lists(st.integers(1, 30), max_size=10),
    )
    @settings(max_examples=80)
    def test_associative(self, xs, ys, zs):
        d = 5
        a, b, c = (apply_sequence(v, d) for v in (xs, ys, zs))
        assert merge(merge(a, b, d), c, d) == merge(a, merge(b, c, d), d)

    @given(st.lists(st.integers(1, 30), max_size=15))
    def test_idempotent(self, values):
        d = 6
        register = apply_sequence(values, d)
        assert merge(register, register, d) == register

    @given(st.lists(st.integers(1, 30), max_size=15))
    def test_zero_is_identity(self, values):
        d = 6
        register = apply_sequence(values, d)
        assert merge(register, 0, d) == register
        assert merge(0, register, d) == register


class TestReachability:
    @pytest.mark.parametrize("params", TINY_PARAMS, ids=str)
    def test_enumerated_states_are_reachable(self, params):
        for state in enumerate_reachable(params):
            assert is_reachable(state, params)

    @pytest.mark.parametrize("params", TINY_PARAMS, ids=str)
    def test_random_streams_land_in_enumeration(self, params):
        states = set(enumerate_reachable(params))
        generator = random.Random(9)
        register = 0
        for _ in range(500):
            k = generator.randint(1, params.max_update_value)
            register = update(register, k, params.d)
            assert register in states

    def test_phantom_bit_violations_unreachable(self):
        params = make_params(2, 6, 2)
        # u = 3 <= d: phantom bit at position d-3 must be set.
        bad = 3 << params.d
        assert not is_reachable(bad, params)
        # Bits below the phantom must be clear.
        bad = (3 << params.d) | (1 << (params.d - 3)) | 1
        assert not is_reachable(bad, params)

    def test_u_out_of_range_unreachable(self):
        params = make_params(2, 6, 2)
        assert not is_reachable((params.max_update_value + 1) << params.d, params)


class TestRegisterPmf:
    """Sec. 3.1: the PMF over reachable states must sum to one."""

    @pytest.mark.parametrize("params", TINY_PARAMS, ids=str)
    @pytest.mark.parametrize("n", [0.5, 5.0, 100.0, 10000.0])
    def test_normalised(self, params, n):
        total = sum(register_pmf(r, n, params) for r in enumerate_reachable(params))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_empty_state_probability(self):
        params = make_params(2, 6, 2)
        assert register_pmf(0, 8.0, params) == pytest.approx(math.exp(-2.0))

    def test_unreachable_state_zero(self):
        params = make_params(2, 6, 2)
        assert register_pmf(3 << params.d, 10.0, params) == 0.0

    @pytest.mark.parametrize("params", TINY_PARAMS, ids=str)
    def test_matches_monte_carlo(self, params):
        """Empirical state frequencies match the Poissonized PMF."""
        import numpy as np

        from repro.core.batch import exaloglog_state

        n = 30
        runs = 4000
        rng = np.random.Generator(np.random.PCG64(17))
        counts: dict[int, int] = {}
        for _ in range(runs):
            size = rng.poisson(n * params.m)
            hashes = rng.integers(0, 1 << 64, size=size, dtype=np.uint64)
            state = exaloglog_state(hashes, params)
            r = state[0]
            counts[r] = counts.get(r, 0) + 1
        for state, count in sorted(counts.items(), key=lambda kv: -kv[1])[:5]:
            predicted = register_pmf(state, n * params.m, params)
            assert count / runs == pytest.approx(predicted, rel=0.25, abs=0.01)


class TestContributions:
    @pytest.mark.parametrize("params", TINY_PARAMS, ids=str)
    def test_alpha_scaled_matches_float(self, params):
        generator = random.Random(3)
        register = 0
        for _ in range(50):
            register = update(
                register, generator.randint(1, params.max_update_value), params.d
            )
            scaled = alpha_contribution_scaled(register, params)
            unscaled = alpha_contribution(register, params)
            assert scaled / 2 ** (64 - params.p) == pytest.approx(unscaled, rel=1e-12)

    @pytest.mark.parametrize("params", TINY_PARAMS, ids=str)
    def test_state_change_probability_empirical(self, params):
        """h(r): fraction of random updates that change the register."""
        generator = random.Random(11)
        register = update(update(0, 6, params.d), 4, params.d)
        predicted = state_change_probability(register, params) * params.m
        trials = 100000
        changed = 0
        for _ in range(trials):
            k = None
            # Draw an update value from rho_update by inversion sampling.
            u = generator.random()
            cumulative = 0.0
            for candidate in range(1, params.max_update_value + 1):
                cumulative += rho_update(candidate, params)
                if u < cumulative:
                    k = candidate
                    break
            if k is None:
                k = params.max_update_value
            if update(register, k, params.d) != register:
                changed += 1
        assert changed / trials == pytest.approx(predicted, rel=0.05, abs=0.005)

    def test_empty_register_alpha_is_one(self):
        for params in TINY_PARAMS:
            assert alpha_contribution(0, params) == pytest.approx(1.0)
            assert beta_contribution(0, params) == []

    def test_beta_counts_set_values(self):
        params = make_params(2, 6, 2)
        register = apply_sequence([10, 8, 5], params.d)
        exponents = beta_contribution(register, params)
        # max 10 and set window bits 8 and 5 -> three entries.
        assert len(exponents) == 3
