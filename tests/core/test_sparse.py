"""Sparse-mode ExaLogLog (paper Sec. 4.3)."""

import pytest

from repro.core.exaloglog import ExaLogLog
from repro.core.params import make_params
from repro.core.sparse import SparseExaLogLog
from repro.storage.serialization import SerializationError
from tests.conftest import random_hashes


def dense_reference(params, hashes):
    sketch = ExaLogLog.from_params(params)
    for h in hashes:
        sketch.add_hash(h)
    return sketch


class TestModes:
    def test_starts_sparse(self):
        sketch = SparseExaLogLog(2, 20, 8)
        assert sketch.is_sparse
        assert sketch.token_count == 0
        assert sketch.memory_bytes < 100

    def test_break_even_point(self):
        sketch = SparseExaLogLog(2, 20, 8, v=26)
        # dense array is 896 bytes; tokens are 4 bytes -> 224 tokens.
        assert sketch.break_even_tokens == 224

    def test_transition_happens(self):
        sketch = SparseExaLogLog(2, 20, 8)
        for h in random_hashes(1, 1000):
            sketch.add_hash(h)
        assert not sketch.is_sparse

    def test_transition_is_lossless(self):
        params = make_params(2, 20, 8)
        hashes = random_hashes(2, 5000)
        sparse = SparseExaLogLog(2, 20, 8)
        for h in hashes:
            sparse.add_hash(h)
        assert sparse.densify() == dense_reference(params, hashes)

    def test_forced_densify_small(self):
        params = make_params(2, 20, 8)
        hashes = random_hashes(3, 10)
        sparse = SparseExaLogLog(2, 20, 8)
        for h in hashes:
            sparse.add_hash(h)
        assert sparse.is_sparse
        assert sparse.densify() == dense_reference(params, hashes)

    def test_v_must_cover_p_plus_t(self):
        with pytest.raises(ValueError):
            SparseExaLogLog(2, 20, 8, v=9)  # p + t = 10 > 9

    def test_memory_grows_then_caps(self):
        sketch = SparseExaLogLog(2, 20, 8)
        sizes = []
        for h in random_hashes(4, 400):
            sketch.add_hash(h)
            sizes.append(sketch.memory_bytes)
        assert max(sizes) <= 16 + sketch.params.dense_bytes
        assert sizes[0] < sizes[50] < max(sizes)


class TestEstimation:
    @pytest.mark.parametrize("n", [0, 1, 10, 100, 200])
    def test_sparse_estimates(self, n):
        sketch = SparseExaLogLog(2, 20, 8)
        for h in random_hashes(n + 5, n):
            sketch.add_hash(h)
        assert sketch.estimate() == pytest.approx(n, rel=0.05, abs=1.0)

    def test_dense_estimates(self):
        n = 20000
        sketch = SparseExaLogLog(2, 20, 8)
        for h in random_hashes(6, n):
            sketch.add_hash(h)
        assert sketch.estimate() == pytest.approx(n, rel=0.12)

    def test_duplicates_ignored(self):
        sketch = SparseExaLogLog(2, 20, 8)
        h = 0x123456789ABCDEF0
        assert sketch.add_hash(h) is True
        assert sketch.add_hash(h) is False
        assert sketch.token_count == 1


class TestMerge:
    def test_sparse_sparse(self):
        a = SparseExaLogLog(2, 20, 8)
        b = SparseExaLogLog(2, 20, 8)
        hashes = random_hashes(7, 100)
        for h in hashes[:60]:
            a.add_hash(h)
        for h in hashes[40:]:
            b.add_hash(h)
        merged = a.merge(b)
        assert merged.estimate() == pytest.approx(100, rel=0.05, abs=2)

    def test_sparse_sparse_transitions_when_large(self):
        a = SparseExaLogLog(2, 20, 8)
        b = SparseExaLogLog(2, 20, 8)
        for h in random_hashes(8, 200):
            a.add_hash(h)
        for h in random_hashes(9, 200):
            b.add_hash(h)
        merged = a.merge(b)
        assert not merged.is_sparse

    def test_sparse_dense(self):
        params = make_params(2, 20, 8)
        hashes = random_hashes(10, 3000)
        sparse = SparseExaLogLog(2, 20, 8)
        for h in hashes[:100]:
            sparse.add_hash(h)
        dense = dense_reference(params, hashes[100:])
        merged = sparse.merge(dense)
        assert merged.densify() == dense_reference(params, hashes)

    def test_merge_equals_union_end_to_end(self):
        hashes = random_hashes(11, 2000)
        a = SparseExaLogLog(2, 20, 8)
        b = SparseExaLogLog(2, 20, 8)
        u = SparseExaLogLog(2, 20, 8)
        for h in hashes[:1200]:
            a.add_hash(h)
            u.add_hash(h)
        for h in hashes[1000:]:
            b.add_hash(h)
            u.add_hash(h)
        assert a.merge(b).densify() == u.densify()

    def test_parameter_mismatch(self):
        with pytest.raises(ValueError):
            SparseExaLogLog(2, 20, 8).merge(SparseExaLogLog(2, 20, 9))

    def test_foreign_type(self):
        with pytest.raises(TypeError):
            SparseExaLogLog(2, 20, 8).merge(42)  # type: ignore[arg-type]


class TestSerialization:
    def test_sparse_roundtrip(self):
        sketch = SparseExaLogLog(2, 20, 8)
        for h in random_hashes(12, 100):
            sketch.add_hash(h)
        restored = SparseExaLogLog.from_bytes(sketch.to_bytes())
        assert restored == sketch
        assert restored.is_sparse

    def test_dense_roundtrip(self):
        sketch = SparseExaLogLog(2, 20, 8)
        for h in random_hashes(13, 2000):
            sketch.add_hash(h)
        restored = SparseExaLogLog.from_bytes(sketch.to_bytes())
        assert restored == sketch
        assert not restored.is_sparse

    def test_sparse_serialization_is_compact(self):
        sketch = SparseExaLogLog(2, 20, 8)
        for h in random_hashes(14, 50):
            sketch.add_hash(h)
        # Delta-varint coding: well under 4 bytes per token + header.
        assert len(sketch.to_bytes()) < 50 * 4 + 16

    def test_truncated(self):
        sketch = SparseExaLogLog(2, 20, 8)
        sketch.add_hash(12345)
        with pytest.raises(SerializationError):
            SparseExaLogLog.from_bytes(sketch.to_bytes()[:5])

    def test_copy_independence(self):
        a = SparseExaLogLog(2, 20, 8)
        a.add_hash(1)
        b = a.copy()
        b.add_hash(2)
        assert a != b
