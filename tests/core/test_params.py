"""Parameter validation and derived quantities (paper Sec. 2.3-2.4)."""

import pytest

from repro.core.params import (
    ExaLogLogParams,
    ell_1_9,
    ell_2_16,
    ell_2_20,
    ell_2_24,
    hll_equivalent,
    make_params,
    pcsa_equivalent,
    ull_equivalent,
)


class TestValidation:
    def test_valid(self):
        params = ExaLogLogParams(2, 20, 8)
        assert params.m == 256

    @pytest.mark.parametrize("t", [-1, 4])
    def test_bad_t(self, t):
        with pytest.raises(ValueError):
            ExaLogLogParams(t, 4, 8)

    @pytest.mark.parametrize("d", [-1, 65])
    def test_bad_d(self, d):
        with pytest.raises(ValueError):
            ExaLogLogParams(2, d, 8)

    @pytest.mark.parametrize("p", [0, 1, 27])
    def test_bad_p(self, p):
        with pytest.raises(ValueError):
            ExaLogLogParams(2, 20, p)

    def test_frozen(self):
        params = make_params(2, 20, 8)
        with pytest.raises(AttributeError):
            params.t = 1  # type: ignore[misc]

    def test_cached_identity(self):
        assert make_params(2, 20, 8) is make_params(2, 20, 8)


class TestDerived:
    def test_register_bits_paper_configs(self):
        """Sec. 2.4: 16 / 24 / 28 / 32-bit registers."""
        assert ell_1_9(8).register_bits == 16
        assert ell_2_16(8).register_bits == 24
        assert ell_2_20(8).register_bits == 28
        assert ell_2_24(8).register_bits == 32

    def test_q_is_6_plus_t(self):
        for t in range(4):
            assert make_params(t, 0, 4).q == 6 + t

    def test_base(self):
        assert make_params(0, 0, 4).base == 2.0
        assert make_params(2, 0, 4).base == pytest.approx(2.0 ** 0.25)

    def test_operating_range_reaches_2_64(self):
        """Sec. 2.3: b**(2**q) == 2**64 for q = 6 + t."""
        for t in range(4):
            params = make_params(t, 0, 4)
            assert params.base ** (2 ** params.q) == pytest.approx(2.0 ** 64)

    def test_max_update_value(self):
        params = make_params(2, 20, 8)
        assert params.max_update_value == (65 - 8 - 2) * 4

    def test_max_update_value_fits_q_bits(self):
        """Sec. 2.3: (65-p-t) 2**t <= 2**(6+t) - 1 for p >= 2."""
        for t in range(4):
            for p in (2, 8, 26):
                params = make_params(t, 0, p)
                assert params.max_update_value <= (1 << params.q) - 1

    def test_dense_bytes_examples(self):
        """Figure 8 captions: (t=2,d=20,p=4) -> 56 bytes, p=10 -> 3584."""
        assert make_params(2, 20, 4).dense_bytes == 56
        assert make_params(2, 20, 10).dense_bytes == 3584
        assert make_params(1, 9, 4).dense_bytes == 32
        assert make_params(2, 24, 10).dense_bytes == 4096

    def test_special_cases(self):
        assert hll_equivalent(8).register_bits == 6
        assert ull_equivalent(8).register_bits == 8
        assert pcsa_equivalent(8).d == 64

    def test_max_register_value(self):
        params = make_params(2, 6, 4)
        top = params.max_update_value << 6 | 0b111111
        assert params.max_register_value == top


class TestReduced:
    def test_reduced_ok(self):
        params = make_params(2, 20, 8)
        reduced = params.reduced(d=16, p=6)
        assert (reduced.t, reduced.d, reduced.p) == (2, 16, 6)

    def test_cannot_grow_d(self):
        with pytest.raises(ValueError):
            make_params(2, 20, 8).reduced(d=24)

    def test_cannot_grow_p(self):
        with pytest.raises(ValueError):
            make_params(2, 20, 8).reduced(p=10)

    def test_with_precision(self):
        assert make_params(2, 20, 8).with_precision(4) == make_params(2, 20, 4)

    def test_str(self):
        assert str(make_params(2, 20, 8)) == "ELL(t=2, d=20, p=8)"
