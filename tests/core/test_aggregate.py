"""Group-by aggregation layer."""

import pytest

from repro.aggregate import DistinctCountAggregator


def build(pairs, **kwargs):
    aggregator = DistinctCountAggregator(**kwargs)
    for group, item in pairs:
        aggregator.add(group, item)
    return aggregator


class TestAccumulation:
    def test_per_group_counts(self):
        aggregator = build(
            [("a", i) for i in range(100)] + [("b", i) for i in range(10)]
        )
        assert aggregator.estimate("a") == pytest.approx(100, rel=0.05, abs=2)
        assert aggregator.estimate("b") == pytest.approx(10, rel=0.05, abs=1)

    def test_unseen_group_zero(self):
        assert DistinctCountAggregator().estimate("nope") == 0.0

    def test_duplicates_free(self):
        aggregator = build([("g", "x")] * 100)
        assert aggregator.estimate("g") == pytest.approx(1.0)

    def test_group_key_types(self):
        aggregator = DistinctCountAggregator()
        aggregator.add(b"bytes", 1)
        aggregator.add("str", 1)
        aggregator.add(42, 1)
        assert len(aggregator) == 3
        assert 42 in aggregator

    def test_add_pairs_and_top(self):
        aggregator = DistinctCountAggregator()
        aggregator.add_pairs(("big" if i % 4 else "small", i) for i in range(4000))
        top = aggregator.top(1)
        assert top[0][0] == b"big"

    def test_estimates_keys(self):
        aggregator = build([("x", 1), ("y", 2)])
        assert set(aggregator.estimates()) == {b"x", b"y"}

    def test_decode_key(self):
        decode = DistinctCountAggregator.decode_key
        assert decode(b"DE") == "DE"
        assert decode("schlüssel".encode("utf-8")) == "schlüssel"
        # Integer keys (NUL-padded little-endian) fall back to hex, as do
        # keys that aren't valid UTF-8 at all.
        from repro.hashing import to_bytes

        assert decode(to_bytes(65)) == to_bytes(65).hex()
        assert decode(b"\xff\xfe") == "fffe"

    def test_decode_key_hex_fallback_round_trips(self):
        """Hex-fallback keys recover the canonical key via bytes.fromhex.

        The docstring example of :mod:`repro.aggregate` promises exactly
        this: whenever ``decode_key`` falls back to a hex digest, the
        digest is lossless — ``bytes.fromhex`` reproduces the stored key
        byte for byte, so display forms can be mapped back to groups.
        """
        from repro.hashing import to_bytes

        decode = DistinctCountAggregator.decode_key
        fallback_groups = [0, 1, -1, 65, 2**63, -(2**40), 3.25, b"\xff\xfe", b"\x00"]
        for group in fallback_groups:
            key = to_bytes(group)
            decoded = decode(key)
            assert decoded == key.hex(), f"{group!r} should hit the hex fallback"
            assert bytes.fromhex(decoded) == key
        # Printable strings take the UTF-8 branch instead and also round-trip.
        for group in ["DE", "schlüssel", "a b"]:
            key = to_bytes(group)
            assert decode(key) == group
            assert decode(key).encode("utf-8") == key
        # End to end: an aggregator keyed by an integer group exposes a
        # hex display key that maps back to the canonical stored key.
        aggregator = DistinctCountAggregator(p=4)
        aggregator.add(1, "alice")
        [key] = aggregator.groups()
        assert bytes.fromhex(decode(key)) == key
        assert aggregator.estimate(1) == aggregator.estimates()[key]


class TestMerge:
    def test_merge_equals_union(self):
        left = build([("g", i) for i in range(3000)], p=8)
        right = build([("g", i) for i in range(2000, 5000)], p=8)
        merged = left.merge(right)
        assert merged.estimate("g") == pytest.approx(5000, rel=0.12)

    def test_merge_disjoint_groups(self):
        left = build([("a", 1)])
        right = build([("b", 2)])
        merged = left.merge(right)
        assert len(merged) == 2

    def test_merge_leaves_operands_unchanged(self):
        left = build([("g", 1)])
        right = build([("g", 2)])
        left.merge(right)
        assert left.estimate("g") == pytest.approx(1.0)

    def test_config_mismatch(self):
        with pytest.raises(ValueError):
            DistinctCountAggregator(p=8).merge(DistinctCountAggregator(p=9))

    def test_type_error(self):
        with pytest.raises(TypeError):
            DistinctCountAggregator().merge_inplace(object())  # type: ignore[arg-type]


class TestSparseBehaviour:
    def test_small_groups_stay_small(self):
        sparse = build([(f"g{i}", i) for i in range(100)], sparse=True, p=10)
        dense = build([(f"g{i}", i) for i in range(100)], sparse=False, p=10)
        assert sparse.total_memory_bytes() < dense.total_memory_bytes() / 20

    def test_dense_mode_works(self):
        aggregator = build([("g", i) for i in range(500)], sparse=False)
        assert aggregator.estimate("g") == pytest.approx(500, rel=0.1)


class TestSerialization:
    @pytest.mark.parametrize("sparse", [True, False])
    def test_roundtrip(self, sparse):
        aggregator = build(
            [(f"group-{i % 7}", i) for i in range(3000)], sparse=sparse, p=8
        )
        restored = DistinctCountAggregator.from_bytes(aggregator.to_bytes())
        assert restored == aggregator
        assert restored.estimates() == aggregator.estimates()

    def test_empty_roundtrip(self):
        aggregator = DistinctCountAggregator()
        assert DistinctCountAggregator.from_bytes(aggregator.to_bytes()) == aggregator

    def test_repr(self):
        assert "groups=0" in repr(DistinctCountAggregator())


class TestTruncationRegression:
    """Every proper prefix of a valid blob must raise SerializationError.

    Regression: ``from_bytes`` validated inner-blob truncation but not key
    truncation — a blob cut mid-key silently yielded a short key — and it
    accepted trailing garbage after the last group.
    """

    @pytest.mark.parametrize("sparse", [True, False])
    def test_truncation_at_every_offset(self, sparse):
        from repro.storage.serialization import SerializationError

        aggregator = build(
            [(f"group-key-{i % 5}", i) for i in range(500)], sparse=sparse, p=4
        )
        data = aggregator.to_bytes()
        for cut in range(len(data)):
            with pytest.raises(SerializationError):
                DistinctCountAggregator.from_bytes(data[:cut])

    def test_trailing_garbage_rejected(self):
        from repro.storage.serialization import SerializationError

        data = build([("g", 1)], p=4).to_bytes()
        for tail in (b"\x00", b"\xff" * 3, data[4:]):
            with pytest.raises(SerializationError):
                DistinctCountAggregator.from_bytes(data + tail)

    def test_truncated_key_never_yields_short_key(self):
        """A cut inside a group key must not deserialize at all."""
        from repro.storage.serialization import SerializationError

        aggregator = build([("abcdefgh", 1)], p=4)
        data = aggregator.to_bytes()
        key_start = data.index(b"abcdefgh")
        for cut in range(key_start + 1, key_start + 8):
            with pytest.raises(SerializationError):
                DistinctCountAggregator.from_bytes(data[:cut])


class TestSparseDensifiedRoundTrip:
    """Mixed sparse/densified groups must survive serialization and merge."""

    def _mixed(self, heavy_items, seed_offset=0):
        # The heavy group crosses the sparse break-even (densifies);
        # the small groups stay in token mode.
        pairs = [("heavy", i + seed_offset) for i in range(heavy_items)]
        pairs += [(f"tiny-{g}", g * 1000 + i) for g in range(5) for i in range(3)]
        return build(pairs, sparse=True, p=8)

    def test_mixed_modes_exist(self):
        aggregator = self._mixed(3000)
        key = aggregator._group_key
        assert not aggregator._groups[key("heavy")].is_sparse
        assert aggregator._groups[key("tiny-0")].is_sparse

    def test_roundtrip_preserves_estimates_exactly(self):
        aggregator = self._mixed(3000)
        restored = DistinctCountAggregator.from_bytes(aggregator.to_bytes())
        assert restored == aggregator
        assert restored.estimates() == aggregator.estimates()
        assert restored.to_bytes() == aggregator.to_bytes()

    @pytest.mark.parametrize("left_heavy,right_heavy", [
        (3000, 10),    # densified group meets sparse group
        (10, 3000),    # sparse group meets densified group
        (3000, 3000),  # densified meets densified
        (10, 10),      # sparse meets sparse (may densify on union)
    ])
    def test_merge_across_modes_matches_union(self, left_heavy, right_heavy):
        left = self._mixed(left_heavy)
        right = self._mixed(right_heavy, seed_offset=2000)
        union_pairs = [("heavy", i) for i in range(left_heavy)]
        union_pairs += [("heavy", i + 2000) for i in range(right_heavy)]
        union_pairs += [
            (f"tiny-{g}", g * 1000 + i) for g in range(5) for i in range(3)
        ]
        reference = build(union_pairs, sparse=True, p=8)
        merged = left.merge(right)
        assert merged.estimates() == reference.estimates()

    def test_merge_of_deserialized_partials(self):
        """Shuffle-stage shape: serialize partials, deserialize, merge."""
        left = self._mixed(3000)
        right = self._mixed(10, seed_offset=5000)
        direct = left.merge(right)
        rehydrated = DistinctCountAggregator.from_bytes(left.to_bytes()).merge(
            DistinctCountAggregator.from_bytes(right.to_bytes())
        )
        assert rehydrated == direct
        assert rehydrated.estimates() == direct.estimates()


class TestSelectiveGroupRead:
    """read_group_from_bytes: one group out of a serialized aggregator."""

    def test_reads_exactly_the_stored_sketch(self):
        for sparse in (True, False):
            aggregator = DistinctCountAggregator(2, 20, 6, sparse=sparse)
            aggregator.add_batch(["b", "a", "c", "a"], [1, 2, 3, 4])
            blob = aggregator.to_bytes()
            for group in ("a", "b", "c"):
                key = DistinctCountAggregator._group_key(group)
                sketch = DistinctCountAggregator.read_group_from_bytes(blob, key)
                assert sketch.to_bytes() == aggregator._groups[key].to_bytes()

    def test_absent_group_returns_none(self):
        aggregator = DistinctCountAggregator(2, 20, 6)
        aggregator.add("b", 1)
        blob = aggregator.to_bytes()
        # Before, between and after the stored keys (sorted early exit).
        for group in ("a", "bb", "z"):
            key = DistinctCountAggregator._group_key(group)
            assert DistinctCountAggregator.read_group_from_bytes(blob, key) is None

    def test_works_on_memoryview(self):
        aggregator = DistinctCountAggregator(2, 20, 6)
        aggregator.add_batch(["x", "y"], [1, 2])
        view = memoryview(aggregator.to_bytes())
        key = DistinctCountAggregator._group_key("y")
        sketch = DistinctCountAggregator.read_group_from_bytes(view, key)
        assert sketch.to_bytes() == aggregator._groups[key].to_bytes()
