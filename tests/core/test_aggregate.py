"""Group-by aggregation layer."""

import pytest

from repro.aggregate import DistinctCountAggregator


def build(pairs, **kwargs):
    aggregator = DistinctCountAggregator(**kwargs)
    for group, item in pairs:
        aggregator.add(group, item)
    return aggregator


class TestAccumulation:
    def test_per_group_counts(self):
        aggregator = build(
            [("a", i) for i in range(100)] + [("b", i) for i in range(10)]
        )
        assert aggregator.estimate("a") == pytest.approx(100, rel=0.05, abs=2)
        assert aggregator.estimate("b") == pytest.approx(10, rel=0.05, abs=1)

    def test_unseen_group_zero(self):
        assert DistinctCountAggregator().estimate("nope") == 0.0

    def test_duplicates_free(self):
        aggregator = build([("g", "x")] * 100)
        assert aggregator.estimate("g") == pytest.approx(1.0)

    def test_group_key_types(self):
        aggregator = DistinctCountAggregator()
        aggregator.add(b"bytes", 1)
        aggregator.add("str", 1)
        aggregator.add(42, 1)
        assert len(aggregator) == 3
        assert 42 in aggregator

    def test_add_pairs_and_top(self):
        aggregator = DistinctCountAggregator()
        aggregator.add_pairs(("big" if i % 4 else "small", i) for i in range(4000))
        top = aggregator.top(1)
        assert top[0][0] == b"big"

    def test_estimates_keys(self):
        aggregator = build([("x", 1), ("y", 2)])
        assert set(aggregator.estimates()) == {b"x", b"y"}


class TestMerge:
    def test_merge_equals_union(self):
        left = build([("g", i) for i in range(3000)], p=8)
        right = build([("g", i) for i in range(2000, 5000)], p=8)
        merged = left.merge(right)
        assert merged.estimate("g") == pytest.approx(5000, rel=0.12)

    def test_merge_disjoint_groups(self):
        left = build([("a", 1)])
        right = build([("b", 2)])
        merged = left.merge(right)
        assert len(merged) == 2

    def test_merge_leaves_operands_unchanged(self):
        left = build([("g", 1)])
        right = build([("g", 2)])
        left.merge(right)
        assert left.estimate("g") == pytest.approx(1.0)

    def test_config_mismatch(self):
        with pytest.raises(ValueError):
            DistinctCountAggregator(p=8).merge(DistinctCountAggregator(p=9))

    def test_type_error(self):
        with pytest.raises(TypeError):
            DistinctCountAggregator().merge_inplace(object())  # type: ignore[arg-type]


class TestSparseBehaviour:
    def test_small_groups_stay_small(self):
        sparse = build([(f"g{i}", i) for i in range(100)], sparse=True, p=10)
        dense = build([(f"g{i}", i) for i in range(100)], sparse=False, p=10)
        assert sparse.total_memory_bytes() < dense.total_memory_bytes() / 20

    def test_dense_mode_works(self):
        aggregator = build([("g", i) for i in range(500)], sparse=False)
        assert aggregator.estimate("g") == pytest.approx(500, rel=0.1)


class TestSerialization:
    @pytest.mark.parametrize("sparse", [True, False])
    def test_roundtrip(self, sparse):
        aggregator = build(
            [(f"group-{i % 7}", i) for i in range(3000)], sparse=sparse, p=8
        )
        restored = DistinctCountAggregator.from_bytes(aggregator.to_bytes())
        assert restored == aggregator
        assert restored.estimates() == aggregator.estimates()

    def test_empty_roundtrip(self):
        aggregator = DistinctCountAggregator()
        assert DistinctCountAggregator.from_bytes(aggregator.to_bytes()) == aggregator

    def test_repr(self):
        assert "groups=0" in repr(DistinctCountAggregator())
