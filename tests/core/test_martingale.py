"""Martingale (HIP) estimation (paper Alg. 4, Sec. 3.3)."""

import math

import pytest

from repro.core.exaloglog import ExaLogLog
from repro.core.martingale import MartingaleExaLogLog
from repro.core.register import state_change_probability
from tests.conftest import random_hashes


class TestMuMaintenance:
    def test_initial_mu_is_one(self):
        assert MartingaleExaLogLog(2, 20, 4).mu == 1.0

    def test_mu_matches_recomputation(self):
        """Incremental mu must equal sum of h(r) over registers (Eq. (23))."""
        sketch = MartingaleExaLogLog(2, 16, 4)
        for i, h in enumerate(random_hashes(1, 3000)):
            sketch.add_hash(h)
            if i % 500 == 0:
                recomputed = sum(
                    state_change_probability(r, sketch.params)
                    for r in sketch.registers
                )
                assert sketch.mu == pytest.approx(recomputed, rel=1e-9)

    def test_mu_strictly_decreases_on_change(self):
        sketch = MartingaleExaLogLog(2, 20, 4)
        previous = sketch.mu
        for h in random_hashes(2, 500):
            changed = sketch.add_hash(h)
            if changed:
                assert sketch.mu < previous
                previous = sketch.mu
            else:
                assert sketch.mu == previous


class TestEstimates:
    def test_exact_for_first_element(self):
        sketch = MartingaleExaLogLog(2, 20, 4)
        sketch.add_hash(0xABCDEF)
        assert sketch.estimate() == pytest.approx(1.0)

    def test_registers_match_plain_sketch(self):
        plain = ExaLogLog(2, 20, 5)
        martingale = MartingaleExaLogLog(2, 20, 5)
        for h in random_hashes(3, 2000):
            plain.add_hash(h)
            martingale.add_hash(h)
        assert martingale.as_plain() == plain

    def test_accuracy(self):
        n = 30000
        sketch = MartingaleExaLogLog(2, 16, 8)
        for h in random_hashes(4, n):
            sketch.add_hash(h)
        # Theory: sqrt(2.77 / (24 * 256)) ~ 2.1 %; allow 5 sigma.
        assert sketch.estimate() == pytest.approx(n, rel=0.11)

    def test_unbiasedness_across_runs(self):
        n = 2000
        errors = []
        for seed in range(30):
            sketch = MartingaleExaLogLog(2, 16, 5)
            for h in random_hashes(seed, n):
                sketch.add_hash(h)
            errors.append(sketch.estimate() / n - 1.0)
        mean = sum(errors) / len(errors)
        sd = math.sqrt(sum(e * e for e in errors) / len(errors))
        assert abs(mean) < 3.0 * sd / math.sqrt(len(errors)) + 0.01

    def test_martingale_beats_ml_on_average(self):
        """Sec. 2.4: martingale errors are smaller (MVP 2.77 vs 3.67-ish)."""
        n = 5000
        ml_sq = 0.0
        mart_sq = 0.0
        runs = 40
        for seed in range(runs):
            sketch = MartingaleExaLogLog(2, 16, 6)
            for h in random_hashes(seed + 1000, n):
                sketch.add_hash(h)
            mart_sq += (sketch.estimate() / n - 1.0) ** 2
            ml_sq += (sketch.ml_estimate() / n - 1.0) ** 2
        assert mart_sq < ml_sq * 1.3  # martingale should not be worse


class TestRestrictions:
    def test_merge_refused(self):
        with pytest.raises(NotImplementedError):
            MartingaleExaLogLog(2, 20, 4).merge(MartingaleExaLogLog(2, 20, 4))
        with pytest.raises(NotImplementedError):
            MartingaleExaLogLog(2, 20, 4).merge_inplace(ExaLogLog(2, 20, 4))

    def test_reduce_returns_plain(self):
        sketch = MartingaleExaLogLog(2, 20, 4)
        for h in random_hashes(5, 100):
            sketch.add_hash(h)
        reduced = sketch.reduce(d=16)
        assert type(reduced) is ExaLogLog

    def test_as_plain_preserves_registers(self):
        sketch = MartingaleExaLogLog(2, 20, 4)
        for h in random_hashes(6, 100):
            sketch.add_hash(h)
        assert tuple(sketch.as_plain().registers) == sketch.registers


class TestSerialization:
    def test_roundtrip(self):
        sketch = MartingaleExaLogLog(2, 20, 5)
        for h in random_hashes(7, 1500):
            sketch.add_hash(h)
        restored = MartingaleExaLogLog.from_bytes(sketch.to_bytes())
        assert restored == sketch
        assert restored.estimate() == sketch.estimate()
        assert restored.mu == sketch.mu

    def test_serialized_size(self):
        sketch = MartingaleExaLogLog(2, 20, 8)
        assert len(sketch.to_bytes()) == sketch.serialized_size_bytes
        plain = ExaLogLog(2, 20, 8)
        assert sketch.serialized_size_bytes == plain.serialized_size_bytes + 16

    def test_copy(self):
        sketch = MartingaleExaLogLog(2, 20, 4)
        for h in random_hashes(8, 200):
            sketch.add_hash(h)
        clone = sketch.copy()
        assert clone == sketch
        clone.add_hash(99999)
        assert clone != sketch
