"""Retention analysis end-to-end: windowed source + SetOp vs exact sets.

The satellite scenario of the unified query plane: "users active today
who were also active in the previous week", phrased as an intersection
of two ``Window`` subplans over one bucket-per-day sliding counter, and
validated against exact set arithmetic on the same event stream.
"""

import numpy as np
import pytest

from repro.query import Scan, SetOp, Window, execute, query
from repro.windowed import SlidingWindowDistinctCounter

DAY = 86400.0


def _simulate(seed: int = 17, days: int = 8, pool: int = 4000, daily: int = 1500):
    """Eight days of activity; returns (counter, per-day exact user sets)."""
    rng = np.random.Generator(np.random.PCG64(seed))
    counter = SlidingWindowDistinctCounter(
        window=days * DAY, buckets=days, t=2, d=20, p=12
    )
    exact: list[set] = []
    for day in range(days):
        users = rng.choice(pool, size=daily, replace=False)
        exact.append(set(users.tolist()))
        counter.add_batch(users.astype(np.int64), at=day * DAY + DAY / 2)
    return counter, exact


@pytest.fixture(scope="module")
def activity():
    return _simulate()


def test_retained_users_today_vs_last_week(activity):
    counter, exact = activity
    now = 7 * DAY + DAY / 2  # mid-day 7 (the 8th day)
    plan = SetOp(
        "intersect",
        Window(Scan(), duration=DAY),                     # today (day 7)
        Window(Scan(), duration=7 * DAY, end=now - DAY),  # days 0..6
    )
    estimated = execute(plan, counter, now=now).value
    truth = len(exact[7] & set().union(*exact[:7]))
    assert estimated == pytest.approx(truth, rel=0.15)


def test_churned_users_diff(activity):
    counter, exact = activity
    now = 7 * DAY + DAY / 2
    plan = SetOp(
        "diff",
        Window(Scan(), duration=7 * DAY, end=now - DAY),  # active last week...
        Window(Scan(), duration=DAY),                     # ...but not today
    )
    estimated = execute(plan, counter, now=now).value
    truth = len(set().union(*exact[:7]) - exact[7])
    assert estimated == pytest.approx(truth, rel=0.15, abs=150)


def test_windows_match_counter_semantics(activity):
    """A full-window plan equals the counter's own bucket-aligned estimate."""
    counter, _ = activity
    now = 7 * DAY + DAY / 2
    plan_value = execute(
        Window(Scan(), duration=8 * DAY), counter, now=now
    ).value
    assert plan_value == counter.estimate(now=now)


def test_dialect_retention_round_trip(activity):
    """The same retention question through the string dialect."""
    counter, exact = activity
    now = 7 * DAY + DAY / 2
    result = query(
        counter,
        "window 1d intersect window 7d ending {:.0f}".format(now - DAY),
        now=now,
    )
    truth = len(exact[7] & set().union(*exact[:7]))
    assert result.value == pytest.approx(truth, rel=0.15)
