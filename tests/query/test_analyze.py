"""``execute(..., analyze=True)``: per-plan-node timing on every source."""

from __future__ import annotations

import pytest

from repro.aggregate import DistinctCountAggregator
from repro.query import (
    DEFAULT_SOURCE,
    Estimate,
    Filter,
    Scan,
    SetOp,
    TopK,
    execute,
    explain,
)

CONFIG = (2, 16, 8, False, 0)
GROUPS = [b"g0", b"g1", b"g2"]


def _aggregator() -> DistinctCountAggregator:
    aggregator = DistinctCountAggregator(*CONFIG)
    for index, group in enumerate(GROUPS):
        items = list(range(index * 1000, index * 1000 + 500))
        aggregator.add_batch([group] * len(items), items)
    return aggregator


@pytest.fixture(scope="module")
def seeded_dir(tmp_path_factory):
    """One ingested store directory shared by the store-backed sources."""
    from repro.store import SketchStore

    directory = tmp_path_factory.mktemp("analyze_store")
    with SketchStore.open(directory, t=2, d=16, p=8) as store:
        for index, group in enumerate(GROUPS):
            store.append(group, range(index * 1000, index * 1000 + 500))
    return directory


def _sources(seeded_dir):
    """Every SketchSource kind, lazily opened: (name, open(), close())."""
    from repro.store import FollowerStore, SketchStore, SnapshotReader, WalShipper

    def follower(directory):
        replica = FollowerStore.open(directory / "replica")
        WalShipper(directory).sync(replica)
        return replica

    return [
        ("aggregator", lambda d: _aggregator(), lambda s: None),
        ("store", lambda d: SketchStore.open(d), lambda s: s.close()),
        ("reader", lambda d: SnapshotReader.open(d), lambda s: s.close()),
        ("follower", follower, lambda s: s.close()),
    ]


PLANS = {
    "estimate-all": Estimate(Scan()),
    "estimate-filtered": Estimate(Filter(Scan(), keys=(b"g0",))),
    "top-2": TopK(Scan(), 2),
    "union": Estimate(
        SetOp("union", Filter(Scan(), keys=(b"g0",)), Filter(Scan(), keys=(b"g1",)))
    ),
    "jaccard": SetOp(
        "jaccard", Filter(Scan(), keys=(b"g0",)), Filter(Scan(), keys=(b"g1",))
    ),
}


def _walk(node):
    yield node
    for attr in ("child", "left", "right"):
        sub = getattr(node, attr, None)
        if sub is not None:
            yield from _walk(sub)


@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_analyze_times_every_node_on_every_source(plan_name, seeded_dir):
    plan = PLANS[plan_name]
    for name, opener, closer in _sources(seeded_dir):
        source = opener(seeded_dir)
        try:
            plain = execute(plan, source)
            analyzed = execute(plan, source, analyze=True)
            # Rows are unchanged by analysis...
            assert analyzed.rows == plain.rows, f"{name}: rows drifted"
            assert plain.profile is None
            # ...and every node of the plan got an inclusive wall time.
            profile = analyzed.profile
            assert profile is not None
            for node in _walk(plan):
                assert id(node) in profile, (
                    f"{name}/{plan_name}: {type(node).__name__} missing"
                )
                assert profile[id(node)] >= 0.0
            # explain(profile=...) annotates every line.
            lines = explain(plan, {DEFAULT_SOURCE: source}, profile=profile)
            assert all("[time=" in line for line in lines)
            assert not any("time=n/a" in line for line in lines)
        finally:
            closer(source)


def test_plain_explain_has_no_timing(seeded_dir):
    plan = PLANS["estimate-all"]
    aggregator = _aggregator()
    lines = explain(plan, {DEFAULT_SOURCE: aggregator})
    assert not any("[time=" in line for line in lines)


def test_child_time_nests_inside_parent():
    plan = Estimate(Filter(Scan(), keys=(b"g0", b"g1")))
    result = execute(plan, _aggregator(), analyze=True)
    profile = result.profile
    estimate, filter_node, scan = list(_walk(plan))
    # Inclusive timing: parent >= child >= grandchild.
    assert profile[id(estimate)] >= profile[id(filter_node)]
    assert profile[id(filter_node)] >= profile[id(scan)]
