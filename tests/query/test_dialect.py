"""The string dialect: tokenizer, grammar, and error reporting."""

import pytest

from repro.query import (
    Estimate,
    Filter,
    ParseError,
    Scan,
    SetOp,
    TopK,
    Window,
    parse,
)


class TestActions:
    def test_top(self):
        assert parse("top 10") == TopK(Scan(), 10)

    def test_estimate_all(self):
        assert parse("estimate all") == Estimate(Scan())
        assert parse("estimate") == Estimate(Scan())

    def test_estimate_single_key(self):
        assert parse("estimate 'demo'") == Estimate(Filter(Scan(), keys=("demo",)))

    def test_no_action_is_bare_expression(self):
        assert parse("") == Scan()
        assert parse("from follower") == Scan("follower")


class TestWhere:
    def test_equals(self):
        expected = Filter(Scan(), keys=("a",))
        assert parse("where key = 'a'") == expected
        assert parse("where key == 'a'") == expected

    def test_startswith(self):
        assert parse("top 10 where key startswith 'country:'") == TopK(
            Filter(Scan(), prefix="country:"), 10
        )

    def test_in_list(self):
        assert parse("where key in ('a', 'b', 'c')") == Filter(
            Scan(), keys=("a", "b", "c")
        )

    def test_double_quotes(self):
        assert parse('where key = "a"') == Filter(Scan(), keys=("a",))


class TestWindow:
    def test_duration_units(self):
        assert parse("window 90s") == Window(Scan(), 90.0)
        assert parse("window 15m") == Window(Scan(), 900.0)
        assert parse("window 1h") == Window(Scan(), 3600.0)
        assert parse("window 2d") == Window(Scan(), 172800.0)
        assert parse("window 42") == Window(Scan(), 42.0)

    def test_ending_and_bucket(self):
        assert parse("window 1h ending 7200") == Window(Scan(), 3600.0, end=7200.0)
        assert parse("window 1h bucket 10m") == Window(
            Scan(), 3600.0, bucket_width=600.0
        )

    def test_window_composes_after_where(self):
        plan = parse("top 10 where key startswith 'bucket:' window 1h")
        assert plan == TopK(
            Window(Filter(Scan(), prefix="bucket:"), 3600.0), 10
        )


class TestSetOps:
    def test_named_sources(self):
        assert parse("from today intersect from lastweek") == SetOp(
            "intersect", Scan("today"), Scan("lastweek")
        )

    def test_left_associative_unions(self):
        assert parse("from a union from b union from c") == SetOp(
            "union", SetOp("union", Scan("a"), Scan("b")), Scan("c")
        )

    def test_parenthesised(self):
        assert parse("top 3 (from a union from b)") == TopK(
            SetOp("union", Scan("a"), Scan("b")), 3
        )

    def test_scalar_setop_cannot_chain(self):
        with pytest.raises(ParseError, match="scalar"):
            parse("from a intersect from b union from c")

    def test_filters_on_operands(self):
        assert parse("where key = 'a' diff where key = 'b'") == SetOp(
            "diff", Filter(Scan(), keys=("a",)), Filter(Scan(), keys=("b",))
        )


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "top banana",
            "top 1.5",
            "where key",
            "where key like 'x'",
            "where key in ('a'",
            "window",
            "window abc",
            "top 10 garbage trailing",
            "estimate all )",
            "!!!",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_keywords_case_insensitive(self):
        assert parse("TOP 5 WHERE KEY STARTSWITH 'g'") == TopK(
            Filter(Scan(), prefix="g"), 5
        )
