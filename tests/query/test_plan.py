"""Logical plan algebra: construction, validation, canonicalisation."""

import pytest

from repro.query import (
    DEFAULT_SOURCE,
    Estimate,
    Filter,
    Scan,
    SetOp,
    TopK,
    Window,
    sources_of,
)


class TestConstruction:
    def test_scan_defaults_to_default_source(self):
        assert Scan().source == DEFAULT_SOURCE

    def test_filter_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            Filter(Scan())
        with pytest.raises(ValueError):
            Filter(Scan(), keys=("a",), prefix="b")

    def test_filter_canonicalises_keys(self):
        node = Filter(Scan(), keys=("a", b"b", 7))
        assert node.keys == (b"a", b"b", (7).to_bytes(8, "little", signed=True))
        assert Filter(Scan(), prefix="country:").prefix == b"country:"

    def test_filter_matches(self):
        assert Filter(Scan(), keys=("a",)).matches(b"a")
        assert not Filter(Scan(), keys=("a",)).matches(b"b")
        assert Filter(Scan(), prefix="co").matches(b"country:US")
        assert Filter(Scan(), predicate=lambda k: k.endswith(b"x")).matches(b"ax")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Window(Scan(), duration=0.0)
        with pytest.raises(ValueError):
            Window(Scan(), duration=-5.0)

    def test_setop_validation(self):
        with pytest.raises(ValueError):
            SetOp("xor", Scan(), Scan())

    def test_topk_validation(self):
        with pytest.raises(ValueError):
            TopK(Scan(), -1)

    def test_plans_are_immutable_and_hashable(self):
        plan = TopK(Filter(Scan(), prefix="g"), 3)
        with pytest.raises(Exception):
            plan.count = 5  # frozen dataclass
        assert hash(plan) == hash(TopK(Filter(Scan(), prefix="g"), 3))


class TestSourcesOf:
    def test_single(self):
        assert sources_of(Estimate(Scan())) == (DEFAULT_SOURCE,)

    def test_setop_collects_both_sides_in_order(self):
        plan = SetOp("intersect", Scan("today"), Filter(Scan("week"), prefix="g"))
        assert sources_of(plan) == ("today", "week")

    def test_duplicates_collapse(self):
        plan = SetOp("union", Scan(), Scan())
        assert sources_of(plan) == (DEFAULT_SOURCE,)
