"""Executor semantics over in-memory and adapted sources."""

import pytest

from repro.aggregate import DistinctCountAggregator
from repro.query import (
    BucketedSource,
    Estimate,
    Filter,
    Scan,
    SetOp,
    TopK,
    Window,
    WindowedSource,
    as_source,
    execute,
    execute_sketches,
    query,
)
from repro.windowed import SlidingWindowDistinctCounter


def aggregator_with(groups: dict) -> DistinctCountAggregator:
    aggregator = DistinctCountAggregator(p=10)
    for group, items in groups.items():
        for item in items:
            aggregator.add(group, item)
    return aggregator


@pytest.fixture
def countries():
    return aggregator_with(
        {
            "country:US": [f"us-{i}" for i in range(3000)],
            "country:DE": [f"de-{i}" for i in range(1000)],
            "city:berlin": [f"b-{i}" for i in range(500)],
        }
    )


class TestEstimate:
    def test_estimate_all_sorted_by_key(self, countries):
        result = execute(Estimate(Scan()), countries)
        assert result.kind == "estimates"
        assert [key for key, _ in result.rows] == sorted(
            key for key, _ in result.rows
        )
        assert dict(result.rows) == countries.estimates()

    def test_implicit_estimate_for_sketch_valued_root(self, countries):
        assert execute(Scan(), countries).rows == execute(
            Estimate(Scan()), countries
        ).rows

    def test_estimates_are_bit_identical_to_scalar(self, countries):
        for key, value in execute(Estimate(Scan()), countries).rows:
            assert value == countries._groups[key].estimate()


class TestFilter:
    def test_prefix(self, countries):
        rows = execute(Estimate(Filter(Scan(), prefix="country:")), countries).rows
        assert [key for key, _ in rows] == [b"country:DE", b"country:US"]

    def test_keys_selective(self, countries):
        rows = execute(
            Estimate(Filter(Scan(), keys=("city:berlin", "missing"))), countries
        ).rows
        assert [key for key, _ in rows] == [b"city:berlin"]

    def test_predicate(self, countries):
        rows = execute(
            Estimate(Filter(Scan(), predicate=lambda k: k.endswith(b"US"))),
            countries,
        ).rows
        assert [key for key, _ in rows] == [b"country:US"]


class TestTopK:
    def test_order_and_truncation(self, countries):
        result = execute(TopK(Scan(), 2), countries)
        assert result.kind == "top"
        assert [key for key, _ in result.rows] == [b"country:US", b"country:DE"]

    def test_ties_break_by_ascending_key(self):
        aggregator = aggregator_with({"b": ["x"], "a": ["x"], "c": ["x"]})
        rows = execute(TopK(Scan(), 3), aggregator).rows
        assert [key for key, _ in rows] == [b"a", b"b", b"c"]

    def test_zero_count(self, countries):
        assert execute(TopK(Scan(), 0), countries).rows == ()


class TestSetOps:
    def test_union_is_sketch_valued(self, countries):
        result = execute(
            SetOp(
                "union",
                Filter(Scan(), keys=("country:US",)),
                Filter(Scan(), keys=("country:DE",)),
            ),
            countries,
        )
        assert result.kind == "estimates"
        assert result.rows[0][0] == b"union"
        assert result.value == pytest.approx(4000, rel=0.1)

    def test_intersect_diff_jaccard_scalar(self):
        aggregator = aggregator_with(
            {"a": [f"k{i}" for i in range(2000)], "b": [f"k{i}" for i in range(1000, 3000)]}
        )
        left = Filter(Scan(), keys=("a",))
        right = Filter(Scan(), keys=("b",))
        intersect = execute(SetOp("intersect", left, right), aggregator)
        assert intersect.kind == "setop"
        assert intersect.rows[0][0] == b"intersect"
        assert intersect.value == pytest.approx(1000, rel=0.35)
        diff = execute(SetOp("diff", left, right), aggregator)
        assert diff.value == pytest.approx(1000, rel=0.35)
        jaccard = execute(SetOp("jaccard", left, right), aggregator)
        assert 0.0 <= jaccard.value <= 1.0

    def test_empty_side_collapses_to_empty_sketch(self, countries):
        result = execute(
            SetOp(
                "intersect",
                Filter(Scan(), keys=("country:US",)),
                Filter(Scan(), keys=("nothing-matches",)),
            ),
            countries,
        )
        assert result.value == 0.0

    def test_named_sources(self, countries):
        other = aggregator_with({"country:US": ["us-0", "us-1"]})
        result = execute(
            SetOp("intersect", Scan(), Scan("other")),
            countries,
            sources={"other": other},
        )
        assert result.value == pytest.approx(2, abs=1.5)

    def test_unknown_source_raises(self, countries):
        with pytest.raises(KeyError, match="nope"):
            execute(Estimate(Scan("nope")), countries)


class TestWindow:
    def _counter(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=10)
        for i in range(100):
            counter.add(f"early-{i}", at=5.0)   # bucket 0
        for i in range(200):
            counter.add(f"mid-{i}", at=25.0)    # bucket 2
        for i in range(300):
            counter.add(f"late-{i}", at=55.0)   # bucket 5
        return counter

    def test_window_merges_covered_buckets(self):
        counter = self._counter()
        result = execute(Window(Scan(), duration=40.0), counter, now=55.0)
        # Buckets 2..5 covered (ceil(40/10)=4 buckets): mid + late.
        assert result.rows[0][0] == b"window[2:5]"
        assert result.value == pytest.approx(500, rel=0.1)

    def test_window_end_overrides_now(self):
        counter = self._counter()
        result = execute(Window(Scan(), duration=10.0, end=25.0), counter, now=999.0)
        assert result.value == pytest.approx(200, rel=0.1)

    def test_window_matches_counter_estimate_exactly(self):
        counter = self._counter()
        result = execute(Window(Scan(), duration=60.0), counter, now=55.0)
        assert result.value == counter.estimate(now=55.0)

    def test_window_needs_anchor(self):
        with pytest.raises(ValueError, match="anchor"):
            execute(Window(Scan(), duration=10.0), self._counter())

    def test_window_needs_bucket_width(self, countries):
        with pytest.raises(ValueError, match="bucket_width"):
            execute(Window(Scan(), duration=10.0), countries, now=1.0)

    def test_bucketed_source_provides_layout(self, tmp_path):
        from repro.store import SketchStore

        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=10)
        with SketchStore.open(tmp_path / "s", p=10) as store:
            retiring = SlidingWindowDistinctCounter(
                window=60.0, buckets=6, p=10, store=store
            )
            for i in range(150):
                retiring.add(f"old-{i}", at=5.0)
            for i in range(50):
                retiring.add(f"new-{i}", at=500.0)  # evicts bucket 0 into the store
            retiring.flush_to_store()
            source = BucketedSource(store, bucket_width=10.0)
            result = execute(Window(Scan(), duration=10.0, end=5.0), source)
            assert result.value == pytest.approx(150, rel=0.1)
        del counter

    def test_empty_window_returns_no_rows(self):
        counter = self._counter()
        result = execute(Window(Scan(), duration=10.0, end=1e6), counter)
        assert result.rows == ()


class TestSources:
    def test_as_source_wraps_counter(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6)
        source = as_source(counter)
        assert isinstance(source, WindowedSource)
        assert as_source(source) is source

    def test_as_source_rejects_unknown(self):
        with pytest.raises(TypeError, match="SketchSource"):
            as_source(42)

    def test_windowed_source_round_trip(self):
        counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=10)
        counter.add("alice", at=10.0)
        counter.add("bob", at=10.0)
        source = WindowedSource(counter)
        assert list(source.groups()) == [b"bucket:1"]
        assert source.group_sketch(b"bucket:1").estimate() == pytest.approx(2, abs=0.5)
        assert source.group_sketch(b"bucket:9") is None
        assert source.group_sketch(b"unrelated") is None
        assert source.top(1)[0][0] == b"bucket:1"


class TestResultSurface:
    def test_decoded(self, countries):
        decoded = execute(TopK(Scan(), 1), countries).decoded()
        assert decoded[0][0] == "country:US"

    def test_value_requires_single_row(self, countries):
        with pytest.raises(ValueError, match="rows"):
            execute(Estimate(Scan()), countries).value

    def test_execute_sketches_returns_private_copies(self, countries):
        sketches = execute_sketches(Scan(), countries)
        key = b"country:US"
        before = countries._groups[key].to_bytes()
        sketches[key].add("mutation")
        assert countries._groups[key].to_bytes() == before

    def test_query_entry_point_accepts_plan_and_text(self, countries):
        plan = TopK(Filter(Scan(), prefix="country:"), 10)
        assert (
            query(countries, "top 10 where key startswith 'country:'").rows
            == query(countries, plan).rows
        )
        assert query(countries).kind == "estimates"
