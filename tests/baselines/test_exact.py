"""Exact counter baseline."""

import pytest

from repro.baselines.exact import ExactCounter
from tests.conftest import random_hashes


class TestExactCounter:
    def test_counts_exactly(self):
        counter = ExactCounter()
        for h in random_hashes(1, 1000):
            counter.add_hash(h)
        assert counter.estimate() == 1000.0

    def test_duplicates_ignored(self):
        counter = ExactCounter()
        counter.add("x")
        counter.add("x")
        assert counter.estimate() == 1.0

    def test_merge(self):
        hashes = random_hashes(2, 100)
        a, b = ExactCounter(), ExactCounter()
        for h in hashes[:70]:
            a.add_hash(h)
        for h in hashes[30:]:
            b.add_hash(h)
        assert a.merge(b).estimate() == 100.0

    def test_merge_type_error(self):
        with pytest.raises(TypeError):
            ExactCounter().merge_inplace("x")  # type: ignore[arg-type]

    def test_memory_linear(self):
        counter = ExactCounter()
        empty = counter.memory_bytes
        for h in random_hashes(3, 500):
            counter.add_hash(h)
        assert counter.memory_bytes == empty + 8 * 500

    def test_roundtrip(self):
        counter = ExactCounter()
        for h in random_hashes(4, 300):
            counter.add_hash(h)
        restored = ExactCounter.from_bytes(counter.to_bytes())
        assert restored.estimate() == counter.estimate()
        assert restored.merge(counter).estimate() == counter.estimate()
