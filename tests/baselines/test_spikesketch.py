"""SpikeSketch behavioural model: documented traits of Sec. 1.1 / 5.2."""

import math

import pytest

from repro.baselines.spikesketch import ACCEPTANCE, SpikeSketch
from tests.conftest import random_hashes


def filled(buckets, hashes):
    sketch = SpikeSketch(buckets)
    for h in hashes:
        sketch.add_hash(h)
    return sketch


class TestModelTraits:
    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            SpikeSketch(100)  # not a power of two

    def test_size_is_8_bytes_per_bucket(self):
        """Table 2's lower bound: 128 buckets >= 1024 bytes."""
        sketch = SpikeSketch(128)
        assert sketch.memory_bytes - 16 == 1024
        assert len(sketch.to_bytes()) - 8 == 1024

    def test_level_probabilities_sum_to_one(self):
        sketch = SpikeSketch(128)
        total = sum(sketch.level_probability(k) for k in range(1, sketch.max_level + 1))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_geometric_success_three_quarters(self):
        """Sec. 1.1: update values follow geometric with success 3/4."""
        sketch = SpikeSketch(128)
        assert sketch.level_probability(1) == pytest.approx(0.75)
        assert sketch.level_probability(2) == pytest.approx(0.75 / 4)

    def test_smoothing_drops_36_percent_at_n1(self):
        """Sec. 5.2: error is 100 % with ~36 % probability at n = 1."""
        zero_estimates = 0
        runs = 1500
        for seed in range(runs):
            sketch = filled(128, random_hashes(seed, 1))
            if sketch.estimate() == 0.0:
                zero_estimates += 1
        assert zero_estimates / runs == pytest.approx(1.0 - ACCEPTANCE, abs=0.05)

    def test_idempotent(self):
        hashes = random_hashes(1, 500)
        assert filled(64, hashes) == filled(64, hashes + hashes)


class TestEstimation:
    @pytest.mark.parametrize("n", [1000, 20000])
    def test_accuracy_at_moderate_n(self, n):
        sketch = filled(128, random_hashes(n, n))
        # The model's RMSE is ~2.9 % at 128 buckets; allow 5 sigma.
        assert sketch.estimate() == pytest.approx(n, rel=0.15)

    def test_empty(self):
        assert SpikeSketch(128).estimate() == 0.0

    def test_high_mvp_at_small_n(self):
        """Figure 10: the MVP blows up below n ~ 1e4 (lossy + smoothing)."""
        n = 10
        squared = 0.0
        runs = 300
        for seed in range(runs):
            sketch = filled(128, random_hashes(seed + 2000, n))
            squared += (sketch.estimate() / n - 1.0) ** 2
        rmse = math.sqrt(squared / runs)
        mvp = 1024 * 8 * rmse * rmse
        assert mvp > 20  # vastly above the asymptotic value


class TestMergeAndSerialization:
    def test_merge_equals_union(self):
        hashes = random_hashes(3, 3000)
        a = filled(64, hashes[:2000])
        b = filled(64, hashes[1000:])
        assert a.merge(b) == filled(64, hashes)

    def test_merge_mismatch(self):
        with pytest.raises(ValueError):
            SpikeSketch(64).merge_inplace(SpikeSketch(128))

    def test_roundtrip(self):
        sketch = filled(128, random_hashes(4, 5000))
        assert SpikeSketch.from_bytes(sketch.to_bytes()) == sketch
