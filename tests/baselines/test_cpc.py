"""CPC surrogate: compressed serialization over a PCSA working state."""

import pytest

from repro.baselines.cpc import CpcSketch
from repro.baselines.pcsa import PCSA
from tests.conftest import random_hashes


def filled(p, hashes):
    sketch = CpcSketch(p)
    for h in hashes:
        sketch.add_hash(h)
    return sketch


class TestBehaviour:
    def test_estimates_match_pcsa_ml(self):
        hashes = random_hashes(1, 10000)
        cpc = filled(9, hashes)
        pcsa = PCSA(9)
        for h in hashes:
            pcsa.add_hash(h)
        assert cpc.estimate() == pytest.approx(pcsa.estimate_ml(), rel=1e-12)

    def test_merge_equals_union(self):
        hashes = random_hashes(2, 4000)
        a = filled(8, hashes[:2500])
        b = filled(8, hashes[1500:])
        assert a.merge(b) == filled(8, hashes)

    def test_merge_type_error(self):
        with pytest.raises(TypeError):
            CpcSketch(8).merge_inplace(PCSA(8))

    def test_not_constant_time_flag(self):
        assert CpcSketch.constant_time_insert is False


class TestCompression:
    """The whole point of CPC: a serialized size near the entropy bound."""

    def test_serialized_much_smaller_than_bitmaps(self):
        sketch = filled(10, random_hashes(3, 100000))
        serialized = len(sketch.to_bytes())
        assert serialized < sketch.pcsa.bitmap_bytes / 5

    def test_memory_about_twice_serialized(self):
        """Paper Table 2: 1416 vs 656 bytes at p=10 and n=1e6."""
        sketch = filled(10, random_hashes(4, 100000))
        ratio = sketch.memory_bytes / len(sketch.to_bytes())
        assert 1.5 < ratio < 3.5

    def test_roundtrip_lossless(self):
        for n in (0, 10, 1000, 50000):
            sketch = filled(9, random_hashes(n + 5, n))
            restored = CpcSketch.from_bytes(sketch.to_bytes())
            assert restored == sketch

    def test_serialized_size_grows_then_saturates(self):
        sizes = []
        for n in (100, 1000, 10000, 100000):
            sizes.append(len(filled(10, random_hashes(6, n)).to_bytes()))
        assert sizes[0] < sizes[-1]
        # Beyond n >> m the size approaches the asymptotic entropy.
        assert sizes[-1] < 1.35 * sizes[-2]

    def test_serialized_mvp_near_paper_value(self):
        """Table 2: serialized CPC MVP ~ 2.46 (ours uses ML, slightly
        better). Single-run smoke check with generous tolerance."""
        import math

        n = 50000
        errors = []
        size = None
        for seed in range(12):
            sketch = filled(10, random_hashes(seed + 50, n))
            errors.append(sketch.estimate() / n - 1.0)
            if size is None:
                size = len(sketch.to_bytes())
        rmse = math.sqrt(sum(e * e for e in errors) / len(errors))
        mvp = size * 8 * rmse * rmse
        # Ours lands *below* the paper's 2.46: ML estimation beats CPC's
        # ICON/HIP and the model-based range coder is near the entropy
        # bound (recorded as a favourable deviation in EXPERIMENTS.md).
        assert 0.4 < mvp < 4.5
