"""ULL / EHLL as ExaLogLog special cases (paper Sec. 2.5)."""

import pytest

from repro.baselines.ultraloglog import (
    ExtendedHyperLogLog,
    MartingaleUltraLogLog,
    UltraLogLog,
)
from repro.core.exaloglog import ExaLogLog
from tests.conftest import random_hashes


class TestUltraLogLog:
    def test_is_ell_0_2(self):
        sketch = UltraLogLog(p=10)
        assert (sketch.t, sketch.d, sketch.p) == (0, 2, 10)
        assert sketch.params.register_bits == 8

    def test_one_byte_per_register(self):
        """Table 2: ULL p=10 register array is exactly 1024 bytes."""
        assert UltraLogLog(10).register_array_bytes == 1024

    def test_state_matches_generic_ell(self):
        ull = UltraLogLog(8)
        ell = ExaLogLog(0, 2, 8)
        for h in random_hashes(1, 5000):
            ull.add_hash(h)
            ell.add_hash(h)
        assert list(ull.registers) == list(ell.registers)
        assert ull.estimate() == ell.estimate()

    def test_accuracy(self):
        n = 30000
        sketch = UltraLogLog(10)
        for h in random_hashes(2, n):
            sketch.add_hash(h)
        # Theory: sqrt(4.63/8192) ~ 2.4 %; 5 sigma slack.
        assert sketch.estimate() == pytest.approx(n, rel=0.12)

    def test_roundtrip(self):
        sketch = UltraLogLog(8)
        for h in random_hashes(3, 2000):
            sketch.add_hash(h)
        assert UltraLogLog.from_bytes(sketch.to_bytes()) == sketch

    def test_from_exaloglog(self):
        ell = ExaLogLog(0, 2, 6)
        for h in random_hashes(4, 500):
            ell.add_hash(h)
        assert list(UltraLogLog.from_exaloglog(ell).registers) == list(ell.registers)
        with pytest.raises(ValueError):
            UltraLogLog.from_exaloglog(ExaLogLog(2, 20, 6))

    def test_reduction_from_larger_ell_equals_direct(self):
        """Any ELL(0, d>=2) reduces losslessly to the ULL special case."""
        hashes = random_hashes(5, 3000)
        rich = ExaLogLog(0, 8, 8)
        ull = UltraLogLog(6)
        for h in hashes:
            rich.add_hash(h)
            ull.add_hash(h)
        assert rich.reduce(d=2, p=6) == ull.as_ell() if hasattr(ull, "as_ell") else True
        assert list(rich.reduce(d=2, p=6).registers) == list(ull.registers)

    def test_copy_preserves_type(self):
        assert type(UltraLogLog(6).copy()) is UltraLogLog


class TestMartingaleUltraLogLog:
    def test_accuracy(self):
        n = 20000
        sketch = MartingaleUltraLogLog(10)
        for h in random_hashes(6, n):
            sketch.add_hash(h)
        assert sketch.estimate() == pytest.approx(n, rel=0.1)

    def test_type(self):
        sketch = MartingaleUltraLogLog(8)
        assert (sketch.t, sketch.d, sketch.p) == (0, 2, 8)


class TestExtendedHyperLogLog:
    def test_is_ell_0_1(self):
        sketch = ExtendedHyperLogLog(p=10)
        assert (sketch.t, sketch.d) == (0, 1)
        assert sketch.params.register_bits == 7

    def test_accuracy(self):
        n = 20000
        sketch = ExtendedHyperLogLog(10)
        for h in random_hashes(7, n):
            sketch.add_hash(h)
        assert sketch.estimate() == pytest.approx(n, rel=0.12)
