"""HyperLogLogLog: 3-bit compression must be lossless vs plain HLL."""

import pytest

from repro.baselines.hyperloglog import HyperLogLog
from repro.baselines.hyperlogloglog import HyperLogLogLog, _optimal_offset
from tests.conftest import random_hashes


def pair(p, hashes):
    compressed = HyperLogLogLog(p)
    full = HyperLogLog(p)
    for h in hashes:
        compressed.add_hash(h)
        full.add_hash(h)
    return compressed, full


class TestOptimalOffset:
    def test_all_zero(self):
        assert _optimal_offset([0] * 8) == 0

    @staticmethod
    def _exceptions(values, offset):
        return sum(1 for v in values if not offset <= v < offset + 7)

    def test_tight_cluster_fully_covered(self):
        values = [10, 11, 12, 13]
        offset = _optimal_offset(values)
        assert self._exceptions(values, offset) == 0

    def test_minimises_exceptions(self):
        values = [5] * 90 + [20] * 10
        offset = _optimal_offset(values)
        # Any optimal offset keeps the 90-strong cluster in the window.
        assert self._exceptions(values, offset) == 10

    def test_bimodal_prefers_heavier_mode(self):
        values = [2] * 10 + [30] * 90
        offset = _optimal_offset(values)
        assert 24 <= offset <= 30


class TestValueEquivalence:
    @pytest.mark.parametrize("n", [0, 10, 1000, 50000])
    def test_register_values_match_hll(self, n):
        compressed, full = pair(8, random_hashes(n + 1, n))
        assert compressed.register_values() == list(full.registers)

    def test_offset_advances(self):
        compressed, _ = pair(6, random_hashes(2, 50000))
        assert compressed.offset > 0

    def test_exception_count_small_after_rebalance(self):
        compressed, _ = pair(10, random_hashes(3, 100000))
        assert compressed.exception_count < compressed.m // 4


class TestEstimation:
    def test_uses_original_hll_estimator(self):
        """Sec. 5.2: HLLL's estimator is the original raw one."""
        compressed, full = pair(9, random_hashes(4, 20000))
        assert compressed.estimate() == pytest.approx(full.estimate_raw(), rel=1e-12)

    def test_ml_alternative_matches_hll_ml(self):
        compressed, full = pair(9, random_hashes(5, 20000))
        assert compressed.estimate_ml() == pytest.approx(full.estimate_ml(), rel=1e-12)


class TestSizeAndSerialization:
    def test_memory_below_6bit_hll(self):
        compressed, full = pair(11, random_hashes(6, 100000))
        assert compressed.memory_bytes < full.memory_bytes

    def test_roundtrip(self):
        compressed, _ = pair(8, random_hashes(7, 10000))
        restored = HyperLogLogLog.from_bytes(compressed.to_bytes())
        assert restored == compressed
        assert restored.register_values() == compressed.register_values()

    def test_merge_equals_union(self):
        hashes = random_hashes(8, 6000)
        a, _ = pair(7, hashes[:4000])
        b, _ = pair(7, hashes[2000:])
        u, _ = pair(7, hashes)
        a.merge_inplace(b)
        assert a.register_values() == u.register_values()
