"""4-bit offset-coded HyperLogLog (DataSketches style)."""

import pytest

from repro.baselines.hll_compact4 import HllCompact4
from repro.baselines.hyperloglog import HyperLogLog
from tests.conftest import random_hashes


def pair(p, hashes):
    compact = HllCompact4(p)
    full = HyperLogLog(p)
    for h in hashes:
        compact.add_hash(h)
        full.add_hash(h)
    return compact, full


class TestValueEquivalence:
    """The 4-bit coding must be lossless relative to plain HLL."""

    @pytest.mark.parametrize("n", [0, 10, 500, 20000])
    def test_register_values_match_hll(self, n):
        compact, full = pair(8, random_hashes(n, n))
        assert compact.register_values() == list(full.registers)

    def test_estimates_match_hll_ml(self):
        compact, full = pair(10, random_hashes(5, 30000))
        assert compact.estimate() == pytest.approx(full.estimate_ml(), rel=1e-12)

    def test_base_rises_with_n(self):
        compact, _ = pair(6, random_hashes(6, 50000))
        assert compact.base >= 1

    def test_exceptions_bounded(self):
        compact, _ = pair(8, random_hashes(7, 50000))
        # With the base raised, almost every value fits 4 bits.
        assert compact.exception_count < compact.m // 16


class TestMerge:
    def test_merge_equals_union(self):
        hashes = random_hashes(8, 5000)
        a, _ = pair(7, hashes[:3000])
        b, _ = pair(7, hashes[2000:])
        u, _ = pair(7, hashes)
        assert a.merge(b) == u

    def test_merge_with_plain_hll(self):
        hashes = random_hashes(9, 2000)
        compact, full = pair(7, hashes[:1000])
        other = HyperLogLog(7)
        for h in hashes[1000:]:
            other.add_hash(h)
        compact.merge_inplace(other)
        expected, _ = pair(7, hashes)
        assert compact == expected

    def test_type_error(self):
        with pytest.raises(TypeError):
            HllCompact4(6).merge_inplace(42)  # type: ignore[arg-type]


class TestSizes:
    def test_smaller_than_6bit(self):
        compact, full = pair(11, random_hashes(10, 30000))
        assert compact.memory_bytes < full.memory_bytes
        assert len(compact.to_bytes()) < len(full.to_bytes())

    def test_memory_varies_with_exceptions(self):
        empty = HllCompact4(8)
        loaded, _ = pair(8, random_hashes(11, 100))
        assert loaded.memory_bytes >= empty.memory_bytes


class TestSerialization:
    @pytest.mark.parametrize("n", [0, 100, 20000])
    def test_roundtrip(self, n):
        compact, _ = pair(8, random_hashes(n + 13, n))
        restored = HllCompact4.from_bytes(compact.to_bytes())
        assert restored == compact
        assert restored.register_values() == compact.register_values()
