"""HyperLogLog (Alg. 1) and its three estimators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hyperloglog import (
    HyperLogLog,
    MartingaleHyperLogLog,
    hll_index_and_value,
)
from repro.storage.serialization import SerializationError
from tests.conftest import random_hashes

hash_lists = st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=200)


def filled(p, hashes, width=6):
    sketch = HyperLogLog(p, width)
    for h in hashes:
        sketch.add_hash(h)
    return sketch


class TestAlgorithm1:
    def test_update_value_range(self):
        p = 11
        for h in random_hashes(1, 2000):
            index, k = hll_index_and_value(h, p)
            assert 0 <= index < (1 << p)
            assert 1 <= k <= 65 - p

    def test_all_zero_hash_maximal_value(self):
        index, k = hll_index_and_value(0, 11)
        assert index == 0
        assert k == 65 - 11

    def test_register_is_maximum(self):
        sketch = HyperLogLog(p=4)
        values: dict[int, int] = {}
        for h in random_hashes(2, 500):
            index, k = hll_index_and_value(h, 4)
            values[index] = max(values.get(index, 0), k)
            sketch.add_hash(h)
        for index, expected in values.items():
            assert sketch.registers[index] == expected

    @given(hash_lists)
    @settings(max_examples=40)
    def test_idempotent(self, hashes):
        assert filled(6, hashes + hashes) == filled(6, hashes)

    @given(hash_lists)
    @settings(max_examples=40)
    def test_order_independent(self, hashes):
        assert filled(6, hashes) == filled(6, list(reversed(hashes)))


class TestEstimators:
    @pytest.mark.parametrize("n", [100, 5000, 50000])
    def test_ml_accuracy(self, n):
        sketch = filled(11, random_hashes(n, n))
        assert sketch.estimate_ml() == pytest.approx(n, rel=0.12)

    @pytest.mark.parametrize("n", [100, 5000, 50000])
    def test_raw_accuracy(self, n):
        sketch = filled(11, random_hashes(n + 1, n))
        assert sketch.estimate_raw() == pytest.approx(n, rel=0.15)

    def test_linear_counting_small_range(self):
        sketch = filled(11, random_hashes(3, 10))
        assert sketch.estimate_raw() == pytest.approx(10, abs=3)

    def test_default_estimate_is_ml(self):
        sketch = filled(8, random_hashes(4, 1000))
        assert sketch.estimate() == sketch.estimate_ml()

    def test_empty_estimates_zero(self):
        assert HyperLogLog(8).estimate_ml() == 0.0
        assert HyperLogLog(8).estimate_raw() == 0.0


class TestMerge:
    @given(hash_lists, hash_lists)
    @settings(max_examples=40)
    def test_merge_equals_union(self, left, right):
        merged = filled(5, left).merge(filled(5, right))
        assert merged == filled(5, left + right)

    def test_precision_mismatch(self):
        with pytest.raises(ValueError):
            HyperLogLog(5).merge_inplace(HyperLogLog(6))


class TestSerialization:
    @pytest.mark.parametrize("width", [6, 8])
    def test_roundtrip(self, width):
        sketch = filled(9, random_hashes(5, 3000), width)
        restored = HyperLogLog.from_bytes(sketch.to_bytes())
        assert restored == sketch

    def test_sizes_match_table2(self):
        """Table 2: 6-bit p=11 serializes near 1536 + header bytes."""
        assert filled(11, []).register_array_bytes == 1536
        assert filled(11, [], width=8).register_array_bytes == 2048

    def test_truncated(self):
        with pytest.raises(SerializationError):
            HyperLogLog.from_bytes(filled(6, []).to_bytes()[:-2])


class TestMartingale:
    def test_first_element_exact(self):
        sketch = MartingaleHyperLogLog(11)
        sketch.add_hash(12345)
        assert sketch.estimate() == pytest.approx(1.0)

    def test_accuracy(self):
        n = 30000
        sketch = MartingaleHyperLogLog(11)
        for h in random_hashes(6, n):
            sketch.add_hash(h)
        # Martingale HLL: sqrt(6 ln2 / (6*2048)) ~ 1.8 %; 5 sigma slack.
        assert sketch.estimate() == pytest.approx(n, rel=0.1)

    def test_mu_decreases(self):
        sketch = MartingaleHyperLogLog(6)
        assert sketch.mu == 1.0
        for h in random_hashes(7, 500):
            sketch.add_hash(h)
        assert 0.0 < sketch.mu < 1.0

    def test_merge_refused(self):
        with pytest.raises(NotImplementedError):
            MartingaleHyperLogLog(6).merge_inplace(HyperLogLog(6))

    def test_roundtrip(self):
        sketch = MartingaleHyperLogLog(8)
        for h in random_hashes(8, 1000):
            sketch.add_hash(h)
        restored = MartingaleHyperLogLog.from_bytes(sketch.to_bytes())
        assert restored.estimate() == sketch.estimate()
        assert restored.mu == sketch.mu
        assert restored.registers == sketch.registers

    def test_registers_identical_to_plain(self):
        plain = HyperLogLog(8)
        martingale = MartingaleHyperLogLog(8)
        for h in random_hashes(9, 2000):
            plain.add_hash(h)
            martingale.add_hash(h)
        assert plain.registers == martingale.registers
