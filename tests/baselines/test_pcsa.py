"""PCSA / FM-sketch and its two estimators."""

import math

import pytest

from repro.baselines.pcsa import PCSA
from tests.conftest import random_hashes


def filled(p, hashes):
    sketch = PCSA(p)
    for h in hashes:
        sketch.add_hash(h)
    return sketch


class TestStructure:
    def test_levels(self):
        assert PCSA(10).levels == 54

    def test_level_probabilities_sum_to_one(self):
        sketch = PCSA(8)
        total = sum(sketch.level_probability(k) for k in range(sketch.levels))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_bits_accumulate(self):
        sketch = PCSA(4)
        before = sum(bin(b).count("1") for b in sketch.bitmaps)
        for h in random_hashes(1, 100):
            sketch.add_hash(h)
        after = sum(bin(b).count("1") for b in sketch.bitmaps)
        assert after > before

    def test_idempotent(self):
        hashes = random_hashes(2, 500)
        assert filled(6, hashes) == filled(6, hashes + hashes)

    def test_stores_more_than_max(self):
        """Unlike HLL, PCSA remembers every level hit (Sec. 2.5)."""
        sketch = PCSA(4)
        for h in random_hashes(3, 5000):
            sketch.add_hash(h)
        assert any(bin(b).count("1") > 1 for b in sketch.bitmaps)


class TestEstimators:
    @pytest.mark.parametrize("n", [1000, 20000])
    def test_ml_accuracy(self, n):
        sketch = filled(10, random_hashes(n, n))
        # ML rel error ~ sqrt(ln2/(m zeta(2,1))) ~ 2 %; 5 sigma slack.
        assert sketch.estimate_ml() == pytest.approx(n, rel=0.11)

    def test_fm_accuracy(self):
        n = 50000
        sketch = filled(10, random_hashes(4, n))
        # The FM estimator is coarser; allow 15 %.
        assert sketch.estimate_fm() == pytest.approx(n, rel=0.15)

    def test_ml_beats_fm_on_variance(self):
        """Sec. 6: ML estimation should work for PCSA, and well."""
        n = 5000
        ml_sq = fm_sq = 0.0
        runs = 25
        for seed in range(runs):
            sketch = filled(8, random_hashes(seed + 100, n))
            ml_sq += (sketch.estimate_ml() / n - 1.0) ** 2
            fm_sq += (sketch.estimate_fm() / n - 1.0) ** 2
        assert math.sqrt(ml_sq / runs) < math.sqrt(fm_sq / runs) * 1.25

    def test_empty(self):
        assert PCSA(6).estimate_ml() == 0.0


class TestMergeAndSerialization:
    def test_merge_equals_union(self):
        hashes = random_hashes(5, 4000)
        a = filled(7, hashes[:2500])
        b = filled(7, hashes[1500:])
        assert a.merge(b) == filled(7, hashes)

    def test_merge_mismatch(self):
        with pytest.raises(ValueError):
            PCSA(6).merge_inplace(PCSA(7))

    def test_roundtrip(self):
        sketch = filled(8, random_hashes(6, 3000))
        assert PCSA.from_bytes(sketch.to_bytes()) == sketch

    def test_bitmap_bytes(self):
        # p=10: 54 levels * 1024 buckets / 8 = 6912 bytes.
        assert PCSA(10).bitmap_bytes == 6912

    def test_windowed_memory_smaller_than_full(self):
        sketch = filled(10, random_hashes(7, 30000))
        assert sketch.windowed_memory_bytes() < sketch.bitmap_bytes
