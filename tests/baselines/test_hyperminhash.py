"""HyperMinHash special case (Sec. 2.5)."""

import pytest

from repro.baselines.hyperminhash import HyperMinHash
from repro.core.exaloglog import ExaLogLog
from repro.setops import jaccard_estimate
from tests.conftest import random_hashes


class TestSpecialCase:
    def test_is_ell_t_0(self):
        sketch = HyperMinHash(t=2, p=8)
        assert (sketch.t, sketch.d) == (2, 0)
        assert sketch.params.register_bits == 8

    def test_matches_generic_ell(self):
        hmh = HyperMinHash(t=1, p=6)
        ell = ExaLogLog(1, 0, 6)
        for h in random_hashes(1, 3000):
            hmh.add_hash(h)
            ell.add_hash(h)
        assert list(hmh.registers) == list(ell.registers)
        assert hmh.estimate() == ell.estimate()

    def test_reduction_from_windowed_ell(self):
        """Dropping d to 0 turns any ELL into the HyperMinHash state."""
        hashes = random_hashes(2, 2000)
        rich = ExaLogLog(2, 20, 6)
        hmh = HyperMinHash(t=2, p=6)
        for h in hashes:
            rich.add_hash(h)
            hmh.add_hash(h)
        reduced = rich.reduce(d=0)
        assert list(reduced.registers) == list(hmh.registers)
        assert HyperMinHash.from_exaloglog(reduced) == hmh

    def test_from_exaloglog_validation(self):
        with pytest.raises(ValueError):
            HyperMinHash.from_exaloglog(ExaLogLog(2, 20, 6))

    def test_estimation_accuracy(self):
        n = 20000
        sketch = HyperMinHash(t=2, p=10)
        for h in random_hashes(3, n):
            sketch.add_hash(h)
        assert sketch.estimate() == pytest.approx(n, rel=0.12)

    def test_jaccard_use_case(self):
        """HyperMinHash's raison d'etre: similarity estimation."""
        a = HyperMinHash(t=2, p=11)
        b = HyperMinHash(t=2, p=11)
        for i in range(20000):
            a.add(f"k{i}")
        for i in range(10000, 30000):
            b.add(f"k{i}")
        # True Jaccard: 10000 / 30000 = 1/3.
        assert jaccard_estimate(a, b) == pytest.approx(1 / 3, abs=0.1)
