"""Randomized cluster fault injection: every recovery converges bit-identically.

Three failure families, each driven by the seeded scenarios of the
invariant harness so a CI failure reproduces from the test id alone:

* a shard's WAL shipper dies mid-catch-up (replica left half-applied);
* a crash tears the final WAL record on one shard;
* a crash lands inside a rebalance — before the cutover fence, between
  the fences, or after the commit point.

The acceptance bar is the same everywhere: after recovery (reopen,
re-sync, or journal replay) the cluster's reassembled aggregator must be
*byte-identical* to the scalar reference over the same stream, and its
estimates float-identical. Not "close" — identical; exact mergeability
(register-max, idempotent) is what makes that a fair demand.
"""

import numpy as np
import pytest

from repro.cluster import ShardedStore, SimulatedCrash, read_journal
from repro.storage.serialization import write_lsn_record
from repro.store import RECORD_HASHES, FollowerStore, WalShipper, wal_path
from tests.invariants.harness import (
    OP_COMPACT,
    OP_HASHES,
    OP_SKETCH,
    _merge_sketch,
    assert_identical,
    build_scalar,
    random_scenario,
    rounds,
)

#: Every stage the rebalance state machine can die after: journal written,
#: begin fences appended, destination shards created, sketches copied,
#: moved groups dropped, commit fences appended, meta flipped (committed,
#: cleanup pending).
REBALANCE_STAGES = ("journal", "begin", "grow", "copy", "drop", "commit", "meta")


def _run_schedule(cluster: ShardedStore, scenario, steps) -> None:
    for step in steps:
        if step.op == OP_HASHES:
            cluster.append_hashes(step.group, step.hashes)
        elif step.op == OP_SKETCH:
            cluster.merge_sketch(step.group, _merge_sketch(scenario, step))
        elif step.op == OP_COMPACT:
            cluster.compact()


def _build_cluster(scenario, directory, shards):
    t, d, p, sparse, seed = scenario.config
    cluster = ShardedStore.open(
        directory, shards=shards, t=t, d=d, p=p, sparse=sparse, seed=seed
    )
    _run_schedule(cluster, scenario, scenario.steps)
    return cluster


@pytest.mark.parametrize("seed", rounds(3))
def test_shipper_killed_mid_catchup_converges(seed, tmp_path):
    """A replica left half-applied catches up to byte-identical state.

    The shipper applies records one by one; killing the follower after K
    applied records models a replication process dying mid-catch-up. A
    fresh shipper against the reopened follower must land on exactly the
    leader shard's registers — idempotent-by-LSN application means the
    partial prefix neither repeats nor gaps.
    """
    scenario = random_scenario(7000 + seed)
    rng = np.random.Generator(np.random.PCG64(seed))
    cluster = _build_cluster(scenario, tmp_path / "cluster", shards=3)
    # Pick the busiest shard so there is a catch-up to interrupt.
    leader = max(cluster.shard_stores, key=lambda shard: shard.wal_records)
    follower = FollowerStore.open(tmp_path / "replica")
    kill_after = int(rng.integers(1, max(2, leader.wal_records)))
    applied = 0
    original = follower.apply_record

    def dying_apply(lsn, kind, key, payload):
        nonlocal applied
        if applied >= kill_after:
            raise SimulatedCrash(f"shipper killed after {applied} records")
        applied += 1
        return original(lsn, kind, key, payload)

    follower.apply_record = dying_apply
    try:
        WalShipper(leader.directory).sync(follower)
    except SimulatedCrash:
        pass
    follower.close()
    # Recovery: reopen the half-applied replica and ship the rest.
    with FollowerStore.open(tmp_path / "replica") as recovered:
        WalShipper(leader.directory).sync(recovered)
        assert recovered.applied_lsn == leader.durable_lsn
        assert_identical(
            leader.aggregator, recovered.aggregator, "replica after killed shipper"
        )
    cluster.close()


@pytest.mark.parametrize("seed", rounds(3))
def test_torn_wal_tail_on_one_shard_converges(seed, tmp_path):
    """A torn final record on one shard truncates away; the rest survives.

    The tear is a half-written frame (crash mid-``write``): recovery must
    keep every complete record, drop the torn suffix, and leave a WAL the
    shard can keep appending to — ending bit-identical to the reference
    that never saw the torn bytes.
    """
    scenario = random_scenario(8000 + seed)
    rng = np.random.Generator(np.random.PCG64(seed))
    reference = build_scalar(scenario)
    cluster = _build_cluster(scenario, tmp_path / "cluster", shards=4)
    victim = int(rng.integers(cluster.shards))
    victim_directory = cluster.shard_stores[victim].directory
    victim_lsn = cluster.shard_stores[victim].durable_lsn
    victim_generation = cluster.shard_stores[victim].generation
    cluster.close()
    # A syntactically valid record, torn mid-frame before it is durable.
    frame = bytearray()
    write_lsn_record(
        frame,
        victim_lsn + 1,
        RECORD_HASHES,
        b"torn-group",
        rng.integers(0, 1 << 64, size=8, dtype=np.uint64).tobytes(),
    )
    cut = int(rng.integers(1, len(frame)))
    with open(wal_path(victim_directory, victim_generation), "ab") as handle:
        handle.write(bytes(frame[:cut]))
    recovered = ShardedStore.open(tmp_path / "cluster")
    assert recovered.shard_stores[victim].durable_lsn == victim_lsn
    assert_identical(reference, recovered.to_aggregator(), "cluster after torn tail")
    # The truncated WAL is live again: appending works and changes state.
    recovered.append_hashes(
        "post-recovery", rng.integers(0, 1 << 64, size=20, dtype=np.uint64)
    )
    assert "post-recovery" in recovered
    recovered.close()


@pytest.mark.parametrize("stage", REBALANCE_STAGES)
@pytest.mark.parametrize("seed", rounds(2))
def test_crash_during_rebalance_converges(seed, stage, tmp_path):
    """A crash at any rebalance stage — before or after the cutover fences
    and on either side of the commit point — recovers to the reference.

    The first half of the schedule lands under the old fan-out, the
    process dies mid-rebalance at ``stage``, a fresh open replays the
    journal forward, and the second half lands under the new fan-out.
    The final registers and estimates must equal a single scalar fold of
    the whole stream.
    """
    scenario = random_scenario(9000 + seed)
    reference = build_scalar(scenario)
    t, d, p, sparse, config_seed = scenario.config
    root = tmp_path / "cluster"
    cluster = ShardedStore.open(
        root, shards=3, t=t, d=d, p=p, sparse=sparse, seed=config_seed
    )
    pivot = len(scenario.steps) // 2
    _run_schedule(cluster, scenario, scenario.steps[:pivot])
    cluster._crash_after = stage
    with pytest.raises(SimulatedCrash):
        cluster.rebalance(5)
    cluster.close()
    recovered = ShardedStore.open(root)
    assert recovered.shards == 5
    assert recovered.epoch == 1
    assert read_journal(root) is None, "recovery must clear the journal"
    _run_schedule(recovered, scenario, scenario.steps[pivot:])
    final = recovered.to_aggregator()
    assert_identical(reference, final, f"cluster after crash at {stage!r}")
    assert final.estimates() == reference.estimates()
    recovered.close()


@pytest.mark.parametrize("seed", rounds(2))
def test_double_crash_during_rebalance_converges(seed, tmp_path):
    """Crashing *again* during recovery still converges (idempotent steps).

    First crash mid-copy, then the recovering open itself dies at the
    commit fence; the third open finishes the job. Every rebalance step
    re-runs safely (merges are register-max, drops are pops), so repeated
    partial recoveries cannot diverge.
    """
    scenario = random_scenario(9500 + seed)
    reference = build_scalar(scenario)
    t, d, p, sparse, config_seed = scenario.config
    root = tmp_path / "cluster"
    cluster = ShardedStore.open(
        root, shards=2, t=t, d=d, p=p, sparse=sparse, seed=config_seed
    )
    _run_schedule(cluster, scenario, scenario.steps)
    cluster._crash_after = "copy"
    with pytest.raises(SimulatedCrash):
        cluster.rebalance(4)
    cluster.close()
    ShardedStore._crash_after = "commit"  # the *recovering* open dies too
    try:
        with pytest.raises(SimulatedCrash):
            ShardedStore.open(root)
    finally:
        ShardedStore._crash_after = None
    recovered = ShardedStore.open(root)
    assert recovered.shards == 4
    assert read_journal(root) is None
    assert_identical(
        reference, recovered.to_aggregator(), "cluster after double crash"
    )
    recovered.close()
