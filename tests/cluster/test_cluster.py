"""Unit tests for ``repro.cluster``: routing, scatter-gather, rebalance, CLI.

The randomized bit-identity and fault coverage live in
``tests/invariants`` and ``tests/cluster/test_faults.py``; this file
pins the deterministic contracts — metadata round-trips, validation
errors, the query-plane integration, WAL semantics of the new record
kinds, and the ``python -m repro.store cluster`` surface.
"""

import numpy as np
import pytest

from repro.aggregate import DistinctCountAggregator
from repro.cluster import (
    CUTOVER_BEGIN,
    CUTOVER_COMMIT,
    ClusterMeta,
    ClusterSource,
    ShardedStore,
    decode_cutover,
    encode_cutover,
    read_journal,
    read_meta,
    shard_path,
    write_meta,
)
from repro.parallel.shard import shard_of
from repro.storage.serialization import SerializationError
from repro.store import FollowerStore, SketchStore, SnapshotReader, WalShipper
from repro.store.__main__ import main


def _fill(target, groups=8, items=40):
    for index in range(groups):
        target.append(
            f"g{index}", [f"g{index}-item-{j}" for j in range(items)]
        )
    return target


# -- metadata ------------------------------------------------------------------


def test_meta_round_trip(tmp_path):
    meta = ClusterMeta(shards=5, epoch=3, config=(2, 20, 8, True, 7))
    write_meta(tmp_path, meta)
    assert read_meta(tmp_path) == meta


def test_read_meta_missing_returns_none(tmp_path):
    assert read_meta(tmp_path) is None


def test_read_meta_rejects_garbage(tmp_path):
    (tmp_path / "cluster.json").write_text("{not json")
    with pytest.raises(SerializationError, match="cluster.json"):
        read_meta(tmp_path)


def test_cutover_round_trip():
    payload = encode_cutover(4, 3, 5, CUTOVER_BEGIN)
    assert decode_cutover(payload) == (4, 3, 5, CUTOVER_BEGIN)
    payload = encode_cutover(9, 6, 2, CUTOVER_COMMIT)
    assert decode_cutover(payload) == (9, 6, 2, CUTOVER_COMMIT)


def test_cutover_rejects_trailing_bytes_and_bad_phase():
    with pytest.raises(SerializationError, match="trailing"):
        decode_cutover(encode_cutover(1, 2, 3, CUTOVER_BEGIN) + b"\x00")
    with pytest.raises(ValueError, match="phase"):
        encode_cutover(1, 2, 3, 9)


# -- open/validation -----------------------------------------------------------


def test_open_requires_shards_for_new_cluster(tmp_path):
    with pytest.raises(ValueError, match="shards=N"):
        ShardedStore.open(tmp_path / "c")


def test_open_validates_shard_count_and_config(tmp_path):
    ShardedStore.open(tmp_path / "c", shards=3, p=8).close()
    with pytest.raises(ValueError, match="3 shards"):
        ShardedStore.open(tmp_path / "c", shards=4)
    with pytest.raises(ValueError, match="configuration"):
        ShardedStore.open(tmp_path / "c", p=10)
    with ShardedStore.open(tmp_path / "c", p=8) as cluster:  # matching is fine
        assert cluster.shards == 3


def test_cluster_source_rejects_mixed_configs(tmp_path):
    a = SketchStore.open(tmp_path / "a", p=8)
    b = SketchStore.open(tmp_path / "b", p=10)
    try:
        with pytest.raises(ValueError, match="mergeable"):
            ClusterSource([a, b])
        with pytest.raises(ValueError, match="at least one"):
            ClusterSource([])
    finally:
        a.close()
        b.close()


def test_cluster_source_open_requires_cluster_dir(tmp_path):
    with pytest.raises(FileNotFoundError, match="cluster.json"):
        ClusterSource.open(tmp_path)


# -- routing & scatter-gather --------------------------------------------------


def test_groups_route_to_exactly_one_shard(tmp_path):
    with _fill(ShardedStore.open(tmp_path / "c", shards=4, p=8)) as cluster:
        for key in cluster.groups():
            owner = shard_of(key, cluster.shards)
            holders = [
                index
                for index, shard in enumerate(cluster.shard_stores)
                if key in shard
            ]
            assert holders == [owner]


def test_scatter_gather_matches_single_store(tmp_path):
    cluster = _fill(ShardedStore.open(tmp_path / "c", shards=4, p=8))
    single = _fill(SketchStore.open(tmp_path / "single", p=8))
    assert sorted(cluster.groups()) == sorted(single.groups())
    assert cluster.estimates() == single.estimates()
    assert cluster.top(3) == single.top(3)
    assert cluster.estimate("g1") == single.estimate("g1")
    assert len(cluster) == len(single)
    assert "g2" in cluster and "missing" not in cluster
    assert (
        cluster.group_sketch("g3").to_bytes() == single.group_sketch("g3").to_bytes()
    )
    cluster.close()
    single.close()


def test_cluster_source_reader_members_match_store_members(tmp_path):
    with _fill(ShardedStore.open(tmp_path / "c", shards=3, p=8)) as cluster:
        expected = cluster.estimates()
    with ClusterSource.open(tmp_path / "c") as stores:
        assert stores.estimates() == expected
        assert {type(s).__name__ for s in stores.shard_sources} == {"SketchStore"}
    with ClusterSource.open(tmp_path / "c", reader=True) as readers:
        assert readers.estimates() == expected
        assert {type(s).__name__ for s in readers.shard_sources} == {"SnapshotReader"}


# -- WAL record kinds ----------------------------------------------------------


def test_drop_group_survives_recovery_and_reader(tmp_path):
    store = _fill(SketchStore.open(tmp_path / "s", p=8), groups=4)
    store.drop_group("g1")
    assert "g1" not in store and len(store) == 3
    store.close()
    with SketchStore.open(tmp_path / "s") as recovered:  # WAL replay sees the drop
        assert "g1" not in recovered and len(recovered) == 3
    with SnapshotReader.open(tmp_path / "s") as reader:  # tail replay too
        assert len(reader) == 3
        assert reader.group_sketch(b"g1") is None


def test_drop_and_cutover_ship_to_followers(tmp_path):
    store = _fill(SketchStore.open(tmp_path / "s", p=8), groups=4)
    store.drop_group("g0")
    store.append_cutover(encode_cutover(1, 2, 3, CUTOVER_BEGIN))
    with FollowerStore.open(tmp_path / "f") as follower:
        WalShipper(tmp_path / "s").sync(follower)
        assert follower.applied_lsn == store.durable_lsn
        assert follower.aggregator.to_bytes() == store.aggregator.to_bytes()
    store.close()


def test_drop_record_rejects_payload(tmp_path):
    from repro.store import apply_wal_record

    aggregator = DistinctCountAggregator(2, 20, 8)
    with pytest.raises(SerializationError, match="payload"):
        apply_wal_record(aggregator, 0x03, b"key", b"junk")


def test_rebalance_writes_cutover_fences(tmp_path):
    """Old shards fence BEGIN + COMMIT; shards born mid-rebalance COMMIT only."""
    from repro.storage.serialization import read_lsn_record_from
    from repro.store import RECORD_CUTOVER, wal_path
    from repro.store.sketchstore import _FILE_HEADER_BYTES

    cluster = _fill(ShardedStore.open(tmp_path / "c", shards=2, p=8))
    cluster.rebalance(4)
    for index, shard in enumerate(cluster.shard_stores):
        phases = []
        with open(wal_path(shard.directory, shard.generation), "rb") as handle:
            handle.read(_FILE_HEADER_BYTES)
            while True:
                record = read_lsn_record_from(handle)
                if record is None:
                    break
                lsn, kind, key, payload = record
                if kind == RECORD_CUTOVER:
                    epoch, from_shards, to_shards, phase = decode_cutover(payload)
                    assert (epoch, from_shards, to_shards) == (1, 2, 4)
                    phases.append(phase)
        if index < 2:
            assert phases == [CUTOVER_BEGIN, CUTOVER_COMMIT], f"shard {index}"
        else:
            assert phases == [CUTOVER_COMMIT], f"shard {index}"
    cluster.close()


def test_rebalance_rejects_noop_and_bad_counts(tmp_path):
    with ShardedStore.open(tmp_path / "c", shards=2, p=8) as cluster:
        with pytest.raises(ValueError, match="already has"):
            cluster.rebalance(2)
        with pytest.raises(ValueError, match=">= 1"):
            cluster.rebalance(0)


def test_shrink_removes_drained_directories(tmp_path):
    cluster = _fill(ShardedStore.open(tmp_path / "c", shards=5, p=8))
    single = _fill(SketchStore.open(tmp_path / "single", p=8))
    cluster.rebalance(2)
    assert cluster.shards == 2
    assert not shard_path(tmp_path / "c", 2).exists()
    assert read_journal(tmp_path / "c") is None
    assert cluster.to_aggregator().to_bytes() == single.aggregator.to_bytes()
    cluster.close()
    single.close()


def test_replicas_chain_through_rebalance(tmp_path):
    """Per-shard followers stay consistent across drop/cutover records."""
    cluster = _fill(ShardedStore.open(tmp_path / "c", shards=2, p=8))
    cluster.sync_replicas()
    cluster.rebalance(3)
    results = cluster.sync_replicas()
    assert len(results) == 3
    for shard, result in zip(cluster.shard_stores, results):
        with FollowerStore.open(
            tmp_path / "c" / f"replica-{shard.directory.name[-4:]}"
        ) as follower:
            assert follower.aggregator.to_bytes() == shard.aggregator.to_bytes()
    cluster.close()


# -- query plane ---------------------------------------------------------------


def test_query_plane_over_cluster(tmp_path):
    """The planner/executor treat a cluster as just another source."""
    from repro.query import Estimate, Filter, Scan, TopK, execute
    from repro.query.planner import access_path, has_cheap_selective

    cluster = _fill(ShardedStore.open(tmp_path / "c", shards=3, p=8))
    single = _fill(SketchStore.open(tmp_path / "single", p=8))
    for plan in (
        Estimate(Scan()),
        TopK(Scan(), 3),
        Estimate(Filter(Scan(), keys=(b"g0", b"g5"))),
        TopK(Filter(Scan(), prefix="g"), 2),
    ):
        assert execute(plan, cluster).rows == execute(plan, single).rows
    # Live stores answer group_sketch from a dict, so the routed cluster
    # is cheap-selective; an explicit key filter goes selective.
    assert has_cheap_selective(cluster)
    path = access_path(cluster, Filter(Scan(), keys=(b"g0",)))
    assert path.kind == "selective"
    cluster.close()
    single.close()


def test_planner_describes_cluster(tmp_path):
    from repro.query import Estimate, Scan, explain

    with _fill(ShardedStore.open(tmp_path / "c", shards=3, p=8)) as cluster:
        lines = explain(Estimate(Scan()), {"default": cluster.source})
    assert any("ClusterSource[3 shards]" in line for line in lines)


def test_reader_backed_cluster_selective_path(tmp_path):
    """Reader members make the cluster *not* cheap-selective (WAL replay)."""
    from repro.query.planner import has_cheap_selective

    with _fill(ShardedStore.open(tmp_path / "c", shards=2, p=8)):
        pass
    with ClusterSource.open(tmp_path / "c", reader=True) as readers:
        assert not has_cheap_selective(readers)


# -- CLI -----------------------------------------------------------------------


def test_cli_cluster_lifecycle(tmp_path, capsys):
    root = str(tmp_path / "c")
    assert main(["cluster", "init", root, "--shards", "4", "--p", "10"]) == 0
    assert (
        main(["cluster", "ingest", root, "--group", "demo", "--count", "20000"]) == 0
    )
    assert (
        main(
            [
                "cluster", "query", root, "estimate 'demo'",
                "--expect", "20000", "--tolerance", "0.2",
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "cluster", "query", root, "estimate 'demo'",
                "--reader", "--expect", "999999", "--tolerance", "0.01",
            ]
        )
        == 1
    )
    assert main(["cluster", "rebalance", root, "--shards", "6"]) == 0
    assert (
        main(
            [
                "cluster", "query", root, "estimate 'demo'",
                "--expect", "20000", "--tolerance", "0.2",
            ]
        )
        == 0
    )
    assert main(["cluster", "status", root]) == 0
    output = capsys.readouterr().out
    assert "rebalanced 4 -> 6 shards" in output
    assert "skew:" in output


def test_cli_cluster_ingest_needs_items_or_count(tmp_path):
    root = str(tmp_path / "c")
    assert main(["cluster", "init", root, "--shards", "2"]) == 0
    assert main(["cluster", "ingest", root]) == 2


def test_cli_cluster_query_explain_names_shards(tmp_path, capsys):
    root = str(tmp_path / "c")
    main(["cluster", "init", root, "--shards", "3"])
    main(["cluster", "ingest", root, "--group", "g", "--items", "a", "b"])
    assert main(["cluster", "query", root, "estimate all", "--explain"]) == 0
    assert "ClusterSource[3 shards]" in capsys.readouterr().out


# -- metrics -------------------------------------------------------------------


def test_cluster_metrics_collect(tmp_path):
    from repro.obs import metrics

    with metrics.instrumented():
        cluster = _fill(ShardedStore.open(tmp_path / "c", shards=2, p=8))
        cluster.rebalance(3)
        cluster.status()
        cluster.close()
        rebalances = metrics.REGISTRY.get("cluster.rebalances")
        moved = metrics.REGISTRY.get("cluster.rebalance_moved_groups")
        skew = metrics.REGISTRY.get("cluster.skew")
        routed = metrics.REGISTRY.get("cluster.append_records", {"shard": "0"})
        assert rebalances is not None and rebalances.value == 1
        assert moved is not None and moved.value > 0
        assert skew is not None and skew.value >= 1.0
        assert routed is not None and routed.value > 0
