"""Compressed sketch serialization (Sec. 6 feature)."""

import numpy as np
import pytest

from repro.compression.sketch_codec import (
    compress_sketch,
    compression_ratio,
    decompress_sketch,
)
from repro.core.batch import exaloglog_state
from repro.core.exaloglog import ExaLogLog
from repro.core.params import make_params
from repro.storage.serialization import SerializationError


def filled(t, d, p, n, seed=1):
    params = make_params(t, d, p)
    rng = np.random.Generator(np.random.PCG64(seed))
    hashes = rng.integers(0, 1 << 64, size=n, dtype=np.uint64)
    return ExaLogLog.from_registers(params, exaloglog_state(hashes, params))


class TestRoundtrip:
    @pytest.mark.parametrize(
        "t,d,p,n",
        [(2, 20, 8, 0), (2, 20, 8, 50_000), (1, 9, 6, 3000), (0, 2, 10, 10_000),
         (2, 24, 6, 500)],
    )
    def test_lossless(self, t, d, p, n):
        sketch = filled(t, d, p, n)
        assert decompress_sketch(compress_sketch(sketch)) == sketch

    def test_explicit_hint_lossless(self):
        sketch = filled(2, 16, 6, 2000)
        blob = compress_sketch(sketch, n_hint=13.0)  # terrible hint
        assert decompress_sketch(blob) == sketch

    def test_rejects_plain_format(self):
        sketch = filled(2, 20, 4, 100)
        with pytest.raises(SerializationError):
            decompress_sketch(sketch.to_bytes())

    def test_truncated(self):
        blob = compress_sketch(filled(2, 20, 4, 100))
        with pytest.raises((SerializationError, Exception)):
            decompress_sketch(blob[:6])


class TestCompressionWin:
    def test_smaller_than_dense_at_scale(self):
        sketch = filled(2, 20, 8, 100_000)
        assert compression_ratio(sketch) < 0.9

    def test_empty_sketch_compresses_hard(self):
        sketch = ExaLogLog(2, 20, 8)
        assert compression_ratio(sketch) < 0.1

    def test_ratio_direction_matches_figure6(self):
        """Figure 6 predicts ~40 % savings for ELL(2,20) under optimal
        coding (MVP 3.67 -> 2.21); the simple per-bit model should get a
        meaningful part of the way there."""
        sketch = filled(2, 20, 8, 200_000, seed=7)
        assert compression_ratio(sketch) < 0.85
