"""Entropy computations for sketch states."""

import math

import pytest

from repro.compression.entropy import (
    bit_probability_table,
    empirical_entropy_bits,
    register_entropy_bits,
    theoretical_compressed_bytes,
)
from repro.core.params import make_params


class TestEmpiricalEntropy:
    def test_constant_sequence_zero(self):
        assert empirical_entropy_bits([7] * 100) == 0.0

    def test_uniform_two_symbols_one_bit(self):
        assert empirical_entropy_bits([0, 1] * 50) == pytest.approx(1.0)

    def test_empty(self):
        assert empirical_entropy_bits([]) == 0.0

    def test_upper_bound_log_alphabet(self):
        values = list(range(16)) * 10
        assert empirical_entropy_bits(values) == pytest.approx(4.0)


class TestRegisterEntropy:
    def test_small_n_low_entropy(self):
        params = make_params(2, 6, 2)
        assert register_entropy_bits(0.01, params) < 0.1

    def test_entropy_peaks_below_register_width(self):
        """The Sec. 3.1 distribution never fills the register width —
        that gap is the compression opportunity of Figures 6-7."""
        params = make_params(2, 6, 2)
        entropies = [register_entropy_bits(n, params) for n in (10, 100, 1000, 10000)]
        assert max(entropies) < params.register_bits
        assert max(entropies) > 3.0

    def test_rejects_large_d(self):
        with pytest.raises(ValueError):
            register_entropy_bits(10.0, make_params(2, 20, 4))

    def test_compressed_bytes_scaling(self):
        params = make_params(2, 6, 4)
        bound = theoretical_compressed_bytes(1000.0, params)
        assert 0 < bound < params.dense_bytes


class TestBitProbabilities:
    def test_poisson_model(self):
        probs = bit_probability_table(100.0, 10, [0.5, 0.25])
        assert probs[0] == pytest.approx(math.exp(-100.0 * 0.5 / 10))
        assert probs[1] == pytest.approx(math.exp(-100.0 * 0.25 / 10))
