"""Range coder: losslessness and near-entropy coding rates."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.rangecoder import (
    PROB_ONE,
    RangeDecoder,
    RangeEncoder,
    quantize_probability,
)


def roundtrip(bits, probs):
    encoder = RangeEncoder()
    for bit, prob in zip(bits, probs):
        encoder.encode_bit(prob, bit)
    data = encoder.finish()
    decoder = RangeDecoder(data)
    return [decoder.decode_bit(prob) for prob in probs], data


class TestLosslessness:
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(1, PROB_ONE - 1)), max_size=300))
    @settings(max_examples=100)
    def test_roundtrip_arbitrary_probabilities(self, pairs):
        bits = [bit for bit, _ in pairs]
        probs = [prob for _, prob in pairs]
        decoded, _ = roundtrip(bits, probs)
        assert decoded == bits

    def test_long_skewed_stream(self):
        generator = random.Random(1)
        probs = []
        bits = []
        for _ in range(20000):
            p0 = generator.choice([60000, 65000, 65535, 1, 100, 32768])
            probs.append(p0)
            bits.append(0 if generator.random() < p0 / PROB_ONE else 1)
        decoded, _ = roundtrip(bits, probs)
        assert decoded == bits

    def test_carry_propagation_stress(self):
        """Alternating extreme probabilities exercise the 0xFF carry path."""
        probs = [1, PROB_ONE - 1] * 2000
        bits = [0, 0] * 2000
        decoded, _ = roundtrip(bits, probs)
        assert decoded == bits

    def test_empty(self):
        encoder = RangeEncoder()
        assert len(encoder.finish()) == 5


class TestCompressionRate:
    def test_skewed_bits_near_entropy(self):
        """Coding cost should be within ~2 % of the Shannon entropy."""
        generator = random.Random(7)
        p_zero = 0.98
        prob = quantize_probability(p_zero)
        bits = [0 if generator.random() < p_zero else 1 for _ in range(50000)]
        _, data = roundtrip(bits, [prob] * len(bits))
        entropy_bits = sum(
            -math.log2(p_zero) if bit == 0 else -math.log2(1 - p_zero) for bit in bits
        )
        assert len(data) * 8 <= entropy_bits * 1.02 + 64

    def test_uniform_bits_one_bit_each(self):
        generator = random.Random(8)
        prob = PROB_ONE // 2
        bits = [generator.randint(0, 1) for _ in range(10000)]
        _, data = roundtrip(bits, [prob] * len(bits))
        assert len(data) * 8 <= len(bits) * 1.01 + 64


class TestQuantize:
    def test_clamps(self):
        assert quantize_probability(0.0) == 1
        assert quantize_probability(1.0) == PROB_ONE - 1

    def test_midpoint(self):
        assert quantize_probability(0.5) == PROB_ONE // 2

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            RangeEncoder().encode_bit(0, 1)
        with pytest.raises(ValueError):
            RangeEncoder().encode_bit(PROB_ONE, 1)
