"""Model-based codecs: lossless round-trips and useful rates."""

import numpy as np
import pytest

from repro.baselines.pcsa import PCSA
from repro.compression.codec import (
    compress_bitmaps,
    compress_registers,
    decompress_bitmaps,
    decompress_registers,
)
from repro.compression.entropy import theoretical_compressed_bytes
from repro.core.batch import exaloglog_state, pcsa_state
from repro.core.params import make_params


def hashes_for(seed, count):
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, 1 << 64, size=count, dtype=np.uint64)


class TestBitmapCodec:
    @pytest.mark.parametrize("n", [0, 100, 5000, 50000])
    def test_lossless(self, n):
        p = 8
        sketch = PCSA(p)
        sketch._bitmaps = pcsa_state(hashes_for(n + 1, n), p)
        level_probs = [sketch.level_probability(k) for k in range(sketch.levels)]
        n_hint = max(float(n), 1.0)
        data = compress_bitmaps(sketch.bitmaps, level_probs, n_hint)
        assert decompress_bitmaps(data, sketch.m, level_probs) == list(sketch.bitmaps)

    def test_wrong_hint_still_lossless(self):
        """A bad n hint costs bits but never correctness."""
        p = 6
        sketch = PCSA(p)
        sketch._bitmaps = pcsa_state(hashes_for(5, 2000), p)
        level_probs = [sketch.level_probability(k) for k in range(sketch.levels)]
        good = compress_bitmaps(sketch.bitmaps, level_probs, 2000.0)
        bad = compress_bitmaps(sketch.bitmaps, level_probs, 5.0)
        assert decompress_bitmaps(bad, sketch.m, level_probs) == list(sketch.bitmaps)
        assert len(bad) > len(good)

    def test_compression_beats_raw(self):
        p = 10
        sketch = PCSA(p)
        sketch._bitmaps = pcsa_state(hashes_for(6, 100000), p)
        level_probs = [sketch.level_probability(k) for k in range(sketch.levels)]
        data = compress_bitmaps(sketch.bitmaps, level_probs, 100000.0)
        assert len(data) < sketch.bitmap_bytes / 5


class TestRegisterCodec:
    """The Sec. 6 future-work feature: entropy coding of ELL registers."""

    @pytest.mark.parametrize(
        "t,d,p,n",
        [(2, 6, 4, 0), (2, 6, 4, 1000), (1, 9, 6, 20000), (2, 16, 6, 5000), (0, 2, 8, 3000)],
    )
    def test_lossless(self, t, d, p, n):
        params = make_params(t, d, p)
        registers = exaloglog_state(hashes_for(n + 7, n), params)
        data = compress_registers(registers, params, max(float(n), 1.0))
        assert decompress_registers(data, params) == registers

    def test_beats_dense_array(self):
        params = make_params(2, 20, 8)
        n = 50000
        registers = exaloglog_state(hashes_for(8, n), params)
        data = compress_registers(registers, params, float(n))
        assert len(data) < params.dense_bytes

    def test_near_entropy_bound(self):
        """Within ~35 % of the Shannon bound (simple per-bit model)."""
        params = make_params(2, 6, 8)  # small d so the bound is computable
        n = 20000
        registers = exaloglog_state(hashes_for(9, n), params)
        data = compress_registers(registers, params, float(n))
        bound = theoretical_compressed_bytes(float(n), params)
        assert len(data) <= bound * 1.35 + 24

    def test_wrong_hint_lossless(self):
        params = make_params(2, 16, 4)
        registers = exaloglog_state(hashes_for(10, 3000), params)
        data = compress_registers(registers, params, 10.0)
        assert decompress_registers(data, params) == registers
