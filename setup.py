"""Setuptools shim; metadata lives in pyproject.toml.

Kept so the package installs in offline environments whose setuptools
lacks the `wheel` package required for PEP 660 editable installs.
"""
from setuptools import setup

setup()
