"""Shared serialization primitives: versioned headers and varints.

Every sketch in the library serializes as::

    magic (2 bytes) | format version (1) | sketch tag (1) | payload

so that ``from_bytes`` can fail loudly on foreign data, and so the exact
serialized sizes reported by the Table 2 / Figure 10 benches are honest
byte counts of a real, round-trippable format (header included, which is
why e.g. ULL(p=10) serializes to 1024 + 8 bytes here; the memory model in
:mod:`repro.simulation.memory` accounts headers separately when comparing
against the paper's payload-only numbers).
"""

from __future__ import annotations

MAGIC = b"\xe1\x1c"  # "ELL-count" magic
FORMAT_VERSION = 1

#: Registry of sketch tags (one byte each).
TAG_EXALOGLOG = 0x01
TAG_EXALOGLOG_MARTINGALE = 0x02
TAG_SPARSE_EXALOGLOG = 0x03
TAG_HYPERLOGLOG = 0x10
TAG_HLL_COMPACT4 = 0x11
TAG_ULTRALOGLOG = 0x12
TAG_EXTENDEDHLL = 0x13
TAG_PCSA = 0x20
TAG_CPC = 0x21
TAG_HLLL = 0x22
TAG_SPIKESKETCH = 0x23


class SerializationError(ValueError):
    """Raised when deserializing malformed or foreign data."""


def write_header(tag: int) -> bytearray:
    """Return a buffer pre-filled with the common header."""
    buffer = bytearray(MAGIC)
    buffer.append(FORMAT_VERSION)
    buffer.append(tag)
    return buffer


def read_header(data: bytes, expected_tag: int) -> int:
    """Validate the common header, returning the payload offset."""
    if len(data) < 4:
        raise SerializationError("buffer too short to contain a sketch header")
    if data[:2] != MAGIC:
        raise SerializationError("bad magic: not a repro sketch")
    if data[2] != FORMAT_VERSION:
        raise SerializationError(f"unsupported format version {data[2]}")
    if data[3] != expected_tag:
        raise SerializationError(f"sketch tag mismatch: expected {expected_tag:#x}, got {data[3]:#x}")
    return 4


HEADER_SIZE = 4


def write_uvarint(buffer: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("uvarint value must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint, returning ``(value, new_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SerializationError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise SerializationError("varint too long")


def uvarint_size(value: int) -> int:
    """Number of bytes :func:`write_uvarint` uses for ``value``."""
    if value < 0:
        raise ValueError("uvarint value must be non-negative")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size
