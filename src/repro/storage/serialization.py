"""Shared serialization primitives: versioned headers and varints.

Every sketch in the library serializes as::

    magic (2 bytes) | format version (1) | sketch tag (1) | payload

so that ``from_bytes`` can fail loudly on foreign data, and so the exact
serialized sizes reported by the Table 2 / Figure 10 benches are honest
byte counts of a real, round-trippable format (header included, which is
why e.g. ULL(p=10) serializes to 1024 + 8 bytes here; the memory model in
:mod:`repro.simulation.memory` accounts headers separately when comparing
against the paper's payload-only numbers).
"""

from __future__ import annotations

MAGIC = b"\xe1\x1c"  # "ELL-count" magic
FORMAT_VERSION = 1

#: Registry of sketch tags (one byte each).
TAG_EXALOGLOG = 0x01
TAG_EXALOGLOG_MARTINGALE = 0x02
TAG_SPARSE_EXALOGLOG = 0x03
TAG_HYPERLOGLOG = 0x10
TAG_HLL_COMPACT4 = 0x11
TAG_ULTRALOGLOG = 0x12
TAG_EXTENDEDHLL = 0x13
TAG_PCSA = 0x20
TAG_CPC = 0x21
TAG_HLLL = 0x22
TAG_SPIKESKETCH = 0x23
#: Durable-store file tags (see :mod:`repro.store`).
TAG_MEMMAP_REGISTERS = 0x40
TAG_WAL = 0x41
TAG_SNAPSHOT = 0x42
TAG_SPILL = 0x43
TAG_WAL_INDEX = 0x44
TAG_SPILL_META = 0x45


class SerializationError(ValueError):
    """Raised when deserializing malformed or foreign data."""


class IncompleteRecordError(SerializationError):
    """A record's declared length runs past the end of the buffer.

    Distinguished from generic corruption because an append-only log cut
    mid-write (crash, ``kill -9``) legitimately ends in a partial record:
    recovery treats this as "stop at the last complete record", whereas
    any other :class:`SerializationError` (bad magic, bad CRC, unknown
    record kind) means the durable prefix itself is damaged and must not
    be loaded.
    """


def write_header(tag: int) -> bytearray:
    """Return a buffer pre-filled with the common header."""
    buffer = bytearray(MAGIC)
    buffer.append(FORMAT_VERSION)
    buffer.append(tag)
    return buffer


def read_header(data: bytes, expected_tag: int) -> int:
    """Validate the common header, returning the payload offset."""
    if len(data) < 4:
        raise SerializationError("buffer too short to contain a sketch header")
    if data[:2] != MAGIC:
        raise SerializationError("bad magic: not a repro sketch")
    if data[2] != FORMAT_VERSION:
        raise SerializationError(f"unsupported format version {data[2]}")
    if data[3] != expected_tag:
        raise SerializationError(f"sketch tag mismatch: expected {expected_tag:#x}, got {data[3]:#x}")
    return 4


HEADER_SIZE = 4


def write_uvarint(buffer: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("uvarint value must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.append(byte | 0x80)
        else:
            buffer.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint, returning ``(value, new_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SerializationError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise SerializationError("varint too long")


def uvarint_size(value: int) -> int:
    """Number of bytes :func:`write_uvarint` uses for ``value``."""
    if value < 0:
        raise ValueError("uvarint value must be non-negative")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


# -- checksummed log records ---------------------------------------------------
#
# The durable-store layer (repro.store) appends keyed payloads to files:
# WAL batches, spilled GROUP BY segments. All of them share one record
# framing so a single reader handles every log-structured file:
#
#     kind (1) | uvarint key_len | key | uvarint payload_len | payload
#     | crc32 (4, little-endian, over everything from kind onward)
#
# The trailing CRC makes torn writes detectable: a record is durable iff
# it is complete *and* its checksum matches.


def write_record(buffer: bytearray, kind: int, key: bytes, payload: bytes) -> None:
    """Append one checksummed ``(kind, key, payload)`` record to ``buffer``."""
    import zlib

    if not 0 <= kind <= 0xFF:
        raise ValueError(f"record kind {kind} out of byte range")
    start = len(buffer)
    buffer.append(kind)
    write_uvarint(buffer, len(key))
    buffer.extend(key)
    write_uvarint(buffer, len(payload))
    buffer.extend(payload)
    crc = zlib.crc32(buffer[start:])
    buffer.extend(crc.to_bytes(4, "little"))


def read_record(data: bytes, offset: int) -> tuple[int, bytes, bytes, int]:
    """Read one record, returning ``(kind, key, payload, new_offset)``.

    Raises :class:`IncompleteRecordError` when the buffer ends inside the
    record (a torn tail write) and plain :class:`SerializationError` when
    a complete record fails its CRC — the caller decides which of the two
    is survivable.
    """
    import zlib

    def read_length(at: int) -> tuple[int, int]:
        # A varint cut off by EOF is a torn tail; an over-long varint
        # inside available bytes is corruption and stays fatal.
        try:
            return read_uvarint(data, at)
        except IncompleteRecordError:
            raise
        except SerializationError as error:
            if str(error) == "truncated varint":
                raise IncompleteRecordError(str(error)) from error
            raise

    start = offset
    if offset >= len(data):
        raise IncompleteRecordError("empty record")
    kind = data[offset]
    offset += 1
    key_length, offset = read_length(offset)
    if offset + key_length > len(data):
        raise IncompleteRecordError("record key runs past end of buffer")
    key = bytes(data[offset : offset + key_length])
    offset += key_length
    payload_length, offset = read_length(offset)
    if offset + payload_length + 4 > len(data):
        raise IncompleteRecordError("record payload runs past end of buffer")
    payload = bytes(data[offset : offset + payload_length])
    offset += payload_length
    stored_crc = int.from_bytes(data[offset : offset + 4], "little")
    offset += 4
    actual_crc = zlib.crc32(data[start : offset - 4])
    if stored_crc != actual_crc:
        raise SerializationError(
            f"record checksum mismatch at offset {start}: "
            f"stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )
    return kind, key, payload, offset


def write_lsn_record(
    buffer: bytearray, lsn: int, kind: int, key: bytes, payload: bytes
) -> None:
    """Append one checksummed, LSN-stamped record to ``buffer``.

    The WAL / replication framing: like :func:`write_record` but with the
    log sequence number between the kind byte and the key::

        kind (1) | uvarint lsn | uvarint key_len | key
        | uvarint payload_len | payload | crc32 (4, LE, from kind onward)

    The LSN lives under the CRC, so a shipped record carries its ordinal
    tamper-evidently; followers deduplicate replayed records by it. The
    framing is deterministic: re-encoding a received ``(lsn, kind, key,
    payload)`` reproduces the writer's bytes exactly, which is what makes
    follower WALs byte-comparable to the leader's.
    """
    import zlib

    if not 0 <= kind <= 0xFF:
        raise ValueError(f"record kind {kind} out of byte range")
    start = len(buffer)
    buffer.append(kind)
    write_uvarint(buffer, lsn)
    write_uvarint(buffer, len(key))
    buffer.extend(key)
    write_uvarint(buffer, len(payload))
    buffer.extend(payload)
    crc = zlib.crc32(buffer[start:])
    buffer.extend(crc.to_bytes(4, "little"))


def read_lsn_record(data: bytes, offset: int) -> tuple[int, int, bytes, bytes, int]:
    """Read one LSN-stamped record, returning ``(lsn, kind, key, payload, new_offset)``.

    Error split mirrors :func:`read_record`: :class:`IncompleteRecordError`
    for a buffer ending inside the record, :class:`SerializationError` for
    a complete record with a bad CRC.
    """
    import zlib

    def read_length(at: int) -> tuple[int, int]:
        try:
            return read_uvarint(data, at)
        except IncompleteRecordError:
            raise
        except SerializationError as error:
            if str(error) == "truncated varint":
                raise IncompleteRecordError(str(error)) from error
            raise

    start = offset
    if offset >= len(data):
        raise IncompleteRecordError("empty record")
    kind = data[offset]
    offset += 1
    lsn, offset = read_length(offset)
    key_length, offset = read_length(offset)
    if offset + key_length > len(data):
        raise IncompleteRecordError("record key runs past end of buffer")
    key = bytes(data[offset : offset + key_length])
    offset += key_length
    payload_length, offset = read_length(offset)
    if offset + payload_length + 4 > len(data):
        raise IncompleteRecordError("record payload runs past end of buffer")
    payload = bytes(data[offset : offset + payload_length])
    offset += payload_length
    stored_crc = int.from_bytes(data[offset : offset + 4], "little")
    offset += 4
    actual_crc = zlib.crc32(data[start : offset - 4])
    if stored_crc != actual_crc:
        raise SerializationError(
            f"record checksum mismatch at offset {start}: "
            f"stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )
    return lsn, kind, key, payload, offset


def read_lsn_record_from(handle) -> "tuple[int, int, bytes, bytes] | None":
    """Stream one LSN-stamped record from a binary handle.

    Returns ``(lsn, kind, key, payload)``, or ``None`` at a clean end of
    file. EOF inside the record raises :class:`IncompleteRecordError` —
    for a live WAL being tailed that means "the writer is mid-append";
    the caller seeks back to the record start and retries later.
    """
    import zlib

    first = handle.read(1)
    if not first:
        return None
    crc = zlib.crc32(first)
    kind = first[0]

    def read_exact(count: int, what: str) -> bytes:
        nonlocal crc
        data = handle.read(count)
        if len(data) != count:
            raise IncompleteRecordError(f"record {what} runs past end of file")
        crc = zlib.crc32(data, crc)
        return data

    def read_length() -> int:
        result = 0
        shift = 0
        while True:
            byte = read_exact(1, "length varint")[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise SerializationError("varint too long")

    lsn = read_length()
    key = read_exact(read_length(), "key")
    payload = read_exact(read_length(), "payload")
    actual_crc = crc
    stored = handle.read(4)
    if len(stored) != 4:
        raise IncompleteRecordError("record checksum runs past end of file")
    stored_crc = int.from_bytes(stored, "little")
    if stored_crc != actual_crc:
        raise SerializationError(
            f"record checksum mismatch: stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x}"
        )
    return lsn, kind, key, payload


def read_record_from(handle) -> "tuple[int, bytes, bytes] | None":
    """Read one record incrementally from a binary file handle.

    The streaming counterpart of :func:`read_record` for files too large
    to slurp (spill partitions, long WALs): only one record's bytes are
    resident at a time. Returns ``(kind, key, payload)``, or ``None`` at
    a clean end of file (no bytes left). EOF *inside* a record raises
    :class:`IncompleteRecordError`; a CRC mismatch raises
    :class:`SerializationError`.
    """
    import zlib

    first = handle.read(1)
    if not first:
        return None
    crc = zlib.crc32(first)
    kind = first[0]

    def read_exact(count: int, what: str) -> bytes:
        nonlocal crc
        data = handle.read(count)
        if len(data) != count:
            raise IncompleteRecordError(f"record {what} runs past end of file")
        crc = zlib.crc32(data, crc)
        return data

    def read_length() -> int:
        result = 0
        shift = 0
        while True:
            byte = read_exact(1, "length varint")[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise SerializationError("varint too long")

    key = read_exact(read_length(), "key")
    payload = read_exact(read_length(), "payload")
    actual_crc = crc
    stored = handle.read(4)
    if len(stored) != 4:
        raise IncompleteRecordError("record checksum runs past end of file")
    stored_crc = int.from_bytes(stored, "little")
    if stored_crc != actual_crc:
        raise SerializationError(
            f"record checksum mismatch: stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x}"
        )
    return kind, key, payload
