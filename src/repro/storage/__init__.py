"""Bit-level storage substrate: packed register arrays, bit I/O, headers."""

from repro.storage.bitio import BitReader, BitWriter
from repro.storage.packed import PackedArray
from repro.storage.serialization import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    SerializationError,
    read_header,
    read_uvarint,
    uvarint_size,
    write_header,
    write_uvarint,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "MAGIC",
    "PackedArray",
    "SerializationError",
    "read_header",
    "read_uvarint",
    "uvarint_size",
    "write_header",
    "write_uvarint",
]
