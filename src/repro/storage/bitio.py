"""MSB-first bit-level reader and writer.

Used by :mod:`repro.storage.packed` for odd register widths and by the
compression codecs (:mod:`repro.compression`). MSB-first ordering matches
the way the paper lays registers out in a dense bit array.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits MSB-first into a growing byte buffer."""

    __slots__ = ("_buffer", "_current", "_filled")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self.write_bits(bit & 1, 1)

    def write_bits(self, value: int, width: int) -> None:
        """Append the low ``width`` bits of ``value``, MSB first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._current = (self._current << width) | value
        self._filled += width
        while self._filled >= 8:
            self._filled -= 8
            self._buffer.append((self._current >> self._filled) & 0xFF)
        self._current &= (1 << self._filled) - 1

    def write_unary(self, value: int) -> None:
        """Append ``value`` zero bits followed by a one bit."""
        if value < 0:
            raise ValueError("unary value must be non-negative")
        self.write_bits(1, value + 1)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._filled

    def getvalue(self) -> bytes:
        """Return the written bits padded with zero bits to a whole byte."""
        out = bytes(self._buffer)
        if self._filled:
            out += bytes([(self._current << (8 - self._filled)) & 0xFF])
        return out


class BitReader:
    """Reads bits MSB-first from a byte buffer."""

    __slots__ = ("_data", "_position")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read_bits(1)

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer, MSB first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        end = self._position + width
        if end > len(self._data) * 8:
            raise EOFError("attempt to read past end of bit stream")
        value = 0
        position = self._position
        remaining = width
        while remaining > 0:
            byte_index, bit_index = divmod(position, 8)
            available = 8 - bit_index
            take = min(available, remaining)
            chunk = (self._data[byte_index] >> (available - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            position += take
            remaining -= take
        self._position = end
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of zero bits before a one)."""
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count

    @property
    def bits_consumed(self) -> int:
        """Number of bits read so far."""
        return self._position

    @property
    def bits_remaining(self) -> int:
        """Number of bits still available."""
        return len(self._data) * 8 - self._position
