"""Dense arrays of fixed-width registers.

The paper stores registers "densely packed in a bit array" — e.g. two
28-bit ELL(2, 20) registers per 7 bytes, 6-bit HyperLogLog registers at
4/3 bytes per register pair, 3-bit HyperLogLogLog registers, and so on.

:class:`PackedArray` reproduces that layout exactly. The hot paths of the
sketches keep registers in a plain Python list (CPython attribute/array
access dominates bit twiddling anyway — see DESIGN.md), and use this class
for the serialized representation, whose byte sizes therefore match the
paper's serialization-size accounting bit for bit.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class PackedArray:
    """Fixed-length array of ``count`` unsigned integers of ``width`` bits.

    The layout is MSB-first: register 0 occupies the highest-order bits of
    byte 0. The total storage is ``ceil(count * width / 8)`` bytes; the
    final partial byte, if any, is zero-padded.
    """

    __slots__ = ("_count", "_data", "_width")

    def __init__(self, width: int, count: int, data: bytearray | None = None) -> None:
        # Up to 128 bits: ELL(0, 64) — the PCSA-information-equivalent
        # configuration of Sec. 2.5 — needs 70-bit registers.
        if not 1 <= width <= 128:
            raise ValueError(f"register width must be in [1, 128], got {width}")
        if count < 0:
            raise ValueError("count must be non-negative")
        self._width = width
        self._count = count
        needed = (width * count + 7) // 8
        if data is None:
            self._data = bytearray(needed)
        else:
            if len(data) != needed:
                raise ValueError(f"expected {needed} bytes for {count}x{width}-bit, got {len(data)}")
            self._data = bytearray(data)

    @property
    def width(self) -> int:
        """Bits per register."""
        return self._width

    @property
    def count(self) -> int:
        """Number of registers."""
        return self._count

    @property
    def byte_size(self) -> int:
        """Exact storage footprint in bytes."""
        return len(self._data)

    def __len__(self) -> int:
        return self._count

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"register index {index} out of range for {self._count} registers")
        return index

    def __getitem__(self, index: int) -> int:
        index = self._check_index(index)
        width = self._width
        bit_start = index * width
        byte_start, bit_offset = divmod(bit_start, 8)
        span = (bit_offset + width + 7) // 8
        window = int.from_bytes(self._data[byte_start : byte_start + span], "big")
        shift = span * 8 - bit_offset - width
        return (window >> shift) & ((1 << width) - 1)

    def __setitem__(self, index: int, value: int) -> None:
        index = self._check_index(index)
        width = self._width
        if value < 0 or value.bit_length() > width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        bit_start = index * width
        byte_start, bit_offset = divmod(bit_start, 8)
        span = (bit_offset + width + 7) // 8
        window = int.from_bytes(self._data[byte_start : byte_start + span], "big")
        shift = span * 8 - bit_offset - width
        mask = ((1 << width) - 1) << shift
        window = (window & ~mask) | (value << shift)
        self._data[byte_start : byte_start + span] = window.to_bytes(span, "big")

    def __iter__(self) -> Iterator[int]:
        for i in range(self._count):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedArray):
            return NotImplemented
        return (
            self._width == other._width
            and self._count == other._count
            and self._data == other._data
        )

    def __repr__(self) -> str:
        return f"PackedArray(width={self._width}, count={self._count})"

    def to_bytes(self) -> bytes:
        """Return the raw packed representation."""
        return bytes(self._data)

    def to_list(self) -> list[int]:
        """Unpack all registers into a list (bulk path, faster than per-item)."""
        width = self._width
        count = self._count
        if count == 0:
            return []
        window = int.from_bytes(self._data, "big")
        total_bits = len(self._data) * 8
        mask = (1 << width) - 1
        return [
            (window >> (total_bits - (i + 1) * width)) & mask for i in range(count)
        ]

    @classmethod
    def from_bytes(cls, width: int, count: int, data: bytes) -> "PackedArray":
        """Rebuild a packed array from its raw representation."""
        return cls(width, count, bytearray(data))

    @classmethod
    def from_values(cls, width: int, values: Iterable[int]) -> "PackedArray":
        """Pack an iterable of register values (bulk path)."""
        values = list(values)
        count = len(values)
        array = cls(width, count)
        if count == 0:
            return array
        mask = (1 << width) - 1
        window = 0
        for value in values:
            if value < 0 or value > mask:
                raise ValueError(f"value {value} does not fit in {width} bits")
            window = (window << width) | value
        pad = len(array._data) * 8 - count * width
        window <<= pad
        array._data[:] = window.to_bytes(len(array._data), "big")
        return array
