"""Binary range coder (arithmetic coding), LZMA-style renormalisation.

The paper's future-work section (Sec. 6) observes that, because the shape
of the register distribution is known (Sec. 3.1), entropy coding could
push ExaLogLog's storage towards the compressed MVPs of Figures 6-7; and
its CPC baseline owes its small serialized size to exactly this kind of
coding. This module provides the coding substrate: a carry-aware binary
range coder with 16-bit probabilities.

Probabilities are expressed as ``P(bit == 0)`` scaled to ``[1, 65535]``;
encoder and decoder must be driven with the identical probability sequence
(our codecs derive it deterministically from header fields).
"""

from __future__ import annotations

_TOP = 1 << 24
_MASK32 = 0xFFFFFFFF

#: Probability scale: probabilities are 16-bit fixed point.
PROB_BITS = 16
PROB_ONE = 1 << PROB_BITS


def quantize_probability(p_zero: float) -> int:
    """Clamp a float probability of a zero bit to the coder's fixed point."""
    scaled = int(p_zero * PROB_ONE)
    return min(max(scaled, 1), PROB_ONE - 1)


class RangeEncoder:
    """Encodes a sequence of bits against per-bit probabilities."""

    __slots__ = ("_cache", "_cache_size", "_low", "_out", "_range")

    def __init__(self) -> None:
        self._low = 0
        self._range = _MASK32
        self._cache = 0
        self._cache_size = 1
        self._out = bytearray()

    def encode_bit(self, prob_zero: int, bit: int) -> None:
        """Encode one bit; ``prob_zero`` is P(bit==0) in [1, 65535]."""
        if not 0 < prob_zero < PROB_ONE:
            raise ValueError(f"prob_zero must be in (0, {PROB_ONE}), got {prob_zero}")
        bound = (self._range >> PROB_BITS) * prob_zero
        if bit == 0:
            self._range = bound
        else:
            self._low += bound
            self._range -= bound
        while self._range < _TOP:
            self._range = (self._range << 8) & _MASK32
            self._shift_low()

    def _shift_low(self) -> None:
        if self._low < 0xFF000000 or self._low > _MASK32:
            carry = self._low >> 32
            self._out.append((self._cache + carry) & 0xFF)
            for _ in range(self._cache_size - 1):
                self._out.append((0xFF + carry) & 0xFF)
            self._cache_size = 0
            self._cache = (self._low >> 24) & 0xFF
        self._cache_size += 1
        self._low = (self._low << 8) & _MASK32

    def finish(self) -> bytes:
        """Flush and return the encoded byte string."""
        for _ in range(5):
            self._shift_low()
        return bytes(self._out)


class RangeDecoder:
    """Decodes bits produced by :class:`RangeEncoder`."""

    __slots__ = ("_code", "_data", "_position", "_range")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0
        self._range = _MASK32
        self._code = 0
        # The first byte emitted by the encoder is always the initial zero
        # cache; consume it plus four code bytes.
        self._next_byte()
        for _ in range(4):
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32

    def _next_byte(self) -> int:
        if self._position < len(self._data):
            byte = self._data[self._position]
            self._position += 1
            return byte
        return 0  # zero padding past the end, matching the encoder's flush

    def decode_bit(self, prob_zero: int) -> int:
        """Decode one bit; must mirror the encoder's probability."""
        if not 0 < prob_zero < PROB_ONE:
            raise ValueError(f"prob_zero must be in (0, {PROB_ONE}), got {prob_zero}")
        bound = (self._range >> PROB_BITS) * prob_zero
        if self._code < bound:
            bit = 0
            self._range = bound
        else:
            bit = 1
            self._code -= bound
            self._range -= bound
        while self._range < _TOP:
            self._range = (self._range << 8) & _MASK32
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32
        return bit
