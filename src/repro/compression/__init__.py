"""Entropy coding of sketch states (paper Sec. 6 / CPC substrate)."""

from repro.compression.codec import (
    compress_bitmaps,
    compress_registers,
    decompress_bitmaps,
    decompress_registers,
)
from repro.compression.entropy import (
    empirical_entropy_bits,
    register_entropy_bits,
    theoretical_compressed_bytes,
)
from repro.compression.rangecoder import (
    PROB_ONE,
    RangeDecoder,
    RangeEncoder,
    quantize_probability,
)
from repro.compression.sketch_codec import (
    compress_sketch,
    compression_ratio,
    decompress_sketch,
)

__all__ = [
    "compress_sketch",
    "compression_ratio",
    "decompress_sketch",
    "PROB_ONE",
    "RangeDecoder",
    "RangeEncoder",
    "compress_bitmaps",
    "compress_registers",
    "decompress_bitmaps",
    "decompress_registers",
    "empirical_entropy_bits",
    "quantize_probability",
    "register_entropy_bits",
    "theoretical_compressed_bytes",
]
