"""Compressed ExaLogLog serialization (the paper's Sec. 6 future work).

Figures 6-7 show that optimally compressed ELL states could reach MVPs
near 2.1 (ML) / 1.66 (martingale). This module makes that practical: it
serializes a sketch through the Sec. 3.1 model-based range coder, using
the sketch's own ML estimate as the model hint (stored in the header, so
decoding is self-contained). The format is lossless and versioned like the
plain format.

Usage::

    from repro.compression import compress_sketch, decompress_sketch

    blob = compress_sketch(sketch)             # typically 20-40 % smaller
    restored = decompress_sketch(blob)
    assert restored == sketch
"""

from __future__ import annotations

from repro.compression.codec import compress_registers, decompress_registers
from repro.core.exaloglog import ExaLogLog
from repro.core.params import make_params
from repro.storage.serialization import (
    SerializationError,
    read_header,
    write_header,
)

#: Sketch tag for the compressed format.
TAG_COMPRESSED_EXALOGLOG = 0x04


def compress_sketch(sketch: ExaLogLog, n_hint: float | None = None) -> bytes:
    """Serialize a sketch with model-based entropy coding.

    ``n_hint`` defaults to the sketch's own ML estimate; a wrong hint only
    costs bits, never correctness.
    """
    if n_hint is None:
        n_hint = max(sketch.estimate(), 1.0)
    buffer = write_header(TAG_COMPRESSED_EXALOGLOG)
    buffer.append(sketch.t)
    buffer.append(sketch.d)
    buffer.append(sketch.p)
    buffer.extend(compress_registers(list(sketch.registers), sketch.params, n_hint))
    return bytes(buffer)


def decompress_sketch(data: bytes) -> ExaLogLog:
    """Inverse of :func:`compress_sketch`."""
    offset = read_header(data, TAG_COMPRESSED_EXALOGLOG)
    if len(data) < offset + 3 + 8:
        raise SerializationError("truncated compressed ExaLogLog payload")
    t, d, p = data[offset], data[offset + 1], data[offset + 2]
    params = make_params(t, d, p)
    registers = decompress_registers(bytes(data[offset + 3 :]), params)
    return ExaLogLog.from_registers(params, registers)


def compression_ratio(sketch: ExaLogLog) -> float:
    """Compressed size relative to the dense packed array (< 1 is a win)."""
    dense = sketch.params.dense_bytes
    if dense == 0:
        return 1.0
    return len(compress_sketch(sketch)) / dense
