"""Shannon entropy of sketch states (paper Eq. (5), (7) context, Sec. 6).

The "optimally compressed" MVP formulas measure state size by Shannon
entropy. This module computes that entropy both ways:

* :func:`register_entropy_bits` — the model entropy of a single ExaLogLog
  register under the Sec. 3.1 PMF at a given true ``n`` (exact for small
  ``d``, where enumerating reachable states is feasible).
* :func:`empirical_entropy_bits` — plug-in entropy of an observed register
  array (what a universal compressor could approach on a long array).

Together with :mod:`repro.compression.codec` these quantify how far the
range coder lands from the bound — the compression ablation bench.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from repro.core.params import ExaLogLogParams
from repro.core.register import enumerate_reachable, register_pmf


def register_entropy_bits(n: float, params: ExaLogLogParams) -> float:
    """Entropy (bits) of one register under the Sec. 3.1 PMF at true ``n``.

    Enumerates reachable states, so only practical for small ``d``
    (the state count grows like ``2**d``).
    """
    if params.d > 16:
        raise ValueError(
            f"exact register entropy enumerates 2**d states; d={params.d} is too large"
        )
    entropy = 0.0
    for state in enumerate_reachable(params):
        probability = register_pmf(state, n, params)
        if probability > 0.0:
            entropy -= probability * math.log2(probability)
    return entropy


def empirical_entropy_bits(values: Sequence[int] | Iterable[int]) -> float:
    """Plug-in (maximum-likelihood) entropy of an observed symbol sequence."""
    counts = Counter(values)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        fraction = count / total
        entropy -= fraction * math.log2(fraction)
    return entropy


def theoretical_compressed_bytes(n: float, params: ExaLogLogParams) -> float:
    """Shannon bound for the whole register array at true ``n`` (bytes)."""
    return register_entropy_bits(n, params) * params.m / 8.0


def bit_probability_table(n: float, m: int, level_probabilities: Sequence[float]) -> list[float]:
    """P(level bit is still 0) for a Poissonized stream: ``exp(-n rho / m)``.

    Shared by the PCSA/CPC codec: under the Poisson model each level bit of
    each bucket is set independently with probability ``1 - exp(-n rho/m)``.
    """
    return [math.exp(-n * rho / m) for rho in level_probabilities]
