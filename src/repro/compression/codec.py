"""Model-based compressed serialization of sketch states.

Two codecs built on the range coder:

* :func:`compress_bitmaps` / :func:`decompress_bitmaps` — PCSA-style level
  bitmaps under the Poisson per-bit model; this is what gives the CPC
  surrogate its small serialized size (DESIGN.md Sec. 3.1).
* :func:`compress_registers` / :func:`decompress_registers` — ExaLogLog
  register arrays, coded bit by bit under the exact Sec. 3.1 register PMF
  factorisation: the maximum ``u`` is coded as a unary-style sequence of
  "was the maximum >= k?" decisions and each window bit with its
  conditional occurrence probability. This realises the paper's Sec. 6
  future-work idea and is benchmarked against the Shannon bound.

Both codecs parameterise the probability model with a coarse distinct-count
hint that is stored in the header, so decoding is self-contained.
"""

from __future__ import annotations

import math
import struct
from typing import Sequence

from repro.compression.entropy import bit_probability_table
from repro.compression.rangecoder import RangeDecoder, RangeEncoder, quantize_probability
from repro.core.distribution import omega_table, rho_table
from repro.core.params import ExaLogLogParams


def _set_probability(n_hint: float, m: int, rho: float) -> float:
    """P(a level/value has occurred) under the Poisson model."""
    return -math.expm1(-n_hint * rho / m)


# -- PCSA / CPC bitmap codec ---------------------------------------------------


def compress_bitmaps(
    bitmaps: Sequence[int],
    level_probabilities: Sequence[float],
    n_hint: float,
) -> bytes:
    """Range-code level bitmaps under the Poisson per-bit model."""
    m = len(bitmaps)
    zero_probs = bit_probability_table(max(n_hint, 1.0), m, level_probabilities)
    quantized = [quantize_probability(p) for p in zero_probs]
    encoder = RangeEncoder()
    for bitmap in bitmaps:
        for level, prob in enumerate(quantized):
            encoder.encode_bit(prob, (bitmap >> level) & 1)
    payload = encoder.finish()
    return struct.pack("<d", n_hint) + payload


def decompress_bitmaps(
    data: bytes, m: int, level_probabilities: Sequence[float]
) -> list[int]:
    """Inverse of :func:`compress_bitmaps`."""
    n_hint = struct.unpack_from("<d", data, 0)[0]
    zero_probs = bit_probability_table(max(n_hint, 1.0), m, level_probabilities)
    quantized = [quantize_probability(p) for p in zero_probs]
    decoder = RangeDecoder(data[8:])
    bitmaps = []
    for _ in range(m):
        bitmap = 0
        for level, prob in enumerate(quantized):
            if decoder.decode_bit(prob):
                bitmap |= 1 << level
        bitmaps.append(bitmap)
    return bitmaps


# -- ExaLogLog register codec -----------------------------------------------------


def _register_bit_plan(params: ExaLogLogParams, n_hint: float):
    """Precompute the conditional probabilities driving the register codec.

    Returns (p_max_geq, p_occurred):
      p_max_geq[u]  = quantized P(maximum >= u | maximum >= u - 1)
      p_occurred[k] = quantized P(value k occurred | it may have occurred)
    Under the Poisson model, "maximum >= u" given ">= u-1" is awkward;
    instead we code the maximum with the exact chain
    P(max < u | max < u + 1) ... which reduces to per-u probabilities
    derived from omega: P(max <= u) = exp(-n/m omega(u)).
    """
    m = params.m
    rhos = rho_table(params)
    omegas = omega_table(params)
    n = max(n_hint, 1.0)

    # P(max <= u) = exp(-n/m * omega(u)); chain for coding the maximum top
    # down: given max <= u, P(max == u) = P(A_u | no value > u)
    #      = 1 - exp(-n/m rho(u)).
    p_value_occurred = [0.0] * (params.max_update_value + 1)
    for k in range(1, params.max_update_value + 1):
        p_value_occurred[k] = _set_probability(n, m, rhos[k])
    p_max_le = [math.exp(-n / m * omegas[u]) for u in range(params.max_update_value + 1)]
    return p_value_occurred, p_max_le


def compress_registers(
    registers: Sequence[int], params: ExaLogLogParams, n_hint: float
) -> bytes:
    """Range-code an ExaLogLog register array under the Sec. 3.1 PMF.

    Encoding per register: walk ``u`` down from the maximum update value;
    at each level emit one bit "is the register maximum == u?" with the
    conditional model probability, then emit the window bits with their
    occurrence probabilities. Everything the decoder needs is derivable
    from (params, n_hint).
    """
    p_value_occurred, _p_max_le = _register_bit_plan(params, n_hint)
    d = params.d
    k_max = params.max_update_value
    encoder = RangeEncoder()
    for r in registers:
        u = r >> d
        # Code the maximum: for levels k_max down to 1, emit "max == level".
        # P(max == level | max <= level) = (1 - exp(-nu rho)) * ...; for
        # simplicity and exact decodability we use the unconditional
        # occurrence probability of the level as the model — slightly
        # suboptimal but within a few percent of the entropy bound.
        for level in range(k_max, 0, -1):
            prob_zero = quantize_probability(1.0 - p_value_occurred[level])
            bit = 1 if u == level else 0
            encoder.encode_bit(prob_zero, bit)
            if bit:
                break
        if u >= 1:
            for k in range(u - 1, max(0, u - d) - 1, -1):
                if k < 1:
                    break
                occurred = (r >> (d - u + k)) & 1
                prob_zero = quantize_probability(1.0 - p_value_occurred[k])
                encoder.encode_bit(prob_zero, occurred)
    payload = encoder.finish()
    return struct.pack("<d", n_hint) + payload


def decompress_registers(data: bytes, params: ExaLogLogParams) -> list[int]:
    """Inverse of :func:`compress_registers`."""
    n_hint = struct.unpack_from("<d", data, 0)[0]
    p_value_occurred, _p_max_le = _register_bit_plan(params, n_hint)
    d = params.d
    k_max = params.max_update_value
    decoder = RangeDecoder(data[8:])
    registers = []
    for _ in range(params.m):
        u = 0
        for level in range(k_max, 0, -1):
            prob_zero = quantize_probability(1.0 - p_value_occurred[level])
            if decoder.decode_bit(prob_zero):
                u = level
                break
        r = 0
        if u >= 1:
            window = 0
            width = 0
            for k in range(u - 1, max(0, u - d) - 1, -1):
                if k < 1:
                    break
                prob_zero = quantize_probability(1.0 - p_value_occurred[k])
                bit = decoder.decode_bit(prob_zero)
                width += 1
                if bit:
                    window |= 1 << (d - u + k)
            r = (u << d) | window
            if u <= d:
                r |= 1 << (d - u)  # the deterministic value-0 bit
        registers.append(r)
    return registers
