"""The bulk-ingest contract every sketch in the family implements.

:class:`BulkBackend` is a structural protocol: anything with an
``add_hashes`` accepting an ndarray (or any iterable) of 64-bit hash
values qualifies. The semantic contract — stronger than the signature —
is **exact equivalence**:

    ``sketch.add_hashes(hashes)`` leaves the sketch in a state that is
    bit-identical (``to_bytes()``-identical) to the state the sequential
    loop ``for h in hashes: sketch.add_hash(h)`` would have produced.

Vectorised implementations (ExaLogLog and friends, HyperLogLog, PCSA,
SpikeSketch) achieve this because their inserts are commutative and
idempotent, so a batch folds set-wise. Order-*dependent* sketches — the
martingale variants, whose estimate depends on the state-change sequence —
keep the scalar loop via :func:`scalar_add_hashes`, which satisfies the
contract trivially.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class BulkBackend(Protocol):
    """Structural type of a sketch with a bulk ingestion path."""

    def add_hashes(self, hashes: "np.ndarray | Iterable[int]") -> Any:
        """Insert a batch of 64-bit hashes; returns the sketch itself."""
        ...


def supports_bulk(sketch: Any) -> bool:
    """Whether ``sketch`` exposes the bulk-ingest API."""
    return isinstance(sketch, BulkBackend)


def scalar_add_hashes(sketch: Any, hashes) -> Any:
    """Reference fallback: the sequential loop the bulk path must match.

    Applies the same unsigned canonicalization as ``as_hash_array`` so
    signed int64 arrays (two's-complement bit patterns) behave the same
    on the scalar fallback as on the vectorised paths.
    """
    add_hash = sketch.add_hash
    if isinstance(hashes, np.ndarray):
        hashes = hashes.tolist()
    for hash_value in hashes:
        add_hash(int(hash_value) & 0xFFFFFFFFFFFFFFFF)
    return sketch
