"""Vectorised bulk-ingest state builders for the whole sketch family.

Every sketch in this library is order-independent (commutative, idempotent
inserts), so the state after a batch of hashes can be computed set-wise:
per register, the maximum update value plus the OR of window bits — which
vectorises. The contract every function here honours (and the equivalence
tests assert) is:

    bulk state  ==  state of the sequential ``add_hash`` loop, bit for bit.

The builders come in two flavours:

* ``*_state`` — final state from an *empty* sketch (kept for the
  simulation harness, which replays millions of fresh batches), and
* pair/fold helpers plus :func:`merge_exaloglog_registers` used by the
  in-place ``add_hashes`` methods on the sketches themselves.

Register arrays are held as int64; callers must guard ``register_bits <=
63`` (``d`` up to 57 with t=0) and fall back to the scalar loop beyond
that — :func:`supports_int64_registers` spells the condition out.

The three ExaLogLog hot-path entry points — :func:`exaloglog_registers`,
:func:`exaloglog_registers_from_pairs`, :func:`merge_exaloglog_registers` —
dispatch through the active kernel backend (:mod:`repro.backends.select`);
the ``reference_*`` functions here are the pure-NumPy implementations the
default backend uses and every other backend is checked bit-identical
against.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Sequence

import numpy as np

from repro.backends.bitops import bit_length_u64, nlz64_array, ntz64_array
from repro.core.params import ExaLogLogParams
from repro.obs import metrics as _metrics

_U64 = np.uint64

# Instrumentation handles (no-ops until REPRO_METRICS enables collection;
# the enabled() guard at each call site keeps the disabled cost to one
# module-flag check).
_FOLD_BATCH_SIZE = _metrics.histogram(
    "backend.fold_batch_size", "Hashes per bulk fold call."
)
_HASHES_FOLDED = _metrics.counter(
    "backend.hashes_folded", "Total hashes folded through the bulk path."
)
_FOLD_SECONDS = _metrics.counter(
    "backend.fold_seconds", "Wall seconds spent inside bulk folds."
)
_MERGES = _metrics.counter(
    "backend.register_merges", "Algorithm 5 register-array merges."
)
#: Per-backend fold counters, cached by backend name: registry lookups
#: canonicalize labels, which is too slow for the per-batch hot path.
#: Handles stay valid across Registry.reset() (values are zeroed in place).
_FOLD_COUNTERS: "dict[str, _metrics.Counter]" = {}

#: Batches are folded in chunks of this many hashes: the ~10 temporary
#: arrays of a fold then stay cache-resident, which measures ~3x faster
#: than one pass over a 10M-element batch (merges between chunk folds are
#: O(m) and exact, so chunking never changes the resulting state).
BULK_CHUNK = 1 << 18


def _chunks(hashes: np.ndarray):
    if len(hashes) <= BULK_CHUNK:
        yield hashes
    else:
        for start in range(0, len(hashes), BULK_CHUNK):
            yield hashes[start : start + BULK_CHUNK]


def supports_int64_registers(params: ExaLogLogParams) -> bool:
    """Whether register values of ``params`` fit the int64 arrays used here."""
    return params.register_bits <= 63


# -- ExaLogLog ----------------------------------------------------------------


def split_hashes(
    hashes: np.ndarray, params: ExaLogLogParams
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Algorithm 2 front end: (register index, update value)."""
    t = _U64(params.t)
    hashes = hashes.astype(_U64, copy=False)
    index = (hashes >> t) & _U64(params.m - 1)
    masked = hashes | _U64((1 << (params.p + params.t)) - 1)
    # ``masked`` is a fresh temporary owned by this frame, so the bit
    # smear may destroy it in place instead of copying it first.
    nlz = nlz64_array(masked, clobber=True)
    k = (nlz << params.t) + (hashes & _U64((1 << params.t) - 1)).astype(np.int64) + 1
    return index.astype(np.int64), k


def reference_registers_from_pairs(
    index: np.ndarray, k: np.ndarray, params: ExaLogLogParams
) -> np.ndarray:
    """Fold ``(register, update value)`` pairs into a fresh register array.

    Identical to sequentially applying Algorithm 2 (order-independent);
    also the bulk route for event schedules, whose events are exactly such
    pairs.
    """
    m = params.m
    d = params.d

    u = np.zeros(m, dtype=np.int64)
    np.maximum.at(u, index, k)

    low = np.zeros(m, dtype=np.int64)
    if d > 0:
        u_at_event = u[index]
        in_window = (k < u_at_event) & (k >= u_at_event - d)
        if in_window.any():
            positions = d - (u_at_event[in_window] - k[in_window])
            bits = np.int64(1) << positions
            np.bitwise_or.at(low, index[in_window], bits)
        # The deterministic value-0 bit for registers with 1 <= u <= d.
        phantom = (u >= 1) & (u <= d)
        low[phantom] |= np.int64(1) << (d - u[phantom])

    return (u << d) | low


def reference_exaloglog_registers(
    hashes: np.ndarray, params: ExaLogLogParams
) -> np.ndarray:
    """Fresh ExaLogLog register array for a hash batch (chunked fold).

    Uses only reference kernels internally, so it stays a valid baseline
    even while a different backend is active.
    """
    registers = None
    for chunk in _chunks(hashes):
        index, k = split_hashes(chunk, params)
        batch = reference_registers_from_pairs(index, k, params)
        if registers is None:
            registers = batch
        else:
            registers = reference_merge_registers(registers, batch, params.d)
    if registers is None:
        registers = np.zeros(params.m, dtype=np.int64)
    return registers


def exaloglog_state(hashes: np.ndarray, params: ExaLogLogParams) -> list[int]:
    """Final ExaLogLog register array after inserting all ``hashes``."""
    return exaloglog_registers(hashes, params).tolist()


def reference_merge_registers(
    existing: Sequence[int], batch: np.ndarray, d: int
) -> np.ndarray:
    """Vectorised Algorithm 5: merge a batch register array into ``existing``.

    Equivalent to ``merge_register(existing[i], batch[i], d)`` per register;
    the result equals the state of the union of the two element streams.
    """
    r1 = np.asarray(existing, dtype=np.int64)
    r2 = batch.astype(np.int64, copy=False)
    u1 = r1 >> d
    u2 = r2 >> d
    window = np.int64((1 << d) - 1)
    implicit = np.int64(1 << d)
    # Shifting by more than d+1 always yields 0; clamp to keep shifts valid.
    delta12 = np.minimum(u1 - u2, d + 1, dtype=np.int64)
    delta21 = np.minimum(u2 - u1, d + 1, dtype=np.int64)
    out = r1 | r2
    mask = (u1 > u2) & (u2 > 0)
    if mask.any():
        out[mask] = r1[mask] | ((implicit + (r2[mask] & window)) >> delta12[mask])
    mask = (u2 > u1) & (u1 > 0)
    if mask.any():
        out[mask] = r2[mask] | ((implicit + (r1[mask] & window)) >> delta21[mask])
    return out


class ReferenceBulkBackend:
    """The pure-NumPy kernels as a backend object (the default)."""

    __slots__ = ()
    name = "numpy"
    jit = False

    def fold(self, hashes, params: ExaLogLogParams) -> np.ndarray:
        return reference_exaloglog_registers(hashes, params)

    def registers_from_pairs(self, index, k, params: ExaLogLogParams) -> np.ndarray:
        return reference_registers_from_pairs(index, k, params)

    def merge_registers(self, existing, batch, d: int) -> np.ndarray:
        return reference_merge_registers(existing, batch, d)

    def __repr__(self) -> str:
        return "ReferenceBulkBackend()"


# -- backend dispatch (the public hot-path entry points) ----------------------


def _backend():
    from repro.backends.select import active_backend

    return active_backend()


def exaloglog_registers(hashes: np.ndarray, params: ExaLogLogParams) -> np.ndarray:
    """Fresh ExaLogLog register array for a hash batch (active backend)."""
    backend = _backend()
    if _metrics.enabled():
        started = _perf_counter()
        registers = backend.fold(hashes, params)
        _FOLD_SECONDS.inc(_perf_counter() - started)
        _FOLD_BATCH_SIZE.observe(len(hashes))
        _HASHES_FOLDED.inc(len(hashes))
        folds = _FOLD_COUNTERS.get(backend.name)
        if folds is None:
            folds = _FOLD_COUNTERS.setdefault(
                backend.name,
                _metrics.counter(
                    "backend.folds",
                    "Bulk folds dispatched, by kernel backend.",
                    labels={"backend": backend.name},
                ),
            )
        folds.inc()
        return registers
    return backend.fold(hashes, params)


def exaloglog_registers_from_pairs(
    index: np.ndarray, k: np.ndarray, params: ExaLogLogParams
) -> np.ndarray:
    """Fold ``(register, update value)`` pairs (active backend)."""
    return _backend().registers_from_pairs(index, k, params)


def merge_exaloglog_registers(
    existing: Sequence[int], batch: np.ndarray, d: int
) -> np.ndarray:
    """Vectorised Algorithm 5 merge (active backend)."""
    if _metrics.enabled():
        _MERGES.inc()
    return _backend().merge_registers(existing, batch, d)


# -- sparse-mode tokens -------------------------------------------------------


def tokenize_hashes(hashes: np.ndarray, v: int) -> np.ndarray:
    """Vectorised Sec. 4.3 token mapping (``hash_to_token`` per element).

    Tokens are ``v + 6`` bits wide; the result is int64 where that fits
    (``v <= 57``, including the practical ``v = 26``) and uint64 beyond.
    """
    hashes = hashes.astype(_U64, copy=False)
    mask = _U64((1 << v) - 1)
    nlz = nlz64_array(hashes | mask)
    if v + 6 > 63:
        return ((hashes & mask) << _U64(6)) | nlz.astype(_U64)
    return ((hashes & mask).astype(np.int64) << 6) | nlz


def token_hashes(tokens: np.ndarray, v: int) -> np.ndarray:
    """Vectorised ``token_to_hash``: representative 64-bit hash per token.

    ``h' = 2**(64 - nlz) - 2**v + (token >> 6)  (mod 2**64)``; the
    ``nlz = 0`` lane relies on uint64 wrap-around (``2**64 ≡ 0``), written
    as ``(1 << (63 - nlz)) * 2`` to keep every shift count in [0, 63].
    """
    tokens = np.asarray(tokens)
    nlz = (tokens & 63).astype(_U64)
    high = (tokens >> 6).astype(_U64)
    base = (_U64(1) << (_U64(63) - nlz)) * _U64(2)
    return base - _U64(1 << v) + high


# -- HyperLogLog --------------------------------------------------------------


def hyperloglog_registers(hashes: np.ndarray, p: int) -> np.ndarray:
    """Fresh HyperLogLog register array (Algorithm 1, top-p-bit indexing)."""
    registers = np.zeros(1 << p, dtype=np.int64)
    for chunk in _chunks(hashes):
        chunk = chunk.astype(_U64, copy=False)
        index = (chunk >> _U64(64 - p)).astype(np.int64)
        masked = chunk & _U64((1 << (64 - p)) - 1)
        k = 64 - p - bit_length_u64(masked) + 1
        np.maximum.at(registers, index, k)
    return registers


def hyperloglog_state(hashes: np.ndarray, p: int) -> list[int]:
    """Final HyperLogLog register array after inserting all ``hashes``."""
    return hyperloglog_registers(hashes, p).tolist()


# -- PCSA ---------------------------------------------------------------------


def pcsa_bitmaps(hashes: np.ndarray, p: int) -> np.ndarray:
    """Fresh PCSA bitmap array (level bitmaps ORed together)."""
    bitmaps = np.zeros(1 << p, dtype=np.int64)
    for chunk in _chunks(hashes):
        chunk = chunk.astype(_U64, copy=False)
        index = (chunk >> _U64(64 - p)).astype(np.int64)
        masked = chunk & _U64((1 << (64 - p)) - 1)
        levels = np.minimum(64 - p - bit_length_u64(masked), 64 - p - 1)
        np.bitwise_or.at(bitmaps, index, np.int64(1) << levels)
    return bitmaps


def pcsa_state(hashes: np.ndarray, p: int) -> list[int]:
    """Final PCSA bitmap array after inserting all ``hashes``."""
    return pcsa_bitmaps(hashes, p).tolist()


# -- SpikeSketch --------------------------------------------------------------


def spikesketch_pairs(hashes: np.ndarray, buckets: int) -> list[tuple[int, int]]:
    """Unique (sub-register index, level) pairs a hash batch produces.

    Thinning, index extraction and the base-4 level count are vectorised;
    the surviving unique pairs (a handful per register) are replayed
    through the scalar register update by the caller, which is exact
    because register updates are commutative and pairs are idempotent.
    """
    from repro.baselines.spikesketch import ACCEPTANCE, SpikeSketch

    sketch = SpikeSketch(buckets)
    m = sketch.m
    cap = sketch.max_level

    x = hashes.astype(_U64, copy=True)
    # Vectorised splitmix64_mix.
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    x ^= x >> _U64(31)

    accepted = ((x >> _U64(40)) / float(1 << 24)) < ACCEPTANCE
    x = x[accepted]
    index = (x & _U64(m - 1)).astype(np.int64)
    remaining = x >> _U64(m.bit_length() - 1)
    level = np.minimum(1 + (ntz64_array(remaining) >> 1), cap)

    keys = np.unique(index * np.int64(cap + 1) + level)
    return [divmod(int(key), cap + 1) for key in keys.tolist()]


def spikesketch_state(hashes: np.ndarray, buckets: int = 128) -> list[int]:
    """Final SpikeSketch-model register array (matches SpikeSketch.add_hash)."""
    from repro.baselines.spikesketch import SpikeSketch
    from repro.core.register import update as update_register

    registers = [0] * SpikeSketch(buckets).m
    for i, level in spikesketch_pairs(hashes, buckets):
        registers[i] = update_register(registers[i], level, 3)
    return registers
