"""Vectorised bulk-ingest backends (the family-wide NumPy fast path).

Promotes the exact NumPy bulk machinery that used to live private to the
simulation harness (``repro.core.batch``) into a first-class layer: the
:class:`~repro.backends.protocol.BulkBackend` protocol, bit primitives,
and per-sketch state builders. Every sketch's ``add_hashes`` routes
through here; the contract is that bulk state equals the sequential
``add_hash`` loop state bit for bit (see :mod:`repro.backends.protocol`).
"""

from repro.backends.bitops import (
    as_hash_array,
    bit_length_u64,
    nlz64_array,
    ntz64_array,
)
from repro.backends.bulk import (
    BULK_CHUNK,
    ReferenceBulkBackend,
    exaloglog_registers,
    exaloglog_registers_from_pairs,
    exaloglog_state,
    hyperloglog_registers,
    hyperloglog_state,
    merge_exaloglog_registers,
    pcsa_bitmaps,
    pcsa_state,
    reference_exaloglog_registers,
    reference_merge_registers,
    reference_registers_from_pairs,
    spikesketch_pairs,
    spikesketch_state,
    split_hashes,
    supports_int64_registers,
    token_hashes,
    tokenize_hashes,
)
from repro.backends.fast import HAVE_NUMBA, FastBulkBackend, pick_chunk
from repro.backends.protocol import BulkBackend, scalar_add_hashes, supports_bulk
from repro.backends.select import (
    active_backend,
    available_backends,
    set_backend,
    use_backend,
)

__all__ = [
    "BULK_CHUNK",
    "BulkBackend",
    "FastBulkBackend",
    "HAVE_NUMBA",
    "ReferenceBulkBackend",
    "active_backend",
    "as_hash_array",
    "available_backends",
    "bit_length_u64",
    "exaloglog_registers",
    "exaloglog_registers_from_pairs",
    "exaloglog_state",
    "hyperloglog_registers",
    "hyperloglog_state",
    "merge_exaloglog_registers",
    "nlz64_array",
    "ntz64_array",
    "pcsa_bitmaps",
    "pcsa_state",
    "pick_chunk",
    "reference_exaloglog_registers",
    "reference_merge_registers",
    "reference_registers_from_pairs",
    "scalar_add_hashes",
    "set_backend",
    "spikesketch_pairs",
    "spikesketch_state",
    "split_hashes",
    "supports_bulk",
    "supports_int64_registers",
    "token_hashes",
    "tokenize_hashes",
    "use_backend",
]
