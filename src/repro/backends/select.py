"""Kernel-backend selection for the ExaLogLog bulk fold/merge hot path.

The public bulk entry points (:func:`repro.backends.bulk.exaloglog_registers`,
``exaloglog_registers_from_pairs``, ``merge_exaloglog_registers``) dispatch
through the *active kernel backend*. Backends trade implementation strategy
for speed but never results — every backend is bit-identical to the scalar
``add_hash`` loop, and the invariant harness asserts it:

``numpy``
    The reference implementation (:mod:`repro.backends.bulk`), default.
``fast``
    :class:`repro.backends.fast.FastBulkBackend` — cache-blocked chunking
    with preallocated per-thread workspaces (no per-chunk temporaries),
    plus Numba JIT kernels when ``numba`` is importable (auto-detected;
    pure NumPy otherwise).
``numba``
    The same backend with the JIT *required*; selecting it without numba
    installed raises.

Selection is programmatic (:func:`set_backend`, :func:`use_backend`) or via
the ``REPRO_BACKEND`` environment variable, read once at import. An unknown
or unavailable env value warns and falls back to the reference backend
instead of breaking imports (CI sets the variable globally; a matrix leg
without numba must still collect).
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager

#: Environment variable naming the startup backend.
ENV_VAR = "REPRO_BACKEND"

_LOCK = threading.Lock()
_ACTIVE = None  # resolved lazily so importing this module stays cheap


def _make_backend(name: str):
    if name in ("numpy", "reference"):
        from repro.backends.bulk import ReferenceBulkBackend

        return ReferenceBulkBackend()
    if name == "fast":
        from repro.backends.fast import FastBulkBackend

        return FastBulkBackend()
    if name == "numba":
        from repro.backends.fast import FastBulkBackend

        return FastBulkBackend(jit=True, name="numba")
    raise ValueError(
        f"unknown backend {name!r}; available: {available_backends()}"
    )


def available_backends() -> list[str]:
    """Backend names accepted by :func:`set_backend` on this machine."""
    from repro.backends.fast import HAVE_NUMBA

    names = ["numpy", "fast"]
    if HAVE_NUMBA:
        names.append("numba")
    return names


def active_backend():
    """The backend the bulk entry points currently dispatch to."""
    global _ACTIVE
    backend = _ACTIVE
    if backend is None:
        with _LOCK:
            if _ACTIVE is None:
                _ACTIVE = _startup_backend()
            backend = _ACTIVE
    return backend


def set_backend(backend):
    """Select the kernel backend; returns the now-active backend object.

    ``backend`` is a name (``"numpy"``, ``"fast"``, ``"numba"``) or an
    object implementing ``fold`` / ``registers_from_pairs`` /
    ``merge_registers``. Selecting ``"numba"`` without numba installed
    raises :class:`RuntimeError`.
    """
    global _ACTIVE
    if isinstance(backend, str):
        backend = _make_backend(backend)
    with _LOCK:
        _ACTIVE = backend
    return backend


@contextmanager
def use_backend(backend):
    """Context manager: run a block under another backend, then restore."""
    previous = active_backend()
    chosen = set_backend(backend)
    try:
        yield chosen
    finally:
        set_backend(previous)


def _startup_backend():
    """Resolve the import-time default (honouring ``REPRO_BACKEND``)."""
    name = os.environ.get(ENV_VAR, "").strip().lower()
    if name:
        try:
            return _make_backend(name)
        except (ValueError, RuntimeError) as exc:
            warnings.warn(
                f"{ENV_VAR}={name!r} not usable ({exc}); "
                "falling back to the reference numpy backend",
                RuntimeWarning,
                stacklevel=2,
            )
    return _make_backend("numpy")
