"""Vectorised 64-bit bit primitives shared by every bulk backend.

All bit arithmetic stays in integer space (``np.bitwise_count`` on smeared
values implements ``bit_length``), so results are exact for all 64 bits —
the foundation of the exact-equivalence guarantee the bulk backends make.
"""

from __future__ import annotations

import numpy as np

_U64 = np.uint64


def bit_length_u64(values: np.ndarray, clobber: bool = False) -> np.ndarray:
    """Element-wise ``int.bit_length`` for uint64 arrays (exact).

    ``clobber=True`` runs the bit smear in place when ``values`` is a
    writeable uint64 array the caller owns and no longer needs, skipping
    the defensive copy — the fold hot path hands in a freshly built
    temporary once per chunk, so that copy was pure overhead.
    """
    if clobber and values.dtype == _U64 and values.flags.writeable:
        x = values
    else:
        x = values.astype(_U64, copy=True)
    for shift in (1, 2, 4, 8, 16, 32):
        x |= x >> _U64(shift)
    return np.bitwise_count(x).astype(np.int64)


def nlz64_array(values: np.ndarray, clobber: bool = False) -> np.ndarray:
    """Element-wise number of leading zeros of uint64 values.

    ``clobber`` forwards to :func:`bit_length_u64` (the input may be
    destroyed when the caller owns it).
    """
    return 64 - bit_length_u64(values, clobber=clobber)


def ntz64_array(values: np.ndarray) -> np.ndarray:
    """Element-wise number of trailing zeros (64 for zero values)."""
    x = values.astype(_U64, copy=False)
    isolated = x & (~x + _U64(1))
    result = np.bitwise_count(isolated - _U64(1)).astype(np.int64)
    result[x == 0] = 64
    return result


def as_hash_array(hashes) -> np.ndarray:
    """Coerce hash input (ndarray, sequence of ints) to a 1-D uint64 array.

    Python ints in ``[0, 2**64)`` are accepted; signed int64 arrays are
    reinterpreted as their two's-complement bit patterns so raw NumPy
    integer data round-trips losslessly.
    """
    if isinstance(hashes, np.ndarray):
        if hashes.dtype == np.uint64:
            return np.ascontiguousarray(hashes).reshape(-1)
        if hashes.dtype == np.int64:
            return hashes.reshape(-1).view(np.uint64)
        return hashes.reshape(-1).astype(np.uint64)
    values = list(hashes)
    out = np.empty(len(values), dtype=np.uint64)
    for position, value in enumerate(values):
        out[position] = value & 0xFFFFFFFFFFFFFFFF
    return out
