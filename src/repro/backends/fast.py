"""Cache-blocked / JIT kernel backend for the ExaLogLog fold and merge.

Same math as :mod:`repro.backends.bulk` — Algorithm 2 set-wise, Algorithm 5
merge — restructured for raw speed:

* **Preallocated per-thread workspaces.** The reference fold materialises
  ~10 temporaries per chunk (every ``>>``, ``&``, ``|`` allocates). Here
  each elementwise pass writes into a reused buffer (``out=``), so a fold
  allocates the per-chunk scratch once per thread instead of per chunk.
  Measured ~1.9x on the split stage, 1.1–1.9x end to end depending on
  precision.
* **Cache-blocked chunking.** The merge between chunk folds is O(m), so
  the best chunk size grows with the register count: ``pick_chunk(m)``
  uses ``max(2**16, min(2**20, 64 * m))`` hashes per chunk — small
  registers amortise scatter setup, large registers amortise the merge.
  Chunk folds merge exactly (Algorithm 5), so blocking never changes the
  result.
* **Optional Numba JIT.** When ``numba`` is importable, single-pass scalar
  kernels (split + update fused per hash, no intermediate arrays at all)
  replace the NumPy pipeline. Auto-detected at import; the pure-NumPy
  blocked path is the default elsewhere and the JIT is *required* only
  for the explicit ``"numba"`` backend name.

Every path keeps the library's core contract: results are bit-identical
to the scalar ``add_hash`` loop (asserted by ``tests/invariants``).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.backends.bitops import as_hash_array
from repro.core.params import ExaLogLogParams

_U64 = np.uint64

try:  # pragma: no cover - absent in the pinned environment
    import numba as _numba
except Exception:  # pragma: no cover
    _numba = None

#: Whether the JIT kernels are available on this interpreter.
HAVE_NUMBA = _numba is not None


def pick_chunk(m: int) -> int:
    """Cache-block size (hashes per chunk) for a fold over ``m`` registers.

    Inter-chunk merges cost O(m); scatter targets cost O(m) cache
    footprint. Scaling the chunk with m (clamped to [2**16, 2**20])
    measured faster than any fixed size at every precision tested.
    """
    return max(1 << 16, min(1 << 20, 64 * m))


class _FoldWorkspace:
    """Per-thread scratch for the blocked fold (all passes write in place)."""

    __slots__ = ("bools", "capacity", "index", "k", "u64a", "u64b")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.u64a = np.empty(capacity, dtype=_U64)
        self.u64b = np.empty(capacity, dtype=_U64)
        self.index = np.empty(capacity, dtype=np.int64)
        self.k = np.empty(capacity, dtype=np.int64)
        self.bools = np.empty((2, capacity), dtype=bool)


_LOCAL = threading.local()


def _workspace(capacity: int) -> _FoldWorkspace:
    workspace = getattr(_LOCAL, "fold", None)
    if workspace is None or workspace.capacity < capacity:
        workspace = _FoldWorkspace(capacity)
        _LOCAL.fold = workspace
    return workspace


def release_workspaces() -> None:
    """Drop this thread's cached fold buffers (frees up to ~35 MB)."""
    _LOCAL.fold = None


def _split_into(hashes: np.ndarray, params: ExaLogLogParams, ws: _FoldWorkspace):
    """Algorithm 2 front end into workspace buffers; returns (index, k) views."""
    n = len(hashes)
    a = ws.u64a[:n]
    b = ws.u64b[:n]
    index = ws.index[:n]
    k = ws.k[:n]
    t = params.t
    np.right_shift(hashes, _U64(t), out=a)
    np.bitwise_and(a, _U64(params.m - 1), out=a)
    np.copyto(index, a, casting="unsafe")
    np.bitwise_or(hashes, _U64((1 << (params.p + t)) - 1), out=b)
    for shift in (1, 2, 4, 8, 16, 32):  # in-place bit smear (bit_length)
        b |= b >> _U64(shift)
    np.bitwise_count(b, out=a)
    np.copyto(k, a, casting="unsafe")
    np.subtract(np.int64(64), k, out=k)  # nlz
    if t:
        np.left_shift(k, t, out=k)
        np.bitwise_and(hashes, _U64((1 << t) - 1), out=b)
        low = ws.u64a[:n].view(np.int64)[:n]
        np.copyto(low, b, casting="unsafe")
        np.add(k, low, out=k)
    np.add(k, np.int64(1), out=k)
    return index, k


def _fold_pairs(
    index: np.ndarray, k: np.ndarray, params: ExaLogLogParams, ws: _FoldWorkspace
) -> np.ndarray:
    """Fold (register, update value) pairs into a fresh register array.

    Identical formulas to the reference ``exaloglog_registers_from_pairs``,
    with the per-event gathers/comparisons running in workspace buffers.
    ``index``/``k`` may be workspace views from :func:`_split_into`; only
    the uint64/bool scratch is written here.
    """
    m, d = params.m, params.d
    n = len(index)
    u = np.zeros(m, dtype=np.int64)
    np.maximum.at(u, index, k)
    low = np.zeros(m, dtype=np.int64)
    if d > 0 and n:
        u_at = ws.u64a[:n].view(np.int64)[:n]
        np.take(u, index, out=u_at)
        threshold = ws.u64b[:n].view(np.int64)[:n]
        np.subtract(u_at, np.int64(d), out=threshold)
        in_window = ws.bools[0, :n]
        above = ws.bools[1, :n]
        np.less(k, u_at, out=in_window)
        np.greater_equal(k, threshold, out=above)
        np.logical_and(in_window, above, out=in_window)
        selected = np.flatnonzero(in_window)
        if selected.size:
            positions = d - (u_at[selected] - k[selected])
            np.bitwise_or.at(low, index[selected], np.int64(1) << positions)
    if d > 0:
        phantom = (u >= 1) & (u <= d)
        low[phantom] |= np.int64(1) << (d - u[phantom])
    np.left_shift(u, np.int64(d), out=u)
    np.bitwise_or(u, low, out=u)
    return u


# -- Numba kernels (compiled only where numba is importable) -------------------

if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @_numba.njit(cache=True)
    def _jit_update(registers, i, k, d, implicit, window_mask):
        r = registers[i]
        u = r >> d
        if k > u:
            delta = k - u
            if delta > d + 1:
                delta = d + 1  # larger shifts always yield 0 (and overflow C)
            registers[i] = (k << d) + ((implicit + (r & window_mask)) >> delta)
        elif k < u:
            position = d - u + k
            if position >= 0:
                registers[i] = r | (np.int64(1) << position)

    @_numba.njit(cache=True)
    def _jit_fold(hashes, t, p, d, m):
        registers = np.zeros(m, dtype=np.int64)
        shift_t = np.uint64(t)
        index_mask = np.uint64(m - 1)
        pad = np.uint64((1 << (p + t)) - 1)
        low_mask = np.uint64((1 << t) - 1)
        top = np.uint64(1) << np.uint64(63)
        zero = np.uint64(0)
        one = np.uint64(1)
        implicit = np.int64(1) << d
        window_mask = implicit - 1
        for position in range(hashes.shape[0]):
            h = hashes[position]
            i = np.int64((h >> shift_t) & index_mask)
            x = h | pad
            nlz = 0
            while x & top == zero:
                x = x << one
                nlz += 1
            k = (nlz << t) + np.int64(h & low_mask) + 1
            _jit_update(registers, i, k, d, implicit, window_mask)
        return registers

    @_numba.njit(cache=True)
    def _jit_pairs(index, k, d, m):
        registers = np.zeros(m, dtype=np.int64)
        implicit = np.int64(1) << d
        window_mask = implicit - 1
        for position in range(index.shape[0]):
            _jit_update(
                registers, index[position], k[position], d, implicit, window_mask
            )
        return registers

    @_numba.njit(cache=True)
    def _jit_merge(r1, r2, d):
        out = np.empty(r1.shape[0], dtype=np.int64)
        implicit = np.int64(1) << d
        window_mask = implicit - 1
        for i in range(r1.shape[0]):
            a = r1[i]
            b = r2[i]
            u1 = a >> d
            u2 = b >> d
            if u1 > u2 and u2 > 0:
                delta = u1 - u2
                if delta > d + 1:
                    delta = d + 1
                out[i] = a | ((implicit + (b & window_mask)) >> delta)
            elif u2 > u1 and u1 > 0:
                delta = u2 - u1
                if delta > d + 1:
                    delta = d + 1
                out[i] = b | ((implicit + (a & window_mask)) >> delta)
            else:
                out[i] = a | b
        return out

else:
    _jit_fold = _jit_pairs = _jit_merge = None


class FastBulkBackend:
    """Blocked/JIT kernel backend (bit-identical to the reference).

    Parameters
    ----------
    jit:
        ``None`` auto-detects numba (the default for the ``"fast"``
        name); ``True`` requires it (the ``"numba"`` name); ``False``
        forces the pure-NumPy blocked path even where numba exists.
    name:
        The registry name this instance reports.
    """

    __slots__ = ("jit", "name")

    def __init__(self, jit: bool | None = None, name: str = "fast") -> None:
        if jit and not HAVE_NUMBA:
            raise RuntimeError(
                "the numba JIT backend was requested but numba is not importable"
            )
        self.jit = HAVE_NUMBA if jit is None else bool(jit)
        self.name = name

    def fold(self, hashes, params: ExaLogLogParams) -> np.ndarray:
        """Fresh register array for a hash batch (= ``exaloglog_registers``)."""
        hashes = as_hash_array(hashes)
        n = len(hashes)
        if n == 0:
            return np.zeros(params.m, dtype=np.int64)
        if self.jit:
            return _jit_fold(
                np.ascontiguousarray(hashes), params.t, params.p, params.d, params.m
            )
        chunk = pick_chunk(params.m)
        workspace = _workspace(min(chunk, n))
        registers = None
        for start in range(0, n, chunk):
            part = hashes[start : start + chunk]
            index, k = _split_into(part, params, workspace)
            batch = _fold_pairs(index, k, params, workspace)
            if registers is None:
                registers = batch
            else:
                registers = self.merge_registers(registers, batch, params.d)
        return registers

    def registers_from_pairs(
        self, index: np.ndarray, k: np.ndarray, params: ExaLogLogParams
    ) -> np.ndarray:
        """Fold explicit pairs (= ``exaloglog_registers_from_pairs``)."""
        index = np.ascontiguousarray(index, dtype=np.int64).reshape(-1)
        k = np.ascontiguousarray(k, dtype=np.int64).reshape(-1)
        if self.jit:
            return _jit_pairs(index, k, params.d, params.m)
        n = len(index)
        if n == 0:
            return np.zeros(params.m, dtype=np.int64)
        chunk = pick_chunk(params.m)
        workspace = _workspace(min(chunk, n))
        registers = None
        # Chunked pair folds merge exactly (each chunk is the sequential
        # state of its events; Algorithm 5 joins them to the state of the
        # concatenation), so blocking is invisible here too.
        for start in range(0, n, chunk):
            batch = _fold_pairs(
                index[start : start + chunk], k[start : start + chunk],
                params, workspace,
            )
            if registers is None:
                registers = batch
            else:
                registers = self.merge_registers(registers, batch, params.d)
        return registers

    def merge_registers(self, existing, batch, d: int) -> np.ndarray:
        """Vectorised Algorithm 5 (= ``merge_exaloglog_registers``)."""
        r1 = np.asarray(existing, dtype=np.int64)
        r2 = np.asarray(batch, dtype=np.int64)
        if self.jit:
            return _jit_merge(
                np.ascontiguousarray(r1), np.ascontiguousarray(r2), d
            )
        out = np.bitwise_or(r1, r2)
        u1 = np.right_shift(r1, np.int64(d))
        u2 = np.right_shift(r2, np.int64(d))
        window = np.int64((1 << d) - 1)
        implicit = np.int64(1 << d)
        # Compressed lanes: only registers where one side's window must
        # shift under the other's maximum do any arithmetic.
        selected = np.flatnonzero((u1 > u2) & (u2 > 0))
        if selected.size:
            delta = np.minimum(u1[selected] - u2[selected], d + 1)
            out[selected] = r1[selected] | (
                (implicit + (r2[selected] & window)) >> delta
            )
        selected = np.flatnonzero((u2 > u1) & (u1 > 0))
        if selected.size:
            delta = np.minimum(u2[selected] - u1[selected], d + 1)
            out[selected] = r2[selected] | (
                (implicit + (r1[selected] & window)) >> delta
            )
        return out

    def __repr__(self) -> str:
        return f"FastBulkBackend(jit={self.jit}, name={self.name!r})"
