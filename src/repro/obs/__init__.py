"""Engine-wide observability plane: metrics and span tracing.

Two sibling modules, both process-local, both near-zero cost until
switched on by environment variable:

* :mod:`repro.obs.metrics` (``REPRO_METRICS``) — Counter / Gauge /
  Histogram primitives with snapshot/merge semantics (pool workers ship
  their deltas back like partial sketches) and JSON + Prometheus
  exposition.
* :mod:`repro.obs.trace` (``REPRO_TRACE``) — nested context-manager
  spans in a bounded ring buffer, exported as Chrome trace-event JSON.

Every plane of the engine reports through them: the bulk kernels, the
persistent worker pool, the WAL/snapshot store, the lock-free reader,
WAL-shipping replication, batched estimation, and the query executor
(whose per-plan-node spans feed ``explain(analyze=True)`` and the CLI's
``query ... --analyze``). ``python -m repro.store stats DIR`` is the
operator surface.
"""

from repro.obs import metrics, trace

__all__ = ["metrics", "trace"]
