"""Span tracing: nested context-manager timers with Chrome trace export.

Metrics (:mod:`repro.obs.metrics`) say *how much*; spans say *where the
time went* inside one request — which plan node dominated a query, how
long a refresh spent in WAL tail replay vs snapshot switching, what a
pool dispatch overlapped with. The design constraints mirror metrics:

* **Near-zero cost when disabled.** Off unless ``REPRO_TRACE`` is
  truthy (or :func:`enable` is called); a disabled :func:`span` returns
  one shared no-op context manager — no clock reads, no allocation
  beyond the call itself.
* **Monotonic nesting.** Spans time with ``time.perf_counter`` and
  track a per-thread stack, so every recorded span knows its depth and
  its parent; a child always closes before (and nests strictly inside)
  its parent — asserted by the observability smoke test.
* **Bounded retention.** Completed spans land in a ring buffer
  (``REPRO_TRACE_BUFFER`` entries, default 4096): a long-running
  ``serve`` loop keeps the most recent window instead of growing
  without bound.
* **Chrome trace-event export.** :func:`to_chrome_trace` renders the
  ring as the Trace Event JSON format — load it in ``chrome://tracing``
  or Perfetto to see the nested flame view.

Usage::

    from repro.obs import trace

    with trace.span("store.append", group="DE", batch=8192):
        ...
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: Environment variable enabling tracing at import time.
ENV_VAR = "REPRO_TRACE"

#: Environment variable sizing the ring buffer (completed spans kept).
BUFFER_ENV_VAR = "REPRO_TRACE_BUFFER"

_TRUTHY = ("1", "true", "yes", "on")


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def _buffer_capacity() -> int:
    try:
        value = int(os.environ.get(BUFFER_ENV_VAR, 4096))
    except ValueError:
        return 4096
    return max(1, value)


_ENABLED = _env_enabled()
_LOCK = threading.Lock()
_SPANS: "deque[Span]" = deque(maxlen=_buffer_capacity())
_LOCAL = threading.local()


def enabled() -> bool:
    """Whether span recording is on (the hot-path guard)."""
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


class tracing:
    """Context manager scoping :func:`enable` (tests, benchmarks)."""

    def __init__(self, on: bool = True) -> None:
        self._on = on
        self._previous = _ENABLED

    def __enter__(self) -> "tracing":
        global _ENABLED
        self._previous = _ENABLED
        _ENABLED = self._on
        return self

    def __exit__(self, *exc_info) -> None:
        global _ENABLED
        _ENABLED = self._previous


@dataclass(frozen=True)
class Span:
    """One completed span (recorded at exit)."""

    name: str
    start: float
    """``time.perf_counter()`` at entry (process-relative seconds)."""

    duration: float
    """Seconds between entry and exit."""

    depth: int
    """Nesting depth on its thread (0 = top-level)."""

    thread_id: int
    attrs: tuple = field(default=())

    @property
    def end(self) -> float:
        return self.start + self.duration


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


class _ActiveSpan:
    """The live context manager; records into the ring on exit."""

    __slots__ = ("name", "attrs", "start", "depth")

    def __init__(self, name: str, attrs: tuple) -> None:
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.depth = 0

    def __enter__(self) -> "_ActiveSpan":
        stack = _stack()
        self.depth = len(stack)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self.start
        stack = _stack()
        # Pop back to this span even if an inner span leaked (an
        # exception unwound through it): nesting stays monotone.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        record = Span(
            name=self.name,
            start=self.start,
            duration=duration,
            depth=self.depth,
            thread_id=threading.get_ident(),
            attrs=self.attrs,
        )
        with _LOCK:
            _SPANS.append(record)


class _NoopSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **attrs):
    """Open a span named ``name``; ``attrs`` become trace-event args.

    Returns a context manager. While tracing is disabled this is one
    flag check plus a shared no-op object — safe on hot paths.
    """
    if not _ENABLED:
        return _NOOP
    return _ActiveSpan(name, tuple(sorted(attrs.items())) if attrs else ())


def spans() -> "list[Span]":
    """Completed spans currently retained (oldest first)."""
    with _LOCK:
        return list(_SPANS)


def reset() -> None:
    """Drop every retained span (the ring stays at its capacity)."""
    with _LOCK:
        _SPANS.clear()


def capacity() -> int:
    """The ring buffer's maximum retained span count."""
    return _SPANS.maxlen or 0


def set_capacity(count: int) -> None:
    """Resize the ring (keeps the newest spans that fit)."""
    global _SPANS
    with _LOCK:
        _SPANS = deque(_SPANS, maxlen=max(1, int(count)))


def to_chrome_trace() -> str:
    """The retained spans as Chrome Trace Event JSON (``ph: "X"``).

    Open in ``chrome://tracing`` or https://ui.perfetto.dev. Timestamps
    are microseconds relative to the process's ``perf_counter`` origin.
    """
    pid = os.getpid()
    events = [
        {
            "name": record.name,
            "ph": "X",
            "ts": record.start * 1e6,
            "dur": record.duration * 1e6,
            "pid": pid,
            "tid": record.thread_id,
            "args": {**dict(record.attrs), "depth": record.depth},
        }
        for record in spans()
    ]
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def save_chrome_trace(path) -> None:
    """Write :func:`to_chrome_trace` to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_chrome_trace())
