"""Mergeable process-local metrics: counters, gauges, histograms.

The engine spans five planes (vectorized ingest, the persistent worker
pool, the WAL/snapshot store, WAL-shipping replication, the unified
query plane) and most of them run in processes the operator never sees —
pool workers, ``serve`` readers, ``replicate`` shippers. This module is
the one substrate they all report through:

* **Primitives.** :class:`Counter` (monotone sum), :class:`Gauge`
  (last-written value, with ``max``/``sum`` merge modes), and
  :class:`Histogram` (fixed exponential buckets + sum + count, with
  quantile estimation) live in a process-local :class:`Registry`.
* **Near-zero cost when disabled.** Collection is off unless the
  ``REPRO_METRICS`` environment variable is truthy (or :func:`enable`
  is called): every mutator starts with one module-flag check and
  returns — no locks, no allocation, no clock reads. Instrumented hot
  paths additionally guard whole blocks with :func:`enabled` so even
  argument computation is skipped.
* **Snapshot/merge semantics.** Sketches made the whole engine
  parallelisable because partial states merge exactly; metrics follow
  the same scheme. :meth:`Registry.snapshot` captures a plain picklable
  dict, :meth:`Registry.drain` captures-and-zeroes (delta semantics),
  and :meth:`Registry.merge_snapshot` folds a snapshot into another
  registry — counters and histogram buckets add, gauges combine by
  their declared mode. The worker pool ships each job's drained
  snapshot back over its existing result channel, so worker-side
  metrics land in the parent exactly like partial sketches do.
* **Exposition.** :meth:`Registry.to_json` for tooling and
  :meth:`Registry.to_prometheus` for the standard text format
  (``repro_``-prefixed, dots mapped to underscores, labels rendered).

Everything here is pure stdlib and import-cheap: instrumented modules
create their metric handles at import time and the handles stay valid
across :func:`reset`/:meth:`~Registry.drain` (values zero in place).
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from bisect import bisect_left
from typing import Iterable, Mapping

#: Environment variable enabling collection at import time.
ENV_VAR = "REPRO_METRICS"

#: Truthy values accepted for :data:`ENV_VAR`.
_TRUTHY = ("1", "true", "yes", "on")


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


_ENABLED = _env_enabled()


def enabled() -> bool:
    """Whether collection is on (the hot-path guard)."""
    return _ENABLED


def enable() -> None:
    """Turn collection on for this process."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn collection off (existing values are kept, not cleared)."""
    global _ENABLED
    _ENABLED = False


class instrumented:
    """Context manager scoping :func:`enable` (tests, the ``stats`` CLI)."""

    def __init__(self, on: bool = True) -> None:
        self._on = on
        self._previous = _ENABLED

    def __enter__(self) -> "instrumented":
        global _ENABLED
        self._previous = _ENABLED
        _ENABLED = self._on
        return self

    def __exit__(self, *exc_info) -> None:
        global _ENABLED
        _ENABLED = self._previous


# -- buckets -------------------------------------------------------------------

#: Default histogram boundaries: exponential decades 1e-6 .. 1e9, dense
#: enough for both latencies (seconds) and sizes (bytes, rows). A final
#: +inf bucket is implicit.
DEFAULT_BUCKETS = tuple(
    base * 10.0**exponent
    for exponent in range(-6, 10)
    for base in (1.0, 2.5, 5.0)
)


def _canonical_labels(labels: "Mapping[str, str] | None") -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# -- primitives ----------------------------------------------------------------


class Metric:
    """Shared identity plumbing; concrete kinds add their state."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", labels: tuple = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels

    @property
    def key(self) -> tuple:
        return (self.name, self.labels)

    def _label_suffix(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"


class Counter(Metric):
    """A monotonically increasing sum (merges by addition)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: tuple = ()) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def _state(self) -> dict:
        return {"value": self.value}

    def _merge(self, state: dict) -> None:
        self.value += state["value"]

    def _reset(self) -> None:
        self.value = 0.0


class Gauge(Metric):
    """A point-in-time value.

    ``mode`` declares how snapshots merge: ``"last"`` (a merged value
    overwrites, the default — right for horizons and depths reported by
    one process), ``"max"`` (high-water marks), or ``"sum"`` (additive
    gauges like live worker counts across processes).
    """

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labels: tuple = (), mode: str = "last"
    ) -> None:
        if mode not in ("last", "max", "sum"):
            raise ValueError(f"unknown gauge merge mode {mode!r}")
        super().__init__(name, help, labels)
        self.mode = mode
        self.value = 0.0

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _state(self) -> dict:
        return {"value": self.value, "mode": self.mode}

    def _merge(self, state: dict) -> None:
        other = state["value"]
        if self.mode == "sum":
            self.value += other
        elif self.mode == "max":
            self.value = max(self.value, other)
        else:
            self.value = other

    def _reset(self) -> None:
        self.value = 0.0


class Histogram(Metric):
    """Fixed-boundary bucket counts plus sum and count.

    ``buckets`` are the inclusive upper bounds of each bucket (a final
    +inf bucket is implicit); observations land in the first bucket
    whose bound is >= the value, Prometheus-style cumulative counts are
    produced at exposition time. Merging adds bucket counts — exact, no
    information loss beyond the shared boundaries.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: tuple = (),
        buckets: "Iterable[float] | None" = None,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot: +inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` identical observations at once)."""
        if not _ENABLED:
            return
        self.counts[bisect_left(self.bounds, value)] += count
        self.sum += value * count
        self.count += count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating within its bucket.

        Exact for values that sit on bucket boundaries; otherwise the
        usual histogram-quantile estimate (linear within the bucket,
        lower bound 0 for the first, the last finite bound for +inf).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):
                    return self.bounds[-1] if self.bounds else math.inf
                low = self.bounds[index - 1] if index else 0.0
                high = self.bounds[index]
                fraction = (rank - previous) / bucket_count
                return low + (high - low) * min(max(fraction, 0.0), 1.0)
        return self.bounds[-1] if self.bounds else math.nan

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def _state(self) -> dict:
        return {
            "bounds": self.bounds,
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def _merge(self, state: dict) -> None:
        if tuple(state["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name}: cannot merge mismatched buckets"
            )
        for index, bucket_count in enumerate(state["counts"]):
            self.counts[index] += bucket_count
        self.sum += state["sum"]
        self.count += state["count"]

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


# -- the registry --------------------------------------------------------------


class Registry:
    """A process-local collection of metrics, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "dict[tuple, Metric]" = {}

    def _get_or_create(self, cls, name, help, labels, **options):
        key = (name, _canonical_labels(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help, key[1], **options)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name, help: str = "", labels=None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name, help: str = "", labels=None, mode: str = "last") -> Gauge:
        return self._get_or_create(Gauge, name, help, labels, mode=mode)

    def histogram(self, name, help: str = "", labels=None, buckets=None) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str, labels=None) -> "Metric | None":
        """Look up one metric (``None`` when it was never created)."""
        return self._metrics.get((name, _canonical_labels(labels)))

    def metrics(self) -> "list[Metric]":
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.key)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain picklable capture of every metric's current state."""
        with self._lock:
            return {
                "metrics": [
                    {
                        "kind": metric.kind,
                        "name": metric.name,
                        "help": metric.help,
                        "labels": metric.labels,
                        "state": metric._state(),
                    }
                    for metric in self._metrics.values()
                ],
                "captured_at": time.time(),
            }

    def drain(self) -> dict:
        """Snapshot, then zero every value in place (delta semantics).

        This is what pool workers ship after each job: repeated drains
        merge additively without double counting, exactly like partial
        sketches merged per batch.
        """
        with self._lock:
            captured = {
                "metrics": [
                    {
                        "kind": metric.kind,
                        "name": metric.name,
                        "help": metric.help,
                        "labels": metric.labels,
                        "state": metric._state(),
                    }
                    for metric in self._metrics.values()
                ],
                "captured_at": time.time(),
            }
            for metric in self._metrics.values():
                metric._reset()
            return captured

    def merge_snapshot(self, snapshot: "Mapping | None") -> None:
        """Fold a :meth:`snapshot`/:meth:`drain` capture into this registry.

        Metrics absent here are created with the snapshot's identity, so
        a parent process learns about worker-only metrics too.
        """
        if not snapshot:
            return
        for entry in snapshot["metrics"]:
            cls = _KINDS[entry["kind"]]
            options = {}
            state = entry["state"]
            if entry["kind"] == "gauge":
                options["mode"] = state.get("mode", "last")
            elif entry["kind"] == "histogram":
                options["buckets"] = state["bounds"]
            labels = dict(entry["labels"]) if entry["labels"] else None
            metric = self._get_or_create(
                cls, entry["name"], entry["help"], labels, **options
            )
            metric._merge(state)

    def reset(self) -> None:
        """Zero every metric's value (handles stay registered and valid)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()

    # -- exposition ------------------------------------------------------------

    def to_json(self, indent: "int | None" = None) -> str:
        """All metrics as one JSON document (histograms with quantiles)."""
        payload = {}
        for metric in self.metrics():
            entry: dict = {"kind": metric.kind}
            if metric.labels:
                entry["labels"] = dict(metric.labels)
            if isinstance(metric, Histogram):
                entry.update(
                    count=metric.count,
                    sum=metric.sum,
                    mean=None if metric.count == 0 else metric.mean,
                    p50=_json_safe(metric.quantile(0.50)),
                    p95=_json_safe(metric.quantile(0.95)),
                    p99=_json_safe(metric.quantile(0.99)),
                )
            else:
                entry["value"] = metric.value
            name = metric.name + metric._label_suffix()
            payload[name] = entry
        return json.dumps(payload, indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The standard Prometheus text exposition (version 0.0.4).

        Names are prefixed ``repro_`` with dots mapped to underscores;
        histograms expose cumulative ``_bucket{le=...}`` series plus
        ``_sum`` and ``_count``.
        """
        lines: "list[str]" = []
        seen_headers: set = set()
        for metric in self.metrics():
            name = prometheus_name(metric.name)
            if name not in seen_headers:
                seen_headers.add(name)
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, bucket_count in zip(metric.bounds, metric.counts):
                    cumulative += bucket_count
                    labels = metric.labels + (("le", _format_bound(bound)),)
                    lines.append(
                        f"{name}_bucket{_render_labels(labels)} {cumulative}"
                    )
                cumulative += metric.counts[-1]
                labels = metric.labels + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_render_labels(labels)} {cumulative}")
                lines.append(
                    f"{name}_sum{_render_labels(metric.labels)} {_format_value(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_render_labels(metric.labels)} {cumulative}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(metric.labels)} {_format_value(metric.value)}"
                )
        return "\n".join(lines) + "\n"


def _json_safe(value: float):
    return None if math.isnan(value) or math.isinf(value) else value


def prometheus_name(name: str) -> str:
    """Map a dotted metric name to its Prometheus series name."""
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _render_labels(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def _format_bound(bound: float) -> str:
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(bound)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


# -- the default registry ------------------------------------------------------

#: The process-wide registry instrumented modules register into.
REGISTRY = Registry()


def counter(name: str, help: str = "", labels=None) -> Counter:
    """Get-or-create a counter in the default registry."""
    return REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels=None, mode: str = "last") -> Gauge:
    """Get-or-create a gauge in the default registry."""
    return REGISTRY.gauge(name, help, labels, mode=mode)


def histogram(name: str, help: str = "", labels=None, buckets=None) -> Histogram:
    """Get-or-create a histogram in the default registry."""
    return REGISTRY.histogram(name, help, labels, buckets=buckets)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def drain() -> dict:
    return REGISTRY.drain()


def merge_snapshot(captured) -> None:
    REGISTRY.merge_snapshot(captured)


def reset() -> None:
    REGISTRY.reset()


def to_json(indent: "int | None" = None) -> str:
    return REGISTRY.to_json(indent)


def to_prometheus() -> str:
    return REGISTRY.to_prometheus()
