"""A tiny string dialect compiling to :mod:`repro.query.plan` trees.

Grammar (keywords case-insensitive; ``[...]`` optional)::

    query     := [action] expr
    action    := "top" INT
               | "estimate" ["all" | STRING]
    expr      := operand {setop operand}          # left-associative
    setop     := "union" | "intersect" | "diff" | "jaccard"
    operand   := "(" expr ")" | selection
    selection := ["from" NAME] [where] [window]   # empty = scan default
    where     := "where" "key" ( ("=" | "==") STRING
                               | "startswith" STRING
                               | "in" "(" STRING {"," STRING} ")" )
    window    := "window" DURATION ["bucket" DURATION] ["ending" NUMBER]
    DURATION  := NUMBER | NUMBER("s"|"m"|"h"|"d")

Examples::

    top 10
    top 10 where key startswith 'country:'
    estimate all
    estimate 'country:US'
    estimate where key in ('country:US', 'country:DE')
    window 1h ending 7200
    from today intersect from lastweek
    top 3 (from live union from history)

With no action the query is sketch-valued and the executor applies an
implicit ``estimate all``. ``window`` resolves its bucket layout from
the scanned source (a windowed counter or a
:class:`~repro.query.BucketedSource`) unless ``bucket`` overrides it;
``ending`` anchors the window's newest edge at an absolute time instead
of execution-time ``now``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.query.plan import (
    Estimate,
    Filter,
    PlanNode,
    Scan,
    SetOp,
    TopK,
    Window,
)


class ParseError(ValueError):
    """Raised for queries the dialect cannot parse."""


_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}

_TOKEN_RE = re.compile(
    r"""\s*(?:
      (?P<string>'[^']*'|"[^"]*")
    | (?P<duration>\d+(?:\.\d+)?[smhd]\b)
    | (?P<number>\d+(?:\.\d+)?)
    | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
    | (?P<punct>==|=|\(|\)|,)
    )""",
    re.VERBOSE,
)

_SET_OP_WORDS = ("union", "intersect", "diff", "jaccard")


@dataclass(frozen=True)
class _Token:
    kind: str  # "string" | "duration" | "number" | "name" | "punct"
    text: str


def _tokenize(text: str) -> "list[_Token]":
    tokens: "list[_Token]" = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].lstrip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize {remainder[:20]!r}")
        for kind in ("string", "duration", "number", "name", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: "list[_Token]") -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers ---------------------------------------------------------

    def _peek(self) -> "_Token | None":
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _peek_word(self) -> "str | None":
        token = self._peek()
        if token is not None and token.kind == "name":
            return token.text.lower()
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self._index += 1
        return token

    def _accept_word(self, *words: str) -> "str | None":
        word = self._peek_word()
        if word in words:
            self._index += 1
            return word
        return None

    def _expect_word(self, word: str) -> None:
        if self._accept_word(word) is None:
            token = self._peek()
            found = token.text if token is not None else "end of query"
            raise ParseError(f"expected {word!r}, found {found!r}")

    def _expect_punct(self, text: str) -> None:
        token = self._peek()
        if token is None or token.kind != "punct" or token.text != text:
            found = token.text if token is not None else "end of query"
            raise ParseError(f"expected {text!r}, found {found!r}")
        self._index += 1

    def _string(self) -> str:
        token = self._next()
        if token.kind != "string":
            raise ParseError(f"expected a quoted string, found {token.text!r}")
        return token.text[1:-1]

    def _number(self) -> float:
        token = self._next()
        if token.kind != "number":
            raise ParseError(f"expected a number, found {token.text!r}")
        return float(token.text)

    def _integer(self) -> int:
        token = self._next()
        if token.kind != "number" or "." in token.text:
            raise ParseError(f"expected an integer, found {token.text!r}")
        return int(token.text)

    def _duration(self) -> float:
        token = self._next()
        if token.kind == "duration":
            return float(token.text[:-1]) * _DURATION_UNITS[token.text[-1]]
        if token.kind == "number":
            return float(token.text)
        raise ParseError(
            f"expected a duration (e.g. 90s, 15m, 1h), found {token.text!r}"
        )

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> PlanNode:
        plan = self._query()
        leftover = self._peek()
        if leftover is not None:
            raise ParseError(f"trailing input at {leftover.text!r}")
        return plan

    def _query(self) -> PlanNode:
        if self._accept_word("top"):
            count = self._integer()
            return TopK(self._expr(), count)
        if self._accept_word("estimate"):
            self._accept_word("all")  # optional, purely for readability
            token = self._peek()
            if token is not None and token.kind == "string":
                key = self._string()
                return Estimate(Filter(self._expr(), keys=(key,)))
            return Estimate(self._expr())
        return self._expr()

    def _expr(self) -> PlanNode:
        node = self._operand()
        while True:
            op = self._accept_word(*_SET_OP_WORDS)
            if op is None:
                return node
            if isinstance(node, SetOp) and node.op != "union":
                raise ParseError(
                    f"{node.op!r} produces a scalar and cannot be an operand "
                    f"of {op!r}; parenthesise a union instead"
                )
            node = SetOp(op, node, self._operand())

    def _operand(self) -> PlanNode:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == "(":
            self._index += 1
            node = self._expr()
            self._expect_punct(")")
            return node
        return self._selection()

    def _selection(self) -> PlanNode:
        node: PlanNode
        if self._accept_word("from"):
            name = self._next()
            if name.kind != "name":
                raise ParseError(f"expected a source name, found {name.text!r}")
            node = Scan(name.text)
        else:
            node = Scan()
        filter_node = self._where()
        if filter_node is not None:
            node = filter_node(node)
        window = self._window()
        if window is not None:
            node = window(node)
        return node

    def _where(self):
        if not self._accept_word("where"):
            return None
        self._expect_word("key")
        operator = self._peek()
        if operator is None:
            raise ParseError("expected an operator after 'where key'")
        if operator.kind == "punct" and operator.text in ("=", "=="):
            self._index += 1
            key = self._string()
            return lambda child: Filter(child, keys=(key,))
        if self._accept_word("startswith"):
            prefix = self._string()
            return lambda child: Filter(child, prefix=prefix)
        if self._accept_word("in"):
            self._expect_punct("(")
            keys = [self._string()]
            while True:
                token = self._peek()
                if token is not None and token.kind == "punct" and token.text == ",":
                    self._index += 1
                    keys.append(self._string())
                else:
                    break
            self._expect_punct(")")
            return lambda child: Filter(child, keys=tuple(keys))
        raise ParseError(
            f"expected '=', 'startswith' or 'in' after 'where key', "
            f"found {operator.text!r}"
        )

    def _window(self):
        if not self._accept_word("window"):
            return None
        duration = self._duration()
        bucket_width = None
        end = None
        if self._accept_word("bucket"):
            bucket_width = self._duration()
        if self._accept_word("ending"):
            end = self._number()
        return lambda child: Window(
            child, duration, end=end, bucket_width=bucket_width
        )


def parse(text: str) -> PlanNode:
    """Compile one dialect query into a logical plan tree.

    >>> parse("top 10 where key startswith 'country:'")
    TopK(child=Filter(child=Scan(source='default'), keys=None, prefix=b'country:', predicate=None), count=10)
    """
    return _Parser(_tokenize(text)).parse()
