"""Logical plan algebra for COUNT-DISTINCT queries over sketch sources.

A plan is a small immutable tree of dataclass nodes describing *what* to
compute, independent of *where* the sketches live — the same plan
executes unchanged over an in-memory
:class:`~repro.aggregate.DistinctCountAggregator`, a lock-free
:class:`~repro.store.SnapshotReader`, a replicated
:class:`~repro.store.FollowerStore`, a spilled
:class:`~repro.store.SpilledGroupBy`, a durable
:class:`~repro.store.SketchStore`, or a windowed adapter. That property
rests on the paper's Algorithm 5 guarantee: merges are exact, so any
source's group sketch is a valid query operand.

Nodes
-----

``Scan(source)``
    All groups of one named source (leaf).
``Filter(child, keys= | prefix= | predicate=)``
    Keep only matching group keys. An explicit ``keys`` tuple is the
    plannable selective form (the planner turns it into WAL-index replay
    or single-partition reads); ``prefix`` and ``predicate`` filter
    during a scan.
``Window(child, duration, end=)``
    Collapse the bucket-keyed groups overlapping the trailing
    ``duration`` of time (ending at ``end``, or the execution-time
    ``now``) into **one** merged sketch.
``SetOp(op, left, right)``
    Lift :mod:`repro.setops` to whole subtrees: each side collapses to
    one sketch; ``union`` stays sketch-valued, ``intersect`` / ``diff``
    / ``jaccard`` produce a scalar row by inclusion-exclusion.
``TopK(child, count)`` / ``Estimate(child)``
    Terminal nodes turning sketches into estimate rows through the
    batched one-solve path of :mod:`repro.estimation.batch`.

Construct them directly (the programmatic builder) or parse the string
dialect of :mod:`repro.query.dialect`::

    plan = TopK(Filter(Scan(), prefix="country:"), 10)
    plan = parse("top 10 where key startswith 'country:'")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.hashing import to_bytes

#: Name a single-source execution binds its source to.
DEFAULT_SOURCE = "default"

#: The set operations :class:`SetOp` accepts.
SET_OPS = ("union", "intersect", "diff", "jaccard")


class PlanNode:
    """Base class of all logical plan nodes (immutable dataclasses)."""

    __slots__ = ()


@dataclass(frozen=True)
class Scan(PlanNode):
    """All groups of the source bound to ``source`` at execution time."""

    source: str = DEFAULT_SOURCE


@dataclass(frozen=True)
class Filter(PlanNode):
    """Keep only the child's groups whose key matches.

    Exactly one of ``keys`` (explicit canonical-key tuple — the
    selective, plannable form), ``prefix`` (key byte prefix), or
    ``predicate`` (opaque ``bytes -> bool`` callable) must be given.
    Keys and prefixes accept anything
    :func:`repro.hashing.to_bytes` canonicalises (strings, ints, bytes).
    """

    child: PlanNode
    keys: "tuple[bytes, ...] | None" = None
    prefix: "bytes | None" = None
    predicate: "Callable[[bytes], bool] | None" = None

    def __post_init__(self) -> None:
        given = sum(
            value is not None for value in (self.keys, self.prefix, self.predicate)
        )
        if given != 1:
            raise ValueError(
                "Filter needs exactly one of keys=, prefix=, predicate="
            )
        if self.keys is not None:
            object.__setattr__(
                self, "keys", tuple(to_bytes(key) for key in self.keys)
            )
        if self.prefix is not None:
            object.__setattr__(self, "prefix", to_bytes(self.prefix))

    def matches(self, key: bytes) -> bool:
        """Whether one canonical key passes this filter."""
        if self.keys is not None:
            return key in self.keys
        if self.prefix is not None:
            return key.startswith(self.prefix)
        assert self.predicate is not None
        return bool(self.predicate(key))


@dataclass(frozen=True)
class Window(PlanNode):
    """Merge the bucket groups of the trailing ``duration`` into one sketch.

    ``end`` anchors the window's newest edge; when ``None`` the
    execution-time ``now`` is used. ``bucket_width`` and ``prefix``
    normally resolve from the scanned source (a
    :class:`repro.query.WindowedSource` or
    :class:`repro.query.BucketedSource`); setting them on the node
    overrides the source's values.

    The window is bucket-aligned like
    :class:`~repro.windowed.SlidingWindowDistinctCounter`: it covers the
    ``ceil(duration / bucket_width)`` buckets up to and including the
    bucket containing ``end``.
    """

    child: PlanNode
    duration: float
    end: "float | None" = None
    bucket_width: "float | None" = None
    prefix: "str | None" = None

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ValueError("window duration must be positive")


@dataclass(frozen=True)
class SetOp(PlanNode):
    """A whole-subtree set operation (:mod:`repro.setops`, lifted).

    Both sides collapse to one merged sketch each. ``union`` is
    sketch-valued (estimable, composable); ``intersect``, ``diff`` and
    ``jaccard`` are terminal scalar rows (inclusion-exclusion subtracts
    estimates, so there is no sketch to pass upward).
    """

    op: str
    left: PlanNode
    right: PlanNode

    def __post_init__(self) -> None:
        if self.op not in SET_OPS:
            raise ValueError(f"unknown set operation {self.op!r}; expected one of {SET_OPS}")


@dataclass(frozen=True)
class TopK(PlanNode):
    """The ``count`` largest-estimate groups of the child.

    Ordering is deterministic across sources: descending estimate, ties
    broken by ascending key (unlike a single source's ``top()``, whose
    tie order is its private insertion order).
    """

    child: PlanNode
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("TopK count must be >= 0")


@dataclass(frozen=True)
class Estimate(PlanNode):
    """Estimate every group of the child (rows sorted by key)."""

    child: PlanNode


def sources_of(plan: PlanNode) -> "tuple[str, ...]":
    """The distinct source names a plan's ``Scan`` leaves reference."""
    names: list[str] = []

    def walk(node: PlanNode) -> None:
        if isinstance(node, Scan):
            if node.source not in names:
                names.append(node.source)
        elif isinstance(node, (Filter, Window, TopK, Estimate)):
            walk(node.child)
        elif isinstance(node, SetOp):
            walk(node.left)
            walk(node.right)

    walk(plan)
    return tuple(names)
