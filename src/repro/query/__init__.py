"""The unified query plane: one plan language over every read surface.

``repro.query`` separates *what* a COUNT-DISTINCT query computes from
*where* its sketches live:

* :mod:`repro.query.source` — the :class:`SketchSource` protocol every
  read surface implements (aggregator, store, reader, follower, spill,
  windowed adapter).
* :mod:`repro.query.plan` — the logical plan algebra (``Scan``,
  ``Filter``, ``Window``, ``SetOp``, ``TopK``, ``Estimate``).
* :mod:`repro.query.planner` — per-scan physical access-path choice
  (selective WAL-index replay vs full scan vs partition iteration).
* :mod:`repro.query.executor` — one engine executing any plan over any
  source, all estimates through the batched one-solve path.
* :mod:`repro.query.dialect` — the string form (``"top 10 where key
  startswith 'country:'"``).

:func:`query` is the one-call entry point tying them together.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.query.dialect import ParseError, parse
from repro.query.executor import QueryResult, execute, execute_sketches
from repro.query.plan import (
    DEFAULT_SOURCE,
    SET_OPS,
    Estimate,
    Filter,
    PlanNode,
    Scan,
    SetOp,
    TopK,
    Window,
    sources_of,
)
from repro.query.planner import AccessPath, access_path, explain
from repro.query.source import (
    BucketedSource,
    SketchSource,
    WindowedSource,
    as_source,
)

__all__ = [
    "AccessPath",
    "BucketedSource",
    "DEFAULT_SOURCE",
    "Estimate",
    "Filter",
    "ParseError",
    "PlanNode",
    "QueryResult",
    "SET_OPS",
    "Scan",
    "SetOp",
    "SketchSource",
    "TopK",
    "Window",
    "WindowedSource",
    "access_path",
    "as_source",
    "execute",
    "execute_sketches",
    "explain",
    "parse",
    "query",
    "sources_of",
]


def query(
    source,
    text: "str | PlanNode | None" = None,
    *,
    sources: "Mapping[str, Any] | None" = None,
    now: "float | None" = None,
) -> QueryResult:
    """Run one query — dialect string or plan tree — over any source.

    ``source`` is anything implementing :class:`SketchSource` (an
    aggregator, store, reader, follower, spill, windowed counter, or
    adapter); it binds the plan's default scan. ``sources`` binds
    additional named scans (``from <name>`` in the dialect). ``text``
    may be a dialect string, an already-built :class:`PlanNode`, or
    ``None`` for "estimate everything". ``now`` anchors ``window``
    clauses without an explicit ``ending``.

    >>> from repro.aggregate import DistinctCountAggregator
    >>> agg = DistinctCountAggregator(p=8)
    >>> for user in ("alice", "bob", "carol"):
    ...     _ = agg.add("country:US", user)
    >>> _ = agg.add("country:DE", "dora")
    >>> _ = agg.add("city:berlin", "dora")

    Top groups under a key prefix::

    >>> [(key, round(value)) for key, value in
    ...  query(agg, "top 10 where key startswith 'country:'")]
    [(b'country:US', 3), (b'country:DE', 1)]

    Estimate one group (equivalent to ``where key = ...``)::

    >>> round(query(agg, "estimate 'country:US'").value)
    3

    Set operations across sources (``from`` names bind via ``sources``)::

    >>> other = DistinctCountAggregator(p=8)
    >>> _ = other.add("country:US", "alice")
    >>> query(agg, "from default intersect from other",
    ...       sources={"other": other}).value > 0
    True

    Plans also build programmatically — identical execution path::

    >>> from repro.query import Filter, Scan, TopK, execute
    >>> plan = TopK(Filter(Scan(), prefix="country:"), 10)
    >>> execute(plan, agg).rows == query(agg, plan).rows
    True
    """
    if text is None:
        plan: PlanNode = Scan()
    elif isinstance(text, PlanNode):
        plan = text
    else:
        plan = parse(text)
    return execute(plan, source, sources=sources, now=now)
