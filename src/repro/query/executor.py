"""Plan execution: one engine over every :class:`SketchSource`.

The executor walks a :mod:`repro.query.plan` tree bottom-up. Sketch-
valued nodes (``Scan``, ``Filter``, ``Window``, ``SetOp(union)``)
materialise keyed sketch mappings using the access path chosen by
:mod:`repro.query.planner`; terminal nodes (``Estimate``, ``TopK``,
the scalar set operations) turn sketches into estimate rows through the
batched one-solve path of :mod:`repro.estimation.batch`.

Determinism contract (asserted by the invariant harness): the same plan
over any two sources holding bit-identical group sketches returns
byte-identical keys and float-identical estimates — ``Estimate`` rows
sort by key, ``TopK`` orders by descending estimate with ties broken by
ascending key, and every estimate goes through the batched solver, which
is bit-identical to scalar estimation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.query.plan import (
    DEFAULT_SOURCE,
    Estimate,
    Filter,
    PlanNode,
    Scan,
    SetOp,
    TopK,
    Window,
)
from repro.query.planner import access_path
from repro.query.source import BucketedSource, WindowedSource, as_source

_EXECUTIONS = _metrics.counter("query.executions", "Plans executed.")
_EXECUTE_SECONDS = _metrics.histogram(
    "query.execute_seconds", "Wall time of one plan execution."
)


@dataclass(frozen=True)
class QueryResult:
    """Rows of one executed plan.

    ``kind`` is ``"estimates"`` (one row per group, sorted by key),
    ``"top"`` (descending estimate, ties by key), or ``"setop"`` (a
    single scalar row named after the operation).
    """

    kind: str
    rows: "tuple[tuple[bytes, float], ...]"

    profile: "dict[int, float] | None" = None
    """Inclusive wall seconds per plan node, keyed by ``id(node)``.

    Populated by ``execute(..., analyze=True)``; feed it to
    :func:`repro.query.planner.explain` to annotate the plan lines."""

    @property
    def value(self) -> float:
        """The single scalar of a one-row result (setop / single group)."""
        if len(self.rows) != 1:
            raise ValueError(f"result has {len(self.rows)} rows, not 1")
        return self.rows[0][1]

    def decoded(self) -> "list[tuple[str, float]]":
        """Rows with display-form keys (UTF-8 where printable, else hex)."""
        from repro.aggregate import DistinctCountAggregator

        return [
            (DistinctCountAggregator.decode_key(key), value)
            for key, value in self.rows
        ]

    def __iter__(self) -> Iterator[tuple[bytes, float]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class _Context:
    """Bound sources + the execution-time ``now`` anchor.

    ``profile`` is ``None`` normally; under ``analyze`` it accumulates
    inclusive wall seconds per plan node (keyed by ``id(node)``).
    """

    def __init__(
        self,
        sources: "Mapping[str, Any]",
        now: "float | None",
        profile: "dict[int, float] | None" = None,
    ) -> None:
        self.sources = {name: as_source(obj) for name, obj in sources.items()}
        self.now = now
        self.profile = profile

    def source(self, name: str):
        try:
            return self.sources[name]
        except KeyError:
            raise KeyError(
                f"plan references source {name!r}; bound sources: "
                f"{sorted(self.sources)}"
            ) from None


def _bind(source_or_mapping, sources) -> "dict[str, Any]":
    if sources is not None:
        bound = dict(sources)
    else:
        bound = {}
    if source_or_mapping is not None:
        if isinstance(source_or_mapping, Mapping):
            bound.update(source_or_mapping)
        else:
            bound[DEFAULT_SOURCE] = source_or_mapping
    if not bound:
        raise ValueError("no sources bound; pass a source or sources mapping")
    return bound


def execute(
    plan: PlanNode,
    source=None,
    *,
    sources: "Mapping[str, Any] | None" = None,
    now: "float | None" = None,
    analyze: bool = False,
) -> QueryResult:
    """Run ``plan`` and return its rows.

    ``source`` binds the plan's default source; ``sources`` maps
    additional ``Scan`` names. A sketch-valued root gets an implicit
    ``Estimate``. ``now`` anchors ``Window`` nodes without an explicit
    ``end``. With ``analyze`` the result carries per-node inclusive wall
    times (:attr:`QueryResult.profile`) for
    :func:`repro.query.planner.explain` — rows are unchanged.
    """
    obs = _metrics.enabled()
    if not (analyze or obs):
        ctx = _Context(_bind(source, sources), now)
        return _rows(plan, ctx)
    profile: "dict[int, float] | None" = {} if analyze else None
    ctx = _Context(_bind(source, sources), now, profile)
    started = time.perf_counter()
    with _trace.span("query.execute", kind=type(plan).__name__):
        result = _rows(plan, ctx)
    if obs:
        _EXECUTIONS.inc()
        _EXECUTE_SECONDS.observe(time.perf_counter() - started)
    if profile is None:
        return result
    return QueryResult(result.kind, result.rows, profile)


def execute_sketches(
    plan: PlanNode,
    source=None,
    *,
    sources: "Mapping[str, Any] | None" = None,
    now: "float | None" = None,
) -> "dict[bytes, Any]":
    """Materialise a sketch-valued plan as ``{key: private sketch copy}``.

    The bit-identity surface: the invariant harness serializes these to
    prove that the same plan over different layers lands on identical
    sketch bytes, not just close estimates.
    """
    ctx = _Context(_bind(source, sources), now)
    materialised = _materialize(plan, ctx)
    return {key: sketch.copy() for key, sketch in sorted(materialised.items())}


# -- sketch-valued evaluation --------------------------------------------------


def _record(ctx: _Context, node: PlanNode, elapsed: float) -> None:
    ctx.profile[id(node)] = ctx.profile.get(id(node), 0.0) + elapsed


def _profiled(ctx: _Context, node: PlanNode, thunk):
    """Run ``thunk`` attributing its wall time to ``node`` (analyze only)."""
    if ctx.profile is None:
        return thunk()
    started = time.perf_counter()
    try:
        return thunk()
    finally:
        _record(ctx, node, time.perf_counter() - started)


def _live_sketches(source) -> "Mapping[bytes, Any] | None":
    """A source's key->sketch mapping without copies, when one exists."""
    while isinstance(source, BucketedSource):
        source = source.source
    if isinstance(source, WindowedSource):
        return source._keyed_sketches()
    members = getattr(source, "shard_sources", None)
    if members is not None:
        # Shards own disjoint key sets, so the union of per-member live
        # mappings is exactly the single-store mapping.
        merged: "dict[bytes, Any]" = {}
        for member in members:
            live = _live_sketches(member)
            if live is None:
                return None
            merged.update(live)
        return merged
    aggregator = getattr(source, "aggregator", None)
    if aggregator is not None:
        return aggregator._groups
    groups = getattr(source, "_groups", None)
    if groups is not None:
        return groups
    return None


def _scan(source, filter_node: "Filter | None", ctx: _Context) -> "dict[bytes, Any]":
    """Materialise one scan, honouring the planner's access path.

    Returned sketches are read-only shared references on the scan paths
    and private copies on the selective path; callers copy before
    mutating (see :func:`_collapse`).
    """
    path = access_path(source, filter_node)
    if path.kind == "selective":
        out: "dict[bytes, Any]" = {}
        for key in path.keys:
            sketch = source.group_sketch(key)
            if sketch is not None:
                out[key] = sketch
        return out
    if path.kind == "partitions":
        out = {}
        for partial in source.partition_aggregators():
            for key, sketch in partial._groups.items():
                if filter_node is None or filter_node.matches(key):
                    out[key] = sketch
        return out
    live = _live_sketches(source)
    if live is not None:
        return {
            key: sketch
            for key, sketch in live.items()
            if filter_node is None or filter_node.matches(key)
        }
    # Protocol-only source: enumerate keys, fetch selectively.
    out = {}
    for key in source.groups():
        if filter_node is not None and not filter_node.matches(key):
            continue
        sketch = source.group_sketch(key)
        if sketch is not None:
            out[key] = sketch
    return out


def _merge_into(accumulator, sketch):
    """Merge ``sketch`` into the (private) ``accumulator``, sparse-aware."""
    from repro.core.sparse import SparseExaLogLog

    if not isinstance(accumulator, SparseExaLogLog) and isinstance(
        sketch, SparseExaLogLog
    ):
        sketch = sketch.copy().densify()
    return accumulator.merge_inplace(sketch)


def _collapse(sketches: "Mapping[bytes, Any]"):
    """Merge a keyed mapping into one sketch (``None`` when empty).

    Merge order is sorted-by-key for determinism, though Algorithm 5
    merges are order-independent anyway.
    """
    accumulator = None
    for key in sorted(sketches):
        if accumulator is None:
            accumulator = sketches[key].copy()
        else:
            accumulator = _merge_into(accumulator, sketches[key])
    return accumulator


def _scan_source_of(node: PlanNode, ctx: _Context):
    """The source behind a subtree's (single) Scan leaf."""
    if isinstance(node, Scan):
        return ctx.source(node.source)
    if isinstance(node, (Filter, Window, TopK, Estimate)):
        return _scan_source_of(node.child, ctx)
    if isinstance(node, SetOp):
        return _scan_source_of(node.left, ctx)
    raise TypeError(f"cannot resolve a scan source under {type(node).__name__}")


def _empty_sketch(node: PlanNode, ctx: _Context):
    """An empty sketch matching the subtree's source configuration."""
    from repro.core.exaloglog import ExaLogLog
    from repro.core.sparse import SparseExaLogLog

    t, d, p, sparse, _ = _scan_source_of(node, ctx).config
    return SparseExaLogLog(t, d, p) if sparse else ExaLogLog(t, d, p)


def _window_keys(node: Window, source, ctx: _Context) -> "tuple[list[bytes], str]":
    """The bucket keys a window covers, plus the synthetic result key."""
    bucket_width = node.bucket_width
    if bucket_width is None:
        bucket_width = getattr(source, "bucket_width", None)
    if bucket_width is None:
        raise ValueError(
            "Window needs bucket_width: scan a WindowedSource/BucketedSource "
            "or set Window(bucket_width=...)"
        )
    prefix = node.prefix
    if prefix is None:
        prefix = getattr(source, "prefix", "bucket:")
    end = node.end if node.end is not None else ctx.now
    if end is None:
        raise ValueError(
            "Window has no end anchor: set Window(end=...) or pass now="
        )
    import math

    highest = int(end // bucket_width)
    count = max(1, math.ceil(node.duration / bucket_width - 1e-9))
    lowest = highest - count + 1
    keys = [f"{prefix}{bucket}".encode() for bucket in range(lowest, highest + 1)]
    return keys, f"window[{lowest}:{highest}]"


def _materialize(node: PlanNode, ctx: _Context) -> "dict[bytes, Any]":
    """Evaluate a sketch-valued subtree to a keyed sketch mapping."""
    if ctx.profile is None:
        return _materialize_impl(node, ctx)
    started = time.perf_counter()
    try:
        with _trace.span("query.node", node=type(node).__name__):
            return _materialize_impl(node, ctx)
    finally:
        _record(ctx, node, time.perf_counter() - started)


def _materialize_impl(node: PlanNode, ctx: _Context) -> "dict[bytes, Any]":
    if isinstance(node, Scan):
        return _scan(ctx.source(node.source), None, ctx)
    if isinstance(node, Filter):
        if isinstance(node.child, Scan):
            # Filter pushed into the scan: attribute the work to the
            # Scan leaf so analyze still times every plan node.
            child = node.child
            return _profiled(
                ctx, child, lambda: _scan(ctx.source(child.source), node, ctx)
            )
        child = _materialize(node.child, ctx)
        return {key: sketch for key, sketch in child.items() if node.matches(key)}
    if isinstance(node, Window):
        source = _scan_source_of(node.child, ctx)
        keys, result_key = _window_keys(node, source, ctx)
        selection = Filter(node.child, keys=tuple(keys))
        merged = _collapse(_materialize(selection, ctx))
        if merged is None:
            return {}
        return {result_key.encode(): merged}
    if isinstance(node, SetOp):
        if node.op != "union":
            raise TypeError(
                f"SetOp({node.op!r}) is scalar-valued and only valid at the "
                "top of a plan (optionally under Estimate/TopK)"
            )
        merged = None
        for side in (node.left, node.right):
            collapsed = _collapse(_materialize(side, ctx))
            if collapsed is None:
                continue
            merged = collapsed if merged is None else _merge_into(merged, collapsed)
        if merged is None:
            return {}
        return {b"union": merged}
    raise TypeError(
        f"{type(node).__name__} is not sketch-valued; wrap it differently"
    )


# -- row-valued evaluation -----------------------------------------------------


def _estimate_rows(sketches: "Mapping[bytes, Any]") -> "tuple[tuple[bytes, float], ...]":
    from repro.estimation.batch import batch_estimates_by_key

    ordered = {key: sketches[key] for key in sorted(sketches)}
    return tuple(batch_estimates_by_key(ordered).items())


def _rank(rows, count: int) -> "tuple[tuple[bytes, float], ...]":
    ordered = sorted(rows, key=lambda kv: (-kv[1], kv[0]))
    return tuple(ordered[:count])


def _rows(node: PlanNode, ctx: _Context) -> QueryResult:
    if ctx.profile is None:
        return _rows_impl(node, ctx)
    started = time.perf_counter()
    try:
        with _trace.span("query.node", node=type(node).__name__):
            return _rows_impl(node, ctx)
    finally:
        _record(ctx, node, time.perf_counter() - started)


def _rows_impl(node: PlanNode, ctx: _Context) -> QueryResult:
    if isinstance(node, Estimate):
        child = node.child
        if isinstance(child, SetOp) and child.op != "union":
            return _rows(child, ctx)  # already scalar rows
        if isinstance(child, Scan):
            # Whole-source fast path: the source's own batched solve
            # (identical floats — both routes go through one solve).
            estimates = _profiled(
                ctx, child, lambda: ctx.source(child.source).estimates()
            )
            rows = tuple(sorted(estimates.items()))
            return QueryResult("estimates", rows)
        return QueryResult("estimates", _estimate_rows(_materialize(child, ctx)))
    if isinstance(node, TopK):
        child = node.child
        if isinstance(child, SetOp) and child.op != "union":
            inner = _rows(child, ctx)
            return QueryResult("top", _rank(inner.rows, node.count))
        if isinstance(child, Scan):
            estimates = _profiled(
                ctx, child, lambda: ctx.source(child.source).estimates()
            )
            return QueryResult("top", _rank(estimates.items(), node.count))
        rows = _estimate_rows(_materialize(child, ctx))
        return QueryResult("top", _rank(rows, node.count))
    if isinstance(node, SetOp) and node.op != "union":
        from repro.setops import (
            difference_estimate,
            intersection_estimate,
            jaccard_estimate,
        )

        left = _collapse(_materialize(node.left, ctx))
        right = _collapse(_materialize(node.right, ctx))
        if left is None:
            left = _empty_sketch(node.left, ctx)
        if right is None:
            right = _empty_sketch(node.right, ctx)
        operation = {
            "intersect": intersection_estimate,
            "diff": difference_estimate,
            "jaccard": jaccard_estimate,
        }[node.op]
        value = operation(left, right)
        return QueryResult("setop", ((node.op.encode(), value),))
    # Sketch-valued root: implicit Estimate.
    return _rows(Estimate(node), ctx)
