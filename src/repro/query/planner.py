"""Physical access-path selection for one plan over one set of sources.

The logical plan says *which* groups a query touches; each source offers
up to three ways to fetch them, with very different costs:

* **selective** (``group_sketch`` per key) — WAL-index replay on a
  :class:`~repro.store.SnapshotReader`, a single-partition read on a
  :class:`~repro.store.SpilledGroupBy`, a dict lookup elsewhere. Wins
  when the filter names an explicit, small key set.
* **scan** — materialise every group of an in-memory-backed source and
  filter as they stream by. Wins for prefix/predicate filters and full
  scans, where per-key selective fetches would re-pay their fixed cost.
* **partitions** — iterate a spilled source partition by partition
  (:meth:`~repro.store.SpilledGroupBy.partition_aggregators`), keeping
  memory bounded at one partition while filtering inside each. The only
  sensible non-selective path for spill-backed sources, where a naive
  per-key ``group_sketch`` loop would re-read a partition per group.

:func:`access_path` makes that choice per ``Scan``; :func:`explain`
renders the decisions of a whole plan for humans (the CLI's
``--explain``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.plan import (
    Estimate,
    Filter,
    PlanNode,
    Scan,
    SetOp,
    TopK,
    Window,
)

#: Above this many explicit keys a scan usually beats per-key selective
#: fetches on sources whose selective path re-reads files (reader WAL
#: replay); dict-backed sources stay selective at any count.
SELECTIVE_KEY_LIMIT = 64


@dataclass(frozen=True)
class AccessPath:
    """How the executor should materialise one ``Scan``'s groups."""

    kind: str  # "selective" | "scan" | "partitions"
    keys: "tuple[bytes, ...]" = field(default=())
    reason: str = ""


def is_partitioned(source) -> bool:
    """True for spill-style sources that stream partition aggregators."""
    return hasattr(source, "partition_aggregators")


def has_cheap_selective(source) -> bool:
    """True when ``group_sketch`` is an in-memory lookup, not file replay.

    A :class:`~repro.store.SnapshotReader` rebuilds a group by selective
    WAL-index replay and a spill re-reads the group's partition; every
    other source answers from a dict. A sharded cluster routes each key
    to exactly one member, so it is as cheap as its members.
    """
    members = getattr(source, "shard_sources", None)
    if members is not None:
        return all(has_cheap_selective(member) for member in members)
    return not (
        hasattr(source, "_group_sketch_selective")
        or hasattr(source, "partition_aggregators")
    )


def access_path(source, filter_node: "Filter | None" = None) -> AccessPath:
    """Choose the physical access path for one scan of ``source``.

    An explicit key filter goes selective (each layer's cheapest
    point-read) unless the key set is large and the source's selective
    path re-reads files, in which case one scan amortises better. Spill
    sources without an explicit key set iterate partition by partition;
    everything else scans its materialised view.
    """
    keys = filter_node.keys if filter_node is not None else None
    if keys is not None:
        if has_cheap_selective(source) or len(keys) <= SELECTIVE_KEY_LIMIT:
            return AccessPath(
                "selective",
                keys=keys,
                reason=f"{len(keys)} explicit key(s) via group_sketch",
            )
        # A reader's selective path replays WAL records per key; past the
        # limit the single full scan it already materialised is cheaper.
        return AccessPath(
            "scan",
            reason=f"{len(keys)} keys exceed the selective limit "
            f"({SELECTIVE_KEY_LIMIT}); one scan amortises better",
        )
    if is_partitioned(source):
        return AccessPath(
            "partitions",
            reason="spilled source: partition-at-a-time merge keeps memory "
            "bounded while filtering inside each partition",
        )
    return AccessPath("scan", reason="materialised view scan")


def _describe_source(source) -> str:
    name = type(source).__name__
    members = getattr(source, "shard_sources", None)
    if members is not None:
        return f"{name}[{len(members)} shards]"
    inner = getattr(source, "source", None)
    if inner is not None and not callable(inner):
        name += f"[{type(inner).__name__}]"
    return name


def explain(
    plan: PlanNode,
    sources: "dict[str, object]",
    profile: "dict[int, float] | None" = None,
) -> "list[str]":
    """Human-readable physical plan, one line per node (indent = depth).

    With ``profile`` — the per-node inclusive wall times measured by
    ``execute(..., analyze=True)``, keyed by ``id(node)`` — every line of
    this *same* plan object is annotated ``[time=...ms]``, giving the
    ``EXPLAIN ANALYZE`` surface.
    """
    lines: "list[str]" = []

    def annotate(node: PlanNode) -> str:
        if profile is None:
            return ""
        elapsed = profile.get(id(node))
        if elapsed is None:
            return "  [time=n/a]"
        return f"  [time={elapsed * 1e3:.3f}ms]"

    def walk(node: PlanNode, depth: int, pending_filter: "Filter | None") -> None:
        pad = "  " * depth
        if isinstance(node, Scan):
            source = sources[node.source]
            path = access_path(source, pending_filter)
            lines.append(
                f"{pad}Scan({node.source}: {_describe_source(source)}) "
                f"-> {path.kind} ({path.reason}){annotate(node)}"
            )
        elif isinstance(node, Filter):
            if node.keys is not None:
                detail = f"keys={[k.decode('utf-8', 'replace') for k in node.keys]}"
            elif node.prefix is not None:
                detail = f"prefix={node.prefix.decode('utf-8', 'replace')!r}"
            else:
                detail = "predicate=<callable>"
            lines.append(f"{pad}Filter({detail}){annotate(node)}")
            walk(node.child, depth + 1, node if node.keys is not None else None)
        elif isinstance(node, Window):
            anchor = "now" if node.end is None else f"end={node.end}"
            lines.append(
                f"{pad}Window(duration={node.duration}, {anchor}){annotate(node)}"
            )
            walk(node.child, depth + 1, None)
        elif isinstance(node, SetOp):
            lines.append(f"{pad}SetOp({node.op}){annotate(node)}")
            walk(node.left, depth + 1, None)
            walk(node.right, depth + 1, None)
        elif isinstance(node, TopK):
            lines.append(f"{pad}TopK({node.count}){annotate(node)}")
            walk(node.child, depth + 1, None)
        elif isinstance(node, Estimate):
            lines.append(f"{pad}Estimate{annotate(node)}")
            walk(node.child, depth + 1, None)
        else:
            lines.append(f"{pad}{node!r}{annotate(node)}")

    walk(plan, 0, None)
    return lines
