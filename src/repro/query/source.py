"""The ``SketchSource`` protocol: one read surface over every layer.

Every place this library can answer "how many distinct X per group" —
the in-memory :class:`~repro.aggregate.DistinctCountAggregator`, the
durable :class:`~repro.store.SketchStore`, the lock-free
:class:`~repro.store.SnapshotReader`, the replicated
:class:`~repro.store.FollowerStore`, the external
:class:`~repro.store.SpilledGroupBy` — implements the same five-method
surface, so the planner/executor of :mod:`repro.query` treats them
interchangeably:

* ``config`` — the ``(t, d, p, sparse, seed)`` tuple; equal configs mean
  mergeable, comparable sketches (Alg. 5 merges are exact).
* ``groups()`` — iterator of canonical ``bytes`` group keys.
* ``group_sketch(key)`` — one group's sketch, private to the caller
  (safe to merge in place), ``None`` for unseen groups. This is each
  layer's *selective* path: WAL-index replay on a reader, a
  single-partition read on a spill, a dict lookup elsewhere.
* ``estimates()`` / ``top(n)`` — whole-source estimates through the
  batched one-solve path of :mod:`repro.estimation.batch`.

:class:`~repro.windowed.SlidingWindowDistinctCounter` predates group
keys (its state is bucket-indexed), so :class:`WindowedSource` adapts it
into the protocol; :class:`BucketedSource` declares the bucket layout of
a store holding retired window buckets so ``Window`` plans can address
them. :func:`as_source` normalises any of the above.
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol, runtime_checkable

from repro.hashing import to_bytes


@runtime_checkable
class SketchSource(Protocol):
    """Anything the query plane can read group sketches from."""

    @property
    def config(self) -> tuple:  # (t, d, p, sparse, seed)
        ...

    def groups(self) -> Iterator[bytes]:
        ...

    def group_sketch(self, key: Any):
        ...

    def estimates(self) -> "dict[bytes, float]":
        ...

    def top(self, count: int) -> "list[tuple[bytes, float]]":
        ...


class WindowedSource:
    """A :class:`~repro.windowed.SlidingWindowDistinctCounter` as a source.

    Live buckets become groups keyed ``<prefix><bucket index>`` — the
    exact keys the counter itself uses when retiring evicted buckets
    into an attached store, so a plan addressing bucket keys runs
    unchanged over the live window and over the store holding its
    history.

    >>> from repro.windowed import SlidingWindowDistinctCounter
    >>> counter = SlidingWindowDistinctCounter(window=60.0, buckets=6)
    >>> counter.add("alice", at=10.0)
    >>> source = WindowedSource(counter)
    >>> list(source.groups())
    [b'bucket:1']
    """

    def __init__(self, counter, prefix: str = "bucket:") -> None:
        self._counter = counter
        self._prefix = prefix

    @property
    def counter(self):
        return self._counter

    @property
    def config(self) -> tuple:
        return self._counter.config

    @property
    def bucket_width(self) -> float:
        return self._counter.bucket_width

    @property
    def prefix(self) -> str:
        return self._prefix

    def bucket_key(self, bucket: int) -> bytes:
        """The canonical group key of one bucket index."""
        return f"{self._prefix}{bucket}".encode()

    def groups(self) -> Iterator[bytes]:
        for bucket in self._counter._sketches:
            yield self.bucket_key(bucket)

    def group_sketch(self, key: Any):
        sketch = self._counter._sketches.get(self._parse_bucket(key))
        return sketch.copy() if sketch is not None else None

    def _parse_bucket(self, key: Any) -> "int | None":
        raw = to_bytes(key)
        prefix = self._prefix.encode()
        if not raw.startswith(prefix):
            return None
        try:
            return int(raw[len(prefix) :])
        except ValueError:
            return None

    def _keyed_sketches(self) -> "dict[bytes, Any]":
        return {
            self.bucket_key(bucket): sketch
            for bucket, sketch in self._counter._sketches.items()
        }

    def estimates(self) -> "dict[bytes, float]":
        from repro.estimation.batch import batch_estimates_by_key

        return batch_estimates_by_key(self._keyed_sketches())

    def top(self, count: int) -> "list[tuple[bytes, float]]":
        from repro.estimation.batch import batch_top

        return batch_top(self._keyed_sketches(), count)

    def __repr__(self) -> str:
        return f"WindowedSource({self._counter!r}, prefix={self._prefix!r})"


class BucketedSource:
    """A keyed source whose groups include time-bucketed keys.

    Wraps any :class:`SketchSource` (typically a store or reader holding
    buckets a :class:`~repro.windowed.SlidingWindowDistinctCounter`
    retired via ``store=``) and declares the bucket layout —
    ``bucket_width`` and key ``prefix`` — that ``Window`` plan nodes
    need to map a time range onto group keys. All protocol methods
    delegate to the wrapped source.
    """

    def __init__(self, source, bucket_width: float, prefix: str = "bucket:") -> None:
        if bucket_width <= 0.0:
            raise ValueError("bucket_width must be positive")
        self._source = as_source(source)
        self._bucket_width = bucket_width
        self._prefix = prefix

    @property
    def source(self):
        return self._source

    @property
    def config(self) -> tuple:
        return self._source.config

    @property
    def bucket_width(self) -> float:
        return self._bucket_width

    @property
    def prefix(self) -> str:
        return self._prefix

    def bucket_key(self, bucket: int) -> bytes:
        return f"{self._prefix}{bucket}".encode()

    def groups(self) -> Iterator[bytes]:
        return self._source.groups()

    def group_sketch(self, key: Any):
        return self._source.group_sketch(key)

    def estimates(self) -> "dict[bytes, float]":
        return self._source.estimates()

    def top(self, count: int) -> "list[tuple[bytes, float]]":
        return self._source.top(count)

    def __repr__(self) -> str:
        return (
            f"BucketedSource({self._source!r}, "
            f"bucket_width={self._bucket_width}, prefix={self._prefix!r})"
        )


def as_source(obj) -> SketchSource:
    """Normalise ``obj`` into a :class:`SketchSource`.

    Objects already implementing the protocol (aggregator, store,
    reader, follower, spill, the adapters above) pass through; a
    :class:`~repro.windowed.SlidingWindowDistinctCounter` is wrapped in
    a :class:`WindowedSource`.
    """
    from repro.windowed import SlidingWindowDistinctCounter

    if isinstance(obj, SlidingWindowDistinctCounter):
        return WindowedSource(obj)
    if isinstance(obj, SketchSource):
        return obj
    raise TypeError(
        f"{type(obj).__name__} does not implement the SketchSource protocol "
        "(config, groups, group_sketch, estimates, top)"
    )
