"""Set-operation estimators on top of mergeable sketches.

Distinct-count sketches compose: the union count is a merge away, and
inclusion-exclusion turns union counts into intersection, difference, and
Jaccard estimates. This is the standard downstream toolkit for the
HLL-family (used by e.g. the genomics tools the paper cites, which
estimate sequence similarity from sketch unions), provided here for
ExaLogLog.

Accuracy note: inclusion-exclusion subtracts estimates, so the *absolute*
error of an intersection estimate is of the order of the union's absolute
error; small intersections of large sets are hard for any merge-based
method. :func:`jaccard_estimate` inherits the same caveat.
"""

from __future__ import annotations

from repro.core.exaloglog import ExaLogLog


def _check_compatible(a: ExaLogLog, b: ExaLogLog) -> None:
    if not isinstance(a, ExaLogLog) or not isinstance(b, ExaLogLog):
        raise TypeError("set operations require ExaLogLog sketches")
    if a.t != b.t:
        raise ValueError(f"sketches have different t ({a.t} vs {b.t})")


def union_estimate(a: ExaLogLog, b: ExaLogLog) -> float:
    """Estimate ``|A u B|`` by merging (lossless, Sec. 4.1)."""
    _check_compatible(a, b)
    return a.merge(b).estimate()


def intersection_estimate(a: ExaLogLog, b: ExaLogLog) -> float:
    """Estimate ``|A n B|`` by inclusion-exclusion (clamped at 0)."""
    _check_compatible(a, b)
    return max(0.0, a.estimate() + b.estimate() - union_estimate(a, b))


def difference_estimate(a: ExaLogLog, b: ExaLogLog) -> float:
    """Estimate ``|A \\ B|`` = ``|A u B| - |B|`` (clamped at 0)."""
    _check_compatible(a, b)
    return max(0.0, union_estimate(a, b) - b.estimate())


def jaccard_estimate(a: ExaLogLog, b: ExaLogLog) -> float:
    """Estimate the Jaccard similarity ``|A n B| / |A u B|`` in [0, 1]."""
    _check_compatible(a, b)
    union = union_estimate(a, b)
    if union <= 0.0:
        return 1.0  # both empty: conventionally identical
    intersection = max(0.0, a.estimate() + b.estimate() - union)
    return min(1.0, intersection / union)


def containment_estimate(a: ExaLogLog, b: ExaLogLog) -> float:
    """Estimate the containment ``|A n B| / |A|`` in [0, 1].

    Used in genomics (how much of genome A's k-mer set appears in B).
    """
    _check_compatible(a, b)
    size_a = a.estimate()
    if size_a <= 0.0:
        return 1.0
    intersection = intersection_estimate(a, b)
    return min(1.0, intersection / size_a)
