"""Set-operation estimators on top of mergeable sketches.

Distinct-count sketches compose: the union count is a merge away, and
inclusion-exclusion turns union counts into intersection, difference, and
Jaccard estimates. This is the standard downstream toolkit for the
HLL-family (used by e.g. the genomics tools the paper cites, which
estimate sequence similarity from sketch unions), provided here for
ExaLogLog — dense or sparse (token-mode) operands alike.

Every operand pair materialises its merged union sketch **once**, and the
up-to-three estimates an operation needs (``|A|``, ``|B|``, ``|A u B|``)
resolve in **one** simultaneous Newton solve through
:func:`repro.estimation.batch.batch_estimate_sketches` — the same values,
bit for bit, as three scalar ``estimate()`` calls, at a third of the
solver work and a single merge instead of two.

Accuracy note: inclusion-exclusion subtracts estimates, so the *absolute*
error of an intersection estimate is of the order of the union's absolute
error; small intersections of large sets are hard for any merge-based
method. :func:`jaccard_estimate` inherits the same caveat.
"""

from __future__ import annotations

from repro.core.exaloglog import ExaLogLog
from repro.core.sparse import SparseExaLogLog


def _check_compatible(a, b) -> None:
    for sketch in (a, b):
        if not isinstance(sketch, (ExaLogLog, SparseExaLogLog)):
            raise TypeError(
                "set operations require ExaLogLog or SparseExaLogLog sketches"
            )
    if a._params.t != b._params.t:
        raise ValueError(
            f"sketches have different t ({a._params.t} vs {b._params.t})"
        )


def union_sketch(a, b):
    """The merged union sketch of two operands (lossless, Sec. 4.1).

    Accepts any dense/sparse combination; the sparse side drives the
    merge when present (token union while both stay sparse, densify-and-
    fold otherwise). Neither operand is modified.
    """
    _check_compatible(a, b)
    if isinstance(a, SparseExaLogLog):
        return a.merge(b)
    if isinstance(b, SparseExaLogLog):
        return b.merge(a)
    return a.merge(b)


def _pair_estimates(a, b) -> tuple[float, float, float]:
    """``(|A|, |B|, |A u B|)`` — one merge, one batched three-row solve."""
    from repro.estimation.batch import batch_estimate_sketches

    size_a, size_b, size_union = batch_estimate_sketches([a, b, union_sketch(a, b)])
    return size_a, size_b, size_union


def union_estimate(a, b) -> float:
    """Estimate ``|A u B|`` by merging (lossless, Sec. 4.1)."""
    return union_sketch(a, b).estimate()


def intersection_estimate(a, b) -> float:
    """Estimate ``|A n B|`` by inclusion-exclusion (clamped at 0)."""
    size_a, size_b, size_union = _pair_estimates(a, b)
    return max(0.0, size_a + size_b - size_union)


def difference_estimate(a, b) -> float:
    """Estimate ``|A \\ B|`` = ``|A u B| - |B|`` (clamped at 0)."""
    _size_a, size_b, size_union = _pair_estimates(a, b)
    return max(0.0, size_union - size_b)


def jaccard_estimate(a, b) -> float:
    """Estimate the Jaccard similarity ``|A n B| / |A u B|`` in [0, 1]."""
    size_a, size_b, size_union = _pair_estimates(a, b)
    if size_union <= 0.0:
        return 1.0  # both empty: conventionally identical
    intersection = max(0.0, size_a + size_b - size_union)
    return min(1.0, intersection / size_union)


def containment_estimate(a, b) -> float:
    """Estimate the containment ``|A n B| / |A|`` in [0, 1].

    Used in genomics (how much of genome A's k-mer set appears in B).
    """
    size_a, size_b, size_union = _pair_estimates(a, b)
    if size_a <= 0.0:
        return 1.0
    intersection = max(0.0, size_a + size_b - size_union)
    return min(1.0, intersection / size_a)
