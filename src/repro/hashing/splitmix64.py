"""SplitMix64 — a tiny, high-quality 64-bit mixer and generator.

SplitMix64 (Steele, Lea & Flood, OOPSLA 2014; Vigna's reference C code) is
used in two roles:

* :func:`splitmix64_mix` is a strong 64-bit finalizer. Feeding it a counter
  produces i.i.d.-looking 64-bit values, which is exactly what the paper's
  simulation methodology (Sec. 5.1) needs: "insertion of a new element can
  be simulated by simply generating a 64-bit random value to be used
  directly as the hash value".
* :class:`SplitMix64` is the corresponding sequential generator, used to
  derive independent seeds for simulation runs.

The first three outputs for seed 0 are well-known test vector values and are
checked in the test suite.
"""

from __future__ import annotations

from repro.hashing.bits import MASK64

_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def splitmix64_mix(z: int) -> int:
    """The SplitMix64 finalization function (a 64-bit bijection).

    >>> hex(splitmix64_mix(0x9E3779B97F4A7C15))
    '0xe220a8397b1dcdaf'
    """
    z &= MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return (z ^ (z >> 31)) & MASK64


def splitmix64_at(seed: int, index: int) -> int:
    """Random-access variant: the ``index``-th output of a SplitMix64 stream.

    Equivalent to advancing :class:`SplitMix64` ``index + 1`` times, but in
    O(1); handy for reproducible parallel streams.
    """
    state = (seed + (index + 1) * _GOLDEN_GAMMA) & MASK64
    return splitmix64_mix(state)


class SplitMix64:
    """Sequential SplitMix64 generator.

    >>> gen = SplitMix64(0)
    >>> hex(gen.next_u64())
    '0xe220a8397b1dcdaf'
    >>> hex(gen.next_u64())
    '0x6e789e6aa1b965f4'
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0) -> None:
        self._state = seed & MASK64

    def next_u64(self) -> int:
        """Return the next unsigned 64-bit output."""
        self._state = (self._state + _GOLDEN_GAMMA) & MASK64
        return splitmix64_mix(self._state)

    def next_below(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` (rejection-free modulo).

        The modulo bias is negligible for the bounds used in this library
        (bound << 2**64); documented for honesty.
        """
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def next_double(self) -> float:
        """Return a uniform float in [0, 1) with 53 random bits."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def fork(self) -> "SplitMix64":
        """Return an independent generator seeded from this one."""
        return SplitMix64(self.next_u64())
