"""NumPy-vectorised 64-bit hashing (the bulk front end of the hash layer).

The scalar entry point :func:`repro.hashing.hash64` hashes the canonical
byte encoding of an item with Murmur3 (x64-128, low lane). This module
produces *bit-identical* hashes for whole arrays at once, so raw items —
not just precomputed hash values — can be ingested in bulk.

The key observation: the canonical encoding of every int64/uint64/float64
is at most 9 bytes (8 payload bytes, plus one sign/carry byte exactly for
``uint64 >= 2**63`` and for ``int64 min``), and Murmur3 of a <16-byte
input runs entirely in its tail path — a fixed sequence of 64-bit wrapping
multiplies, rotations and XORs that vectorises directly on uint64 arrays.
Objects without a fixed-width encoding (str, bytes, big ints) fall back to
the scalar hash per element, still yielding one contiguous hash array.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.hashing import hash64

_U64 = np.uint64

_C1 = _U64(0x87C37B91114253D5)
_C2 = _U64(0x4CF5AD432745937F)
_FMIX_1 = _U64(0xFF51AFD7ED558CCD)
_FMIX_2 = _U64(0xC4CEB9FE1A85EC53)

#: Hash batches chunk-wise so the ~15 temporaries of the Murmur3 tail stay
#: cache-resident (same rationale and size as repro.backends.bulk.BULK_CHUNK).
_HASH_CHUNK = 1 << 18


def _rotl64(x: np.ndarray, r: int) -> np.ndarray:
    return (x << _U64(r)) | (x >> _U64(64 - r))


def _fmix64(k: np.ndarray) -> np.ndarray:
    k = (k ^ (k >> _U64(33))) * _FMIX_1
    k = (k ^ (k >> _U64(33))) * _FMIX_2
    return k ^ (k >> _U64(33))


def _murmur3_64_tail_chunk(
    payload: np.ndarray, high_byte: np.ndarray, length: np.ndarray, seed: int
) -> np.ndarray:
    """Murmur3 x64-128 low lane of 8/9-byte little-endian inputs.

    ``payload`` holds the low 8 encoding bytes as a uint64, ``high_byte``
    the 9th byte (0 for 8-byte lanes, where its k2 contribution is a
    no-op), ``length`` the encoded byte count (8 or 9).
    """
    h1 = np.full(payload.shape, _U64(seed & 0xFFFFFFFFFFFFFFFF))
    h2 = h1.copy()

    k2 = _rotl64(high_byte * _C2, 33) * _C1
    h2 = h2 ^ k2

    k1 = _rotl64(payload * _C1, 31) * _C2
    h1 = h1 ^ k1

    h1 = h1 ^ length
    h2 = h2 ^ length
    h1 = h1 + h2
    h2 = h2 + h1
    h1 = _fmix64(h1)
    h2 = _fmix64(h2)
    return h1 + h2


def _murmur3_64_tail(
    payload: np.ndarray, high_byte: np.ndarray, length: np.ndarray, seed: int
) -> np.ndarray:
    if len(payload) <= _HASH_CHUNK:
        return _murmur3_64_tail_chunk(payload, high_byte, length, seed)
    out = np.empty(len(payload), dtype=_U64)
    for start in range(0, len(payload), _HASH_CHUNK):
        stop = start + _HASH_CHUNK
        out[start:stop] = _murmur3_64_tail_chunk(
            payload[start:stop], high_byte[start:stop], length[start:stop], seed
        )
    return out


def hash_u64_array(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorised ``hash64(int(value), seed)`` for an integer array.

    Bit-identical to the scalar path: each element is hashed as the
    Python integer it represents (uint64 arrays as values in
    ``[0, 2**64)``, signed arrays as signed values), using the canonical
    little-endian two's-complement encoding of :func:`repro.hashing.to_bytes`.
    """
    values = np.asarray(values)
    if values.dtype == np.uint64:
        payload = values
        nine = values >= _U64(1 << 63)
        high_byte = np.zeros(values.shape, dtype=_U64)
    elif values.dtype.kind == "i":
        signed = values.astype(np.int64, copy=False)
        payload = signed.view(_U64)
        nine = signed == np.int64(-(1 << 63))
        high_byte = np.where(nine, _U64(0xFF), _U64(0))
    elif values.dtype.kind == "u":
        return hash_u64_array(values.astype(np.uint64), seed)
    else:
        raise TypeError(f"expected an integer array, got dtype {values.dtype}")
    length = np.where(nine, _U64(9), _U64(8))
    return _murmur3_64_tail(payload, high_byte, length, seed)


def hash_f64_array(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorised ``hash64(float(value), seed)`` for a float64 array.

    The canonical float encoding is the 8-byte IEEE-754 little-endian
    pattern, i.e. exactly the uint64 bit view.
    """
    values = np.asarray(values, dtype=np.float64)
    payload = values.view(_U64)
    zeros = np.zeros(values.shape, dtype=_U64)
    return _murmur3_64_tail(payload, zeros, zeros + _U64(8), seed)


def hash_items(items: "np.ndarray | Iterable[Any]", seed: int = 0) -> np.ndarray:
    """Hash a batch of items to a uint64 array, vectorising when possible.

    Integer and float64 ndarrays take the fully vectorised Murmur3 path;
    anything else (lists of str/bytes, object arrays, generators) falls
    back to the scalar :func:`repro.hashing.hash64` per element. Either
    way the result is bit-identical to hashing each item individually.
    """
    if isinstance(items, np.ndarray):
        if items.dtype.kind in ("i", "u") and items.dtype != np.bool_:
            return hash_u64_array(items.reshape(-1), seed)
        if items.dtype == np.float64:
            return hash_f64_array(items.reshape(-1), seed)
        items = items.reshape(-1).tolist()
    else:
        items = list(items)
    out = np.empty(len(items), dtype=_U64)
    for position, item in enumerate(items):
        out[position] = hash64(item, seed)
    return out
