"""XXH64 implemented from the public xxHash specification.

Provided as an alternative 64-bit hash (the paper lists several suitable
hash families — WyHash, Komihash, PolymurHash; all share the property of
passing SMHasher). XXH64's specification is public and has a well-known
test vector for the empty input, which the test suite checks alongside
statistical uniformity tests.
"""

from __future__ import annotations

from repro.hashing.bits import MASK64, rotl64

_PRIME64_1 = 0x9E3779B185EBCA87
_PRIME64_2 = 0xC2B2AE3D27D4EB4F
_PRIME64_3 = 0x165667B19E3779F9
_PRIME64_4 = 0x85EBCA77C2B2AE63
_PRIME64_5 = 0x27D4EB2F165667C5


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * _PRIME64_2) & MASK64
    acc = rotl64(acc, 31)
    return (acc * _PRIME64_1) & MASK64


def _merge_round(acc: int, val: int) -> int:
    acc ^= _round(0, val)
    return (acc * _PRIME64_1 + _PRIME64_4) & MASK64


def xxhash64(data: bytes, seed: int = 0) -> int:
    """XXH64 digest of ``data``.

    >>> hex(xxhash64(b""))
    '0xef46db3751d8e999'
    """
    seed &= MASK64
    length = len(data)
    pos = 0

    if length >= 32:
        v1 = (seed + _PRIME64_1 + _PRIME64_2) & MASK64
        v2 = (seed + _PRIME64_2) & MASK64
        v3 = seed
        v4 = (seed - _PRIME64_1) & MASK64
        while pos + 32 <= length:
            v1 = _round(v1, int.from_bytes(data[pos : pos + 8], "little"))
            v2 = _round(v2, int.from_bytes(data[pos + 8 : pos + 16], "little"))
            v3 = _round(v3, int.from_bytes(data[pos + 16 : pos + 24], "little"))
            v4 = _round(v4, int.from_bytes(data[pos + 24 : pos + 32], "little"))
            pos += 32
        h = (rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18)) & MASK64
        h = _merge_round(h, v1)
        h = _merge_round(h, v2)
        h = _merge_round(h, v3)
        h = _merge_round(h, v4)
    else:
        h = (seed + _PRIME64_5) & MASK64

    h = (h + length) & MASK64

    while pos + 8 <= length:
        lane = int.from_bytes(data[pos : pos + 8], "little")
        h ^= _round(0, lane)
        h = (rotl64(h, 27) * _PRIME64_1 + _PRIME64_4) & MASK64
        pos += 8
    if pos + 4 <= length:
        lane = int.from_bytes(data[pos : pos + 4], "little")
        h ^= (lane * _PRIME64_1) & MASK64
        h = (rotl64(h, 23) * _PRIME64_2 + _PRIME64_3) & MASK64
        pos += 4
    while pos < length:
        h ^= (data[pos] * _PRIME64_5) & MASK64
        h = (rotl64(h, 11) * _PRIME64_1) & MASK64
        pos += 1

    h = ((h ^ (h >> 33)) * _PRIME64_2) & MASK64
    h = ((h ^ (h >> 29)) * _PRIME64_3) & MASK64
    return (h ^ (h >> 32)) & MASK64
