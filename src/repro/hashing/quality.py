"""Statistical quality analysis of 64-bit hash functions.

The paper leans on "extensive empirical tests [SMHasher]" showing modern
hash outputs behave like uniform random values (Sec. 5.1) — the property
that justifies simulating insertions with raw random values. This module
provides a lightweight SMHasher-style battery so the test suite can assert
the property for our from-scratch implementations:

* avalanche: flipping any input bit flips each output bit with p ~ 0.5;
* bucket uniformity: chi-square over the low bits (the sketch's register
  selector);
* NLZ geometry: the leading-zero count — ExaLogLog's update value source —
  follows the geometric distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

Hash64 = Callable[[bytes], int]


@dataclass(frozen=True)
class AvalancheReport:
    """Result of an avalanche test."""

    worst_bias: float
    """Largest |P(flip) - 0.5| over all (input bit, output bit) pairs."""

    mean_flips: float
    """Average number of output bits flipped per single-bit input change."""


def avalanche_test(
    hash_function: Hash64, samples: int = 300, input_bytes: int = 8
) -> AvalancheReport:
    """Flip every input bit of ``samples`` random-ish inputs."""
    input_bits = input_bytes * 8
    flip_counts = [[0] * 64 for _ in range(input_bits)]
    total_flips = 0
    trials = 0
    for sample in range(samples):
        base = (sample * 0x9E3779B97F4A7C15 + 0x1234567) % (1 << (input_bits - 1))
        data = base.to_bytes(input_bytes, "little")
        reference = hash_function(data)
        for bit in range(input_bits):
            flipped = (base ^ (1 << bit)).to_bytes(input_bytes, "little")
            delta = reference ^ hash_function(flipped)
            total_flips += bin(delta).count("1")
            trials += 1
            for out_bit in range(64):
                if (delta >> out_bit) & 1:
                    flip_counts[bit][out_bit] += 1
    worst = 0.0
    for bit in range(input_bits):
        for out_bit in range(64):
            bias = abs(flip_counts[bit][out_bit] / samples - 0.5)
            worst = max(worst, bias)
    return AvalancheReport(worst_bias=worst, mean_flips=total_flips / trials)


def bucket_chi_square(
    hash_function: Hash64, buckets_log2: int = 8, samples: int = 50000
) -> float:
    """Chi-square statistic of the low ``buckets_log2`` output bits.

    Under uniformity the statistic is ~chi2 with ``2**buckets_log2 - 1``
    degrees of freedom (mean = dof, sd = sqrt(2 dof)).
    """
    buckets = 1 << buckets_log2
    counts = [0] * buckets
    for i in range(samples):
        counts[hash_function(i.to_bytes(8, "little")) & (buckets - 1)] += 1
    expected = samples / buckets
    return sum((count - expected) ** 2 / expected for count in counts)


def nlz_geometric_deviation(
    hash_function: Hash64, samples: int = 50000, min_expected: float = 300.0
) -> float:
    """Worst relative deviation of the NLZ distribution from geometric.

    Only levels with expected count >= ``min_expected`` are compared (the
    binomial noise of thinner levels, ~1/sqrt(expected), would dominate
    any real signal at this sample size).
    """
    counts = [0] * 65
    for i in range(samples):
        value = hash_function(i.to_bytes(8, "little"))
        counts[64 - value.bit_length()] += 1
    worst = 0.0
    for level in range(0, 64):
        expected = samples * 2.0 ** -(level + 1)
        if expected < min_expected:
            break
        deviation = abs(counts[level] - expected) / expected
        worst = max(worst, deviation)
    return worst


def collision_estimate(hash_function: Hash64, samples: int = 200000) -> int:
    """Number of 64-bit collisions over ``samples`` distinct inputs.

    Expected ~0 for any sane 64-bit hash at this scale (birthday bound
    ~1e-9); more than zero indicates brokenness.
    """
    seen = set()
    collisions = 0
    for i in range(samples):
        digest = hash_function(i.to_bytes(8, "little"))
        if digest in seen:
            collisions += 1
        seen.add(digest)
    return collisions
