"""64-bit hashing substrate.

ExaLogLog and every baseline sketch consume uniformly distributed 64-bit
hash values (paper Sec. 4). This subpackage implements the hash functions
from scratch and provides :func:`hash64`, the convenience entry point the
sketches use when fed raw Python objects.

:mod:`repro.hashing.batch` is the NumPy-vectorised front end (bit-
identical to :func:`hash64` over whole arrays); it is imported lazily by
the bulk-ingest paths so that importing this package stays dependency-
light.
"""

from __future__ import annotations

from typing import Any

from repro.hashing.bits import MASK64, nlz64
from repro.hashing.murmur3 import murmur3_64, murmur3_x64_128, murmur3_x86_32
from repro.hashing.splitmix64 import SplitMix64, splitmix64_at, splitmix64_mix
from repro.hashing.xxhash64 import xxhash64

__all__ = [
    "MASK64",
    "SplitMix64",
    "hash64",
    "murmur3_64",
    "murmur3_x64_128",
    "murmur3_x86_32",
    "nlz64",
    "splitmix64_at",
    "splitmix64_mix",
    "to_bytes",
    "xxhash64",
]

#: Registry of named 64-bit hash functions over ``bytes``.
HASHERS = {
    "murmur3": murmur3_64,
    "xxhash64": xxhash64,
}


def to_bytes(obj: Any) -> bytes:
    """Canonical byte encoding of the objects sketches accept.

    Strings are UTF-8 encoded; integers use a little-endian two's-
    complement layout of at least 8 bytes, widened as needed so arbitrary
    Python ints (e.g. raw 64-bit hash values used as keys) are accepted
    (so ``1`` and ``"1"`` hash differently, as users expect from e.g.
    database distinct-count semantics); bytes pass through.
    """
    if isinstance(obj, bytes):
        return obj
    if isinstance(obj, bytearray) or isinstance(obj, memoryview):
        return bytes(obj)
    if isinstance(obj, str):
        return obj.encode("utf-8")
    if isinstance(obj, bool):
        return b"\x01" if obj else b"\x00"
    if isinstance(obj, int):
        length = max(8, (obj.bit_length() + 8) // 8)
        return obj.to_bytes(length, "little", signed=True)
    if isinstance(obj, float):
        import struct

        return struct.pack("<d", obj)
    raise TypeError(f"cannot hash object of type {type(obj).__name__}; pass bytes or str")


def hash64(obj: Any, seed: int = 0, algorithm: str = "murmur3") -> int:
    """Hash an arbitrary supported object to an unsigned 64-bit value."""
    try:
        hasher = HASHERS[algorithm]
    except KeyError:
        raise ValueError(f"unknown hash algorithm {algorithm!r}; known: {sorted(HASHERS)}")
    return hasher(to_bytes(obj), seed)
