"""MurmurHash3 implemented from Austin Appleby's public-domain reference.

The paper's performance comparison (Sec. 5.3) feeds every algorithm the
128-bit variant of Murmur3 because Apache DataSketches hard-wires it; we do
the same and use the low 64 bits of the 128-bit digest as the sketch hash.

Two variants are provided:

* :func:`murmur3_x64_128` — the 128-bit x64 variant (two 64-bit lanes).
* :func:`murmur3_x86_32` — the 32-bit variant, kept because it has widely
  published test vectors that pin down our implementation of the shared
  structure (tail handling, finalization ordering).
"""

from __future__ import annotations

from repro.hashing.bits import MASK32, MASK64, rotl32, rotl64

_C1_128 = 0x87C37B91114253D5
_C2_128 = 0x4CF5AD432745937F


def _fmix64(k: int) -> int:
    k &= MASK64
    k = ((k ^ (k >> 33)) * 0xFF51AFD7ED558CCD) & MASK64
    k = ((k ^ (k >> 33)) * 0xC4CEB9FE1A85EC53) & MASK64
    return (k ^ (k >> 33)) & MASK64


def _fmix32(h: int) -> int:
    h &= MASK32
    h = ((h ^ (h >> 16)) * 0x85EBCA6B) & MASK32
    h = ((h ^ (h >> 13)) * 0xC2B2AE35) & MASK32
    return (h ^ (h >> 16)) & MASK32


def murmur3_x64_128(data: bytes, seed: int = 0) -> tuple[int, int]:
    """MurmurHash3 x64 128-bit digest of ``data`` as an ``(h1, h2)`` pair.

    ``seed`` initialises both lanes, matching the reference implementation.

    >>> murmur3_x64_128(b"")
    (0, 0)
    """
    h1 = seed & MASK64
    h2 = seed & MASK64
    length = len(data)
    n_blocks = length // 16

    for block in range(n_blocks):
        offset = block * 16
        k1 = int.from_bytes(data[offset : offset + 8], "little")
        k2 = int.from_bytes(data[offset + 8 : offset + 16], "little")

        k1 = (k1 * _C1_128) & MASK64
        k1 = rotl64(k1, 31)
        k1 = (k1 * _C2_128) & MASK64
        h1 ^= k1
        h1 = rotl64(h1, 27)
        h1 = (h1 + h2) & MASK64
        h1 = (h1 * 5 + 0x52DCE729) & MASK64

        k2 = (k2 * _C2_128) & MASK64
        k2 = rotl64(k2, 33)
        k2 = (k2 * _C1_128) & MASK64
        h2 ^= k2
        h2 = rotl64(h2, 31)
        h2 = (h2 + h1) & MASK64
        h2 = (h2 * 5 + 0x38495AB5) & MASK64

    tail = data[n_blocks * 16 :]
    k1 = 0
    k2 = 0
    tail_len = len(tail)
    if tail_len > 8:
        k2 = int.from_bytes(tail[8:], "little")
        k2 = (k2 * _C2_128) & MASK64
        k2 = rotl64(k2, 33)
        k2 = (k2 * _C1_128) & MASK64
        h2 ^= k2
    if tail_len > 0:
        k1 = int.from_bytes(tail[:8], "little")
        k1 = (k1 * _C1_128) & MASK64
        k1 = rotl64(k1, 31)
        k1 = (k1 * _C2_128) & MASK64
        h1 ^= k1

    h1 ^= length
    h2 ^= length
    h1 = (h1 + h2) & MASK64
    h2 = (h2 + h1) & MASK64
    h1 = _fmix64(h1)
    h2 = _fmix64(h2)
    h1 = (h1 + h2) & MASK64
    h2 = (h2 + h1) & MASK64
    return h1, h2


def murmur3_64(data: bytes, seed: int = 0) -> int:
    """Low 64 bits of the Murmur3 x64-128 digest (the sketch hash)."""
    return murmur3_x64_128(data, seed)[0]


def murmur3_x86_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit digest (published test vectors in the tests).

    >>> hex(murmur3_x86_32(b"", 1))
    '0x514e28b7'
    """
    h = seed & MASK32
    length = len(data)
    n_blocks = length // 4

    for block in range(n_blocks):
        k = int.from_bytes(data[block * 4 : block * 4 + 4], "little")
        k = (k * 0xCC9E2D51) & MASK32
        k = rotl32(k, 15)
        k = (k * 0x1B873593) & MASK32
        h ^= k
        h = rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & MASK32

    tail = data[n_blocks * 4 :]
    if tail:
        k = int.from_bytes(tail, "little")
        k = (k * 0xCC9E2D51) & MASK32
        k = rotl32(k, 15)
        k = (k * 0x1B873593) & MASK32
        h ^= k

    h ^= length
    return _fmix32(h)
