"""Low-level 64-bit integer helpers.

All sketches in this library operate on unsigned 64-bit hash values. Python
integers are unbounded, so every helper here is explicit about the 64-bit
domain: values are masked with :data:`MASK64` and behave like the
corresponding CPU instructions (``lzcnt``, rotations, wrapping arithmetic).

The paper (Table 1) defines ``nlz`` as "the number of leading zeros if the
argument is interpreted as an unsigned 64-bit value"; :func:`nlz64`
implements exactly that, including ``nlz64(0) == 64``.
"""

from __future__ import annotations

MASK64 = 0xFFFFFFFFFFFFFFFF
MASK32 = 0xFFFFFFFF

#: Largest update value exponent that fits the 64-bit hash domain.
HASH_BITS = 64


def nlz64(x: int) -> int:
    """Number of leading zeros of ``x`` as an unsigned 64-bit integer.

    >>> nlz64(0)
    64
    >>> nlz64(1)
    63
    >>> nlz64(0b10110)  # paper Table 1 example
    59
    >>> nlz64(1 << 63)
    0
    """
    if x < 0 or x > MASK64:
        raise ValueError(f"expected unsigned 64-bit value, got {x!r}")
    return 64 - x.bit_length()


def ntz64(x: int) -> int:
    """Number of trailing zeros of ``x`` as an unsigned 64-bit integer.

    ``ntz64(0)`` is 64 by convention (no set bit).
    """
    if x < 0 or x > MASK64:
        raise ValueError(f"expected unsigned 64-bit value, got {x!r}")
    if x == 0:
        return 64
    return (x & -x).bit_length() - 1


def rotl64(x: int, r: int) -> int:
    """Rotate the unsigned 64-bit value ``x`` left by ``r`` bits."""
    r &= 63
    return ((x << r) | (x >> (64 - r))) & MASK64


def rotr64(x: int, r: int) -> int:
    """Rotate the unsigned 64-bit value ``x`` right by ``r`` bits."""
    r &= 63
    return ((x >> r) | (x << (64 - r))) & MASK64


def rotl32(x: int, r: int) -> int:
    """Rotate the unsigned 32-bit value ``x`` left by ``r`` bits."""
    r &= 31
    return ((x << r) | (x >> (32 - r))) & MASK32


def mul64(a: int, b: int) -> int:
    """Wrapping unsigned 64-bit multiplication."""
    return (a * b) & MASK64


def add64(a: int, b: int) -> int:
    """Wrapping unsigned 64-bit addition."""
    return (a + b) & MASK64


def to_signed64(x: int) -> int:
    """Reinterpret an unsigned 64-bit value as two's-complement signed."""
    x &= MASK64
    return x - (1 << 64) if x >= (1 << 63) else x


def to_unsigned64(x: int) -> int:
    """Reinterpret a (possibly negative) Python int as unsigned 64-bit."""
    return x & MASK64


def bit_slice(x: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``x`` starting at bit ``low`` (LSB = 0)."""
    if width < 0 or low < 0:
        raise ValueError("low and width must be non-negative")
    return (x >> low) & ((1 << width) - 1)


def bit_reverse64(x: int) -> int:
    """Reverse the bit order of an unsigned 64-bit value."""
    x &= MASK64
    return int(f"{x:064b}"[::-1], 2)
