"""Compatibility shim: the bulk machinery moved to :mod:`repro.backends`.

This module used to hold the vectorised batch-state builders privately
for the simulation harness. They are now a first-class backend layer
(``repro.backends``) powering ``add_hashes`` across the whole sketch
family; the original names are re-exported here so existing imports keep
working. New code should import from :mod:`repro.backends` directly.
"""

from __future__ import annotations

from repro.backends.bitops import bit_length_u64 as _bit_length_u64
from repro.backends.bitops import nlz64_array, ntz64_array
from repro.backends.bulk import (
    exaloglog_state,
    hyperloglog_state,
    pcsa_state,
    spikesketch_state,
    split_hashes,
)

__all__ = [
    "exaloglog_state",
    "hyperloglog_state",
    "nlz64_array",
    "ntz64_array",
    "pcsa_state",
    "spikesketch_state",
    "split_hashes",
]
