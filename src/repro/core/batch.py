"""Vectorised bulk insertion (NumPy) for the simulation harness.

The Sec. 5 experiments need the *final sketch state* of millions of random
insertions, thousands of times. Because every sketch here is order-
independent (commutative inserts), the state after a batch can be computed
set-wise: per register, the maximum update value plus the OR of window
bits — which vectorises. These helpers return exactly the state the
sequential ``add_hash`` loop would produce (asserted by tests) at a tiny
fraction of the cost.

All bit arithmetic stays in integer space (``np.bitwise_count`` on smeared
values implements ``bit_length``), so results are exact for all 64 bits.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ExaLogLogParams

_U64 = np.uint64


def _bit_length_u64(values: np.ndarray) -> np.ndarray:
    """Element-wise ``int.bit_length`` for uint64 arrays (exact)."""
    x = values.astype(_U64, copy=True)
    for shift in (1, 2, 4, 8, 16, 32):
        x |= x >> _U64(shift)
    return np.bitwise_count(x).astype(np.int64)


def nlz64_array(values: np.ndarray) -> np.ndarray:
    """Element-wise number of leading zeros of uint64 values."""
    return 64 - _bit_length_u64(values)


def ntz64_array(values: np.ndarray) -> np.ndarray:
    """Element-wise number of trailing zeros (64 for zero values)."""
    x = values.astype(_U64, copy=False)
    isolated = x & (~x + _U64(1))
    result = np.bitwise_count(isolated - _U64(1)).astype(np.int64)
    result[x == 0] = 64
    return result


def split_hashes(
    hashes: np.ndarray, params: ExaLogLogParams
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Algorithm 2 front end: (register index, update value)."""
    t = _U64(params.t)
    hashes = hashes.astype(_U64, copy=False)
    index = (hashes >> t) & _U64(params.m - 1)
    masked = hashes | _U64((1 << (params.p + params.t)) - 1)
    nlz = nlz64_array(masked)
    k = (nlz << params.t) + (hashes & _U64((1 << params.t) - 1)).astype(np.int64) + 1
    return index.astype(np.int64), k


def exaloglog_state(hashes: np.ndarray, params: ExaLogLogParams) -> list[int]:
    """Final ExaLogLog register array after inserting all ``hashes``.

    Identical to sequentially applying Algorithm 2 (order-independent).
    """
    index, k = split_hashes(hashes, params)
    m = params.m
    d = params.d

    u = np.zeros(m, dtype=np.int64)
    np.maximum.at(u, index, k)

    low = np.zeros(m, dtype=np.int64)
    if d > 0:
        u_at_event = u[index]
        in_window = (k < u_at_event) & (k >= u_at_event - d)
        if in_window.any():
            positions = d - (u_at_event[in_window] - k[in_window])
            bits = np.int64(1) << positions
            np.bitwise_or.at(low, index[in_window], bits)
        # The deterministic value-0 bit for registers with 1 <= u <= d.
        phantom = (u >= 1) & (u <= d)
        low[phantom] |= np.int64(1) << (d - u[phantom])

    return ((u << d) | low).tolist()


def hyperloglog_state(hashes: np.ndarray, p: int) -> list[int]:
    """Final HyperLogLog register array (Algorithm 1, top-p-bit indexing)."""
    hashes = hashes.astype(_U64, copy=False)
    index = (hashes >> _U64(64 - p)).astype(np.int64)
    masked = hashes & _U64((1 << (64 - p)) - 1)
    k = 64 - p - _bit_length_u64(masked) + 1
    registers = np.zeros(1 << p, dtype=np.int64)
    np.maximum.at(registers, index, k)
    return registers.tolist()


def pcsa_state(hashes: np.ndarray, p: int) -> list[int]:
    """Final PCSA bitmap array (level bitmaps ORed together)."""
    hashes = hashes.astype(_U64, copy=False)
    index = (hashes >> _U64(64 - p)).astype(np.int64)
    masked = hashes & _U64((1 << (64 - p)) - 1)
    levels = np.minimum(64 - p - _bit_length_u64(masked), 64 - p - 1)
    bitmaps = np.zeros(1 << p, dtype=np.int64)
    np.bitwise_or.at(bitmaps, index, np.int64(1) << levels)
    return bitmaps.tolist()


def spikesketch_state(hashes: np.ndarray, buckets: int = 128) -> list[int]:
    """Final SpikeSketch-model register array (matches SpikeSketch.add_hash)."""
    from repro.baselines.spikesketch import ACCEPTANCE, SpikeSketch
    from repro.core.register import update as update_register

    sketch = SpikeSketch(buckets)
    m = sketch.m
    cap = sketch.max_level

    x = hashes.astype(_U64, copy=True)
    # Vectorised splitmix64_mix.
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    x ^= x >> _U64(31)

    accepted = ((x >> _U64(40)) / float(1 << 24)) < ACCEPTANCE
    x = x[accepted]
    index = (x & _U64(m - 1)).astype(np.int64)
    remaining = x >> _U64(m.bit_length() - 1)
    level = np.minimum(1 + (ntz64_array(remaining) >> 1), cap)

    # The d-bit window makes the fold order-dependent per (index, level)
    # *pair multiplicity* — but pairs are idempotent, so reduce to unique
    # pairs and replay through the scalar register update (few pairs).
    keys = index * np.int64(cap + 1) + level
    unique_keys = np.unique(keys)
    registers = [0] * m
    for key in unique_keys.tolist():
        i, lvl = divmod(key, cap + 1)
        registers[i] = update_register(registers[i], lvl, 3)
    # Re-apply max-first ordering: replaying ascending levels per register
    # matches any insertion order because register updates are commutative.
    return registers
