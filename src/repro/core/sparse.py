"""Sparse-mode ExaLogLog (paper Sec. 4.3).

For small distinct counts, allocating the full register array wastes
memory. :class:`SparseExaLogLog` starts out collecting distinct hash
tokens (a few bytes each, ``v = 26`` tokens fit 32-bit integers) and
switches to the dense :class:`~repro.core.exaloglog.ExaLogLog`
representation at the break-even point where the token set would outgrow
the register array. The transition is lossless: tokens are transformed
back to representative hash values and replayed through Algorithm 2.

Estimation works in both modes — token-set ML (Alg. 7) while sparse,
register ML (Alg. 3 + 8) once dense.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.exaloglog import ExaLogLog
from repro.core.params import ExaLogLogParams, make_params
from repro.core.token import (
    DEFAULT_V,
    estimate_from_tokens,
    hash_to_token,
    token_bytes,
    token_to_hash,
)
from repro.hashing import hash64
from repro.storage.serialization import (
    SerializationError,
    TAG_SPARSE_EXALOGLOG,
    read_header,
    read_uvarint,
    write_header,
    write_uvarint,
)


class SparseExaLogLog:
    """ExaLogLog with a sparse token-set mode and automatic densification.

    Parameters mirror :class:`ExaLogLog` plus the token parameter ``v``
    (``p + t <= v`` required so tokens keep all insertion-relevant bits).
    """

    __slots__ = ("_dense", "_params", "_tokens", "_v")

    def __init__(
        self, t: int = 2, d: int = 20, p: int = 8, v: int = DEFAULT_V
    ) -> None:
        params = make_params(t, d, p)
        if params.p + params.t > v:
            raise ValueError(
                f"token parameter v={v} too small: requires p + t <= v, "
                f"got p + t = {params.p + params.t}"
            )
        self._params = params
        self._v = v
        self._tokens: set[int] | None = set()
        self._dense: ExaLogLog | None = None

    # -- properties -----------------------------------------------------------

    @property
    def params(self) -> ExaLogLogParams:
        return self._params

    @property
    def v(self) -> int:
        """Token parameter; tokens take ``v + 6`` bits."""
        return self._v

    @property
    def is_sparse(self) -> bool:
        """True while still collecting tokens."""
        return self._tokens is not None

    @property
    def token_count(self) -> int:
        """Number of distinct tokens collected (0 once dense)."""
        return len(self._tokens) if self._tokens is not None else 0

    @property
    def tokens(self) -> frozenset[int]:
        """Snapshot of the collected tokens (empty once dense)."""
        return frozenset(self._tokens) if self._tokens is not None else frozenset()

    @property
    def break_even_tokens(self) -> int:
        """Token count at which the dense array becomes smaller."""
        return self._params.dense_bytes // token_bytes(self._v)

    @property
    def memory_bytes(self) -> int:
        """Modelled footprint: token set while sparse, register array after."""
        from repro.baselines.base import OBJECT_OVERHEAD_BYTES

        if self._tokens is not None:
            return OBJECT_OVERHEAD_BYTES + len(self._tokens) * token_bytes(self._v)
        return OBJECT_OVERHEAD_BYTES + self._params.dense_bytes

    def __repr__(self) -> str:
        mode = f"sparse, {self.token_count} tokens" if self.is_sparse else "dense"
        p = self._params
        return f"SparseExaLogLog(t={p.t}, d={p.d}, p={p.p}, v={self._v}, {mode})"

    # -- insertion --------------------------------------------------------------

    def add(self, item: Any, seed: int = 0) -> "SparseExaLogLog":
        """Insert an element (hashed with Murmur3); returns ``self``."""
        self.add_hash(hash64(item, seed))
        return self

    def add_all(self, items: Iterable[Any], seed: int = 0) -> "SparseExaLogLog":
        """Insert every element of an iterable (routed through the bulk path)."""
        return self.add_batch(items, seed)

    def add_batch(self, items: Iterable[Any], seed: int = 0) -> "SparseExaLogLog":
        """Hash a batch of items (vectorised when possible) and ingest it."""
        from repro.hashing.batch import hash_items

        return self.add_hashes(hash_items(items, seed))

    def add_hashes(self, hashes) -> "SparseExaLogLog":
        """Vectorised bulk insert with correct bulk-triggered densification.

        While sparse, the batch is tokenised vectorised; crossing the
        break-even point densifies through the dense bulk path. The final
        state is bit-identical to the sequential :meth:`add_hash` loop: a
        token's representative hash produces exactly the original hash's
        state transition (``p + t <= v``), so it does not matter which
        prefix of the stream was recorded as tokens — collected tokens
        and the raw remainder replay to the same registers.
        """
        from repro import backends
        import numpy as np

        hashes = backends.as_hash_array(hashes)
        if len(hashes) == 0:
            return self
        if self._tokens is None:
            assert self._dense is not None
            self._dense.add_hashes(hashes)
            return self

        break_even = self.break_even_tokens
        # Decide densification without tokenising/deduplicating huge
        # batches: when a prefix already holds more distinct tokens than
        # break-even, the union must cross; only duplicate-heavy batches
        # pay for the full tokenise + unique pass.
        limit = 4 * (break_even + 1)
        distinct = np.unique(backends.tokenize_hashes(hashes[:limit], self._v))
        if len(distinct) <= break_even and len(hashes) > limit:
            distinct = np.unique(backends.tokenize_hashes(hashes, self._v))
        if len(distinct) <= break_even:
            self._tokens.update(distinct.tolist())
            if len(self._tokens) <= break_even:
                return self
            hashes = None  # the token set already absorbed the batch
        # Bulk densification: replay the collected tokens, then the raw
        # batch (if its tokens were never materialised into the set).
        dense = ExaLogLog.from_params(self._params)
        if self._tokens:
            token_dtype = np.uint64 if self._v + 6 > 63 else np.int64
            token_array = np.fromiter(
                self._tokens, dtype=token_dtype, count=len(self._tokens)
            )
            dense.add_hashes(backends.token_hashes(token_array, self._v))
        if hashes is not None:
            dense.add_hashes(hashes)
        self._dense = dense
        self._tokens = None
        return self

    def add_hash(self, hash_value: int) -> bool:
        """Insert a 64-bit hash; returns True when the state changed."""
        if self._tokens is not None:
            token = hash_to_token(hash_value, self._v)
            if token in self._tokens:
                return False
            self._tokens.add(token)
            if len(self._tokens) > self.break_even_tokens:
                self._densify()
            return True
        assert self._dense is not None
        return self._dense.add_hash(hash_value)

    def _densify(self) -> None:
        """Switch to the dense representation (lossless, Sec. 4.3)."""
        assert self._tokens is not None
        dense = ExaLogLog.from_params(self._params)
        for token in self._tokens:
            dense.add_hash(token_to_hash(token, self._v))
        self._dense = dense
        self._tokens = None

    def densify(self) -> ExaLogLog:
        """Force the transition and return the dense sketch."""
        if self._tokens is not None:
            self._densify()
        assert self._dense is not None
        return self._dense

    # -- estimation ----------------------------------------------------------------

    def estimate(self, bias_correction: bool = True) -> float:
        """Distinct-count estimate (token ML while sparse, register ML after)."""
        if self._tokens is not None:
            return estimate_from_tokens(self._tokens, self._v)
        assert self._dense is not None
        return self._dense.estimate(bias_correction)

    # -- merge -----------------------------------------------------------------------

    def merge(self, other: "SparseExaLogLog | ExaLogLog") -> "SparseExaLogLog":
        """Merge with another sparse or dense sketch (same t, d, p, v)."""
        result = self.copy()
        result.merge_inplace(other)
        return result

    def merge_inplace(self, other: "SparseExaLogLog | ExaLogLog") -> "SparseExaLogLog":
        if isinstance(other, SparseExaLogLog):
            if other._params != self._params or other._v != self._v:
                raise ValueError(
                    f"parameter mismatch: {self!r} vs {other!r}"
                )
            if self._tokens is not None and other._tokens is not None:
                self._tokens.update(other._tokens)
                if len(self._tokens) > self.break_even_tokens:
                    self._densify()
                return self
            mine = self.densify()
            if other._tokens is not None:
                for token in other._tokens:
                    mine.add_hash(token_to_hash(token, other._v))
            else:
                assert other._dense is not None
                mine.merge_inplace(other._dense)
            return self
        if isinstance(other, ExaLogLog):
            mine = self.densify()
            mine.merge_inplace(other)
            return self
        raise TypeError(f"cannot merge SparseExaLogLog with {type(other).__name__}")

    def copy(self) -> "SparseExaLogLog":
        p = self._params
        clone = SparseExaLogLog(p.t, p.d, p.p, self._v)
        if self._tokens is not None:
            clone._tokens = set(self._tokens)
        else:
            clone._tokens = None
            assert self._dense is not None
            clone._dense = self._dense.copy()
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseExaLogLog):
            return NotImplemented
        return (
            self._params == other._params
            and self._v == other._v
            and self._tokens == other._tokens
            and self._dense == other._dense
        )

    # -- serialization ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize: delta-varint coded sorted tokens, or the dense payload."""
        buffer = write_header(TAG_SPARSE_EXALOGLOG)
        p = self._params
        buffer.extend((p.t, p.d, p.p, self._v))
        if self._tokens is not None:
            buffer.append(0)  # mode: sparse
            write_uvarint(buffer, len(self._tokens))
            previous = 0
            for token in sorted(self._tokens):
                write_uvarint(buffer, token - previous)
                previous = token
        else:
            assert self._dense is not None
            buffer.append(1)  # mode: dense
            buffer.extend(self._dense.to_bytes())
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SparseExaLogLog":
        offset = read_header(data, TAG_SPARSE_EXALOGLOG)
        if len(data) < offset + 5:
            raise SerializationError("truncated SparseExaLogLog payload")
        t, d, p, v, mode = data[offset : offset + 5]
        offset += 5
        sketch = cls(t, d, p, v)
        if mode == 0:
            count, offset = read_uvarint(data, offset)
            tokens = set()
            value = 0
            for _ in range(count):
                delta, offset = read_uvarint(data, offset)
                value += delta
                tokens.add(value)
            sketch._tokens = tokens
            # Deserialized token sets may legitimately exceed the break-even
            # point (serialization never densifies); keep them as-is.
            return sketch
        if mode == 1:
            sketch._tokens = None
            sketch._dense = ExaLogLog.from_bytes(bytes(data[offset:]))
            if sketch._dense.params != sketch._params:
                raise SerializationError("inner dense sketch parameter mismatch")
            return sketch
        raise SerializationError(f"unknown sparse mode byte {mode}")
