"""Lossless sketch reduction (paper Sec. 4.2, Alg. 6).

An ExaLogLog with parameters ``(t, d, p)`` can be reduced to any
``(t, d', p')`` with ``d' <= d`` and ``p' <= p`` such that the result is
*identical* to the sketch direct recording with the reduced parameters
would have produced. Two ingredients:

* ``d``-reduction is a plain right shift of every register by ``d - d'``
  bits (the occurrence window shrinks from the bottom).
* ``p``-reduction folds ``2**(p-p')`` registers into one. Because
  Algorithm 2 takes the NLZ bits *adjacent to and above* the register-index
  bits, the removed high index bits extend the NLZ field: a register whose
  update value had saturated the old NLZ range (``u >= a``) must have its
  maximum raised by ``s = (p - p' - bitlength(j)) * 2**t`` where ``j`` is
  the old register's high index bits, and the window bits belonging to
  non-saturated values shifted accordingly.

This is also what makes mixed-parameter merging possible (Sec. 4.1): reduce
both operands to ``(t, min(d, d'), min(p, p'))`` first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.params import make_params
from repro.core.register import merge as merge_register

if TYPE_CHECKING:
    from repro.core.exaloglog import ExaLogLog


def reduce_registers(
    registers: list[int], t: int, d: int, p: int, new_d: int, new_p: int
) -> list[int]:
    """Algorithm 6 on raw register values; returns the reduced array."""
    if new_d > d:
        raise ValueError(f"cannot increase d from {d} to {new_d}")
    if new_p > p:
        raise ValueError(f"cannot increase p from {p} to {new_p}")
    if len(registers) != (1 << p):
        raise ValueError(f"expected {1 << p} registers, got {len(registers)}")

    m_new = 1 << new_p
    d_shift = d - new_d
    group = 1 << (p - new_p)
    # Threshold above which the old NLZ field was saturated (Alg. 6's `a`).
    a = ((64 - t - p) << t) + 1

    reduced = [0] * m_new
    for i in range(m_new):
        merged = 0
        for j in range(group):
            r = registers[i + (j << new_p)] >> d_shift
            u = r >> new_d
            if u >= a:
                # At lower precision, the removed index bits extend the NLZ
                # field; j's leading zeros within p - new_p bits raise u by s.
                s = ((p - new_p) - j.bit_length()) << t
                if s > 0:
                    v = new_d + a - u
                    if v > 0:
                        r = ((r >> v) << v) + ((r & ((1 << v) - 1)) >> s)
                    r += s << new_d
            merged = merge_register(r, merged, new_d)
        reduced[i] = merged
    return reduced


def reduce_sketch(
    sketch: "ExaLogLog", d: int | None = None, p: int | None = None
) -> "ExaLogLog":
    """Reduce a sketch to smaller parameters; returns a new plain sketch."""
    from repro.core.exaloglog import ExaLogLog

    params = sketch.params
    new_d = params.d if d is None else d
    new_p = params.p if p is None else p
    new_params = params.reduced(d=new_d, p=new_p)
    if new_params == params:
        return sketch.copy()
    registers = reduce_registers(
        list(sketch.registers), params.t, params.d, params.p, new_d, new_p
    )
    return ExaLogLog.from_registers(new_params, registers)
