"""Hash tokens for the sparse mode (paper Sec. 4.3, Alg. 7).

A ``(v + 6)``-bit *hash token* compresses a 64-bit hash value while keeping
every bit an ExaLogLog insertion with ``p + t <= v`` needs: the low ``v``
hash bits verbatim plus the number of leading zeros of the remaining
``64 - v`` bits (which fits 6 bits for ``v >= 1``). Tokens can be

* collected (deduplicated) instead of allocating the register array,
* transformed back to representative hash values when switching to the
  dense representation, and
* fed directly into ML estimation: the token-set likelihood Eq. (26) has
  the same shape as the register likelihood Eq. (15) with ``m = 1`` and
  ``t = v``, so the same Newton solver applies.

The practically interesting size is 4 bytes (``v = 26``), big enough for
any practical ELL configuration and sortable as a plain 32-bit integer.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.estimation.newton import MLSolution, solve_ml_equation

#: Default token parameter: (26 + 6)-bit tokens fit a 32-bit integer.
DEFAULT_V = 26

MIN_V = 1
MAX_V = 58  # tokens must fit 64 bits


def _check_v(v: int) -> None:
    if not MIN_V <= v <= MAX_V:
        raise ValueError(f"v must be in [{MIN_V}, {MAX_V}], got {v}")


def token_bits(v: int) -> int:
    """Width of a token in bits (``v + 6``)."""
    _check_v(v)
    return v + 6


def token_bytes(v: int) -> int:
    """Storage bytes per token (``ceil((v+6)/8)``); 4 for ``v = 26``."""
    return (token_bits(v) + 7) // 8


def hash_to_token(hash_value: int, v: int) -> int:
    """Map a 64-bit hash to its ``(v+6)``-bit token (Sec. 4.3).

    ``w = (low v bits of h) * 64 + nlz(h | (2**v - 1))``.
    """
    _check_v(v)
    masked = hash_value | ((1 << v) - 1)
    nlz = 64 - masked.bit_length()
    return ((hash_value & ((1 << v) - 1)) << 6) | nlz


def token_to_hash(token: int, v: int) -> int:
    """Reconstruct a representative 64-bit hash value from a token.

    The reconstruction ``h' = 2**(64 - nlz) - 2**v + (token >> 6)`` (mod
    2**64) preserves the low ``v`` bits and the NLZ of the upper field, so
    inserting ``h'`` into any ExaLogLog with ``p + t <= v`` produces exactly
    the same state transition as the original hash.
    """
    _check_v(v)
    nlz = token & 63
    if nlz > 64 - v:
        raise ValueError(f"token NLZ field {nlz} exceeds 64 - v = {64 - v}")
    high = token >> 6
    if high >> v:
        raise ValueError(f"token value field exceeds {v} bits")
    return ((1 << (64 - nlz)) - (1 << v) + high) & 0xFFFFFFFFFFFFFFFF


def rho_token(token: int, v: int) -> float:
    """The token PMF Eq. (24)."""
    _check_v(v)
    if not 0 <= token < (1 << (v + 6)):
        return 0.0
    nlz = token & 63
    if nlz > 64 - v:
        return 0.0
    return 2.0 ** -min(v + 1 + nlz, 64)


def token_coefficients(tokens: Iterable[int], v: int) -> tuple[float, dict[int, int]]:
    """Algorithm 7: (alpha, beta) of the token-set likelihood Eq. (26).

    ``alpha' = 2**64 - sum over tokens of 2**(64-j)`` is accumulated as an
    exact integer, exactly as the paper prescribes for an unsigned 64-bit
    register (Python integers make the wrap-around bookkeeping explicit).
    """
    _check_v(v)
    alpha_scaled = 1 << 64
    beta: dict[int, int] = {}
    for token in tokens:
        j = min(v + 1 + (token & 63), 64)
        beta[j] = beta.get(j, 0) + 1
        alpha_scaled -= 1 << (64 - j)
    return alpha_scaled / float(1 << 64), beta


def solve_token_ml(tokens: Iterable[int], v: int) -> MLSolution:
    """Raw ML solution for a set of *distinct* tokens."""
    alpha, beta = token_coefficients(tokens, v)
    return solve_ml_equation(alpha, beta)


def estimate_from_tokens(tokens: Iterable[int], v: int) -> float:
    """Distinct-count estimate from a set of *distinct* hash tokens.

    The token likelihood corresponds to an ELL sketch with ``m = 1``
    (``p = 0``, ``t = v``), so the estimate is the solver's ``nu`` directly.
    """
    return solve_token_ml(tokens, v).nu
