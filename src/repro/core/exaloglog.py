"""The ExaLogLog sketch (paper Alg. 2, Sections 2.3 and 4).

:class:`ExaLogLog` is the library's primary data structure: an approximate
distinct counter that is commutative, idempotent, mergeable, reducible, has
a constant-time insert, and supports distinct counts up to the exa-scale
with a memory-variance product as low as 3.67 — 43 % below 6-bit
HyperLogLog (paper abstract, Sec. 2.4).

Typical use::

    from repro import ExaLogLog

    sketch = ExaLogLog(t=2, d=20, p=8)
    for item in stream:
        sketch.add(item)
    print(sketch.estimate())

Hot-path note: registers live in a plain Python list; the bit-exact packed
layout (two 28-bit registers per 7 bytes for ELL(2,20), ...) is produced on
:meth:`to_bytes`, so serialized sizes match the paper's accounting.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.mlestimation import compute_coefficients, estimate_from_coefficients
from repro.core.params import ExaLogLogParams, make_params
from repro.core.register import merge as merge_register
from repro.core.register import state_change_probability
from repro.hashing import hash64
from repro.storage.packed import PackedArray
from repro.storage.serialization import (
    HEADER_SIZE,
    SerializationError,
    TAG_EXALOGLOG,
    read_header,
    write_header,
)


class ExaLogLog:
    """An ExaLogLog sketch with parameters ``(t, d, p)``.

    Parameters
    ----------
    t:
        Update-value distribution shape (Sec. 2.2); the default 2 belongs to
        the space-optimal configurations.
    d:
        Number of occurrence-indicator bits per register; the default 20
        yields the ML-estimation optimum ELL(2, 20) with MVP 3.67.
    p:
        Precision; the sketch uses ``m = 2**p`` registers of ``6 + t + d``
        bits. The relative standard error scales like ``1/sqrt(m)``.
    """

    __slots__ = ("_array", "_array_source", "_params", "_registers")

    _serialization_tag = TAG_EXALOGLOG

    #: Interface flags shared with the baseline counters (Table 2 columns).
    constant_time_insert = True
    supports_merge = True

    def __init__(self, t: int = 2, d: int = 20, p: int = 8) -> None:
        self._params = make_params(t, d, p)
        self._registers = [0] * self._params.m
        self._array = None
        self._array_source = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def _empty(cls, params: ExaLogLogParams) -> "ExaLogLog":
        """Allocate an empty instance without going through ``__init__``.

        Subclasses with narrower constructors (UltraLogLog takes only
        ``p``) or extra state (the martingale variant) override/extend
        this; every alternative constructor below builds on it.
        """
        sketch = object.__new__(cls)
        sketch._params = params
        sketch._registers = [0] * params.m
        sketch._array = None
        sketch._array_source = None
        return sketch

    @classmethod
    def from_params(cls, params: ExaLogLogParams) -> "ExaLogLog":
        """Create an empty sketch for an existing parameter object."""
        return cls._empty(params)

    @classmethod
    def from_registers(
        cls, params: ExaLogLogParams, registers: Sequence[int]
    ) -> "ExaLogLog":
        """Adopt raw register values (no reachability validation)."""
        if len(registers) != params.m:
            raise ValueError(f"expected {params.m} registers, got {len(registers)}")
        sketch = cls._empty(params)
        maximum = params.max_register_value
        for r in registers:
            if not 0 <= r <= maximum:
                raise ValueError(f"register value {r} out of range [0, {maximum}]")
        sketch._registers = list(registers)
        return sketch

    # -- core properties -------------------------------------------------------

    @property
    def params(self) -> ExaLogLogParams:
        """The validated (t, d, p) parameter triple."""
        return self._params

    @property
    def t(self) -> int:
        return self._params.t

    @property
    def d(self) -> int:
        return self._params.d

    @property
    def p(self) -> int:
        return self._params.p

    @property
    def m(self) -> int:
        """Number of registers."""
        return self._params.m

    @property
    def registers(self) -> tuple[int, ...]:
        """Snapshot of the register values."""
        return tuple(self._registers)

    def registers_array(self):
        """Registers as an int64 NumPy array (cached between state changes).

        The bulk paths (:meth:`add_hashes`) already produce the register
        array and keep it here, so stacking many sketches for the batch
        estimation engine — ``DistinctCountAggregator.estimates()`` over
        millions of groups — never converts Python lists. Scalar mutators
        (:meth:`add_hash`, :meth:`merge_inplace`) invalidate the cache;
        replacing ``_registers`` wholesale is detected by identity. The
        returned array is read-only (like the ``registers`` tuple) —
        writing through it would desync the cache from the list.
        """
        array = self._array
        if array is not None and self._array_source is self._registers:
            return array
        import numpy as np

        array = np.asarray(self._registers, dtype=np.int64)
        array.setflags(write=False)
        self._array = array
        self._array_source = self._registers
        return array

    @property
    def is_empty(self) -> bool:
        """True when no insertion has modified the state yet."""
        return not any(self._registers)

    def __repr__(self) -> str:
        occupied = sum(1 for r in self._registers if r)
        return (
            f"{type(self).__name__}(t={self.t}, d={self.d}, p={self.p}, "
            f"occupied={occupied}/{self.m})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExaLogLog):
            return NotImplemented
        return self._params == other._params and self._registers == other._registers

    # -- insertion --------------------------------------------------------------

    def add(self, item: Any, seed: int = 0) -> "ExaLogLog":
        """Insert an element (hashed with Murmur3); returns ``self``."""
        self.add_hash(hash64(item, seed))
        return self

    def add_all(self, items: Iterable[Any], seed: int = 0) -> "ExaLogLog":
        """Insert every element of an iterable; returns ``self``.

        Routed through the bulk path: NumPy integer/float arrays are
        hashed vectorised and folded set-wise (see :meth:`add_hashes`).
        """
        return self.add_batch(items, seed)

    def add_batch(self, items: Iterable[Any], seed: int = 0) -> "ExaLogLog":
        """Hash a batch of items (vectorised when possible) and ingest it."""
        from repro.hashing.batch import hash_items

        return self.add_hashes(hash_items(items, seed))

    def add_hashes(self, hashes, workers: int | None = None) -> "ExaLogLog":
        """Vectorised bulk insert of 64-bit hashes (ndarray or iterable).

        Inserts are commutative and idempotent, so the batch folds
        set-wise into a register array and merges via Algorithm 5; the
        result is bit-identical to the sequential :meth:`add_hash` loop
        (the :class:`repro.backends.BulkBackend` contract).

        ``workers`` opts into the process-pool fan-out of
        :class:`repro.parallel.ParallelBulkIngestor`: chunk-aligned
        slices fold on separate processes and their register arrays
        reduce through the exact Algorithm 5 merge, so the final state
        stays bit-identical regardless of worker count. Worth it for
        batches far beyond one chunk; ``None``/``1`` keeps the
        single-process fold.
        """
        from repro import backends

        params = self._params
        if not backends.supports_int64_registers(params):
            return backends.scalar_add_hashes(self, hashes)
        hashes = backends.as_hash_array(hashes)
        if len(hashes) == 0:
            return self
        if workers is not None and workers > 1:
            from repro.parallel import ParallelBulkIngestor

            batch = ParallelBulkIngestor(params, workers).registers(hashes)
        else:
            batch = backends.exaloglog_registers(hashes, params)
        if any(self._registers):
            batch = backends.merge_exaloglog_registers(
                self._registers, batch, params.d
            )
        self._registers = batch.tolist()
        batch.setflags(write=False)
        self._array = batch
        self._array_source = self._registers
        return self

    def add_hash(self, hash_value: int) -> bool:
        """Algorithm 2: insert an element given its 64-bit hash value.

        Returns True when the insertion changed the state (the hook the
        martingale estimator builds on).
        """
        params = self._params
        t = params.t
        d = params.d
        index = (hash_value >> t) & (params.m - 1)
        masked = hash_value | ((1 << (params.p + t)) - 1)
        nlz = 64 - masked.bit_length()
        k = (nlz << t) + (hash_value & ((1 << t) - 1)) + 1

        registers = self._registers
        r = registers[index]
        u = r >> d
        delta = k - u
        if delta > 0:
            registers[index] = (k << d) + (((1 << d) + (r & ((1 << d) - 1))) >> delta)
            self._array = None
            return True
        if delta < 0 and d + delta >= 0:
            updated = r | (1 << (d + delta))
            if updated != r:
                registers[index] = updated
                self._array = None
                return True
        return False

    # -- estimation --------------------------------------------------------------

    def estimate(self, bias_correction: bool = True) -> float:
        """Distinct-count estimate via ML (Alg. 3 + Alg. 8 + Eq. (4)).

        The estimate is nearly unbiased with relative standard error about
        ``sqrt(MVP / ((6 + t + d) * m))`` over the whole operating range.

        For ``m >= 1024`` (with registers fitting int64) this fast-paths
        through the vectorised backend of :mod:`repro.estimation.batch`,
        bit-identical to the scalar Algorithm 3 + Algorithm 8 pipeline
        (below that the scalar loop wins on call overhead).
        """
        params = self._params
        if params.m >= 1024 and params.register_bits <= 63:
            from repro.estimation.batch import estimate_registers

            matrix = self.registers_array().reshape(1, -1)
            return float(estimate_registers(matrix, params, bias_correction)[0])
        coefficients = compute_coefficients(self._registers, self._params)
        return estimate_from_coefficients(coefficients, self._params, bias_correction)

    def state_change_probability(self) -> float:
        """Eq. (23): probability the next new element changes the state."""
        return sum(
            state_change_probability(r, self._params) for r in self._registers
        )

    # -- merge -------------------------------------------------------------------

    def merge_inplace(self, other: "ExaLogLog") -> "ExaLogLog":
        """Merge a sketch with identical parameters into this one (Alg. 5)."""
        if not isinstance(other, ExaLogLog):
            raise TypeError(f"cannot merge {type(other).__name__} into ExaLogLog")
        if other._params != self._params:
            raise ValueError(
                f"parameter mismatch: {self._params} vs {other._params}; "
                "use merge() which reduces to common parameters"
            )
        d = self._params.d
        registers = self._registers
        self._array = None
        for i, r2 in enumerate(other._registers):
            if r2:
                registers[i] = merge_register(registers[i], r2, d)
        return self

    def merge(self, other: "ExaLogLog") -> "ExaLogLog":
        """Return the merged sketch; mixed (d, p) allowed for equal ``t``.

        Sketches with different ``d`` or ``p`` are first reduced to the
        common parameters ``(t, min(d, d'), min(p, p'))`` (Sec. 4.1).
        """
        if not isinstance(other, ExaLogLog):
            raise TypeError(f"cannot merge ExaLogLog with {type(other).__name__}")
        if other.t != self.t:
            raise ValueError(
                f"cannot merge sketches with different t ({self.t} vs {other.t})"
            )
        d = min(self.d, other.d)
        p = min(self.p, other.p)
        left = self.reduce(d=d, p=p)
        right = other.reduce(d=d, p=p)
        return left.merge_inplace(right)

    def __or__(self, other: "ExaLogLog") -> "ExaLogLog":
        return self.merge(other)

    # -- reduction ----------------------------------------------------------------

    def reduce(self, d: int | None = None, p: int | None = None) -> "ExaLogLog":
        """Algorithm 6: lossless reduction to smaller ``d`` and/or ``p``.

        The result is identical to the sketch that direct recording with
        the reduced parameters would have produced.
        """
        from repro.core.reduction import reduce_sketch

        return reduce_sketch(self, d=d, p=p)

    def copy(self) -> "ExaLogLog":
        """Deep copy of the sketch."""
        clone = type(self)._empty(self._params)
        clone._registers = list(self._registers)
        return clone

    # -- serialization --------------------------------------------------------------

    @property
    def register_array_bytes(self) -> int:
        """Exact size of the packed register array (paper's size accounting)."""
        return self._params.dense_bytes

    @property
    def memory_bytes(self) -> int:
        """Modelled in-memory footprint: packed registers + object overhead.

        (See DESIGN.md Sec. 3 on modelling JVM-comparable sizes; ExaLogLog
        allocates nothing beyond its fixed register array.)
        """
        from repro.baselines.base import OBJECT_OVERHEAD_BYTES

        return OBJECT_OVERHEAD_BYTES + self._params.dense_bytes

    @property
    def serialized_size_bytes(self) -> int:
        """Total serialized size including the 4-byte header and parameters."""
        return HEADER_SIZE + 3 + self._params.dense_bytes

    def to_bytes(self) -> bytes:
        """Serialize to the dense packed-bit-array format."""
        buffer = write_header(self._serialization_tag)
        buffer.append(self.t)
        buffer.append(self.d)
        buffer.append(self.p)
        packed = PackedArray.from_values(self._params.register_bits, self._registers)
        buffer.extend(packed.to_bytes())
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ExaLogLog":
        """Deserialize a sketch produced by :meth:`to_bytes`."""
        offset = read_header(data, cls._serialization_tag)
        if len(data) < offset + 3:
            raise SerializationError("truncated ExaLogLog parameters")
        t, d, p = data[offset], data[offset + 1], data[offset + 2]
        params = make_params(t, d, p)
        payload = data[offset + 3 :]
        expected = params.dense_bytes
        if len(payload) != expected:
            raise SerializationError(
                f"register payload is {len(payload)} bytes, expected {expected}"
            )
        packed = PackedArray.from_bytes(params.register_bits, params.m, payload)
        return cls.from_registers(params, packed.to_list())
