"""Maximum-likelihood estimation for ExaLogLog (paper Sec. 3.2, Alg. 3).

The distribution Eq. (8) makes every update-value probability a power of
two, so the log-likelihood of the full register state collapses to the
small form Eq. (15),

    ln L = -(n/m) alpha + sum_{u=t+1}^{64-p} beta_u ln(1 - e^(-n/(m 2**u))),

whose coefficients this module extracts with integer arithmetic
(Algorithm 3) and whose root the shared Newton solver finds (Algorithm 8).
The optional first-order bias correction Eq. (4) divides the ML estimate by
``1 + c/m``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.core.distribution import omega_scaled_table, phi_table
from repro.core.params import ExaLogLogParams
from repro.estimation.newton import MLSolution, solve_ml_equation


@dataclass(frozen=True)
class MLCoefficients:
    """The (alpha, beta) coefficients of the log-likelihood Eq. (15)."""

    alpha: float
    """Linear coefficient (``alpha' / 2**(64-p)`` of Algorithm 3)."""

    alpha_scaled: int
    """Exact integer ``alpha * 2**(64-p)``."""

    beta: dict[int, int]
    """Counts ``beta_u`` keyed by exponent ``u in [t+1, 64-p]``."""

    @property
    def is_empty(self) -> bool:
        """True when all registers were in the initial state."""
        return not self.beta

    @property
    def is_saturated(self) -> bool:
        """True when alpha vanished (all registers saturated)."""
        return self.alpha_scaled == 0


def compute_coefficients(
    registers: Sequence[int], params: ExaLogLogParams
) -> MLCoefficients:
    """Algorithm 3: extract (alpha, beta) from the register values.

    The accumulation of ``alpha' = alpha * 2**(64-p)`` uses only integer
    arithmetic, exactly as the paper prescribes, so no precision is lost
    even for exa-scale states.
    """
    d = params.d
    p = params.p
    phis = phi_table(params)
    omegas_scaled = omega_scaled_table(params)
    shift = 64 - p

    alpha_scaled = 0
    beta: dict[int, int] = {}
    for r in registers:
        u = r >> d
        alpha_scaled += omegas_scaled[u]
        if u >= 1:
            j = phis[u]
            beta[j] = beta.get(j, 0) + 1
            if u >= 2:
                for k in range(max(1, u - d), u):
                    j = phis[k]
                    if (r >> (d - u + k)) & 1:
                        beta[j] = beta.get(j, 0) + 1
                    else:
                        alpha_scaled += 1 << (shift - j)
    return MLCoefficients(
        alpha=alpha_scaled / (1 << shift), alpha_scaled=alpha_scaled, beta=beta
    )


@lru_cache(maxsize=128)
def bias_correction_factor(params: ExaLogLogParams) -> float:
    """``(1 + c/m)**-1`` with the constant ``c`` of Eq. (4)."""
    from repro.theory.mvp import bias_correction_constant

    c = bias_correction_constant(params.t, params.d)
    return 1.0 / (1.0 + c / params.m)


def estimate_from_coefficients(
    coefficients: MLCoefficients,
    params: ExaLogLogParams,
    bias_correction: bool = True,
) -> float:
    """Solve the ML equation and apply the optional bias correction."""
    solution = solve_ml_equation(coefficients.alpha, coefficients.beta)
    estimate = params.m * solution.nu
    if bias_correction and estimate > 0.0:
        estimate *= bias_correction_factor(params)
    return estimate


def solve_from_coefficients(
    coefficients: MLCoefficients, params: ExaLogLogParams
) -> MLSolution:
    """Raw solver output (used by tests asserting iteration counts)."""
    return solve_ml_equation(coefficients.alpha, coefficients.beta)


def ml_estimate(
    registers: Sequence[int], params: ExaLogLogParams, bias_correction: bool = True
) -> float:
    """Convenience wrapper: Algorithm 3 followed by Algorithm 8."""
    coefficients = compute_coefficients(registers, params)
    return estimate_from_coefficients(coefficients, params, bias_correction)
