"""The paper's primary contribution: the ExaLogLog sketch family."""

from repro.core.exaloglog import ExaLogLog
from repro.core.martingale import MartingaleExaLogLog
from repro.core.params import (
    PAPER_CONFIGURATIONS,
    ExaLogLogParams,
    ell_1_9,
    ell_2_16,
    ell_2_20,
    ell_2_24,
    make_params,
)
from repro.core.sparse import SparseExaLogLog
from repro.core.token import (
    DEFAULT_V,
    estimate_from_tokens,
    hash_to_token,
    token_to_hash,
)

__all__ = [
    "DEFAULT_V",
    "ExaLogLog",
    "ExaLogLogParams",
    "MartingaleExaLogLog",
    "PAPER_CONFIGURATIONS",
    "SparseExaLogLog",
    "ell_1_9",
    "ell_2_16",
    "ell_2_20",
    "ell_2_24",
    "estimate_from_tokens",
    "hash_to_token",
    "make_params",
    "token_to_hash",
]
