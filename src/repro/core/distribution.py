"""Update-value distributions (paper Sections 2.2-2.3, Lemma B.1).

ExaLogLog replaces the geometric update-value distribution Eq. (2) of the
generalized data structure by the *approximated* distribution Eq. (8),

    rho_update(k) = 2 ** -(t + 1 + floor((k-1) / 2**t)),   k >= 1,

whose power-of-two probabilities make update values trivially derivable
from a 64-bit hash (Eq. (9)) and keep the ML equation small (Sec. 3.2).
With the 64-bit hash limitation the distribution is truncated to
``k in [1, (65-p-t) * 2**t]`` via Eq. (10)/(11).

This module implements both PMFs, the exponent function ``phi``, and the
tail mass ``omega`` of Lemma B.1, in exact rational arithmetic where the
paper uses integers (values are powers of two, so floats are exact far
beyond the needed range as well).
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.core.params import ExaLogLogParams


def geometric_pmf(k: int, base: float) -> float:
    """The geometric PMF Eq. (2): ``(b - 1) * b**-k`` for ``k >= 1``."""
    if base <= 1.0:
        raise ValueError("base must exceed 1")
    if k < 1:
        return 0.0
    return (base - 1.0) * base ** (-k)


def approx_pmf_unbounded(k: int, t: int) -> float:
    """The untruncated approximated PMF Eq. (8)."""
    if t < 0:
        raise ValueError("t must be non-negative")
    if k < 1:
        return 0.0
    return 2.0 ** -(t + 1 + (k - 1) // (1 << t))


def phi(k: int, params: ExaLogLogParams) -> int:
    """Eq. (11): ``phi(k) = min(t + 1 + floor((k-1)/2**t), 64 - p)``.

    Defined for ``k >= 0``; ``phi(0) = t`` feeds Lemma B.1's ``omega(0) = 1``.
    """
    return min(params.t + 1 + ((k - 1) >> params.t), 64 - params.p)


def rho_update(k: int, params: ExaLogLogParams) -> float:
    """The truncated PMF Eq. (10): ``2**-phi(k)`` on ``[1, k_max]``, else 0."""
    if k < 1 or k > params.max_update_value:
        return 0.0
    return 2.0 ** -phi(k, params)


def rho_update_log2(k: int, params: ExaLogLogParams) -> int:
    """``-log2(rho_update(k))`` as an exact integer (the exponent ``phi``)."""
    if k < 1 or k > params.max_update_value:
        raise ValueError(f"update value {k} outside [1, {params.max_update_value}]")
    return phi(k, params)


def omega(u: int, params: ExaLogLogParams) -> float:
    """Tail mass Eq. (14): ``sum_{k>u} rho_update(k)`` in closed form.

    Lemma B.1:  ``omega(u) = (2**t * (1 - t + phi(u)) - u) / 2**phi(u)``.
    ``omega(0) == 1`` and ``omega(k_max) == 0``.
    """
    if u < 0 or u > params.max_update_value:
        raise ValueError(f"u={u} outside [0, {params.max_update_value}]")
    exponent = phi(u, params)
    return ((1 << params.t) * (1 - params.t + exponent) - u) / (2.0 ** exponent)


def omega_scaled(u: int, params: ExaLogLogParams) -> int:
    """``omega(u) * 2**(64-p)`` as an exact integer (Algorithm 3's alpha')."""
    exponent = phi(u, params)
    numerator = (1 << params.t) * (1 - params.t + exponent) - u
    return numerator << (64 - params.p - exponent)


def omega_bruteforce(u: int, params: ExaLogLogParams) -> float:
    """Reference O(k_max) summation of the tail mass (used by tests)."""
    return sum(rho_update(k, params) for k in range(u + 1, params.max_update_value + 1))


def update_value_from_hash(hash_value: int, params: ExaLogLogParams) -> tuple[int, int]:
    """Split a 64-bit hash into (register index, update value) per Alg. 2.

    The register index comes from bits ``[t, t+p)``; the update value is
    ``nlz(h | (2**(p+t) - 1)) * 2**t + (h mod 2**t) + 1`` (Eq. (9)).
    """
    t = params.t
    p = params.p
    index = (hash_value >> t) & ((1 << p) - 1)
    masked = hash_value | ((1 << (p + t)) - 1)
    nlz = 64 - masked.bit_length()
    k = (nlz << t) + (hash_value & ((1 << t) - 1)) + 1
    return index, k


@lru_cache(maxsize=64)
def rho_table(params: ExaLogLogParams) -> tuple[float, ...]:
    """Precomputed ``rho_update`` for ``k = 0 .. k_max`` (index = k)."""
    return tuple(
        rho_update(k, params) for k in range(params.max_update_value + 1)
    )


@lru_cache(maxsize=64)
def omega_table(params: ExaLogLogParams) -> tuple[float, ...]:
    """Precomputed ``omega`` for ``u = 0 .. k_max`` (index = u)."""
    return tuple(omega(u, params) for u in range(params.max_update_value + 1))


@lru_cache(maxsize=64)
def phi_array(params: ExaLogLogParams):
    """``phi`` for ``k = 0 .. k_max`` as a read-only int64 NumPy array.

    The single build behind both :func:`phi_table` (scalar paths) and the
    batched estimation engine (:mod:`repro.estimation.batch`).
    """
    import numpy as np

    array = np.fromiter(
        (phi(k, params) for k in range(params.max_update_value + 1)),
        dtype=np.int64,
        count=params.max_update_value + 1,
    )
    array.setflags(write=False)
    return array


@lru_cache(maxsize=64)
def omega_scaled_array(params: ExaLogLogParams):
    """Integer ``omega(u) * 2**(64-p)`` for ``u = 0 .. k_max`` as uint64.

    Every value is at most ``2**(64-p) <= 2**62``, so the exact integers
    fit; read-only and shared with :func:`omega_scaled_table`.
    """
    import numpy as np

    array = np.fromiter(
        (omega_scaled(u, params) for u in range(params.max_update_value + 1)),
        dtype=np.uint64,
        count=params.max_update_value + 1,
    )
    array.setflags(write=False)
    return array


@lru_cache(maxsize=64)
def phi_table(params: ExaLogLogParams) -> tuple[int, ...]:
    """Precomputed ``phi`` for ``k = 0 .. k_max`` (index = k)."""
    return tuple(phi_array(params).tolist())


@lru_cache(maxsize=64)
def omega_scaled_table(params: ExaLogLogParams) -> tuple[int, ...]:
    """Precomputed integer ``omega(u) * 2**(64-p)`` for ``u = 0 .. k_max``."""
    return tuple(omega_scaled_array(params).tolist())


def chunk_probability(c: int, t: int) -> float:
    """Total probability of the chunk of ``2**t`` values starting at ``c*2**t + 1``.

    Section 2.2 observes that both Eq. (2) with ``b = 2**(2**-t)`` and
    Eq. (8) assign total probability ``2**-(c+1)`` to each chunk — the sense
    in which Eq. (8) approximates the geometric distribution.
    """
    if c < 0:
        raise ValueError("chunk index must be non-negative")
    return 2.0 ** -(c + 1)


def kl_divergence_to_geometric(t: int, k_max: int = 512) -> float:
    """KL divergence D(approx || geometric) for the untruncated PMFs.

    Quantifies how closely Eq. (8) tracks Eq. (2) with ``b = 2**(2**-t)``
    (used by the distribution ablation bench). Terms where either PMF has
    underflowed to zero are dropped (their exact contribution is below
    double precision anyway).
    """
    base = 2.0 ** (2.0 ** -t)
    divergence = 0.0
    for k in range(1, k_max + 1):
        p_approx = approx_pmf_unbounded(k, t)
        p_geom = geometric_pmf(k, base)
        if p_approx > 0.0 and p_geom > 0.0:
            divergence += p_approx * math.log(p_approx / p_geom)
    return divergence
