"""ExaLogLog parameterisation (paper Sections 2.3-2.5).

An ExaLogLog sketch is described by three integers:

``t``
    shape of the approximated update-value distribution, Eq. (8); plays the
    role the geometric base ``b = 2**(2**-t)`` plays in the generalized data
    structure of [Ertl 2024].
``d``
    number of register bits that record the occurrence of update values in
    the window ``[u - d, u - 1]`` below the register maximum ``u``.
``p``
    precision; the sketch has ``m = 2**p`` registers.

Each register takes ``q + d = 6 + t + d`` bits, where ``q = 6 + t`` makes
``b**(2**q) = 2**64`` so that the operating range reaches the exa-scale
(Sec. 2.3). The paper's named configurations and the special cases of
Sec. 2.5 are exposed as constructors.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

#: Precision limits. ``p >= 2`` matches the paper's Algorithm 1/2 premise and
#: guarantees update values fit 6+t bits; the upper limit keeps ``64-p-t``
#: positive with room for the update-value range.
MIN_P = 2
MAX_P = 26

MAX_T = 3  # the paper dismisses t >= 3 as impractical but we allow t in [0, 3]
MAX_D_BITS = 64


@dataclass(frozen=True)
class ExaLogLogParams:
    """Validated (t, d, p) parameter triple with derived quantities."""

    t: int
    d: int
    p: int

    def __post_init__(self) -> None:
        if not 0 <= self.t <= MAX_T:
            raise ValueError(f"t must be in [0, {MAX_T}], got {self.t}")
        if not 0 <= self.d <= MAX_D_BITS:
            raise ValueError(f"d must be in [0, {MAX_D_BITS}], got {self.d}")
        if not MIN_P <= self.p <= MAX_P:
            raise ValueError(f"p must be in [{MIN_P}, {MAX_P}], got {self.p}")
        if self.p + self.t >= 64:
            raise ValueError("p + t must be smaller than 64")

    # -- derived quantities -------------------------------------------------

    @property
    def m(self) -> int:
        """Number of registers, ``2**p``."""
        return 1 << self.p

    @property
    def q(self) -> int:
        """Bits storing the maximum update value: ``6 + t`` (Sec. 2.3)."""
        return 6 + self.t

    @property
    def register_bits(self) -> int:
        """Total register width ``q + d = 6 + t + d`` bits."""
        return 6 + self.t + self.d

    @property
    def base(self) -> float:
        """The geometric base ``b = 2**(2**-t)`` the distribution mimics."""
        return 2.0 ** (2.0 ** -self.t)

    @property
    def max_update_value(self) -> int:
        """Largest possible update value ``(65 - p - t) * 2**t`` (Sec. 2.3)."""
        return (65 - self.p - self.t) << self.t

    @property
    def max_register_value(self) -> int:
        """Largest encodable register value (Table 1)."""
        return (self.max_update_value << self.d) + (1 << self.d) - 1

    @property
    def max_nlz(self) -> int:
        """Largest number of leading zeros Algorithm 2 can observe."""
        return 64 - self.p - self.t

    @property
    def min_phi(self) -> int:
        """Smallest update-value exponent ``phi(1) = t + 1`` (Eq. (11))."""
        return self.t + 1

    @property
    def max_phi(self) -> int:
        """Largest update-value exponent ``64 - p`` (Eq. (11))."""
        return 64 - self.p

    @property
    def dense_bytes(self) -> int:
        """Size of the dense register array in bytes (packed bit array)."""
        return (self.register_bits * self.m + 7) // 8

    # -- conversions ---------------------------------------------------------

    def with_precision(self, p: int) -> "ExaLogLogParams":
        """Same (t, d) at a different precision."""
        return ExaLogLogParams(self.t, self.d, p)

    def reduced(self, d: int | None = None, p: int | None = None) -> "ExaLogLogParams":
        """Parameters after a reduction (Sec. 4.2); must not grow d or p."""
        new_d = self.d if d is None else d
        new_p = self.p if p is None else p
        if new_d > self.d:
            raise ValueError(f"cannot increase d from {self.d} to {new_d} by reduction")
        if new_p > self.p:
            raise ValueError(f"cannot increase p from {self.p} to {new_p} by reduction")
        return ExaLogLogParams(self.t, new_d, new_p)

    def __str__(self) -> str:
        return f"ELL(t={self.t}, d={self.d}, p={self.p})"


@lru_cache(maxsize=None)
def make_params(t: int, d: int, p: int) -> ExaLogLogParams:
    """Cached constructor (parameter objects are shared freely)."""
    return ExaLogLogParams(t, d, p)


# -- named configurations from the paper --------------------------------------


def ell_1_9(p: int) -> ExaLogLogParams:
    """ELL(1, 9): byte-aligned 16-bit registers, MVP 3.90 (Sec. 2.4)."""
    return make_params(1, 9, p)


def ell_2_16(p: int) -> ExaLogLogParams:
    """ELL(2, 16): 24-bit registers, martingale optimum, MVP 2.77 (Sec. 2.4)."""
    return make_params(2, 16, p)


def ell_2_20(p: int) -> ExaLogLogParams:
    """ELL(2, 20): 28-bit registers, ML optimum, MVP 3.67 (Sec. 2.4)."""
    return make_params(2, 20, p)


def ell_2_24(p: int) -> ExaLogLogParams:
    """ELL(2, 24): 32-bit registers, CAS-friendly, MVP 3.78 (Sec. 2.4)."""
    return make_params(2, 24, p)


def hll_equivalent(p: int) -> ExaLogLogParams:
    """HyperLogLog as the special case ELL(0, 0) (Sec. 2.5)."""
    return make_params(0, 0, p)


def ehll_equivalent(p: int) -> ExaLogLogParams:
    """ExtendedHyperLogLog as the special case ELL(0, 1) (Sec. 2.5)."""
    return make_params(0, 1, p)


def ull_equivalent(p: int) -> ExaLogLogParams:
    """UltraLogLog as the special case ELL(0, 2) (Sec. 2.5)."""
    return make_params(0, 2, p)


def pcsa_equivalent(p: int) -> ExaLogLogParams:
    """PCSA/CPC-information-equivalent ELL(0, 64) (Sec. 2.5)."""
    return make_params(0, 64, p)


#: The (t, d) classes evaluated in Figure 8 and Table 2.
PAPER_CONFIGURATIONS: tuple[tuple[int, int], ...] = ((1, 9), (2, 16), (2, 20), (2, 24))
