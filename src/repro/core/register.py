"""Single-register semantics (paper Alg. 2, Alg. 5, Sections 3.1 and 3.3).

A register value ``r`` of an ExaLogLog with parameters ``(t, d, p)`` packs

* the maximum update value ``u = floor(r / 2**d)`` in its upper ``6 + t``
  bits, and
* ``d`` indicator bits for update values in the window ``[u - d, u - 1]``
  in its lower bits: bit position ``d - j`` (0-based) records whether an
  update with value ``u - j`` has occurred.

One encoding subtlety that follows from Algorithm 2 but is easy to miss in
the paper's prose: the shifted-in "implicit" bit ``2**d`` means that for
``1 <= u <= d`` the bit at position ``d - u`` — nominally the indicator of
the non-existent update value 0 — is *always* set, and all positions below
it are always clear. The register PMF in Sec. 3.1 is unaffected (the bit is
deterministic), but reachability checks, merging, and the PMF normalisation
test all have to respect it. :func:`is_reachable` encodes these rules.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.core.distribution import omega, omega_scaled, phi, rho_table, rho_update
from repro.core.params import ExaLogLogParams


def decode(r: int, d: int) -> tuple[int, int]:
    """Split a register into ``(u, window_bits)``."""
    return r >> d, r & ((1 << d) - 1)


def update(r: int, k: int, d: int) -> int:
    """Algorithm 2's register update: record an update with value ``k``.

    Returns the new register value (identical to ``r`` when the update
    carries no new information).
    """
    u = r >> d
    delta = k - u
    if delta > 0:
        return (k << d) + (((1 << d) + (r & ((1 << d) - 1))) >> delta)
    if delta < 0 and d + delta >= 0:
        return r | (1 << (d + delta))
    return r


def merge(r1: int, r2: int, d: int) -> int:
    """Algorithm 5: merge two registers with identical parameters.

    The result equals the register obtained by inserting the union of the
    original element streams into an empty sketch.
    """
    u1 = r1 >> d
    u2 = r2 >> d
    if u1 > u2 and u2 > 0:
        return r1 | (((1 << d) + (r2 & ((1 << d) - 1))) >> (u1 - u2))
    if u2 > u1 and u1 > 0:
        return r2 | (((1 << d) + (r1 & ((1 << d) - 1))) >> (u2 - u1))
    return r1 | r2


def window_values(r: int, params: ExaLogLogParams) -> Iterator[tuple[int, bool]]:
    """Yield ``(k, occurred)`` for the genuine window values ``k`` of ``r``.

    Genuine means ``k in [max(1, u - d), u - 1]`` — update value 0 and
    negative positions are excluded (they hold the deterministic bits
    discussed in the module docstring).
    """
    d = params.d
    u, low = decode(r, d)
    for k in range(max(1, u - d), u):
        yield k, bool(low >> (d - u + k) & 1)


def is_reachable(r: int, params: ExaLogLogParams) -> bool:
    """Whether ``r`` is a state Algorithm 2 can actually produce."""
    d = params.d
    u, low = decode(r, d)
    if r == 0:
        return True
    if u < 1 or u > params.max_update_value:
        return False
    if u <= d:
        # Deterministic value-0 bit must be set, everything below clear.
        if not (low >> (d - u)) & 1:
            return False
        if low & ((1 << (d - u)) - 1):
            return False
    return True


def enumerate_reachable(params: ExaLogLogParams) -> Iterator[int]:
    """All reachable register states (exponential in d; for small tests)."""
    yield 0
    d = params.d
    for u in range(1, params.max_update_value + 1):
        free_bits = min(d, u - 1)
        base = u << d
        if u <= d:
            base |= 1 << (d - u)
            shift = d - u + 1
        else:
            shift = 0
        for combo in range(1 << free_bits):
            yield base | (combo << shift)


# -- statistical model --------------------------------------------------------


def register_pmf(r: int, n: float, params: ExaLogLogParams) -> float:
    """Sec. 3.1: probability of register state ``r`` after ``n`` (Poissonized)
    distinct insertions into an ``m``-register sketch."""
    if not is_reachable(r, params):
        return 0.0
    m = params.m
    u, _ = decode(r, params.d)
    if r == 0:
        return math.exp(-n / m)
    probability = -math.expm1(-n / m * rho_update(u, params))
    probability *= math.exp(-n / m * omega(u, params))
    for k, occurred in window_values(r, params):
        q = math.exp(-n / m * rho_update(k, params))
        probability *= (1.0 - q) if occurred else q
    return probability


def state_change_probability(r: int, params: ExaLogLogParams) -> float:
    """Sec. 3.3: ``h(r)`` — probability the next new element changes ``r``.

    ``h(r) = (omega(u) + sum over unset genuine window bits of rho(k)) / m``.
    """
    return alpha_contribution(r, params) / params.m


def alpha_contribution(r: int, params: ExaLogLogParams) -> float:
    """``m * h(r)``: this register's contribution to the ML coefficient alpha.

    The identity ``mu = alpha / m`` (state-change probability equals the
    likelihood's linear coefficient divided by m) is what lets the
    simulation harness maintain both incrementally with one quantity.
    """
    u, low = decode(r, params.d)
    rho = rho_table(params)
    total = omega(u, params)
    d = params.d
    for k in range(max(1, u - d), u):
        if not (low >> (d - u + k)) & 1:
            total += rho[k]
    return total


def alpha_contribution_scaled(r: int, params: ExaLogLogParams) -> int:
    """Exact integer ``alpha_contribution * 2**(64-p)`` (Algorithm 3)."""
    u, low = decode(r, params.d)
    total = omega_scaled(u, params)
    d = params.d
    shift = 64 - params.p
    for k in range(max(1, u - d), u):
        if not (low >> (d - u + k)) & 1:
            total += 1 << (shift - phi(k, params))
    return total


def beta_contribution(r: int, params: ExaLogLogParams) -> list[int]:
    """Exponents ``j`` for which this register adds 1 to ``beta_j`` (Alg. 3).

    One entry for the maximum ``u`` (if ``u >= 1``) plus one per *set*
    genuine window bit; entries may repeat (same ``phi`` chunk).
    """
    u, low = decode(r, params.d)
    if u < 1:
        return []
    exponents = [phi(u, params)]
    d = params.d
    for k in range(max(1, u - d), u):
        if (low >> (d - u + k)) & 1:
            exponents.append(phi(k, params))
    return exponents


def saturation_fraction(r: int, params: ExaLogLogParams) -> float:
    """How close a register is to the end of the operating range, in [0, 1]."""
    u, _ = decode(r, params.d)
    return u / params.max_update_value
