"""Martingale (HIP) estimation (paper Sec. 3.3, Alg. 4).

The martingale estimator tracks, alongside the register array, the current
state-change probability ``mu`` (Eq. (23)) and an estimate that grows by
``1/mu`` whenever an insertion changes the state. It is unbiased, cheaper
to query than ML, and — per Eq. (6) — up to 33 % more space-efficient than
HyperLogLog, but it only applies when the data is not distributed: merging
invalidates the accumulated estimate, so :meth:`MartingaleExaLogLog.merge`
refuses and offers :meth:`MartingaleExaLogLog.as_plain` instead.
"""

from __future__ import annotations

import struct

from repro.core.exaloglog import ExaLogLog
from repro.core.params import ExaLogLogParams, make_params
from repro.core.register import alpha_contribution
from repro.storage.packed import PackedArray
from repro.storage.serialization import (
    HEADER_SIZE,
    SerializationError,
    TAG_EXALOGLOG_MARTINGALE,
    read_header,
    write_header,
)

#: Auxiliary state of the martingale estimator: two 8-byte floats.
MARTINGALE_STATE_BYTES = 16


class MartingaleExaLogLog(ExaLogLog):
    """ExaLogLog with an incrementally maintained martingale estimator.

    >>> sketch = MartingaleExaLogLog(t=2, d=20, p=8)
    >>> for i in range(100):
    ...     _ = sketch.add(f"item-{i}")
    >>> 50 < sketch.estimate() < 200
    True
    """

    __slots__ = ("_martingale_estimate", "_mu")

    _serialization_tag = TAG_EXALOGLOG_MARTINGALE

    #: Martingale estimation is only valid without merging (Sec. 3.3).
    supports_merge = False

    def __init__(self, t: int = 2, d: int = 20, p: int = 8) -> None:
        super().__init__(t, d, p)
        self._martingale_estimate = 0.0
        self._mu = 1.0

    @classmethod
    def _empty(cls, params: ExaLogLogParams) -> "MartingaleExaLogLog":
        sketch = super()._empty(params)
        sketch._martingale_estimate = 0.0
        sketch._mu = 1.0
        return sketch

    @property
    def mu(self) -> float:
        """Current state-change probability (Eq. (23)), maintained incrementally."""
        return self._mu

    @property
    def martingale_estimate(self) -> float:
        """The current unbiased martingale estimate."""
        return self._martingale_estimate

    def add_hash(self, hash_value: int) -> bool:
        """Insert a hash; Algorithm 4 updates estimate and ``mu`` on change."""
        params = self._params
        t = params.t
        d = params.d
        index = (hash_value >> t) & (params.m - 1)
        masked = hash_value | ((1 << (params.p + t)) - 1)
        nlz = 64 - masked.bit_length()
        k = (nlz << t) + (hash_value & ((1 << t) - 1)) + 1

        registers = self._registers
        old = registers[index]
        u = old >> d
        delta = k - u
        if delta > 0:
            new = (k << d) + (((1 << d) + (old & ((1 << d) - 1))) >> delta)
        elif delta < 0 and d + delta >= 0:
            new = old | (1 << (d + delta))
        else:
            return False
        if new == old:
            return False

        # Algorithm 4: increment by 1/mu *before* updating mu.
        if self._mu > 0.0:
            self._martingale_estimate += 1.0 / self._mu
        self._mu -= (
            alpha_contribution(old, params) - alpha_contribution(new, params)
        ) / params.m
        registers[index] = new
        self._array = None
        return True

    def add_hashes(self, hashes) -> "MartingaleExaLogLog":
        """Bulk insert via the scalar loop.

        The martingale estimate depends on the *sequence* of state
        changes, so the order-independent vectorised fold of the base
        class does not apply; the scalar loop keeps the estimator exact.
        """
        from repro.backends.protocol import scalar_add_hashes

        return scalar_add_hashes(self, hashes)

    def estimate(self, bias_correction: bool = True) -> float:
        """Return the martingale estimate (``bias_correction`` is ignored:
        the martingale estimator is unbiased by construction)."""
        return self._martingale_estimate

    def ml_estimate(self, bias_correction: bool = True) -> float:
        """The ML estimate over the same registers (for comparison)."""
        return super().estimate(bias_correction)

    # -- operations invalidated by martingale semantics ----------------------------

    def merge_inplace(self, other: ExaLogLog) -> "MartingaleExaLogLog":
        raise NotImplementedError(
            "martingale estimation is only valid for non-distributed streams "
            "(paper Sec. 3.3); call as_plain() to merge the register state"
        )

    def merge(self, other: ExaLogLog) -> ExaLogLog:
        raise NotImplementedError(
            "martingale estimation is only valid for non-distributed streams "
            "(paper Sec. 3.3); call as_plain() to merge the register state"
        )

    def reduce(self, d: int | None = None, p: int | None = None) -> ExaLogLog:
        """Reduction drops the martingale state (returns a plain sketch)."""
        return self.as_plain().reduce(d=d, p=p)

    def as_plain(self) -> ExaLogLog:
        """A plain :class:`ExaLogLog` sharing this sketch's register values."""
        return ExaLogLog.from_registers(self._params, self._registers)

    def copy(self) -> "MartingaleExaLogLog":
        clone = type(self)._empty(self._params)
        clone._registers = list(self._registers)
        clone._martingale_estimate = self._martingale_estimate
        clone._mu = self._mu
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MartingaleExaLogLog):
            return NotImplemented
        return (
            self._params == other._params
            and self._registers == other._registers
            and self._martingale_estimate == other._martingale_estimate
            and self._mu == other._mu
        )

    # -- serialization ---------------------------------------------------------------

    @property
    def serialized_size_bytes(self) -> int:
        return super().serialized_size_bytes + MARTINGALE_STATE_BYTES

    @property
    def memory_bytes(self) -> int:
        return super().memory_bytes + MARTINGALE_STATE_BYTES

    def to_bytes(self) -> bytes:
        buffer = write_header(self._serialization_tag)
        buffer.append(self.t)
        buffer.append(self.d)
        buffer.append(self.p)
        buffer.extend(struct.pack("<dd", self._martingale_estimate, self._mu))
        packed = PackedArray.from_values(self._params.register_bits, self._registers)
        buffer.extend(packed.to_bytes())
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MartingaleExaLogLog":
        offset = read_header(data, cls._serialization_tag)
        if len(data) < offset + 3 + MARTINGALE_STATE_BYTES:
            raise SerializationError("truncated MartingaleExaLogLog payload")
        t, d, p = data[offset], data[offset + 1], data[offset + 2]
        params = make_params(t, d, p)
        estimate, mu = struct.unpack_from("<dd", data, offset + 3)
        payload = data[offset + 3 + MARTINGALE_STATE_BYTES :]
        if len(payload) != params.dense_bytes:
            raise SerializationError(
                f"register payload is {len(payload)} bytes, expected {params.dense_bytes}"
            )
        packed = PackedArray.from_bytes(params.register_bits, params.m, payload)
        sketch = cls._empty(params)
        sketch._registers = packed.to_list()
        sketch._martingale_estimate = estimate
        sketch._mu = mu
        return sketch


def martingale_from_params(params: ExaLogLogParams) -> MartingaleExaLogLog:
    """Create an empty martingale sketch for a parameter object."""
    return MartingaleExaLogLog(params.t, params.d, params.p)
