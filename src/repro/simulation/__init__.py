"""Simulation methodology of paper Sec. 5.1 (exact + waiting-time phases)."""

from repro.simulation.evaluation import (
    ErrorEvaluation,
    ErrorSeries,
    evaluate_estimation_error,
)
from repro.simulation.events import (
    DEFAULT_EXACT_PHASE,
    EventSchedule,
    filter_state_changes,
    logspace_checkpoints,
    simulate_event_schedule,
)
from repro.simulation.memory import SizeReport, empirical_mvp
from repro.simulation.replay import ReplayResult, replay
from repro.simulation.rng import numpy_generator, random_hashes, run_seed

__all__ = [
    "DEFAULT_EXACT_PHASE",
    "ErrorEvaluation",
    "ErrorSeries",
    "EventSchedule",
    "ReplayResult",
    "SizeReport",
    "empirical_mvp",
    "evaluate_estimation_error",
    "filter_state_changes",
    "logspace_checkpoints",
    "numpy_generator",
    "random_hashes",
    "replay",
    "run_seed",
    "simulate_event_schedule",
]
