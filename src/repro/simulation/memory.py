"""Memory accounting shared by the Table 2 / Figure 10 benches.

The paper reports two sizes per algorithm: the total in-memory allocation
and the serialized size, and derives the empirical MVP
``(size in bits) * RMSE**2`` from each (Eq. (1)). Python object graphs are
not comparable with JVM heaps, so the library models in-memory size as
payload + declared auxiliary fields + a fixed object overhead (see
DESIGN.md Sec. 3); serialized sizes are exact byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SizeReport:
    """Sizes of one sketch instance, in bytes."""

    memory_bytes: float
    serialized_bytes: float

    @staticmethod
    def of(sketch) -> "SizeReport":
        return SizeReport(
            memory_bytes=float(sketch.memory_bytes),
            serialized_bytes=float(len(sketch.to_bytes())),
        )


def empirical_mvp(rmse: float, size_bytes: float) -> float:
    """Eq. (1) with the size measured in bits."""
    return (size_bytes * 8.0) * rmse * rmse
