"""Bias/RMSE evaluation harness (paper Sec. 5.1, Figure 8).

Repeats the simulate -> replay pipeline over many independent runs and
aggregates, per checkpoint, the relative bias and the relative RMSE of the
ML and martingale estimators, alongside the theoretical RMSE
``sqrt(MVP / ((q+d) m))`` the paper's figures overlay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.params import ExaLogLogParams
from repro.simulation.events import (
    DEFAULT_EXACT_PHASE,
    filter_state_changes,
    simulate_event_schedule,
)
from repro.simulation.replay import replay
from repro.simulation.rng import numpy_generator


@dataclass
class ErrorSeries:
    """Per-checkpoint error statistics for one estimator."""

    checkpoints: list[float]
    relative_bias: list[float]
    relative_rmse: list[float]
    theoretical_rmse: float

    def rows(self) -> list[dict[str, float]]:
        return [
            {
                "n": n,
                "bias": bias,
                "rmse": rmse,
                "theory": self.theoretical_rmse,
            }
            for n, bias, rmse in zip(
                self.checkpoints, self.relative_bias, self.relative_rmse
            )
        ]


@dataclass
class ErrorEvaluation:
    """Joint result for the ML and martingale estimators."""

    params: ExaLogLogParams
    runs: int
    ml: ErrorSeries
    martingale: ErrorSeries
    newton_iterations_max: int = 0
    extras: dict = field(default_factory=dict)


def evaluate_estimation_error(
    params: ExaLogLogParams,
    checkpoints: list[float],
    runs: int,
    seed: int = 0x5EED,
    n_exact: int = DEFAULT_EXACT_PHASE,
    bias_correction: bool = True,
) -> ErrorEvaluation:
    """Monte-Carlo bias/RMSE of the ML and martingale estimators."""
    from repro.theory.mvp import theoretical_relative_rmse

    checkpoints = sorted(checkpoints)
    n_max = checkpoints[-1]
    count = len(checkpoints)
    sum_ml = [0.0] * count
    sum_sq_ml = [0.0] * count
    sum_mart = [0.0] * count
    sum_sq_mart = [0.0] * count
    newton_max = 0

    for run in range(runs):
        rng = numpy_generator(seed, run)
        schedule = simulate_event_schedule(params, n_max, rng, n_exact=n_exact)
        schedule = filter_state_changes(schedule, params)
        result = replay(schedule, params, checkpoints, bias_correction)
        newton_max = max(newton_max, result.newton_iterations_max)
        for index, n in enumerate(checkpoints):
            ml_error = result.ml_estimates[index] / n - 1.0
            mart_error = result.martingale_estimates[index] / n - 1.0
            sum_ml[index] += ml_error
            sum_sq_ml[index] += ml_error * ml_error
            sum_mart[index] += mart_error
            sum_sq_mart[index] += mart_error * mart_error

    def finish(sums: list[float], squares: list[float]) -> tuple[list[float], list[float]]:
        bias = [s / runs for s in sums]
        rmse = [math.sqrt(sq / runs) for sq in squares]
        return bias, rmse

    ml_bias, ml_rmse = finish(sum_ml, sum_sq_ml)
    mart_bias, mart_rmse = finish(sum_mart, sum_sq_mart)
    t, d, p = params.t, params.d, params.p
    return ErrorEvaluation(
        params=params,
        runs=runs,
        ml=ErrorSeries(
            checkpoints=checkpoints,
            relative_bias=ml_bias,
            relative_rmse=ml_rmse,
            theoretical_rmse=theoretical_relative_rmse(t, d, p, martingale=False),
        ),
        martingale=ErrorSeries(
            checkpoints=checkpoints,
            relative_bias=mart_bias,
            relative_rmse=mart_rmse,
            theoretical_rmse=theoretical_relative_rmse(t, d, p, martingale=True),
        ),
        newton_iterations_max=newton_max,
    )
