"""Replay of event schedules with incremental estimator maintenance.

Processing every insertion of an exa-scale stream is impossible; replaying
only *state-changing first-occurrence events* (see
:mod:`repro.simulation.events`) is exact and cheap. During replay this
module maintains, incrementally and exactly:

* the register array (through the real Algorithm 2 transition),
* the ML coefficient ``alpha' = alpha * 2**(64-p)`` as an *integer* — no
  floating-point cancellation even when alpha shrinks to ~2**-50 near the
  end of the operating range — and the ``beta`` counts (Algorithm 3's
  outputs, kept in sync with O(1)-ish per-event work),
* the martingale estimator of Algorithm 4, using the identity
  ``mu = alpha / m`` (Sec. 3.3's h(r) is exactly a register's alpha
  contribution divided by m).

At each checkpoint the ML estimate (Algorithm 8) and the martingale
estimate are recorded. Tests assert that the incrementally maintained
coefficients equal Algorithm 3 run from scratch on the replayed registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.distribution import omega_scaled_table, phi_table
from repro.core.mlestimation import bias_correction_factor
from repro.core.params import ExaLogLogParams
from repro.estimation.batch import EXPONENT_AXIS
from repro.estimation.newton import solve_ml_equation
from repro.simulation.events import EventSchedule


@dataclass
class ReplayResult:
    """Per-checkpoint estimates of one replayed run."""

    checkpoints: list[float]
    ml_estimates: list[float]
    martingale_estimates: list[float]
    registers: list[int]
    alpha_scaled: int
    beta: list[int]
    newton_iterations_max: int

    def final_state(self) -> list[int]:
        return list(self.registers)


def _ml_estimate(
    alpha_scaled: int,
    beta: list[int],
    params: ExaLogLogParams,
    bias_factor: float,
) -> tuple[float, int]:
    beta_map = {u: count for u, count in enumerate(beta) if count}
    solution = solve_ml_equation(alpha_scaled / (1 << (64 - params.p)), beta_map)
    estimate = params.m * solution.nu
    if estimate > 0.0:
        estimate *= bias_factor
    return estimate, solution.iterations


def _solve_checkpoints(
    alpha_snapshots: list[int],
    beta_snapshots,
    params: ExaLogLogParams,
    bias_factor: float,
) -> tuple[list[float], int]:
    """One simultaneous Newton solve over all checkpoint coefficients.

    Bit-identical to calling :func:`_ml_estimate` per checkpoint — the
    batched solver replays the scalar float operations per row — but the
    experiments harness, which replays millions of checkpoints per
    figure, pays for one vectorised solve per run instead.
    ``beta_snapshots`` is the preallocated ``(checkpoints, EXPONENT_AXIS)``
    int64 matrix the replay loop filled row by row.
    """
    if not alpha_snapshots:
        return [], 0
    import numpy as np

    from repro.estimation.batch import solve_ml_equations

    shift = 64 - params.p
    alpha = np.array([a / (1 << shift) for a in alpha_snapshots])
    solution = solve_ml_equations(alpha, beta_snapshots)
    estimates = params.m * solution.nu
    estimates = np.where(
        estimates > 0.0, estimates * bias_factor, estimates
    )
    return estimates.tolist(), int(solution.iterations.max())


def bulk_final_registers(
    schedule: EventSchedule, params: ExaLogLogParams
) -> list[int]:
    """Final register state of a schedule via the bulk backend.

    Event schedules are ``(register, update value)`` pairs, exactly what
    the backend's vectorised fold consumes — so when only the end state
    matters (no per-checkpoint estimates), the whole replay loop reduces
    to one fold. Identical to ``replay(...).registers``.
    """
    from repro.backends import exaloglog_registers_from_pairs, supports_int64_registers

    if len(schedule) == 0 or not supports_int64_registers(params):
        from repro.core.register import update as update_register

        registers = [0] * params.m
        for i, k in zip(schedule.registers.tolist(), schedule.values.tolist()):
            registers[i] = update_register(registers[i], k, params.d)
        return registers
    return exaloglog_registers_from_pairs(
        schedule.registers, schedule.values, params
    ).tolist()


def replay(
    schedule: EventSchedule,
    params: ExaLogLogParams,
    checkpoints: Sequence[float],
    bias_correction: bool = True,
) -> ReplayResult:
    """Replay a (state-change-filtered) schedule, sampling at checkpoints."""
    d = params.d
    m = params.m
    shift = 64 - params.p
    phis = phi_table(params)
    omegas = omega_scaled_table(params)
    rhos_scaled = [0] + [
        1 << (shift - phis[k]) for k in range(1, params.max_update_value + 1)
    ]
    bias_factor = bias_correction_factor(params) if bias_correction else 1.0

    registers = [0] * m
    alpha_scaled = m << shift  # every register starts with omega(0) = 1
    beta = [0] * EXPONENT_AXIS
    martingale = 0.0
    alpha_norm = float(m << shift)  # mu = alpha_scaled / alpha_norm

    import numpy as np

    checkpoints = sorted(float(c) for c in checkpoints)
    n_checkpoints = len(checkpoints)
    alpha_snapshots: list[int] = []
    # One row per checkpoint (not a Python list copy each): the beta
    # coefficient vector has fixed length, so snapshots go straight into
    # the matrix the batched end-of-replay solve consumes.
    beta_snapshots = np.zeros((n_checkpoints, EXPONENT_AXIS), dtype=np.int64)
    martingale_estimates: list[float] = []
    checkpoint_index = 0

    times = schedule.times.tolist()
    event_registers = schedule.registers.tolist()
    event_values = schedule.values.tolist()

    for position in range(len(times)):
        time = times[position]
        while checkpoint_index < n_checkpoints and checkpoints[checkpoint_index] < time:
            alpha_snapshots.append(alpha_scaled)
            beta_snapshots[checkpoint_index] = beta
            martingale_estimates.append(martingale)
            checkpoint_index += 1

        i = event_registers[position]
        k = event_values[position]
        r = registers[i]
        u = r >> d

        if k < u:
            position_bit = d - u + k
            if position_bit < 0 or (r >> position_bit) & 1:
                continue  # forgotten or already-set value: no state change
            # Martingale increments before the state change (Algorithm 4).
            if alpha_scaled > 0:
                martingale += alpha_norm / alpha_scaled
            registers[i] = r | (1 << position_bit)
            alpha_scaled -= rhos_scaled[k]
            beta[phis[k]] += 1
        elif k > u:
            if alpha_scaled > 0:
                martingale += alpha_norm / alpha_scaled
            delta_alpha = omegas[k] - omegas[u]
            # Values in the new window that have never occurred.
            a = max(k - d, u + 1)
            b = k - 1
            if a <= b:
                delta_alpha += omegas[a - 1] - omegas[b]
            beta[phis[k]] += 1
            if u >= 1:
                if u < k - d:
                    beta[phis[u]] -= 1  # the old maximum drops out
                # Old window values that drop out of the new window.
                lo = max(1, u - d)
                hi = min(u - 1, k - d - 1)
                if lo <= hi:
                    range_sum = omegas[lo - 1] - omegas[hi]
                    set_sum = 0
                    width = hi - lo + 1
                    bits = (r >> (d - u + lo)) & ((1 << width) - 1)
                    while bits:
                        lsb = bits & -bits
                        v = lo + lsb.bit_length() - 1
                        beta[phis[v]] -= 1
                        set_sum += rhos_scaled[v]
                        bits ^= lsb
                    # Dropped never-occurred values stop contributing alpha.
                    delta_alpha -= range_sum - set_sum
            registers[i] = (k << d) + (((1 << d) + (r & ((1 << d) - 1))) >> (k - u))
            alpha_scaled += delta_alpha
        # k == u cannot occur (events are first occurrences).

    while checkpoint_index < n_checkpoints:
        alpha_snapshots.append(alpha_scaled)
        beta_snapshots[checkpoint_index] = beta
        martingale_estimates.append(martingale)
        checkpoint_index += 1

    ml_estimates, newton_max = _solve_checkpoints(
        alpha_snapshots, beta_snapshots, params, bias_factor
    )

    return ReplayResult(
        checkpoints=list(checkpoints),
        ml_estimates=ml_estimates,
        martingale_estimates=martingale_estimates,
        registers=registers,
        alpha_scaled=alpha_scaled,
        beta=beta,
        newton_iterations_max=newton_max,
    )


def replay_many(
    schedules: "Sequence[EventSchedule]",
    params: ExaLogLogParams,
    checkpoints: Sequence[float],
    bias_correction: bool = True,
    workers: int | None = None,
    pool=None,
) -> list[ReplayResult]:
    """Replay many independent schedules, optionally across the pool.

    Simulation runs are embarrassingly parallel — each schedule replays
    against its own fresh state — so with ``workers > 1`` the schedules
    fan out over the persistent shared-memory pool
    (:mod:`repro.parallel.pool`): event arrays travel through the
    transport segment, workers replay zero-copy, and only the (small)
    :class:`ReplayResult` objects come back. Results are in schedule
    order and identical to sequential :func:`replay` calls (replay is
    deterministic; processes share nothing).
    """
    schedules = list(schedules)
    if workers is None or workers <= 1 or len(schedules) <= 1:
        return [
            replay(schedule, params, checkpoints, bias_correction)
            for schedule in schedules
        ]
    if pool is None:
        from repro.parallel.pool import get_pool

        pool = get_pool()
    return pool.replay_schedules(
        schedules, params, checkpoints, bias_correction, workers=workers
    )
