"""Replay of event schedules with incremental estimator maintenance.

Processing every insertion of an exa-scale stream is impossible; replaying
only *state-changing first-occurrence events* (see
:mod:`repro.simulation.events`) is exact and cheap. During replay this
module maintains, incrementally and exactly:

* the register array (through the real Algorithm 2 transition),
* the ML coefficient ``alpha' = alpha * 2**(64-p)`` as an *integer* — no
  floating-point cancellation even when alpha shrinks to ~2**-50 near the
  end of the operating range — and the ``beta`` counts (Algorithm 3's
  outputs, kept in sync with O(1)-ish per-event work),
* the martingale estimator of Algorithm 4, using the identity
  ``mu = alpha / m`` (Sec. 3.3's h(r) is exactly a register's alpha
  contribution divided by m).

At each checkpoint the ML estimate (Algorithm 8) and the martingale
estimate are recorded. Tests assert that the incrementally maintained
coefficients equal Algorithm 3 run from scratch on the replayed registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.distribution import omega_scaled_table, phi_table
from repro.core.mlestimation import bias_correction_factor
from repro.core.params import ExaLogLogParams
from repro.estimation.newton import solve_ml_equation
from repro.simulation.events import EventSchedule


@dataclass
class ReplayResult:
    """Per-checkpoint estimates of one replayed run."""

    checkpoints: list[float]
    ml_estimates: list[float]
    martingale_estimates: list[float]
    registers: list[int]
    alpha_scaled: int
    beta: list[int]
    newton_iterations_max: int

    def final_state(self) -> list[int]:
        return list(self.registers)


def _ml_estimate(
    alpha_scaled: int,
    beta: list[int],
    params: ExaLogLogParams,
    bias_factor: float,
) -> tuple[float, int]:
    beta_map = {u: count for u, count in enumerate(beta) if count}
    solution = solve_ml_equation(alpha_scaled / (1 << (64 - params.p)), beta_map)
    estimate = params.m * solution.nu
    if estimate > 0.0:
        estimate *= bias_factor
    return estimate, solution.iterations


def bulk_final_registers(
    schedule: EventSchedule, params: ExaLogLogParams
) -> list[int]:
    """Final register state of a schedule via the bulk backend.

    Event schedules are ``(register, update value)`` pairs, exactly what
    the backend's vectorised fold consumes — so when only the end state
    matters (no per-checkpoint estimates), the whole replay loop reduces
    to one fold. Identical to ``replay(...).registers``.
    """
    from repro.backends import exaloglog_registers_from_pairs, supports_int64_registers

    if len(schedule) == 0 or not supports_int64_registers(params):
        from repro.core.register import update as update_register

        registers = [0] * params.m
        for i, k in zip(schedule.registers.tolist(), schedule.values.tolist()):
            registers[i] = update_register(registers[i], k, params.d)
        return registers
    return exaloglog_registers_from_pairs(
        schedule.registers, schedule.values, params
    ).tolist()


def replay(
    schedule: EventSchedule,
    params: ExaLogLogParams,
    checkpoints: Sequence[float],
    bias_correction: bool = True,
) -> ReplayResult:
    """Replay a (state-change-filtered) schedule, sampling at checkpoints."""
    d = params.d
    m = params.m
    shift = 64 - params.p
    phis = phi_table(params)
    omegas = omega_scaled_table(params)
    rhos_scaled = [0] + [
        1 << (shift - phis[k]) for k in range(1, params.max_update_value + 1)
    ]
    bias_factor = bias_correction_factor(params) if bias_correction else 1.0

    registers = [0] * m
    alpha_scaled = m << shift  # every register starts with omega(0) = 1
    beta = [0] * 66
    martingale = 0.0
    alpha_norm = float(m << shift)  # mu = alpha_scaled / alpha_norm

    checkpoints = sorted(float(c) for c in checkpoints)
    ml_estimates: list[float] = []
    martingale_estimates: list[float] = []
    newton_max = 0
    checkpoint_index = 0
    n_checkpoints = len(checkpoints)

    times = schedule.times.tolist()
    event_registers = schedule.registers.tolist()
    event_values = schedule.values.tolist()

    for position in range(len(times)):
        time = times[position]
        while checkpoint_index < n_checkpoints and checkpoints[checkpoint_index] < time:
            estimate, iterations = _ml_estimate(alpha_scaled, beta, params, bias_factor)
            newton_max = max(newton_max, iterations)
            ml_estimates.append(estimate)
            martingale_estimates.append(martingale)
            checkpoint_index += 1

        i = event_registers[position]
        k = event_values[position]
        r = registers[i]
        u = r >> d

        if k < u:
            position_bit = d - u + k
            if position_bit < 0 or (r >> position_bit) & 1:
                continue  # forgotten or already-set value: no state change
            # Martingale increments before the state change (Algorithm 4).
            if alpha_scaled > 0:
                martingale += alpha_norm / alpha_scaled
            registers[i] = r | (1 << position_bit)
            alpha_scaled -= rhos_scaled[k]
            beta[phis[k]] += 1
        elif k > u:
            if alpha_scaled > 0:
                martingale += alpha_norm / alpha_scaled
            delta_alpha = omegas[k] - omegas[u]
            # Values in the new window that have never occurred.
            a = max(k - d, u + 1)
            b = k - 1
            if a <= b:
                delta_alpha += omegas[a - 1] - omegas[b]
            beta[phis[k]] += 1
            if u >= 1:
                if u < k - d:
                    beta[phis[u]] -= 1  # the old maximum drops out
                # Old window values that drop out of the new window.
                lo = max(1, u - d)
                hi = min(u - 1, k - d - 1)
                if lo <= hi:
                    range_sum = omegas[lo - 1] - omegas[hi]
                    set_sum = 0
                    width = hi - lo + 1
                    bits = (r >> (d - u + lo)) & ((1 << width) - 1)
                    while bits:
                        lsb = bits & -bits
                        v = lo + lsb.bit_length() - 1
                        beta[phis[v]] -= 1
                        set_sum += rhos_scaled[v]
                        bits ^= lsb
                    # Dropped never-occurred values stop contributing alpha.
                    delta_alpha -= range_sum - set_sum
            registers[i] = (k << d) + (((1 << d) + (r & ((1 << d) - 1))) >> (k - u))
            alpha_scaled += delta_alpha
        # k == u cannot occur (events are first occurrences).

    while checkpoint_index < n_checkpoints:
        estimate, iterations = _ml_estimate(alpha_scaled, beta, params, bias_factor)
        newton_max = max(newton_max, iterations)
        ml_estimates.append(estimate)
        martingale_estimates.append(martingale)
        checkpoint_index += 1

    return ReplayResult(
        checkpoints=list(checkpoints),
        ml_estimates=ml_estimates,
        martingale_estimates=martingale_estimates,
        registers=registers,
        alpha_scaled=alpha_scaled,
        beta=beta,
        newton_iterations_max=newton_max,
    )
