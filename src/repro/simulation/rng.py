"""Seeded randomness for simulations.

Every experiment derives independent per-run generators from a master seed
via SplitMix64, so results are reproducible run by run and experiments can
be parallelised or resumed deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.splitmix64 import splitmix64_at


def run_seed(master_seed: int, run_index: int) -> int:
    """Deterministic 64-bit seed for run ``run_index`` of an experiment."""
    return splitmix64_at(master_seed, run_index)


def numpy_generator(master_seed: int, run_index: int) -> np.random.Generator:
    """Independent NumPy generator for one simulation run."""
    return np.random.Generator(np.random.PCG64(run_seed(master_seed, run_index)))


def random_hashes(generator: np.random.Generator, count: int) -> np.ndarray:
    """``count`` i.i.d. uniform 64-bit values used directly as hash values.

    Sec. 5.1: "insertion of a new element can be simulated by simply
    generating a 64-bit random value to be used directly as the hash value".
    """
    return generator.integers(0, 1 << 64, size=count, dtype=np.uint64)
