"""Event-schedule simulation (paper Sec. 5.1, the "fast simulation strategy").

A sketch's state only depends on, for every ``(register, update value)``
pair, *whether* the pair has occurred — and, for martingale estimation, on
the distinct count at which it first occurred. The simulation therefore
produces, per run, the schedule of first-occurrence events:

* **Exact phase** (up to ``n_exact``): draw a true random stream and
  extract the first occurrence index of every pair that shows up —
  bit-exact with per-insertion simulation, but vectorised.
* **Tail phase** (beyond ``n_exact``): for every pair not yet seen, draw an
  independent geometric waiting time with success probability
  ``rho_update(k)/m`` (memoryless continuation; the paper's approximation
  that makes distinct counts up to 1e21 reachable).

The replay module consumes the schedule through the real register-update
code, so estimator behaviour is exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import split_hashes
from repro.core.distribution import rho_table
from repro.core.params import ExaLogLogParams
from repro.simulation.rng import random_hashes

#: Default length of the exact phase (the paper uses 1e6; 2**20 ~ 1.05e6).
DEFAULT_EXACT_PHASE = 1 << 20


@dataclass(frozen=True)
class EventSchedule:
    """First-occurrence events of one simulated run, sorted by time."""

    times: np.ndarray
    """Distinct count at which each event occurs (float64; exact below 2**53)."""

    registers: np.ndarray
    """Register index per event (int64)."""

    values: np.ndarray
    """Update value ``k`` per event (int64)."""

    n_exact: int
    """Length of the exact phase this schedule was built with."""

    def __len__(self) -> int:
        return len(self.times)


def simulate_event_schedule(
    params: ExaLogLogParams,
    n_max: float,
    rng: np.random.Generator,
    n_exact: int = DEFAULT_EXACT_PHASE,
) -> EventSchedule:
    """Build the first-occurrence event schedule of one run up to ``n_max``."""
    m = params.m
    k_max = params.max_update_value
    n_exact = int(min(n_exact, n_max))

    times_parts = []
    registers_parts = []
    values_parts = []

    seen = np.zeros((m, k_max + 1), dtype=bool)
    if n_exact > 0:
        hashes = random_hashes(rng, n_exact)
        index, k = split_hashes(hashes, params)
        keys = index * np.int64(k_max + 1) + k
        unique_keys, first_positions = np.unique(keys, return_index=True)
        times_parts.append(first_positions.astype(np.float64) + 1.0)
        registers_parts.append(unique_keys // (k_max + 1))
        values_parts.append(unique_keys % (k_max + 1))
        seen.flat[unique_keys] = True

    if n_max > n_exact:
        rhos = np.array(rho_table(params))  # index = k, rho[0] == 0
        unseen_register, unseen_value = np.nonzero(~seen)
        mask = unseen_value >= 1
        unseen_register = unseen_register[mask]
        unseen_value = unseen_value[mask]
        probabilities = rhos[unseen_value] / m
        uniforms = rng.random(len(probabilities))
        # Geometric waiting time: ceil(log(U) / log(1 - p)) >= 1.
        waits = np.ceil(np.log(uniforms) / np.log1p(-probabilities))
        tail_times = n_exact + waits
        within = tail_times <= n_max
        times_parts.append(tail_times[within])
        registers_parts.append(unseen_register[within])
        values_parts.append(unseen_value[within])

    times = np.concatenate(times_parts) if times_parts else np.empty(0)
    registers = np.concatenate(registers_parts) if registers_parts else np.empty(0, np.int64)
    values = np.concatenate(values_parts) if values_parts else np.empty(0, np.int64)

    order = np.argsort(times, kind="stable")
    return EventSchedule(
        times=times[order],
        registers=registers[order].astype(np.int64),
        values=values[order].astype(np.int64),
        n_exact=n_exact,
    )


def filter_state_changes(schedule: EventSchedule, params: ExaLogLogParams) -> EventSchedule:
    """Keep only events that change the sketch state.

    An event ``(i, k)`` is a first occurrence, so it changes the state iff
    ``k >= (current maximum of register i) - d`` at its time; events below
    the window are information the register has already forgotten. The
    per-register running maximum is computed vectorised; the surviving
    events (a small fraction at large ``n``) are what the replay loop
    actually has to process.
    """
    if len(schedule) == 0:
        return schedule
    k_span = np.int64(params.max_update_value + 2)
    # Sort by (register, time); schedule is already time-sorted, so a
    # stable sort on register preserves time order within registers.
    by_register = np.argsort(schedule.registers, kind="stable")
    regs = schedule.registers[by_register]
    ks = schedule.values[by_register]

    # Segmented running maximum via offsetting each register's values into
    # its own disjoint band (register indices are ascending).
    banded = regs * k_span + ks
    running = np.maximum.accumulate(banded)
    previous = np.empty_like(running)
    previous[0] = -1
    previous[1:] = running[:-1]
    # Previous maximum within the same register band (0 if first event).
    same_register = np.empty(len(regs), dtype=bool)
    same_register[0] = False
    same_register[1:] = regs[1:] == regs[:-1]
    prev_max = np.where(same_register, previous - regs * k_span, 0)

    changes = ks >= prev_max - params.d
    keep_positions = by_register[changes]
    keep_positions.sort()  # restore global time order
    return EventSchedule(
        times=schedule.times[keep_positions],
        registers=schedule.registers[keep_positions],
        values=schedule.values[keep_positions],
        n_exact=schedule.n_exact,
    )


def logspace_checkpoints(n_min: float, n_max: float, per_decade: int = 3) -> list[float]:
    """Log-spaced distinct-count checkpoints (1-2-5 style per decade)."""
    steps = {1: [1.0], 2: [1.0, 3.0], 3: [1.0, 2.0, 5.0]}.get(per_decade)
    if steps is None:
        grid = np.logspace(np.log10(n_min), np.log10(n_max), per_decade * 20)
        return [float(x) for x in grid]
    checkpoints = []
    decade = 10.0 ** np.floor(np.log10(max(n_min, 1.0)))
    while decade <= n_max:
        for step in steps:
            value = step * decade
            if n_min <= value <= n_max:
                checkpoints.append(float(value))
        decade *= 10.0
    return checkpoints
