"""Multi-core ingest: process-pool fan-out and sharded aggregation.

Builds the ROADMAP's parallel execution layer on top of the bulk-ingest
backends: :class:`ParallelBulkIngestor` fans chunk-aligned hash slices out
to a ``multiprocessing`` pool and reduces the per-slice register arrays
exactly (bit-identical to the sequential fold), and
:func:`parallel_group_fold` hash-partitions group keys into worker shards
that build partial :class:`~repro.aggregate.DistinctCountAggregator`\\ s
merged by the existing exact merge. Entry points are the opt-in
``workers=`` parameters on ``ExaLogLog.add_hashes``,
``DistinctCountAggregator.add_batch`` and
``SlidingWindowDistinctCounter.add_hashes``.
"""

from repro.parallel.ingest import (
    ParallelBulkIngestor,
    parallel_exaloglog_registers,
    preferred_start_method,
)
from repro.parallel.shard import (
    parallel_group_fold,
    parallel_spill_write,
    partition_groups,
    shard_of,
)

__all__ = [
    "ParallelBulkIngestor",
    "parallel_exaloglog_registers",
    "parallel_group_fold",
    "parallel_spill_write",
    "partition_groups",
    "preferred_start_method",
    "shard_of",
]
