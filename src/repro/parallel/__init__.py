"""Multi-core ingest: persistent pool fan-out and sharded aggregation.

Builds the ROADMAP's parallel execution layer on top of the bulk-ingest
backends. :class:`PersistentIngestPool` (usually via :func:`get_pool`)
keeps worker processes alive across calls and ships hash batches through
shared memory; :class:`ParallelBulkIngestor` fans chunk-aligned hash
slices across it and reduces the per-slice register arrays exactly
(bit-identical to the sequential fold); :func:`parallel_group_fold`
hash-partitions group keys into worker shards that build partial
:class:`~repro.aggregate.DistinctCountAggregator`\\ s merged by the
existing exact merge; :func:`parallel_spill_write` streams shards into
spill files; :func:`repro.simulation.replay.replay_many` fans simulation
replays out the same way. Entry points are the opt-in ``workers=``
parameters on ``ExaLogLog.add_hashes``, ``DistinctCountAggregator.add_batch``
and ``SlidingWindowDistinctCounter.add_hashes``.
"""

from repro.parallel.ingest import (
    ParallelBulkIngestor,
    parallel_exaloglog_registers,
    preferred_start_method,
)
from repro.parallel.pool import (
    PersistentIngestPool,
    ShmSlice,
    attach_slice,
    get_pool,
    pool_task,
    shutdown_default_pool,
)
from repro.parallel.shard import (
    parallel_group_fold,
    parallel_spill_write,
    partition_groups,
    shard_of,
)

__all__ = [
    "ParallelBulkIngestor",
    "PersistentIngestPool",
    "ShmSlice",
    "attach_slice",
    "get_pool",
    "parallel_exaloglog_registers",
    "parallel_group_fold",
    "parallel_spill_write",
    "partition_groups",
    "pool_task",
    "preferred_start_method",
    "shard_of",
    "shutdown_default_pool",
]
