"""Hash-partitioned (sharded) group-by aggregation.

The shuffle stage of a distributed ``APPROX_COUNT_DISTINCT(x) GROUP BY g``:
group keys are hash-partitioned across N shards, each shard builds a
partial :class:`~repro.aggregate.DistinctCountAggregator` on its own
worker process, and the partials merge back with the existing
``merge_inplace`` (sketch merges are exact, so partitioning never changes
the result). Each group lives entirely inside one shard, so its sketch is
fed the exact hash sequence the sequential scatter would have fed it —
partial group states are bit-identical to the single-process path.

Workers return their partial aggregator serialized (``to_bytes`` blobs are
compact and cheap to pickle); the parent deserializes and merges. By
default hash segments travel through the persistent shared-memory pool
(:mod:`repro.parallel.pool`) — workers stay alive across calls and read
the segments zero-copy. Callers that pin an explicit ``start_method`` get
the legacy per-call transports: under ``fork`` the segment list is
published in a module global right before the pool forks, so workers
inherit it copy-on-write and receive only segment indices; under
``spawn``/``forkserver`` each job carries its segments (pickled). The
worker functions are top-level and their arguments picklable, so every
``multiprocessing`` start method works.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.hashing import hash64
from repro.parallel.ingest import preferred_start_method

if TYPE_CHECKING:
    from repro.aggregate import DistinctCountAggregator

#: (t, d, p, sparse, seed) — the aggregator configuration tuple.
AggregatorConfig = tuple[int, int, int, bool, int]

#: Segment list published to fork workers (copy-on-write inheritance);
#: only set under the lock between publishing and the fork itself.
_FORK_SEGMENTS: Sequence[tuple[bytes, np.ndarray]] | None = None
_FORK_LOCK = threading.Lock()


def shard_of(key: bytes, shards: int) -> int:
    """Deterministic shard of a canonical group key (Murmur3-partitioned)."""
    return hash64(key) % shards


def _partition_indices(
    keyed_hashes: Sequence[tuple[bytes, np.ndarray]], shards: int
) -> list[list[int]]:
    """Non-empty shards as index lists into ``keyed_hashes``."""
    buckets: list[list[int]] = [[] for _ in range(shards)]
    for position, (key, _) in enumerate(keyed_hashes):
        buckets[shard_of(key, shards)].append(position)
    return [bucket for bucket in buckets if bucket]


def partition_groups(
    keyed_hashes: Sequence[tuple[bytes, np.ndarray]], shards: int
) -> list[list[tuple[bytes, np.ndarray]]]:
    """Partition ``(key, hashes)`` segments into non-empty shards."""
    return [
        [keyed_hashes[position] for position in bucket]
        for bucket in _partition_indices(keyed_hashes, shards)
    ]


def _build_partial(
    job: tuple[AggregatorConfig, list[tuple[bytes, np.ndarray]]]
) -> bytes:
    """Worker: build one shard's partial aggregator, return it serialized."""
    from repro.aggregate import DistinctCountAggregator

    config, keyed_hashes = job
    return DistinctCountAggregator._from_keyed_hashes(config, keyed_hashes).to_bytes()


def _build_partial_fork(job: tuple[AggregatorConfig, list[int]]) -> bytes:
    """Worker: build a shard from fork-inherited segments (fork transport)."""
    config, indices = job
    assert _FORK_SEGMENTS is not None
    return _build_partial((config, [_FORK_SEGMENTS[i] for i in indices]))


def _spill_shard(job: tuple[str, int, str, "list[tuple[bytes, np.ndarray]]"]) -> int:
    """Worker: append one shard's segments to its own spill files.

    Each worker owns a distinct ``writer_id``, so the partition files it
    creates never collide with another worker's — spill writes need no
    cross-process coordination (see :mod:`repro.store.spill`).
    """
    from repro.store.spill import SpillWriter

    directory, partitions, writer_id, segments = job
    with SpillWriter(directory, partitions, writer_id) as writer:
        writer.write_segments(segments)
        return writer.records_written


def _spill_shard_fork(job: tuple[str, int, str, list[int]]) -> int:
    """Worker: spill a shard from fork-inherited segments (fork transport)."""
    directory, partitions, writer_id, indices = job
    assert _FORK_SEGMENTS is not None
    return _spill_shard(
        (directory, partitions, writer_id, [_FORK_SEGMENTS[i] for i in indices])
    )


def parallel_spill_write(
    keyed_hashes: Sequence[tuple[bytes, np.ndarray]],
    directory,
    partitions: int,
    workers: int,
    start_method: str | None = None,
) -> int:
    """Spill ``(key, hashes)`` segments to disk on a process pool.

    The write half of the external GROUP BY: segments shard exactly like
    :func:`parallel_group_fold`, but each worker streams its shard into
    hash-partitioned spill files instead of folding sketches in memory.
    Workers write independently (per-writer file names); the merge pass
    of :class:`repro.store.SpilledGroupBy` is oblivious to how many
    writers produced the files. Returns the total records written.
    """
    global _FORK_SEGMENTS

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    shards = _partition_indices(keyed_hashes, workers)
    if not shards:
        return 0
    directory = str(directory)
    if len(shards) == 1:
        segments = [keyed_hashes[i] for i in shards[0]]
        return _spill_shard((directory, partitions, f"s0x{os.getpid():x}", segments))
    # Writer ids embed the parent pid so two parallel aggregations
    # spilling into one directory stay distinguishable.
    suffix = f"x{os.getpid():x}"
    if start_method is None:
        from repro.parallel.pool import get_pool

        return get_pool().spill(
            directory, partitions, keyed_hashes, shards, suffix, workers=workers
        )
    method = start_method
    context = multiprocessing.get_context(method)
    if method == "fork":
        worker = _spill_shard_fork
        jobs = [
            (directory, partitions, f"s{index}{suffix}", shard)
            for index, shard in enumerate(shards)
        ]
        with _FORK_LOCK:
            _FORK_SEGMENTS = keyed_hashes
            try:
                pool = context.Pool(min(workers, len(jobs)))
            finally:
                _FORK_SEGMENTS = None
    else:
        worker = _spill_shard
        jobs = [
            (
                directory,
                partitions,
                f"s{index}{suffix}",
                [keyed_hashes[i] for i in shard],
            )
            for index, shard in enumerate(shards)
        ]
        pool = context.Pool(min(workers, len(jobs)))
    try:
        counts = pool.map(worker, jobs)
    finally:
        pool.close()
        pool.join()
    return sum(counts)


def parallel_group_fold(
    config: AggregatorConfig,
    keyed_hashes: Sequence[tuple[bytes, np.ndarray]],
    workers: int,
    start_method: str | None = None,
) -> "list[DistinctCountAggregator]":
    """Build partial aggregators for ``keyed_hashes`` on a process pool.

    Returns one partial per non-empty shard (at most ``workers``); the
    caller merges them via ``merge_inplace``. A single-shard partition
    skips the pool entirely.
    """
    global _FORK_SEGMENTS

    from repro.aggregate import DistinctCountAggregator

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    shards = _partition_indices(keyed_hashes, workers)
    if not shards:
        return []
    if len(shards) == 1:
        segments = [keyed_hashes[i] for i in shards[0]]
        return [DistinctCountAggregator._from_keyed_hashes(config, segments)]
    if start_method is None:
        from repro.parallel.pool import get_pool

        blobs = get_pool().group_fold(config, keyed_hashes, shards, workers=workers)
        return [DistinctCountAggregator.from_bytes(blob) for blob in blobs]
    method = start_method
    context = multiprocessing.get_context(method)
    if method == "fork":
        worker = _build_partial_fork
        jobs = [(config, shard) for shard in shards]
        # Workers capture the segment list at fork time (pool creation);
        # reset right after so nothing stays pinned.
        with _FORK_LOCK:
            _FORK_SEGMENTS = keyed_hashes
            try:
                pool = context.Pool(min(workers, len(jobs)))
            finally:
                _FORK_SEGMENTS = None
    else:
        worker = _build_partial
        jobs = [
            (config, [keyed_hashes[i] for i in shard]) for shard in shards
        ]
        pool = context.Pool(min(workers, len(jobs)))
    try:
        blobs = pool.map(worker, jobs)
    finally:
        pool.close()
        pool.join()
    return [DistinctCountAggregator.from_bytes(blob) for blob in blobs]
