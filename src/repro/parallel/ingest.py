"""Process-pool fan-out for the ExaLogLog bulk fold (multi-core ingest).

The chunk folds in :mod:`repro.backends.bulk` are pure functions of a hash
slice, and :func:`~repro.backends.bulk.merge_exaloglog_registers` is exact,
so a batch parallelises without approximation: split the hash array into
:data:`~repro.backends.bulk.BULK_CHUNK`-aligned slices, fold each slice on
its own worker process, and reduce the per-slice register arrays with the
vectorised Algorithm 5 merge. The reduction is associative and
commutative, so the result is **bit-identical** to the sequential
``add_hashes`` fold — and therefore to the scalar ``add_hash`` loop (the
:class:`repro.backends.BulkBackend` contract survives the pool).

Two worker transports, chosen by start method:

* ``fork`` (Linux default) — the parent publishes the hash array in a
  module global right before forking the pool, so workers inherit it
  copy-on-write and receive only ``(start, stop)`` bounds: no per-slice
  pickling of hash data.
* ``spawn`` / ``forkserver`` — workers are fresh interpreters, so each
  job carries its hash slice (pickled once per slice). Both worker
  functions live at module top level and take picklable arguments
  (:class:`~repro.core.params.ExaLogLogParams` is a plain frozen
  dataclass), so every start method works.

By default batches run on the module-level persistent pool
(:mod:`repro.parallel.pool`): workers stay alive across calls and hash
slices travel through shared memory, so the steady-state cost of a
``workers=`` call is one memcpy into the transport segment. The legacy
per-call transports below remain for callers that pin an explicit
``start_method`` (and as the simplest-possible reference for tests): fork
publishes the hash array in a module global for copy-on-write
inheritance; spawn/forkserver pickle each slice.
"""

from __future__ import annotations

import multiprocessing
import threading

import numpy as np

from repro.backends.bitops import as_hash_array
from repro.backends.bulk import (
    BULK_CHUNK,
    exaloglog_registers,
    merge_exaloglog_registers,
    supports_int64_registers,
)
from repro.core.params import ExaLogLogParams

#: Hash array published to fork workers (copy-on-write inheritance). Only
#: set between acquiring :data:`_FORK_LOCK` and the fork itself — workers
#: capture their copy at fork time, so the parent resets it immediately
#: after the pool exists (nothing is pinned, concurrent callers can't
#: observe each other's payload).
_FORK_PAYLOAD: np.ndarray | None = None
_FORK_LOCK = threading.Lock()


def preferred_start_method() -> str:
    """The platform's cheapest safe start method (fork where available)."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _fold_fork_bounds(job: tuple[int, int, ExaLogLogParams]) -> np.ndarray:
    """Fold a slice of the fork-inherited payload (fork transport)."""
    start, stop, params = job
    assert _FORK_PAYLOAD is not None
    return exaloglog_registers(_FORK_PAYLOAD[start:stop], params)


def _fold_slice(job: tuple[np.ndarray, ExaLogLogParams]) -> np.ndarray:
    """Fold an explicit hash slice (spawn/forkserver transport)."""
    hashes, params = job
    return exaloglog_registers(hashes, params)


class ParallelBulkIngestor:
    """Fan an ExaLogLog hash batch out to a process pool.

    Parameters
    ----------
    params:
        The target sketch's parameter triple (must fit int64 registers,
        like every vectorised bulk path).
    workers:
        Number of worker processes. ``1`` degenerates to the in-process
        fold (no pool is created).
    chunk:
        Slice alignment; per-worker slices are multiples of this, so the
        workers' internal chunking matches the sequential fold exactly.
        Defaults to :data:`~repro.backends.bulk.BULK_CHUNK`; tests shrink
        it to exercise the pool on small batches.
    start_method:
        ``None`` (default) routes batches through the persistent
        shared-memory pool. Pinning an explicit method opts back into
        the legacy per-call pool with that method's transport.
    pool:
        The :class:`~repro.parallel.pool.PersistentIngestPool` to use on
        the pooled path; ``None`` uses the process-wide default.
    """

    __slots__ = ("_chunk", "_explicit_method", "_params", "_pool", "_workers")

    def __init__(
        self,
        params: ExaLogLogParams,
        workers: int,
        chunk: int = BULK_CHUNK,
        start_method: str | None = None,
        pool=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        if not supports_int64_registers(params):
            raise ValueError(
                f"{params} registers exceed int64; parallel ingest requires "
                "the vectorised fold (register_bits <= 63)"
            )
        if start_method is not None and start_method not in (
            methods := multiprocessing.get_all_start_methods()
        ):
            raise ValueError(
                f"unknown start method {start_method!r}; available: {methods}"
            )
        self._params = params
        self._workers = workers
        self._chunk = chunk
        self._explicit_method = start_method
        self._pool = pool

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def start_method(self) -> str:
        return self._explicit_method or preferred_start_method()

    def slice_bounds(self, n: int) -> list[tuple[int, int]]:
        """Chunk-aligned ``(start, stop)`` bounds, at most one per worker.

        Each worker folds a contiguous run of whole chunks (the last slice
        takes the remainder), so slice-internal chunking is identical to
        the sequential fold's.
        """
        if n <= 0:
            return []
        total_chunks = -(-n // self._chunk)
        span = -(-total_chunks // self._workers) * self._chunk
        return [(start, min(start + span, n)) for start in range(0, n, span)]

    def registers(self, hashes) -> np.ndarray:
        """Register array of a fresh sketch after ingesting ``hashes``.

        Bit-identical to ``exaloglog_registers(hashes, params)``; callers
        merge it into existing state exactly as the sequential path does.
        """
        global _FORK_PAYLOAD

        hashes = as_hash_array(hashes)
        bounds = self.slice_bounds(len(hashes))
        if len(bounds) <= 1 or self._workers == 1:
            return exaloglog_registers(hashes, self._params)
        if self._explicit_method is None:
            from repro.parallel.pool import get_pool

            pool = self._pool if self._pool is not None else get_pool()
            return pool.fold_registers(
                hashes, bounds, self._params, workers=self._workers
            )
        context = multiprocessing.get_context(self._explicit_method)
        if self._explicit_method == "fork":
            worker = _fold_fork_bounds
            jobs = [(start, stop, self._params) for start, stop in bounds]
            # Workers capture the payload at fork time (pool creation);
            # reset right after so nothing stays pinned and concurrent
            # callers never see each other's array.
            with _FORK_LOCK:
                _FORK_PAYLOAD = hashes
                try:
                    pool = context.Pool(min(self._workers, len(jobs)))
                finally:
                    _FORK_PAYLOAD = None
        else:
            worker = _fold_slice
            jobs = [(hashes[start:stop], self._params) for start, stop in bounds]
            pool = context.Pool(min(self._workers, len(jobs)))
        try:
            partials = pool.map(worker, jobs)
        finally:
            pool.close()
            pool.join()
        reduced = partials[0]
        for partial in partials[1:]:
            reduced = merge_exaloglog_registers(reduced, partial, self._params.d)
        return reduced

    def __repr__(self) -> str:
        return (
            f"ParallelBulkIngestor({self._params}, workers={self._workers}, "
            f"chunk={self._chunk}, start_method={self.start_method!r})"
        )


def parallel_exaloglog_registers(
    hashes,
    params: ExaLogLogParams,
    workers: int,
    chunk: int = BULK_CHUNK,
    start_method: str | None = None,
    pool=None,
) -> np.ndarray:
    """Functional shorthand for :meth:`ParallelBulkIngestor.registers`."""
    return ParallelBulkIngestor(
        params, workers, chunk, start_method, pool=pool
    ).registers(hashes)
