"""Persistent shared-memory worker pool for all parallel entry points.

``BENCH_parallel_ingest.json`` showed the per-call pools of the original
parallel plane *losing* to single-process bulk: every ``workers=`` call
paid pool start-up plus hash pickling. This module replaces both costs:

* **Persistent workers.** One module-level pool (:func:`get_pool`) keeps
  worker processes alive across calls — lazily spawned on first use,
  grown on demand, reaped after an idle timeout (``REPRO_POOL_IDLE``
  seconds, default 30), and shut down at interpreter exit. A crashed
  worker is detected (at dispatch time and mid-call), respawned, and its
  lost jobs retried once when the task is pure; non-idempotent tasks
  (spill appends) raise instead of silently double-writing.
* **Shared-memory transport.** Hash batches travel through one reusable
  ``multiprocessing.shared_memory`` segment: the parent packs arrays
  into the segment (one memcpy), jobs carry only :class:`ShmSlice`
  descriptors, and workers map the segment and read **zero-copy** —
  identical cost under ``fork`` and ``spawn``, unlike the old transports
  (fork-global publishing / per-slice pickling).
* **Fork safety.** A pool object inherited through ``os.fork`` silently
  resets in the child: inherited worker handles, queues and segments
  belong to the parent and are abandoned (never closed or unlinked), and
  the child lazily spawns its own workers on first use.

Tasks are registered by name (:func:`pool_task`) as top-level functions,
so every ``multiprocessing`` start method works. Jobs carry the parent's
active kernel-backend name where folding is involved, so worker folds
dispatch exactly like the parent's would — keeping the pool inside the
library-wide bit-identity contract.
"""

from __future__ import annotations

import atexit
import logging
import os
import queue
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import multiprocessing

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.parallel.ingest import preferred_start_method

logger = logging.getLogger(__name__)

#: Idle seconds after which the reaper thread retires the pool's workers.
DEFAULT_IDLE_TIMEOUT = 30.0

# Observability handles. Worker-side metrics accrued during a job (e.g.
# the backend fold counters) are drained after the task and shipped back
# through the existing result channel, then merged into the parent's
# registry — the same partial-state-then-merge scheme the sketches use.
_DISPATCH_SECONDS = _metrics.histogram(
    "pool.dispatch_seconds", "Wall seconds per pool map() dispatch."
)
_QUEUE_DEPTH = _metrics.gauge(
    "pool.queue_depth", "Jobs in flight during the current dispatch.", mode="max"
)
_JOBS = _metrics.counter("pool.jobs", "Jobs dispatched to pool workers.")
_WORKER_RESPAWNS = _metrics.counter(
    "pool.worker_respawns", "Workers respawned after an unexpected death."
)
_SHM_REUSE = _metrics.counter(
    "pool.shm_reuse", "Dispatches served by the already-allocated segment."
)
_SHM_ALLOC = _metrics.counter(
    "pool.shm_alloc", "Shared-memory segment (re)allocations."
)
_SHM_BYTES = _metrics.counter(
    "pool.shm_bytes_packed", "Bytes packed into the transport segment."
)

#: Worker-side cap on cached shared-memory attachments.
_ATTACH_CAP = 8

#: Alignment of packed arrays inside a segment (cache-line friendly).
_ALIGN = 64


def _idle_timeout_default() -> float:
    try:
        return float(os.environ.get("REPRO_POOL_IDLE", DEFAULT_IDLE_TIMEOUT))
    except ValueError:
        return DEFAULT_IDLE_TIMEOUT


# -- shared-memory slices ------------------------------------------------------


@dataclass(frozen=True)
class ShmSlice:
    """A 1-D array slice inside a named shared-memory segment."""

    name: str
    offset: int
    count: int
    dtype: str

    def sub(self, start: int, stop: int) -> "ShmSlice":
        """A sub-range of this slice (element units)."""
        itemsize = np.dtype(self.dtype).itemsize
        return ShmSlice(
            self.name, self.offset + start * itemsize, stop - start, self.dtype
        )


#: Worker-side attachment cache: segment name -> SharedMemory (LRU).
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


def _attach(name: str) -> shared_memory.SharedMemory:
    # Pre-3.13 attachment re-registers the segment with the resource
    # tracker, but multiprocessing children (fork AND spawn) inherit the
    # parent's tracker pipe, and its cache is a per-name set — so the
    # re-registration is idempotent there and the parent's unlink-time
    # unregister clears it. Unregistering here would instead clobber the
    # parent's legitimate registration in the shared tracker.
    segment = _ATTACHED.get(name)
    if segment is not None:
        _ATTACHED.move_to_end(name)
        return segment
    segment = shared_memory.SharedMemory(name=name)
    _ATTACHED[name] = segment
    while len(_ATTACHED) > _ATTACH_CAP:
        _, old = _ATTACHED.popitem(last=False)
        try:
            old.close()
        except BufferError:  # a live view still points in; let GC finish it
            pass
    return segment


def attach_slice(item) -> np.ndarray:
    """Materialise a :class:`ShmSlice` as a zero-copy ndarray (worker side).

    Non-slice values (small arrays that travelled pickled) pass through.
    """
    if not isinstance(item, ShmSlice):
        return np.asarray(item)
    segment = _attach(item.name)
    return np.ndarray(
        (item.count,), dtype=np.dtype(item.dtype), buffer=segment.buf,
        offset=item.offset,
    )


# -- task registry -------------------------------------------------------------

_TASKS: dict = {}


def pool_task(name: str):
    """Register a top-level function as a pool task (picklable by name)."""

    def decorate(function):
        _TASKS[name] = function
        return function

    return decorate


@pool_task("fold")
def _task_fold(payload) -> np.ndarray:
    """Fold a hash slice into a fresh register array (pure, retryable)."""
    from repro.backends.bulk import exaloglog_registers
    from repro.backends.select import use_backend

    hashes = attach_slice(payload["hashes"])
    with use_backend(payload["backend"]):
        return exaloglog_registers(hashes, payload["params"])


@pool_task("group_fold")
def _task_group_fold(payload) -> bytes:
    """Build one shard's partial aggregator (pure, retryable)."""
    from repro.aggregate import DistinctCountAggregator
    from repro.backends.select import use_backend

    segments = [(key, attach_slice(item)) for key, item in payload["segments"]]
    with use_backend(payload["backend"]):
        return DistinctCountAggregator._from_keyed_hashes(
            payload["config"], segments
        ).to_bytes()


@pool_task("spill")
def _task_spill(payload) -> int:
    """Append one shard's segments to its spill files (NOT retryable)."""
    from repro.store.spill import SpillWriter

    segments = [(key, attach_slice(item)) for key, item in payload["segments"]]
    with SpillWriter(
        payload["directory"], payload["partitions"], payload["writer_id"]
    ) as writer:
        writer.write_segments(segments)
        return writer.records_written


@pool_task("replay")
def _task_replay(payload):
    """Replay one event schedule end to end (pure, retryable)."""
    from repro.simulation.events import EventSchedule
    from repro.simulation.replay import replay

    schedule = EventSchedule(
        times=attach_slice(payload["times"]),
        registers=attach_slice(payload["registers"]),
        values=attach_slice(payload["values"]),
        n_exact=payload["n_exact"],
    )
    return replay(
        schedule,
        payload["params"],
        payload["checkpoints"],
        bias_correction=payload["bias_correction"],
    )


def _worker_main(job_queue, result_queue) -> None:
    """Worker loop: run registry tasks until the ``None`` sentinel.

    Jobs carry the parent's metrics-enabled flag (a parent that called
    :func:`repro.obs.metrics.enable` programmatically has no environment
    variable for a spawn worker to inherit). When set, the worker
    collects during the task and ships its *drained* registry — deltas,
    so repeated jobs merge additively in the parent without double
    counting — as the fourth element of the result tuple.
    """
    # A fork-started worker inherits the parent registry's *values* at
    # fork time; shipping those back would double count the parent's own
    # work. Start from zero — only this worker's deltas ever ship.
    _metrics.REGISTRY.reset()
    while True:
        job = job_queue.get()
        if job is None:
            break
        job_id, task_name, payload, obs = job
        if obs and not _metrics.enabled():
            _metrics.enable()
        try:
            result = _TASKS[task_name](payload)
        except Exception as exc:  # surfaced in the parent as RuntimeError
            import traceback

            result_queue.put(
                (job_id, False, f"{exc!r}\n{traceback.format_exc()}", None)
            )
        else:
            captured = _metrics.drain() if obs else None
            result_queue.put((job_id, True, result, captured))


# -- the pool ------------------------------------------------------------------


class _Worker:
    __slots__ = ("job_queue", "process")

    def __init__(self, context, result_queue) -> None:
        self.job_queue = context.SimpleQueue()
        self.process = context.Process(
            target=_worker_main,
            args=(self.job_queue, result_queue),
            daemon=True,
            name="repro-pool-worker",
        )
        self.process.start()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


_POOLS: "weakref.WeakSet[PersistentIngestPool]" = weakref.WeakSet()


@atexit.register
def _shutdown_all_pools() -> None:  # pragma: no cover - exit path
    for pool in list(_POOLS):
        try:
            pool.shutdown()
        except Exception:
            pass


class PersistentIngestPool:
    """A lazily-spawned, idle-reaped, crash-respawning worker pool.

    One instance serves arbitrarily many calls; workers and the transport
    segment persist between them (the whole point — warm calls skip both
    pool start-up and hash pickling). Calls are serialised by an internal
    lock; the pool grows to the largest ``workers`` ever requested.
    """

    def __init__(
        self,
        workers: int | None = None,
        start_method: str | None = None,
        idle_timeout: float | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._default_workers = workers or os.cpu_count() or 1
        self._start_method = start_method or preferred_start_method()
        self._idle_timeout = (
            _idle_timeout_default() if idle_timeout is None else float(idle_timeout)
        )
        self._context = multiprocessing.get_context(self._start_method)
        self._lock = threading.Lock()
        self._workers: list[_Worker] = []
        self._result_queue = None
        self._segment: shared_memory.SharedMemory | None = None
        self._job_counter = 0
        self._spawn_count = 0
        self._respawn_count = 0
        self._last_used = time.monotonic()
        self._owner_pid = os.getpid()
        self._reaper: threading.Thread | None = None
        _POOLS.add(self)

    # -- lifecycle -------------------------------------------------------------

    @property
    def start_method(self) -> str:
        return self._start_method

    @property
    def spawn_count(self) -> int:
        """Total workers ever spawned (reuse shows as a constant count)."""
        return self._spawn_count

    @property
    def respawn_count(self) -> int:
        """Workers respawned after dying unexpectedly (0 in healthy runs)."""
        return self._respawn_count

    def worker_pids(self) -> list[int]:
        """PIDs of the currently-live workers."""
        self._check_fork()
        with self._lock:
            return [w.process.pid for w in self._workers if w.alive]

    def warm(self, workers: int | None = None) -> "PersistentIngestPool":
        """Ensure at least ``workers`` live worker processes exist."""
        self._check_fork()
        with self._lock:
            self._ensure_workers_locked(workers or self._default_workers)
            self._last_used = time.monotonic()
        return self

    def shutdown(self) -> None:
        """Stop all workers and release the transport segment.

        The pool object stays usable — the next call respawns lazily.
        """
        if os.getpid() != self._owner_pid:
            return  # inherited through fork: nothing here is ours to stop
        with self._lock:
            self._stop_workers_locked()
            self._release_segment_locked()

    def _check_fork(self) -> None:
        """Reset state inherited through ``os.fork`` (child side)."""
        if os.getpid() == self._owner_pid:
            return
        # Everything below belongs to the parent: abandon, don't close.
        self._lock = threading.Lock()
        self._workers = []
        self._result_queue = None
        self._segment = None
        self._job_counter = 0
        self._spawn_count = 0
        self._respawn_count = 0
        self._owner_pid = os.getpid()
        self._reaper = None

    def _ensure_workers_locked(self, count: int) -> None:
        # Spawn the resource tracker BEFORE any worker forks: on Linux no
        # tracker exists until the first SharedMemory is created (which
        # happens after the workers are alive), so forked workers would
        # each launch a private tracker on their first attach — and those
        # trackers would warn about "leaked" segments the parent has long
        # unlinked. Forking after ensure_running shares the parent's.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        if self._result_queue is None:
            self._result_queue = self._context.Queue()
        for slot, worker in enumerate(self._workers):
            if not worker.alive:
                self._note_respawn(slot, worker.process.exitcode)
                self._workers[slot] = _Worker(self._context, self._result_queue)
                self._spawn_count += 1
        while len(self._workers) < count:
            self._workers.append(_Worker(self._context, self._result_queue))
            self._spawn_count += 1
        if self._reaper is None and self._idle_timeout > 0:
            self._reaper = threading.Thread(
                target=self._reap_idle_loop,
                name="repro-pool-reaper",
                daemon=True,
            )
            self._reaper.start()

    def _note_respawn(self, slot: int, exitcode) -> None:
        """Make a worker death visible: warning log + respawn counter."""
        self._respawn_count += 1
        _WORKER_RESPAWNS.inc()
        logger.warning(
            "pool worker in slot %d died unexpectedly (exit code %s); "
            "respawning (respawn #%d of this pool)",
            slot,
            exitcode,
            self._respawn_count,
        )

    def _stop_workers_locked(self) -> None:
        workers, self._workers = self._workers, []
        for worker in workers:
            if worker.alive:
                try:
                    worker.job_queue.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + 2.0
        for worker in workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.alive:
                worker.process.terminate()
                worker.process.join(1.0)
        if self._result_queue is not None:
            self._result_queue.cancel_join_thread()
            self._result_queue.close()
            self._result_queue = None

    def _release_segment_locked(self) -> None:
        if self._segment is not None:
            try:
                self._segment.close()
                self._segment.unlink()
            except Exception:
                pass
            self._segment = None

    def _reap_idle_loop(self) -> None:  # pragma: no cover - timing loop
        interval = max(0.05, min(1.0, self._idle_timeout / 4.0))
        while True:
            time.sleep(interval)
            if os.getpid() != self._owner_pid:
                return  # forked copy: the thread does not exist here anyway
            with self._lock:
                if not self._workers:
                    continue
                if time.monotonic() - self._last_used >= self._idle_timeout:
                    self._stop_workers_locked()
                    self._release_segment_locked()

    # -- transport -------------------------------------------------------------

    def _pack_locked(self, arrays: Sequence[np.ndarray]) -> list[ShmSlice]:
        """Copy arrays into the reusable segment; return their descriptors.

        The previous call's results were consumed before this runs (calls
        are synchronous), so overwriting / replacing the segment is safe;
        a replaced segment is unlinked and lives on only for workers that
        still hold it mapped.
        """
        arrays = [np.ascontiguousarray(a) for a in arrays]
        total = sum(-(-a.nbytes // _ALIGN) * _ALIGN for a in arrays)
        if self._segment is None or self._segment.size < total:
            self._release_segment_locked()
            self._segment = shared_memory.SharedMemory(
                create=True, size=max(total, 1)
            )
            _SHM_ALLOC.inc()
        else:
            _SHM_REUSE.inc()
        _SHM_BYTES.inc(total)
        slices: list[ShmSlice] = []
        offset = 0
        for array in arrays:
            if array.ndim != 1:
                array = array.reshape(-1)
            view = np.ndarray(
                array.shape, array.dtype, buffer=self._segment.buf, offset=offset
            )
            view[...] = array
            slices.append(
                ShmSlice(self._segment.name, offset, array.size, array.dtype.str)
            )
            offset += -(-array.nbytes // _ALIGN) * _ALIGN
        return slices

    # -- dispatch --------------------------------------------------------------

    def map(self, task: str, payloads, workers: int | None = None,
            retryable: bool = True) -> list:
        """Run registry task ``task`` over ``payloads``; ordered results.

        Payloads must be picklable; large arrays should be packed via the
        higher-level entry points (which hold the lock across pack+map so
        the segment cannot be repacked mid-flight).
        """
        self._check_fork()
        payloads = list(payloads)
        if not payloads:
            return []
        with self._lock:
            return self._map_locked(task, payloads, workers, retryable)

    def _map_locked(self, task, payloads, workers, retryable) -> list:
        count = min(workers or self._default_workers, len(payloads))
        self._ensure_workers_locked(count)
        active = self._workers[:count]
        results = [None] * len(payloads)
        pending: dict[int, tuple[int, int, object]] = {}
        attempts: dict[int, int] = {}
        obs = _metrics.enabled()
        started = time.perf_counter() if obs else 0.0
        for position, payload in enumerate(payloads):
            job_id = self._job_counter
            self._job_counter += 1
            slot = position % count
            pending[job_id] = (slot, position, payload)
            attempts[job_id] = 1
            active[slot].job_queue.put((job_id, task, payload, obs))
        if obs:
            _JOBS.inc(len(payloads))
            _QUEUE_DEPTH.set(len(pending))
        with _trace.span("pool.map", task=task, jobs=len(payloads)):
            while pending:
                try:
                    job_id, ok, value, captured = self._result_queue.get(
                        timeout=0.1
                    )
                except queue.Empty:
                    self._handle_dead_locked(
                        task, pending, attempts, retryable, count, obs
                    )
                    continue
                except (EOFError, OSError):
                    self._handle_dead_locked(
                        task, pending, attempts, retryable, count, obs
                    )
                    continue
                if captured:
                    # Worker-side deltas merge like partial sketches do.
                    _metrics.merge_snapshot(captured)
                if job_id not in pending:
                    continue  # duplicate from a retried-then-completed job
                if not ok:
                    raise RuntimeError(
                        f"pool task {task!r} failed in worker:\n{value}"
                    )
                _, position, _ = pending.pop(job_id)
                results[position] = value
        if obs:
            _QUEUE_DEPTH.set(0)
            _DISPATCH_SECONDS.observe(time.perf_counter() - started)
        self._last_used = time.monotonic()
        return results

    def _handle_dead_locked(self, task, pending, attempts, retryable, count,
                            obs: bool = False):
        """Respawn crashed workers; re-dispatch or fail their lost jobs."""
        dead_slots = [
            slot for slot in range(count) if not self._workers[slot].alive
        ]
        if not dead_slots:
            return
        # Results a worker emitted before dying are already queued; drain
        # them first so only genuinely lost jobs are attributed.
        drained = []
        while True:
            try:
                drained.append(self._result_queue.get_nowait())
            except (queue.Empty, EOFError, OSError):
                break
        for item in drained:
            job_id = item[0]
            if job_id in pending:
                # Push back through the normal path by re-queueing.
                self._result_queue.put(item)
        queued_ids = {item[0] for item in drained}
        for slot in dead_slots:
            exitcode = self._workers[slot].process.exitcode
            self._note_respawn(slot, exitcode)
            self._workers[slot] = _Worker(self._context, self._result_queue)
            self._spawn_count += 1
            lost = [
                job_id
                for job_id, (job_slot, _, _) in pending.items()
                if job_slot == slot and job_id not in queued_ids
            ]
            for job_id in lost:
                if not retryable:
                    raise RuntimeError(
                        f"pool worker died (exit code {exitcode}) running "
                        f"non-retryable task {task!r}"
                    )
                if attempts[job_id] >= 2:
                    raise RuntimeError(
                        f"pool task {task!r} crashed its worker twice "
                        f"(exit code {exitcode}); giving up"
                    )
                attempts[job_id] += 1
                _, position, payload = pending[job_id]
                pending[job_id] = (slot, position, payload)
                self._workers[slot].job_queue.put((job_id, task, payload, obs))

    # -- wired entry points ----------------------------------------------------

    def _backend_name(self) -> str:
        from repro.backends.select import active_backend

        return active_backend().name

    def fold_registers(self, hashes: np.ndarray, bounds, params,
                       workers: int | None = None) -> np.ndarray:
        """Fold slice bounds of ``hashes`` across workers; merged result.

        Bit-identical to the sequential ``exaloglog_registers`` fold: the
        per-slice partials merge with the exact Algorithm 5 reduction.
        """
        from repro.backends.bulk import merge_exaloglog_registers

        backend = self._backend_name()
        self._check_fork()
        with self._lock:
            base = self._pack_locked([hashes])[0]
            payloads = [
                {
                    "hashes": base.sub(start, stop),
                    "params": params,
                    "backend": backend,
                }
                for start, stop in bounds
            ]
            partials = self._map_locked(
                "fold", payloads, workers or len(payloads), True
            )
        reduced = partials[0]
        for partial in partials[1:]:
            reduced = merge_exaloglog_registers(reduced, partial, params.d)
        return reduced

    def group_fold(self, config, keyed_hashes, shard_indices,
                   workers: int | None = None) -> list[bytes]:
        """Build per-shard partial aggregators; serialized blobs in order."""
        backend = self._backend_name()
        self._check_fork()
        with self._lock:
            slices = self._pack_locked([hashes for _, hashes in keyed_hashes])
            payloads = [
                {
                    "config": config,
                    "backend": backend,
                    "segments": [
                        (keyed_hashes[i][0], slices[i]) for i in shard
                    ],
                }
                for shard in shard_indices
            ]
            return self._map_locked(
                "group_fold", payloads, workers or len(payloads), True
            )

    def spill(self, directory: str, partitions: int, keyed_hashes,
              shard_indices, writer_suffix: str,
              workers: int | None = None) -> int:
        """Spill shards to disk; returns total records written.

        Spill appends are not idempotent, so a worker crash raises
        instead of retrying (partial files are ignored by recovery).
        """
        self._check_fork()
        with self._lock:
            slices = self._pack_locked([hashes for _, hashes in keyed_hashes])
            payloads = [
                {
                    "directory": directory,
                    "partitions": partitions,
                    "writer_id": f"s{index}{writer_suffix}",
                    "segments": [
                        (keyed_hashes[i][0], slices[i]) for i in shard
                    ],
                }
                for index, shard in enumerate(shard_indices)
            ]
            counts = self._map_locked(
                "spill", payloads, workers or len(payloads), False
            )
        return sum(counts)

    def replay_schedules(self, schedules, params, checkpoints,
                         bias_correction: bool = True,
                         workers: int | None = None) -> list:
        """Replay independent event schedules across the pool (in order)."""
        self._check_fork()
        with self._lock:
            arrays: list[np.ndarray] = []
            for schedule in schedules:
                arrays.extend(
                    (schedule.times, schedule.registers, schedule.values)
                )
            slices = self._pack_locked(arrays)
            payloads = [
                {
                    "times": slices[3 * i],
                    "registers": slices[3 * i + 1],
                    "values": slices[3 * i + 2],
                    "n_exact": schedule.n_exact,
                    "params": params,
                    "checkpoints": tuple(checkpoints),
                    "bias_correction": bias_correction,
                }
                for i, schedule in enumerate(schedules)
            ]
            return self._map_locked(
                "replay", payloads, workers or len(payloads), True
            )

    def __repr__(self) -> str:
        return (
            f"PersistentIngestPool(workers={self._default_workers}, "
            f"start_method={self._start_method!r}, "
            f"live={len(self._workers)}, spawned={self._spawn_count})"
        )


# -- module-level default pool -------------------------------------------------

_DEFAULT_POOL: PersistentIngestPool | None = None
_DEFAULT_LOCK = threading.Lock()


def get_pool() -> PersistentIngestPool:
    """The process-wide default pool (created lazily, fork-safe)."""
    global _DEFAULT_POOL
    if _DEFAULT_POOL is None:
        with _DEFAULT_LOCK:
            if _DEFAULT_POOL is None:
                _DEFAULT_POOL = PersistentIngestPool()
    return _DEFAULT_POOL


def shutdown_default_pool() -> None:
    """Stop the default pool's workers (it respawns lazily if used again)."""
    pool = _DEFAULT_POOL
    if pool is not None:
        pool.shutdown()
