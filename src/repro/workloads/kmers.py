"""Synthetic genomics workload: k-mer streams (paper Sec. 1 applications).

Metagenomics tools (Dashing, KrakenUniq) use HyperLogLog to count distinct
k-mers in sequencing reads. This module generates synthetic genomes and
read sets so the examples can demonstrate the same pipeline with ExaLogLog
— at 43 % less memory for the same accuracy.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.simulation.rng import numpy_generator

_ALPHABET = np.frombuffer(b"ACGT", dtype=np.uint8)


def random_genome(length: int, seed: int = 0) -> bytes:
    """A uniform random DNA sequence of ``length`` bases."""
    rng = numpy_generator(seed, 10)
    return _ALPHABET[rng.integers(0, 4, size=length)].tobytes()


def sequencing_reads(
    genome: bytes,
    read_length: int = 100,
    coverage: float = 5.0,
    error_rate: float = 0.0,
    seed: int = 0,
) -> Iterator[bytes]:
    """Random reads sampled from a genome with optional substitution errors.

    ``coverage`` is the average number of times each base is covered.
    """
    if read_length > len(genome):
        raise ValueError("read length exceeds genome length")
    rng = numpy_generator(seed, 11)
    n_reads = int(len(genome) * coverage / read_length)
    for _ in range(n_reads):
        start = int(rng.integers(0, len(genome) - read_length + 1))
        read = bytearray(genome[start : start + read_length])
        if error_rate > 0.0:
            errors = rng.random(read_length) < error_rate
            for position in np.nonzero(errors)[0]:
                read[position] = int(_ALPHABET[rng.integers(0, 4)])
        yield bytes(read)


def kmers(sequence: bytes, k: int = 21) -> Iterator[bytes]:
    """All overlapping k-mers of a sequence."""
    if k <= 0:
        raise ValueError("k must be positive")
    for start in range(len(sequence) - k + 1):
        yield sequence[start : start + k]


def canonical_kmers(sequence: bytes, k: int = 21) -> Iterator[bytes]:
    """K-mers folded with their reverse complements (standard in genomics)."""
    complement = bytes.maketrans(b"ACGT", b"TGCA")
    for kmer in kmers(sequence, k):
        reverse = kmer.translate(complement)[::-1]
        yield kmer if kmer <= reverse else reverse
