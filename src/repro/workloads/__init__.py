"""Synthetic workload generators (database, network, genomics scenarios)."""

from repro.workloads.kmers import canonical_kmers, kmers, random_genome, sequencing_reads
from repro.workloads.streams import (
    FlowRecord,
    flow_stream,
    shard_stream,
    uniform_stream,
    zipf_stream,
)

__all__ = [
    "FlowRecord",
    "canonical_kmers",
    "flow_stream",
    "kmers",
    "random_genome",
    "sequencing_reads",
    "shard_stream",
    "uniform_stream",
    "zipf_stream",
]
