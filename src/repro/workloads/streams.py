"""Synthetic stream generators for examples and benches.

The paper's motivating applications (Sec. 1) are database distinct-count
queries, network monitoring, and metagenomics. These generators produce
realistic stand-ins: duplicate-heavy Zipf streams (database columns),
sharded streams (distributed processing), and labelled flow streams
(network telemetry).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.simulation.rng import numpy_generator


def zipf_stream(
    length: int,
    distinct: int,
    exponent: float = 1.2,
    seed: int = 0,
) -> Iterator[bytes]:
    """A duplicate-heavy stream over ``distinct`` keys with Zipf popularity.

    Typical of database columns (user ids, URLs): a few keys dominate, the
    tail is long. The true distinct count of the emitted stream is at most
    ``distinct`` (usually less; count with an exact counter if needed).
    """
    if distinct <= 0 or length < 0:
        raise ValueError("distinct must be positive and length non-negative")
    rng = numpy_generator(seed, 0)
    ranks = np.arange(1, distinct + 1, dtype=np.float64)
    weights = ranks ** -exponent
    weights /= weights.sum()
    choices = rng.choice(distinct, size=length, p=weights)
    for choice in choices:
        yield b"key-%d" % int(choice)


def uniform_stream(length: int, distinct: int, seed: int = 0) -> Iterator[bytes]:
    """A stream drawing uniformly from ``distinct`` keys."""
    rng = numpy_generator(seed, 1)
    for choice in rng.integers(0, distinct, size=length):
        yield b"key-%d" % int(choice)


def shard_stream(
    total_distinct: int,
    shards: int,
    overlap: float = 0.1,
    seed: int = 0,
) -> list[list[bytes]]:
    """Partition ``total_distinct`` keys over ``shards`` with some overlap.

    Models distributed ingestion where the same user can hit multiple
    shards — the scenario that motivates mergeability (Sec. 1).
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must lie in [0, 1]")
    rng = numpy_generator(seed, 2)
    partitions: list[list[bytes]] = [[] for _ in range(shards)]
    for key_id in range(total_distinct):
        key = b"user-%d" % key_id
        home = int(rng.integers(0, shards))
        partitions[home].append(key)
        if rng.random() < overlap:
            other = int(rng.integers(0, shards))
            if other != home:
                partitions[other].append(key)
    return partitions


@dataclass(frozen=True)
class FlowRecord:
    """One network flow observation."""

    source: str
    destination: str
    port: int

    def flow_key(self) -> bytes:
        return f"{self.destination}:{self.port}".encode()


def flow_stream(
    length: int,
    sources: int = 50,
    destinations: int = 1000,
    scanner: str | None = "10.0.0.666",
    scanner_fraction: float = 0.05,
    seed: int = 0,
) -> Iterator[FlowRecord]:
    """Network flow records with an optional port-scanning source.

    Normal sources talk to a handful of (destination, port) pairs; the
    scanner touches a new pair almost every time — the port-scan detection
    use case of Sec. 1 (HLL-based attack detection).
    """
    rng = numpy_generator(seed, 3)
    scan_counter = 0
    for _ in range(length):
        if scanner is not None and rng.random() < scanner_fraction:
            scan_counter += 1
            yield FlowRecord(
                source=scanner,
                destination=f"192.168.1.{scan_counter % 254 + 1}",
                port=int(1024 + scan_counter % 50000),
            )
        else:
            source = f"10.0.0.{int(rng.integers(1, sources + 1))}"
            destination = f"192.168.0.{int(rng.integers(1, 40))}"
            port = int(rng.choice([80, 443, 22, 53, 8080]))
            yield FlowRecord(source=source, destination=destination, port=port)
