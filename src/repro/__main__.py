"""Top-level CLI: ``python -m repro``.

Prints the library banner, the available experiments, and the theoretical
properties of the paper's named configurations.
"""

from __future__ import annotations

import sys


def main() -> int:
    import repro
    from repro.experiments import EXPERIMENTS
    from repro.theory.mvp import (
        mvp_hll,
        mvp_martingale_dense,
        mvp_ml_dense,
        savings_vs_hll,
    )

    print(f"repro {repro.__version__} — ExaLogLog (Ertl, EDBT 2025) reproduction")
    print()
    print("named configurations (dense storage):")
    header = f"  {'config':<12} {'bits/reg':>8} {'MVP (ML)':>9} {'MVP (mart.)':>11} {'vs HLL':>8}"
    print(header)
    for name, t, d in (
        ("HLL", 0, 0),
        ("ULL", 0, 2),
        ("ELL(1,9)", 1, 9),
        ("ELL(2,16)", 2, 16),
        ("ELL(2,20)", 2, 20),
        ("ELL(2,24)", 2, 24),
    ):
        ml = mvp_ml_dense(t, d)
        print(
            f"  {name:<12} {6 + t + d:>8} {ml:>9.2f} "
            f"{mvp_martingale_dense(t, d):>11.2f} {savings_vs_hll(ml):>7.1%}"
        )
    print(f"\n(HLL reference MVP: {mvp_hll():.3f})")
    print("\nexperiments (python -m repro.experiments <name>):")
    print("  " + ", ".join(EXPERIMENTS))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
