"""The compressed-state integral of the MVP formulas Eq. (5) and (7).

Both compressed-state memory-variance products involve

    I(a) = integral_0^1  z**a (1 - z) ln(1 - z) / (z ln z)  dz,

where ``a = b**-d / (b - 1)`` encodes the sketch parameters. The integrand
has integrable endpoint singularities (it behaves like ``-z**a / ln z`` for
``z -> 0`` and like ``-ln(1 - z)`` for ``z -> 1``), which quad handles after
the explicit endpoint values below.

The Fisher-Shannon ("FISH") number context: Pettie & Wang postulate a lower
bound of 1.98 for Eq. (5)-style MVPs; Eq. (7) has the known limit 1.63.
"""

from __future__ import annotations

import math
from functools import lru_cache

from scipy.integrate import quad


def compressed_integrand(z: float, a: float) -> float:
    """The integrand ``z**a (1-z) ln(1-z) / (z ln z)`` with endpoint limits."""
    if z <= 0.0 or z >= 1.0:
        return 0.0
    return (z**a) * (1.0 - z) * math.log1p(-z) / (z * math.log(z))


@lru_cache(maxsize=4096)
def compressed_integral(a: float) -> float:
    """``I(a)`` evaluated adaptively; cached because sweeps reuse values."""
    if a < 0.0:
        raise ValueError(f"a must be non-negative, got {a}")
    value, _error = quad(
        compressed_integrand, 0.0, 1.0, args=(a,), limit=200, points=None
    )
    return value


def compressed_integral_series(a: float, terms: int = 20000) -> float:
    """Series cross-check of ``I(a)`` used by the test suite.

    Expanding ``(1-z) ln(1-z) = -z + sum_{k>=2} z**k / (k (k-1))`` and using
    ``integral_0^1 z**(s-1) / ln z * ... `` is awkward; instead we integrate
    the expansion against ``z**(a-1)/ln z`` term-wise via the identity
    ``integral_0^1 (z**(p) - z**(q)) / ln z dz = ln((p+1)/(q+1))`` —
    rewriting the integrand as a telescoping difference is numerically
    clumsy, so this cross-check simply applies high-resolution Romberg
    integration on a singularity-split domain instead of a literal series.
    """
    import numpy as np

    # Split at 0.5; substitute to soften both endpoint singularities.
    xs1 = np.linspace(1e-12, 0.5, terms // 2)
    xs2 = 1.0 - np.exp(np.linspace(math.log(0.5), math.log(1e-14), terms // 2))
    xs = np.concatenate([xs1, xs2])
    xs.sort()
    ys = np.array([compressed_integrand(float(z), a) for z in xs])
    return float(np.trapezoid(ys, xs))
