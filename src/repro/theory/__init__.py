"""Theoretical predictions: MVP formulas, zeta/integral substrates."""

from repro.theory.fisher import compressed_integral, compressed_integrand
from repro.theory.mvp import (
    CONJECTURED_LOWER_BOUND,
    MARTINGALE_COMPRESSED_LIMIT,
    base_from_t,
    bias_correction_constant,
    memory_for_error,
    mvp_ehll,
    mvp_hll,
    mvp_martingale_compressed,
    mvp_martingale_dense,
    mvp_ml_compressed,
    mvp_ml_dense,
    mvp_ull,
    optimal_d,
    savings_vs_hll,
    theoretical_relative_rmse,
)
from repro.theory.zeta import hurwitz_zeta, hurwitz_zeta_reference

__all__ = [
    "CONJECTURED_LOWER_BOUND",
    "MARTINGALE_COMPRESSED_LIMIT",
    "base_from_t",
    "bias_correction_constant",
    "compressed_integral",
    "compressed_integrand",
    "hurwitz_zeta",
    "hurwitz_zeta_reference",
    "memory_for_error",
    "mvp_ehll",
    "mvp_hll",
    "mvp_martingale_compressed",
    "mvp_martingale_dense",
    "mvp_ml_compressed",
    "mvp_ml_dense",
    "mvp_ull",
    "optimal_d",
    "savings_vs_hll",
    "theoretical_relative_rmse",
]
