"""Hurwitz zeta function (paper Table 1).

``zeta(x, y) = sum_{u=0}^inf (u + y)**-x`` for ``x > 1``, ``y > 0``.

The MVP formulas of Sec. 2.1 need ``zeta(2, .)`` and ``zeta(3, .)``. SciPy
provides the Hurwitz zeta; we keep a pure-Python Euler-Maclaurin
implementation both as a fallback and as an independent cross-check for
the test suite (the two agree to ~1e-12).
"""

from __future__ import annotations

import math

try:  # pragma: no cover - import guard
    from scipy.special import zeta as _scipy_zeta
except ImportError:  # pragma: no cover
    _scipy_zeta = None

#: Bernoulli numbers B_2, B_4, ... B_12 for the Euler-Maclaurin tail.
_BERNOULLI = (1.0 / 6, -1.0 / 30, 1.0 / 42, -1.0 / 30, 5.0 / 66, -691.0 / 2730)


def hurwitz_zeta_reference(x: float, y: float, terms: int = 24) -> float:
    """Euler-Maclaurin evaluation of the Hurwitz zeta function.

    Direct summation of the first ``terms`` terms plus the tail integral,
    the midpoint correction, and Euler-Maclaurin derivative corrections

        sum_j B_2j / (2j)! * x (x+1) ... (x+2j-2) * a**-(x+2j-1),

    accurate to ~1e-13 for the arguments used in this library
    (x in {2, 3}, y in (0, 3]).
    """
    if x <= 1.0:
        raise ValueError(f"hurwitz zeta requires x > 1, got {x}")
    if y <= 0.0:
        raise ValueError(f"hurwitz zeta requires y > 0, got {y}")
    total = 0.0
    for u in range(terms):
        total += (u + y) ** -x
    a = terms + y
    total += a ** (1.0 - x) / (x - 1.0)
    total += 0.5 * a**-x
    rising = x  # x (x+1) ... (x + 2j - 2), built incrementally
    power = a ** (-x - 1.0)
    for j, bernoulli in enumerate(_BERNOULLI, start=1):
        total += bernoulli / math.factorial(2 * j) * rising * power
        rising *= (x + 2 * j - 1) * (x + 2 * j)
        power /= a * a
    return total


def hurwitz_zeta(x: float, y: float) -> float:
    """Hurwitz zeta ``zeta(x, y)`` (SciPy-backed when available)."""
    if _scipy_zeta is not None:
        return float(_scipy_zeta(x, y))
    return hurwitz_zeta_reference(x, y)
