"""Memory-variance products and related constants (paper Sec. 2.1, 2.4).

The memory-variance product (MVP, Eq. (1)) is

    MVP = Var(n_hat / n) * (storage size in bits),

an asymptotic constant per data structure that removes the generic
``1/sqrt(bits)`` error scaling and so allows fair space-efficiency
comparison. This module implements the paper's four theoretical MVPs:

=========  ===========================  ==========================
Equation   storage model                estimator
=========  ===========================  ==========================
Eq. (3)    dense bit array              efficient unbiased (ML)
Eq. (6)    dense bit array              martingale
Eq. (5)    optimally compressed         efficient unbiased (ML)
Eq. (7)    optimally compressed         martingale
=========  ===========================  ==========================

plus the bias-correction constant ``c`` of Eq. (4) and the theoretical
relative RMSE used throughout Figure 8. Everything is parameterised by
``(t, d)`` through ``b = 2**(2**-t)`` and ``q = 6 + t``.

Reference values (Sec. 2.4, all reproduced by the test suite):
HLL 6.45, EHLL 5.43, ULL 4.63, ELL(2,20) 3.67, ELL(2,24) 3.78,
ELL(1,9) 3.90, martingale ELL(2,16) 2.77.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.theory.fisher import compressed_integral
from repro.theory.zeta import hurwitz_zeta

#: Conjectured lower bound for mergeable+reproducible sketches [Pettie-Wang].
CONJECTURED_LOWER_BOUND = 1.98

#: Theoretical limit for the compressed martingale MVP Eq. (7).
MARTINGALE_COMPRESSED_LIMIT = 1.63


def base_from_t(t: int) -> float:
    """The geometric base ``b = 2**(2**-t)`` the ELL distribution mimics."""
    if t < 0:
        raise ValueError("t must be non-negative")
    return 2.0 ** (2.0 ** -t)


def _zeta_argument(b: float, d: int) -> float:
    """``1 + b**-d / (b - 1)``, the recurring Hurwitz-zeta offset."""
    return 1.0 + b ** (-d) / (b - 1.0)


def register_bits(t: int, d: int) -> int:
    """Dense register width ``q + d = 6 + t + d``."""
    return 6 + t + d


def mvp_ml_dense(t: int, d: int) -> float:
    """Eq. (3): MVP for dense storage and an efficient unbiased estimator.

    >>> round(mvp_ml_dense(0, 0), 2)   # HyperLogLog
    6.45
    >>> round(mvp_ml_dense(2, 20), 2)  # the paper's headline configuration
    3.67
    """
    b = base_from_t(t)
    return register_bits(t, d) * math.log(b) / hurwitz_zeta(2.0, _zeta_argument(b, d))


def mvp_martingale_dense(t: int, d: int) -> float:
    """Eq. (6): MVP for dense storage and the martingale estimator.

    >>> round(mvp_martingale_dense(2, 16), 2)
    2.77
    """
    b = base_from_t(t)
    return register_bits(t, d) * math.log(b) / 2.0 * _zeta_argument(b, d)


def mvp_ml_compressed(t: int, d: int) -> float:
    """Eq. (5): MVP for optimally compressed state, efficient estimator."""
    b = base_from_t(t)
    a = b ** (-d) / (b - 1.0)
    numerator = 1.0 / (1.0 + a) + compressed_integral(a)
    return numerator / (hurwitz_zeta(2.0, 1.0 + a) * math.log(2.0))


def mvp_martingale_compressed(t: int, d: int) -> float:
    """Eq. (7): MVP for optimally compressed state, martingale estimator."""
    b = base_from_t(t)
    a = b ** (-d) / (b - 1.0)
    return (1.0 + (1.0 + a) * compressed_integral(a)) / (2.0 * math.log(2.0))


@lru_cache(maxsize=1024)
def bias_correction_constant(t: int, d: int) -> float:
    """The constant ``c`` of the first-order bias correction Eq. (4).

    ``c = ln(b) (1 + 2 b**-d/(b-1)) zeta(3, y) / zeta(2, y)**2`` with
    ``y = 1 + b**-d/(b-1)``.
    """
    b = base_from_t(t)
    a = b ** (-d) / (b - 1.0)
    y = 1.0 + a
    return (
        math.log(b)
        * (1.0 + 2.0 * a)
        * hurwitz_zeta(3.0, y)
        / hurwitz_zeta(2.0, y) ** 2
    )


def theoretical_relative_rmse(t: int, d: int, p: int, martingale: bool = False) -> float:
    """The Figure 8 reference line: ``sqrt(MVP / ((q + d) m))``."""
    mvp = mvp_martingale_dense(t, d) if martingale else mvp_ml_dense(t, d)
    m = 1 << p
    return math.sqrt(mvp / (register_bits(t, d) * m))


def memory_for_error(mvp: float, relative_error: float) -> float:
    """Figure 1: memory (bits) needed for a target relative standard error.

    From Eq. (1): ``bits = MVP / error**2``.
    """
    if relative_error <= 0.0:
        raise ValueError("relative error must be positive")
    return mvp / relative_error**2


# -- named reference points (Sec. 2.4 / Sec. 2.5) -----------------------------


def mvp_hll() -> float:
    """HyperLogLog with 6-bit registers: ELL(0, 0)."""
    return mvp_ml_dense(0, 0)


def mvp_ehll() -> float:
    """ExtendedHyperLogLog: ELL(0, 1)."""
    return mvp_ml_dense(0, 1)


def mvp_ull() -> float:
    """UltraLogLog: ELL(0, 2)."""
    return mvp_ml_dense(0, 2)


def optimal_d(t: int, mvp_function=mvp_ml_dense, d_max: int = 64) -> tuple[int, float]:
    """Search the ``d`` minimising an MVP formula for fixed ``t`` (Figures 4-7)."""
    best_d = 0
    best_value = math.inf
    for d in range(d_max + 1):
        value = mvp_function(t, d)
        if value < best_value:
            best_value = value
            best_d = d
    return best_d, best_value


def savings_vs_hll(mvp: float) -> float:
    """Relative MVP saving against 6-bit HLL (the paper's headline metric)."""
    return 1.0 - mvp / mvp_hll()
