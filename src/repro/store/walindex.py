"""Group-level WAL index: key → (lsn, offset, length) of each WAL record.

A :class:`~repro.store.sketchstore.SketchStore` WAL interleaves records of
many groups; answering "what happened to *this* group since the snapshot"
by scanning the whole log reads every other group's hash payloads too. The
index is a sidecar log — ``walidx-<gen>.log`` beside ``wal-<gen>.log`` —
appending one tiny entry per WAL record, so a reader can seek straight to
one group's records (selective replay, see
:meth:`repro.store.reader.SnapshotReader.group_sketch`).

Entries use the shared checksummed framing of
:func:`repro.storage.serialization.write_record` with the group key as the
record key and ``uvarint lsn | uvarint offset | uvarint length`` as the
payload, behind a ``TAG_WAL_INDEX`` file header.

The index is *advisory*, never authoritative: the writer appends the WAL
record first and the index entry after, so the index can lag the WAL by
the records of an in-flight append (or arbitrarily far after a crash — the
writer rebuilds it on recovery, readers scan the unindexed WAL tail).
A reader must therefore treat the index as a verified prefix: every entry
points at a record whose framing re-validates (CRC, key, LSN) when read
back, and records past the last indexed one are found by a bounded tail
scan from :func:`scan_floor`.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass
from typing import Iterable

from repro.storage.serialization import (
    IncompleteRecordError,
    TAG_WAL_INDEX,
    read_record_from,
    read_uvarint,
    write_record,
)

#: The single record kind inside an index file.
RECORD_INDEX = 0x01


@dataclass(frozen=True)
class WalIndexEntry:
    """Location of one WAL record: its LSN, start offset and byte length."""

    lsn: int
    offset: int
    length: int

    @property
    def end(self) -> int:
        """Offset of the first byte after the indexed WAL record."""
        return self.offset + self.length


class WalIndexWriter:
    """Appends ``(key, lsn, offset, length)`` entries to an index file."""

    def __init__(self, path) -> None:
        self._path = pathlib.Path(path)
        exists = self._path.exists()
        self._handle = open(self._path, "ab")
        if not exists or self._handle.tell() == 0:
            from repro.store.sketchstore import _file_header

            self._handle.write(_file_header(TAG_WAL_INDEX))
            self._handle.flush()

    @property
    def path(self) -> pathlib.Path:
        return self._path

    def append(self, key: bytes, lsn: int, offset: int, length: int) -> None:
        buffer = bytearray()
        payload = bytearray()
        from repro.storage.serialization import write_uvarint

        write_uvarint(payload, lsn)
        write_uvarint(payload, offset)
        write_uvarint(payload, length)
        write_record(buffer, RECORD_INDEX, key, bytes(payload))
        self._handle.write(buffer)
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WalIndexWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def rebuild_wal_index(
    path, entries: Iterable[tuple[bytes, int, int, int]]
) -> None:
    """Atomically rewrite an index file from ``(key, lsn, offset, length)``.

    Used by writer recovery: after a crash the on-disk index may lag the
    WAL or point past a truncated tail, so it is rebuilt wholesale from
    the replay scan (temp file + rename keeps a concurrent reader from
    ever seeing a half-written index).
    """
    from repro.store.sketchstore import _file_header
    from repro.storage.serialization import write_uvarint

    path = pathlib.Path(path)
    buffer = bytearray(_file_header(TAG_WAL_INDEX))
    for key, lsn, offset, length in entries:
        payload = bytearray()
        write_uvarint(payload, lsn)
        write_uvarint(payload, offset)
        write_uvarint(payload, length)
        write_record(buffer, RECORD_INDEX, key, bytes(payload))
    temporary = path.with_suffix(".tmp")
    with open(temporary, "wb") as handle:
        handle.write(buffer)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)


def load_wal_index(path) -> dict[bytes, list[WalIndexEntry]]:
    """Load an index file as ``key -> [WalIndexEntry, ...]`` (LSN order).

    Tolerates a torn tail (the writer may have died mid-entry): loading
    stops at the first incomplete record. A missing file yields an empty
    index — selective replay then degrades to a full-log scan.
    """
    from repro.store.sketchstore import _FILE_HEADER_BYTES, _check_file_header

    path = pathlib.Path(path)
    index: dict[bytes, list[WalIndexEntry]] = {}
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return index
    with handle:
        header = handle.read(_FILE_HEADER_BYTES)
        if len(header) < _FILE_HEADER_BYTES:
            return index  # torn before the header finished: empty index
        _check_file_header(header, TAG_WAL_INDEX, path)
        while True:
            try:
                record = read_record_from(handle)
            except IncompleteRecordError:
                break
            if record is None:
                break
            kind, key, payload = record
            if kind != RECORD_INDEX:
                from repro.storage.serialization import SerializationError

                raise SerializationError(
                    f"{path}: unexpected index record kind {kind:#x}"
                )
            lsn, at = read_uvarint(payload, 0)
            offset, at = read_uvarint(payload, at)
            length, at = read_uvarint(payload, at)
            index.setdefault(key, []).append(WalIndexEntry(lsn, offset, length))
    return index


def scan_floor(index: dict[bytes, list[WalIndexEntry]]) -> int:
    """First WAL offset *not* covered by any index entry.

    Index entries are appended in WAL order, so the maximum entry end
    across all keys bounds the indexed prefix; a selective replay scans
    the WAL from here to pick up records the index has not caught up to.
    Returns 0 for an empty index (scan everything after the file header).
    """
    floor = 0
    for entries in index.values():
        if entries:
            floor = max(floor, entries[-1].end)
    return floor
