"""Durable-store CLI: ``python -m repro.store <command> <directory>``.

Commands
--------

``ingest``
    Append items to a group, either literal (``--items a b c``) or
    synthetic (``--count N`` distinct integers, offset by ``--offset``).
    ``--crash`` hard-kills the process (``os._exit``) after the WAL
    writes, before any clean shutdown — the honest half of a
    crash-recovery drill.
``query``
    Run one :mod:`repro.query` dialect query over the store, e.g.
    ``query /tmp/s "top 10 where key startswith 'country:'"`` (default
    query: ``estimate all``). ``--reader`` answers through a lock-free
    :class:`~repro.store.reader.SnapshotReader` instead — strictly
    read-only (never truncates a torn WAL tail), safe against a live
    writer, and single-key filters go through selective WAL-index
    replay (``--explain`` shows the chosen access path). ``--expect N
    --tolerance F`` turns a single-row result into a check (exit 1 on
    miss) for smoke tests.
``serve``
    A long-running query process: open a reader, refresh on an
    interval, report the durable horizon (and optionally the top-k
    groups) after each refresh. Any number of ``serve`` processes can
    run against one live writer.
``replicate``
    WAL-shipping replication: sync a follower directory from a leader
    store, idempotently by LSN (``--once`` for a single catch-up; the
    default loops like ``serve``).
``compact``
    Fold the WAL into a fresh snapshot generation.
``info``
    Show generation, LSNs, WAL size, and group count.
``cluster``
    Horizontal sharding (see :mod:`repro.cluster`):
    ``cluster init DIR --shards N`` creates a hash-partitioned cluster,
    ``cluster ingest`` routes batches by ``shard_of(key, N)``,
    ``cluster query`` scatter-gathers the same dialect over every shard
    (``--reader`` for lock-free per-shard readers), ``cluster rebalance
    --shards M`` ships whole group sketches to their new owners behind
    cutover fences, and ``cluster status`` prints per-shard health plus
    the skew gauge.
``stats``
    Observability snapshot: enable :mod:`repro.obs.metrics`, run one
    read pass (replay + refresh + a batched estimate solve) over the
    store, and export every metric — human-readable by default,
    ``--json`` or ``--prom`` (Prometheus text exposition) for machines.

``serve`` and ``replicate`` emit one structured heartbeat line per
iteration (``refresh``/``sync`` with ``key=value`` fields including the
refresh/apply lag), retry transient errors with bounded exponential
backoff instead of dying, and — when ``REPRO_METRICS`` is on — print a
``metrics ...`` summary line every ``--metrics-every`` iterations.

Example drill::

    python -m repro.store ingest /tmp/s --group demo --count 50000 --crash
    python -m repro.store query /tmp/s "estimate 'demo'" --expect 50000 --tolerance 0.2
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.aggregate import DistinctCountAggregator
from repro.store import FollowerStore, SketchStore, SnapshotReader, WalShipper

#: Exit status of a ``--crash`` ingest (distinguishable from real errors).
CRASH_EXIT_CODE = 3


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("directory", help="store directory (created if absent)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Durable ExaLogLog sketch store (WAL + snapshots).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser("ingest", help="append items to a group")
    _add_store_arguments(ingest)
    ingest.add_argument("--group", default="default", help="group key (string)")
    ingest.add_argument("--items", nargs="+", help="literal items to add")
    ingest.add_argument("--count", type=int, help="add COUNT synthetic distinct integers")
    ingest.add_argument("--offset", type=int, default=0, help="first synthetic integer")
    ingest.add_argument("--batch", type=int, default=8192, help="items per WAL record")
    # None means "persisted configuration wins" for an existing store
    # (SketchStore.open falls back to ELL(2, 20) at p=8 when creating).
    ingest.add_argument("--t", type=int, default=None)
    ingest.add_argument("--d", type=int, default=None)
    ingest.add_argument("--p", type=int, default=None)
    ingest.add_argument("--fsync", action="store_true", help="fsync every WAL record")
    ingest.add_argument(
        "--compact-every",
        type=int,
        metavar="BYTES",
        help="auto-compact when the WAL exceeds BYTES",
    )
    ingest.add_argument(
        "--crash",
        action="store_true",
        help=f"os._exit({CRASH_EXIT_CODE}) after ingest, skipping clean shutdown",
    )

    query = commands.add_parser(
        "query", help="run a repro.query dialect query over the store"
    )
    _add_store_arguments(query)
    query.add_argument(
        "text",
        nargs="?",
        default="estimate all",
        help="dialect query, e.g. \"top 10 where key startswith 'country:'\" "
        '(default: "estimate all")',
    )
    query.add_argument(
        "--reader",
        action="store_true",
        help="answer through a lock-free read-only SnapshotReader "
        "(safe against a live writer; single-key filters use selective "
        "WAL-index replay)",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the physical plan (chosen access paths) before the rows",
    )
    query.add_argument(
        "--analyze",
        action="store_true",
        help="execute with per-plan-node timing and print the annotated "
        "plan (EXPLAIN ANALYZE) before the rows",
    )
    query.add_argument(
        "--now",
        type=float,
        help="time anchor for 'window' clauses without an explicit 'ending'",
    )
    query.add_argument(
        "--expect",
        type=float,
        help="expected value of a single-row result (exit 1 on miss)",
    )
    query.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="allowed relative error against --expect (default 0.1)",
    )

    serve = commands.add_parser(
        "serve",
        help="long-running reader: refresh on an interval, report the horizon",
    )
    _add_store_arguments(serve)
    serve.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between refreshes (default 1.0)",
    )
    serve.add_argument(
        "--iterations",
        type=int,
        help="stop after N refreshes (default: run until interrupted)",
    )
    serve.add_argument("--top", type=int, help="also print the TOP largest groups")
    serve.add_argument(
        "--max-retries",
        type=int,
        default=5,
        help="consecutive transient-error retries before giving up (default 5)",
    )
    serve.add_argument(
        "--metrics-every",
        type=int,
        default=10,
        metavar="N",
        help="with REPRO_METRICS on, print a metrics line every N "
        "refreshes (default 10)",
    )

    replicate = commands.add_parser(
        "replicate",
        help="ship WAL records from a leader store into a follower directory",
    )
    replicate.add_argument("directory", help="leader store directory")
    replicate.add_argument("follower", help="follower directory (created if absent)")
    replicate.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between syncs (default 1.0)",
    )
    replicate.add_argument(
        "--iterations",
        type=int,
        help="stop after N syncs (default: run until interrupted)",
    )
    replicate.add_argument("--once", action="store_true", help="one sync, then exit")
    replicate.add_argument(
        "--fsync", action="store_true", help="fsync the follower WAL per record batch"
    )
    replicate.add_argument(
        "--max-retries",
        type=int,
        default=5,
        help="consecutive transient-error retries before giving up (default 5)",
    )
    replicate.add_argument(
        "--metrics-every",
        type=int,
        default=10,
        metavar="N",
        help="with REPRO_METRICS on, print a metrics line every N syncs "
        "(default 10)",
    )

    compact = commands.add_parser("compact", help="fold the WAL into a new snapshot")
    _add_store_arguments(compact)

    info = commands.add_parser("info", help="show store state")
    _add_store_arguments(info)

    stats = commands.add_parser(
        "stats",
        help="run one instrumented read pass and export the metrics",
    )
    _add_store_arguments(stats)
    formats = stats.add_mutually_exclusive_group()
    formats.add_argument(
        "--json", action="store_true", help="machine-readable JSON export"
    )
    formats.add_argument(
        "--prom",
        action="store_true",
        help="Prometheus text exposition (version 0.0.4)",
    )
    stats.add_argument(
        "--no-estimates",
        action="store_true",
        help="skip the batched estimate pass (replay/refresh metrics only)",
    )

    cluster = commands.add_parser(
        "cluster", help="hash-partitioned multi-shard cluster operations"
    )
    cluster_commands = cluster.add_subparsers(dest="cluster_command", required=True)

    cluster_init = cluster_commands.add_parser(
        "init", help="create a cluster root with N shard stores"
    )
    cluster_init.add_argument("directory", help="cluster root directory")
    cluster_init.add_argument(
        "--shards", type=int, required=True, help="number of hash partitions"
    )
    cluster_init.add_argument("--t", type=int, default=None)
    cluster_init.add_argument("--d", type=int, default=None)
    cluster_init.add_argument("--p", type=int, default=None)

    cluster_ingest = cluster_commands.add_parser(
        "ingest", help="append items, routed to each group's owner shard"
    )
    cluster_ingest.add_argument("directory", help="cluster root directory")
    cluster_ingest.add_argument("--group", default="default", help="group key (string)")
    cluster_ingest.add_argument("--items", nargs="+", help="literal items to add")
    cluster_ingest.add_argument(
        "--count", type=int, help="add COUNT synthetic distinct integers"
    )
    cluster_ingest.add_argument(
        "--offset", type=int, default=0, help="first synthetic integer"
    )
    cluster_ingest.add_argument(
        "--batch", type=int, default=8192, help="items per WAL record"
    )
    cluster_ingest.add_argument(
        "--fsync", action="store_true", help="fsync every WAL record"
    )
    cluster_ingest.add_argument(
        "--crash",
        action="store_true",
        help=f"os._exit({CRASH_EXIT_CODE}) after ingest, skipping clean shutdown",
    )

    cluster_query = cluster_commands.add_parser(
        "query", help="scatter-gather one dialect query over every shard"
    )
    cluster_query.add_argument("directory", help="cluster root directory")
    cluster_query.add_argument(
        "text", nargs="?", default="estimate all", help='dialect query (default: "estimate all")'
    )
    cluster_query.add_argument(
        "--reader",
        action="store_true",
        help="open lock-free per-shard SnapshotReaders instead of read-only stores",
    )
    cluster_query.add_argument(
        "--explain", action="store_true", help="print the physical plan before the rows"
    )
    cluster_query.add_argument(
        "--analyze",
        action="store_true",
        help="execute with per-plan-node timing (EXPLAIN ANALYZE)",
    )
    cluster_query.add_argument(
        "--now", type=float, help="time anchor for 'window' clauses"
    )
    cluster_query.add_argument(
        "--expect",
        type=float,
        help="expected value of a single-row result (exit 1 on miss)",
    )
    cluster_query.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="allowed relative error against --expect (default 0.1)",
    )

    cluster_rebalance = cluster_commands.add_parser(
        "rebalance",
        help="change the shard fan-out by shipping whole group sketches",
    )
    cluster_rebalance.add_argument("directory", help="cluster root directory")
    cluster_rebalance.add_argument(
        "--shards", type=int, required=True, help="new number of hash partitions"
    )

    cluster_status = cluster_commands.add_parser(
        "status", help="per-shard health plus the cluster skew gauge"
    )
    cluster_status.add_argument("directory", help="cluster root directory")
    return parser


def _command_ingest(arguments: argparse.Namespace) -> int:
    if arguments.items is None and arguments.count is None:
        print("ingest: need --items or --count", file=sys.stderr)
        return 2
    store = SketchStore.open(
        arguments.directory,
        t=arguments.t,
        d=arguments.d,
        p=arguments.p,
        fsync=arguments.fsync,
        auto_compact_bytes=arguments.compact_every,
    )
    appended = 0
    if arguments.items:
        store.append(arguments.group, arguments.items)
        appended += len(arguments.items)
    if arguments.count:
        import numpy as np

        for start in range(0, arguments.count, arguments.batch):
            stop = min(start + arguments.batch, arguments.count)
            values = np.arange(
                arguments.offset + start, arguments.offset + stop, dtype=np.int64
            )
            store.append(arguments.group, values)
            appended += len(values)
    print(
        f"appended {appended} items to group {arguments.group!r} "
        f"({store.wal_records} WAL records, {store.wal_bytes} WAL bytes)"
    )
    if arguments.crash:
        print("simulating crash: exiting without clean shutdown", flush=True)
        os._exit(CRASH_EXIT_CODE)
    store.close()
    return 0


def _run_dialect_query(source, arguments: argparse.Namespace, footer=None) -> int:
    """Parse/plan/execute one dialect query over an opened ``source``.

    Shared by ``query`` (single store or reader) and ``cluster query``
    (scatter-gather); ``footer()`` prints source-specific trailer lines
    between the rows and the ``--expect`` verdict.
    """
    from repro.query import DEFAULT_SOURCE, ParseError, execute, explain, parse

    try:
        plan = parse(arguments.text)
    except ParseError as error:
        print(f"query: {error}", file=sys.stderr)
        return 2
    if arguments.explain and not arguments.analyze:
        for line in explain(plan, {DEFAULT_SOURCE: source}):
            print(line)
    result = execute(plan, source, now=arguments.now, analyze=arguments.analyze)
    if arguments.analyze:
        for line in explain(plan, {DEFAULT_SOURCE: source}, profile=result.profile):
            print(line)
    for key, estimate in result.rows:
        print(f"{DistinctCountAggregator.decode_key(key)}\t{estimate:.1f}")
    if footer is not None:
        footer()
    if arguments.expect is not None:
        if len(result.rows) != 1:
            print(
                f"query: --expect needs a single-row result, got "
                f"{len(result.rows)} rows",
                file=sys.stderr,
            )
            return 2
        error = abs(result.value / arguments.expect - 1.0)
        status = "ok" if error <= arguments.tolerance else "FAIL"
        print(
            f"expected {arguments.expect:.0f}, relative error "
            f"{error:.4f} (tolerance {arguments.tolerance}) -> {status}"
        )
        return 0 if status == "ok" else 1
    return 0


def _command_query(arguments: argparse.Namespace) -> int:
    """One dialect query, planned and executed by :mod:`repro.query`.

    The store (or reader, with ``--reader``) binds the plan's default
    scan; every estimate resolves through the batched one-solve path.
    """
    opener = SnapshotReader.open if arguments.reader else SketchStore.open
    with opener(arguments.directory) as source:
        footer = None
        if arguments.reader:

            def footer():
                print(
                    f"generation {source.generation}, durable LSN "
                    f"{source.durable_lsn}"
                )

        return _run_dialect_query(source, arguments, footer)


#: Exceptions the serve/replicate loops survive with backoff: filesystem
#: races against a live writer (OSError covers vanished files mid-open)
#: and torn/garbled reads a later attempt will see past.
def _transient_errors() -> tuple:
    from repro.storage.serialization import SerializationError

    return (OSError, SerializationError)


def _metrics_line(prefixes: "tuple[str, ...]") -> str:
    """One ``metrics ...`` summary line for the named metric families."""
    from repro.obs import metrics as _metrics

    parts = []
    for metric in _metrics.REGISTRY.metrics():
        if not metric.name.startswith(prefixes):
            continue
        name = metric.name + metric._label_suffix()
        if metric.kind == "histogram":
            if metric.count:
                parts.append(
                    f"{name}.count={metric.count} {name}.p50={metric.quantile(0.5):.6g}"
                )
        else:
            parts.append(f"{name}={metric.value:.6g}")
    return "metrics " + " ".join(parts) if parts else "metrics (none)"


def _retry_loop(arguments, step, heartbeat, metric_prefixes, stop) -> int:
    """Shared serve/replicate skeleton: step, heartbeat, backoff, repeat.

    ``step()`` does one refresh/sync and returns its result; transient
    errors back off exponentially (capped at 30s) and only ``--max-retries``
    *consecutive* failures abort. ``heartbeat(iteration, result, lag)``
    prints the structured progress line; ``stop(iteration)`` ends the loop.
    """
    import time

    from repro.obs import metrics as _metrics

    transient = _transient_errors()
    iteration = 0
    failures = 0
    last_progress = time.monotonic()
    while True:
        try:
            result = step()
        except transient as error:
            failures += 1
            if failures > arguments.max_retries:
                print(
                    f"giving up after {failures} consecutive transient "
                    f"errors: {error}",
                    file=sys.stderr,
                    flush=True,
                )
                return 1
            delay = min(max(arguments.interval, 0.05) * (2 ** (failures - 1)), 30.0)
            print(
                f"warn transient={type(error).__name__} attempt={failures} "
                f"retry_in={delay:.2f}s error={error!s:.200}",
                file=sys.stderr,
                flush=True,
            )
            time.sleep(delay)
            continue
        failures = 0
        iteration += 1
        now = time.monotonic()
        progressed, line = heartbeat(iteration, result)
        if progressed:
            last_progress = now
        print(f"{line} lag={now - last_progress:.3f}s", flush=True)
        if _metrics.enabled() and iteration % max(arguments.metrics_every, 1) == 0:
            print(_metrics_line(metric_prefixes), flush=True)
        if stop(iteration):
            return 0
        time.sleep(arguments.interval)


def _command_serve(arguments: argparse.Namespace) -> int:
    """Poll-refresh loop of one query-serving reader process."""
    with SnapshotReader.open(arguments.directory) as reader:

        def heartbeat(iteration, result):
            line = (
                f"refresh {iteration}: generation={reader.generation} "
                f"lsn={result.durable_lsn} groups={len(reader)} "
                f"applied={result.records_applied}"
            )
            if arguments.top is not None:
                for key, estimate in reader.top(arguments.top):
                    print(
                        f"  {DistinctCountAggregator.decode_key(key)}\t{estimate:.1f}",
                        flush=True,
                    )
            return result.records_applied > 0 or result.generation_changed, line

        return _retry_loop(
            arguments,
            step=reader.refresh,
            heartbeat=heartbeat,
            metric_prefixes=("reader.", "estimation.", "query."),
            stop=lambda iteration: (
                arguments.iterations is not None
                and iteration >= arguments.iterations
            ),
        )


def _command_replicate(arguments: argparse.Namespace) -> int:
    """Shipper loop: leader WAL records -> follower, idempotent by LSN."""
    # Constructed inside the retried step: a leader directory that does
    # not exist *yet* (FileNotFoundError is an OSError) is just another
    # transient the backoff loop waits out.
    shipper_box: "list[WalShipper]" = []

    def step():
        if not shipper_box:
            shipper_box.append(WalShipper(arguments.directory))
        return shipper_box[0].sync(follower)

    with FollowerStore.open(arguments.follower, fsync=arguments.fsync) as follower:

        def heartbeat(iteration, result):
            line = (
                f"sync {iteration}: lsn={result.follower_lsn} "
                f"shipped={result.records_shipped} "
                f"snapshot={'yes' if result.snapshot_installed else 'no'} "
                f"groups={len(follower)}"
            )
            progressed = result.records_shipped > 0 or result.snapshot_installed
            return progressed, line

        return _retry_loop(
            arguments,
            step=step,
            heartbeat=heartbeat,
            metric_prefixes=("replicate.",),
            stop=lambda iteration: arguments.once
            or (
                arguments.iterations is not None
                and iteration >= arguments.iterations
            ),
        )


def _command_compact(arguments: argparse.Namespace) -> int:
    with SketchStore.open(arguments.directory) as store:
        generation = store.compact()
        print(f"compacted to generation {generation} ({len(store)} groups)")
    return 0


def _command_info(arguments: argparse.Namespace) -> int:
    with SketchStore.open(arguments.directory) as store:
        config = store.aggregator._config
        print(f"directory:   {store.directory}")
        print(f"config:      t={config[0]} d={config[1]} p={config[2]} sparse={config[3]} seed={config[4]}")
        print(f"generation:  {store.generation}")
        print(f"groups:      {len(store)}")
        print(f"wal records: {store.wal_records}")
        print(f"wal bytes:   {store.wal_bytes}")
        print(f"base lsn:    {store.base_lsn}")
        print(f"durable lsn: {store.durable_lsn}")
    return 0


def _command_stats(arguments: argparse.Namespace) -> int:
    """One instrumented read pass, then export every metric it produced.

    Enables :mod:`repro.obs.metrics` programmatically (no environment
    variable needed), opens the store through a read-only
    :class:`SnapshotReader` (safe against a live writer), refreshes, and
    runs the batched estimate solve so the estimation metrics populate
    too — then prints the registry.
    """
    from repro.obs import metrics as _metrics

    _metrics.enable()
    with SnapshotReader.open(arguments.directory) as reader:
        reader.refresh()
        if not arguments.no_estimates:
            reader.estimates()
        generation = reader.generation
        durable_lsn = reader.durable_lsn
        groups = len(reader)
    if arguments.json:
        print(_metrics.to_json(indent=2))
    elif arguments.prom:
        sys.stdout.write(_metrics.to_prometheus())
    else:
        print(f"generation:  {generation}")
        print(f"durable lsn: {durable_lsn}")
        print(f"groups:      {groups}")
        print()
        for metric in _metrics.REGISTRY.metrics():
            name = metric.name + metric._label_suffix()
            if metric.kind == "histogram":
                if not metric.count:
                    continue
                print(
                    f"histogram {name}: count={metric.count} "
                    f"mean={metric.mean:.6g} p50={metric.quantile(0.5):.6g} "
                    f"p99={metric.quantile(0.99):.6g}"
                )
            else:
                print(f"{metric.kind} {name}: {metric.value:.6g}")
    return 0


def _command_cluster(arguments: argparse.Namespace) -> int:
    """Dispatch ``cluster init|ingest|query|rebalance|status``."""
    from repro.cluster import ClusterSource, ShardedStore

    command = arguments.cluster_command
    if command == "init":
        with ShardedStore.open(
            arguments.directory,
            shards=arguments.shards,
            t=arguments.t,
            d=arguments.d,
            p=arguments.p,
        ) as cluster:
            print(
                f"initialised cluster at {cluster.root} with "
                f"{cluster.shards} shards (config {cluster.config})"
            )
        return 0
    if command == "ingest":
        if arguments.items is None and arguments.count is None:
            print("cluster ingest: need --items or --count", file=sys.stderr)
            return 2
        cluster = ShardedStore.open(arguments.directory, fsync=arguments.fsync)
        appended = 0
        if arguments.items:
            cluster.append(arguments.group, arguments.items)
            appended += len(arguments.items)
        if arguments.count:
            import numpy as np

            for start in range(0, arguments.count, arguments.batch):
                stop = min(start + arguments.batch, arguments.count)
                values = np.arange(
                    arguments.offset + start, arguments.offset + stop, dtype=np.int64
                )
                cluster.append(arguments.group, values)
                appended += len(values)
        owner = cluster.shard_of(arguments.group)
        print(
            f"appended {appended} items to group {arguments.group!r} "
            f"(shard {owner} of {cluster.shards})"
        )
        if arguments.crash:
            print("simulating crash: exiting without clean shutdown", flush=True)
            os._exit(CRASH_EXIT_CODE)
        cluster.close()
        return 0
    if command == "query":
        with ClusterSource.open(arguments.directory, reader=arguments.reader) as source:
            return _run_dialect_query(source, arguments)
    if command == "rebalance":
        with ShardedStore.open(arguments.directory) as cluster:
            result = cluster.rebalance(arguments.shards)
            print(
                f"rebalanced {result.from_shards} -> {result.to_shards} shards "
                f"(epoch {result.epoch}): moved {result.moved_groups} groups, "
                f"shipped {result.shipped_bytes} sketch bytes"
            )
        return 0
    if command == "status":
        with ShardedStore.open(arguments.directory) as cluster:
            print(
                f"cluster:  {cluster.root} ({cluster.shards} shards, "
                f"epoch {cluster.epoch}, {len(cluster)} groups)"
            )
            for status in cluster.status():
                print(
                    f"shard {status.index:4d}: groups={status.groups} "
                    f"generation={status.generation} "
                    f"wal_records={status.wal_records} "
                    f"wal_bytes={status.wal_bytes} "
                    f"durable_lsn={status.durable_lsn}"
                )
            print(f"skew:     {cluster.skew():.3f} (1.0 = balanced)")
        return 0
    raise AssertionError(f"unknown cluster command {command!r}")


def main(argv: "list[str] | None" = None) -> int:
    arguments = build_parser().parse_args(argv)
    handler = {
        "ingest": _command_ingest,
        "query": _command_query,
        "serve": _command_serve,
        "replicate": _command_replicate,
        "compact": _command_compact,
        "info": _command_info,
        "stats": _command_stats,
        "cluster": _command_cluster,
    }[arguments.command]
    try:
        return handler(arguments)
    except BrokenPipeError:
        # A downstream consumer closed the pipe (serve | head, | grep -q).
        # Point stdout at devnull so interpreter shutdown does not raise
        # again while flushing, and exit quietly: truncated output is the
        # consumer's choice, not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
