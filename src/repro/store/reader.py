"""Lock-free concurrent readers for a live :class:`~repro.store.SketchStore`.

The store's file layout was designed so that queries never need the
writer's cooperation:

* snapshot files are **immutable** once their rename lands — a reader can
  map one and parse at leisure, regardless of what the writer does next;
* WAL records are **self-delimiting and checksummed** — a reader tailing
  the log can always tell "complete record" from "the writer is halfway
  through an append" and stop exactly at the durable horizon;
* every record carries an **LSN** — the reader can prove it observed a
  gapless prefix of the writer's history, and report how far it got.

:class:`SnapshotReader` builds a query process on those properties: open
the newest snapshot generation (``mmap``-ed, so the aggregator blob parses
straight out of the page cache without slurping the file), replay the WAL
tail past the snapshot's ``base_lsn``, and serve ``estimate`` /
``estimates`` / ``top`` through the batched solver — all strictly
read-only (never truncates a torn tail; that may be a live writer's
in-flight append). :meth:`SnapshotReader.refresh` advances the view:
new WAL records apply incrementally, and a compaction swaps the reader to
the new generation without ever mixing files of different generations.

Consistency model:

* the view equals the writer's state at some LSN ``L`` with
  ``base_lsn <= L <= writer.durable_lsn`` (a *consistent prefix*);
* :attr:`SnapshotReader.durable_lsn` is exactly that ``L`` and is
  **monotone** across refreshes — a reader never travels back in time,
  even across generation switches (a snapshot's ``base_lsn`` can only be
  ≥ any LSN a reader had proven durable before the compaction);
* any number of readers may run against one writer, each at its own
  horizon, with no locks anywhere.

Selective replay: :meth:`SnapshotReader.group_sketch` reconstructs a
single group without replaying the whole log, by seeking to that group's
records via the group-level WAL index (:mod:`repro.store.walindex`) and
scanning only the small unindexed tail.
"""

from __future__ import annotations

import mmap
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.aggregate import DistinctCountAggregator
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.storage.serialization import (
    IncompleteRecordError,
    SerializationError,
    read_lsn_record_from,
    read_uvarint,
)
from repro.store.sketchstore import (
    _FILE_HEADER_BYTES,
    _check_file_header,
    TAG_SNAPSHOT,
    TAG_WAL,
    apply_wal_record,
    latest_generation,
    snapshot_path,
    wal_index_path,
    wal_path,
)

#: How often to retry when a compaction sweeps files out from under an
#: open attempt (newest-generation discovery and file opens race benignly).
_OPEN_RETRIES = 16

# Observability handles (collection off unless REPRO_METRICS is set).
_REFRESH_SECONDS = _metrics.histogram(
    "reader.refresh_seconds", "Wall seconds per reader refresh."
)
_REFRESH_LAG_SECONDS = _metrics.gauge(
    "reader.refresh_lag_seconds",
    "Seconds between the start of the last two refreshes (staleness bound).",
)
_RECORDS_APPLIED = _metrics.counter(
    "reader.records_applied", "WAL records applied to reader views."
)
_DURABLE_LSN = _metrics.gauge(
    "reader.durable_lsn", "Durable horizon of the most recent refresh.", mode="max"
)
_GENERATION_SWITCHES = _metrics.counter(
    "reader.generation_switches", "Compactions followed by readers."
)


@dataclass(frozen=True)
class RefreshResult:
    """What one :meth:`SnapshotReader.refresh` observed."""

    records_applied: int
    """WAL records newly applied to the view."""

    generation_changed: bool
    """True when the reader switched to a newer snapshot generation."""

    durable_lsn: int
    """The reader's horizon after the refresh."""


def _load_snapshot_mmap(path) -> tuple[DistinctCountAggregator, int, int]:
    """Parse ``(aggregator, generation, base_lsn)`` out of a mapped snapshot.

    The file is mapped read-only and the aggregator parses directly from
    the mapping — the OS pages in only what the parse touches, and the
    mapping drops immediately after (snapshot files are immutable, so
    nothing can change underneath the parse).
    """
    with open(path, "rb") as handle:
        size = os.fstat(handle.fileno()).st_size
        if size < _FILE_HEADER_BYTES:
            raise SerializationError(f"{path}: too short to hold a file header")
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            offset = _check_file_header(mapped[:_FILE_HEADER_BYTES], TAG_SNAPSHOT, path)
            generation, offset = read_uvarint(mapped, offset)
            base_lsn, offset = read_uvarint(mapped, offset)
            # Parse through a memoryview: per-group sketch blobs are
            # copied out individually, the bulk of the file is never
            # slurped into one bytes object.
            view = memoryview(mapped)
            try:
                aggregator = DistinctCountAggregator.from_bytes(view[offset:])
            finally:
                view.release()
        finally:
            try:
                mapped.close()
            except BufferError:
                # A propagating parse error's traceback still references a
                # view slice; the map is unmapped on interpreter cleanup
                # and must not mask the real (corruption) error here.
                pass
    return aggregator, generation, base_lsn


class SnapshotReader:
    """A read-only, incrementally refreshing view of a sketch store.

    >>> reader = SnapshotReader.open(store.directory)
    >>> reader.estimates()            # batched solve over all groups
    >>> reader.refresh()              # pick up the writer's newest records
    >>> reader.durable_lsn            # how far the view has provably read

    Strictly non-mutating: opens every file read-only, never truncates,
    never sweeps. Safe to run in any number of processes concurrently
    with one live writer.
    """

    def __init__(self, *args, **kwargs) -> None:
        raise TypeError("use SnapshotReader.open(path)")

    @classmethod
    def open(cls, path) -> "SnapshotReader":
        directory = pathlib.Path(path)
        if not directory.is_dir():
            raise FileNotFoundError(f"store directory {directory} does not exist")
        reader = object.__new__(cls)
        reader._directory = directory
        reader._wal_handle = None
        reader._aggregator = None
        reader._generation = -1
        reader._base_lsn = 0
        reader._durable_lsn = 0
        reader._index_cache = None
        reader._last_refresh_at = None
        last_error: Exception | None = None
        for _ in range(_OPEN_RETRIES):
            generation = latest_generation(directory)
            if generation is None:
                raise SerializationError(
                    f"{directory}: no snapshot found (uninitialised store)"
                )
            try:
                reader._switch_generation(generation)
            except FileNotFoundError as error:
                # The writer compacted between listing and opening; the
                # newest generation moved on. Rescan.
                last_error = error
                continue
            reader._tail_wal()
            return reader
        raise SerializationError(
            f"{directory}: could not open a stable generation "
            f"(kept racing a compacting writer): {last_error}"
        ) from last_error

    # -- view maintenance ------------------------------------------------------

    def _switch_generation(self, generation: int) -> None:
        """Load snapshot ``generation`` and point the tail at its WAL."""
        aggregator, stored_generation, base_lsn = _load_snapshot_mmap(
            snapshot_path(self._directory, generation)
        )
        if stored_generation != generation:
            raise SerializationError(
                f"{self._directory}: snapshot file for generation {generation} "
                f"holds generation {stored_generation} (foreign or renamed "
                "snapshot in the store directory)"
            )
        if base_lsn < self._durable_lsn:
            # A newer snapshot folds in at least every LSN any reader has
            # proven durable; going backwards means the directory was
            # swapped for an unrelated (or restored-from-backup) store.
            raise SerializationError(
                f"{self._directory}: snapshot generation {generation} has "
                f"base LSN {base_lsn}, behind the already-observed horizon "
                f"{self._durable_lsn} (directory swapped for an unrelated "
                "or restored-from-backup store)"
            )
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
        self._aggregator = aggregator
        self._generation = generation
        self._base_lsn = base_lsn
        self._durable_lsn = base_lsn

    def _ensure_wal_handle(self) -> bool:
        """Open this generation's WAL for tailing; False when not ready.

        "Not ready" covers two benign races with the writer: the WAL file
        does not exist yet (compaction wrote the snapshot but has not
        created the fresh log), or exists with an incomplete file header
        (creation's first write has not landed). Both resolve on a later
        refresh.
        """
        if self._wal_handle is not None:
            return True
        try:
            handle = open(wal_path(self._directory, self._generation), "rb")
        except FileNotFoundError:
            return False
        header = handle.read(_FILE_HEADER_BYTES)
        if len(header) < _FILE_HEADER_BYTES:
            handle.close()
            return False
        try:
            _check_file_header(header, TAG_WAL, handle.name)
        except SerializationError:
            handle.close()
            raise
        self._wal_handle = handle
        return True

    def _tail_wal(self) -> int:
        """Apply complete WAL records past the current horizon; count them.

        Stops at the first incomplete record (the writer's in-flight
        append) and seeks back to its start so the next refresh retries
        from there. Never writes.
        """
        if not self._ensure_wal_handle():
            return 0
        handle = self._wal_handle
        applied = 0
        while True:
            start = handle.tell()
            try:
                record = read_lsn_record_from(handle)
            except IncompleteRecordError:
                handle.seek(start)
                break
            if record is None:
                break
            lsn, kind, key, payload = record
            if lsn != self._durable_lsn + 1:
                raise SerializationError(
                    f"WAL record at offset {start} has LSN {lsn}, "
                    f"expected {self._durable_lsn + 1}"
                )
            apply_wal_record(self._aggregator, kind, key, payload)
            self._durable_lsn = lsn
            applied += 1
        return applied

    def refresh(self) -> RefreshResult:
        """Advance the view: tail new WAL records, follow compactions.

        Returns what changed. The durable horizon is monotone: it either
        stays or grows, never regresses — including across a generation
        switch (asserted, not assumed).
        """
        obs = _metrics.enabled()
        started = time.perf_counter() if obs else 0.0
        if obs:
            if self._last_refresh_at is not None:
                _REFRESH_LAG_SECONDS.set(started - self._last_refresh_at)
            self._last_refresh_at = started
        before = self._durable_lsn
        applied = self._tail_wal()
        generation_changed = False
        newest = latest_generation(self._directory)
        if newest is not None and newest > self._generation:
            # Drain the old generation's WAL first: the open handle stays
            # valid even after the writer unlinks the file, and a fully
            # drained old log equals the new snapshot's base state.
            for _ in range(_OPEN_RETRIES):
                try:
                    self._switch_generation(newest)
                    break
                except FileNotFoundError:
                    # That generation was itself compacted away; follow.
                    renewed = latest_generation(self._directory)
                    if renewed is None or renewed <= self._generation:
                        break
                    newest = renewed
            else:
                raise SerializationError(
                    f"{self._directory}: kept racing a compacting writer"
                )
            generation_changed = True
            applied += self._tail_wal()
        if self._durable_lsn < before:
            raise AssertionError(
                f"durable horizon regressed: {before} -> {self._durable_lsn}"
            )
        if obs:
            _REFRESH_SECONDS.observe(time.perf_counter() - started)
            _RECORDS_APPLIED.inc(applied)
            _DURABLE_LSN.set(self._durable_lsn)
            if generation_changed:
                _GENERATION_SWITCHES.inc()
        return RefreshResult(
            records_applied=applied,
            generation_changed=generation_changed,
            durable_lsn=self._durable_lsn,
        )

    # -- queries ---------------------------------------------------------------

    @property
    def directory(self) -> pathlib.Path:
        return self._directory

    @property
    def generation(self) -> int:
        """Snapshot generation the view is based on."""
        return self._generation

    @property
    def base_lsn(self) -> int:
        """LSN folded into the underlying snapshot."""
        return self._base_lsn

    @property
    def durable_lsn(self) -> int:
        """The durable horizon: last LSN provably applied to this view."""
        return self._durable_lsn

    @property
    def aggregator(self) -> DistinctCountAggregator:
        """The materialised view (snapshot + applied WAL tail)."""
        return self._aggregator

    @property
    def config(self) -> tuple[int, int, int, bool, int]:
        """The ``(t, d, p, sparse, seed)`` configuration tuple."""
        return self._aggregator.config

    def __len__(self) -> int:
        return len(self._aggregator)

    def __contains__(self, group: Hashable) -> bool:
        return group in self._aggregator

    def groups(self) -> Iterator[bytes]:
        return self._aggregator.groups()

    def estimate(self, group: Hashable) -> float:
        return self._aggregator.estimate(group)

    def estimates(self) -> dict[bytes, float]:
        """All group estimates in one simultaneous batched solve."""
        return self._aggregator.estimates()

    def top(self, count: int) -> list[tuple[bytes, float]]:
        """The ``count`` groups with the largest estimates (argpartition)."""
        return self._aggregator.top(count)

    # -- selective single-group replay ----------------------------------------

    def group_sketch(self, group: Hashable):
        """Reconstruct one group's sketch via the group-level WAL index.

        Starts from the snapshot's copy of the group and applies only
        that group's WAL records: indexed records by direct seek, plus a
        scan of the unindexed tail (the index is advisory and may lag the
        log — see :mod:`repro.store.walindex`). At any quiesced point the
        result is bit-identical to the full-log replay this reader's
        ``aggregator`` performs; records past this view's durable horizon
        are deliberately excluded so the two stay comparable.

        Returns ``None`` for a group with no state at this horizon.
        Compaction-safe: should the writer sweep this generation's files
        mid-query, the answer falls back to the already-materialised view
        (which is the same state at this horizon, just not selectively
        rebuilt).
        """
        key = DistinctCountAggregator._group_key(group)
        try:
            return self._group_sketch_selective(key)
        except FileNotFoundError:
            # The writer compacted this generation away between our tail
            # and this query; the tailed view itself is still a correct
            # (and complete) answer at this horizon.
            sketch = self._aggregator._groups.get(key)
            return sketch.copy() if sketch is not None else None

    def _group_sketch_selective(self, key: bytes):
        from repro.store.walindex import scan_floor

        scratch = DistinctCountAggregator(*self._aggregator._config)
        sketch = self._read_snapshot_group(key)
        base_lsn = self._base_lsn
        if sketch is not None:
            scratch._groups[key] = sketch
        index = self._load_group_index()
        applied = set()
        try:
            handle = open(wal_path(self._directory, self._generation), "rb")
        except FileNotFoundError:
            if self._durable_lsn == base_lsn:
                return scratch._groups.get(key)  # nothing was ever tailed
            raise  # tailed records exist but their log is gone: fall back
        with handle:
            _check_file_header(
                handle.read(_FILE_HEADER_BYTES), TAG_WAL, handle.name
            )
            for entry in index.get(key, ()):
                if not base_lsn < entry.lsn <= self._durable_lsn:
                    continue
                handle.seek(entry.offset)
                try:
                    record = read_lsn_record_from(handle)
                except IncompleteRecordError:
                    continue  # entry points past the durable prefix
                if record is None:
                    continue
                lsn, kind, record_key, payload = record
                if lsn != entry.lsn or record_key != key:
                    raise SerializationError(
                        f"WAL index entry (lsn={entry.lsn}, "
                        f"offset={entry.offset}) does not match the "
                        f"record found there (lsn={lsn})"
                    )
                apply_wal_record(scratch, kind, key, payload)
                applied.add(lsn)
            # Unindexed tail: records the index has not caught up to.
            handle.seek(max(scan_floor(index), _FILE_HEADER_BYTES))
            while True:
                try:
                    record = read_lsn_record_from(handle)
                except IncompleteRecordError:
                    break
                if record is None:
                    break
                lsn, kind, record_key, payload = record
                if record_key != key or lsn in applied:
                    continue
                if not base_lsn < lsn <= self._durable_lsn:
                    continue
                apply_wal_record(scratch, kind, key, payload)
                applied.add(lsn)
        return scratch._groups.get(key)

    def _load_group_index(self):
        """The generation's WAL index, cached on (generation, file size).

        Repeat selective queries against an unchanged index skip the
        re-parse; any append to the index (or a generation switch) grows
        the size and invalidates the cache.
        """
        from repro.store.walindex import load_wal_index

        path = wal_index_path(self._directory, self._generation)
        try:
            size = os.path.getsize(path)
        except FileNotFoundError:
            size = -1
        cached = self._index_cache
        if (
            cached is not None
            and cached[0] == self._generation
            and cached[1] == size
        ):
            return cached[2]
        index = load_wal_index(path)
        self._index_cache = (self._generation, size, index)
        return index

    def _read_snapshot_group(self, key: bytes):
        """One group's sketch out of this generation's (immutable) snapshot.

        Unlike :func:`_load_snapshot_mmap` this never materialises the
        other groups: entries are skipped by their length prefixes on the
        mapping, so selective replay stays selective on the snapshot side
        too.
        """
        path = snapshot_path(self._directory, self._generation)
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            try:
                offset = _check_file_header(
                    mapped[:_FILE_HEADER_BYTES], TAG_SNAPSHOT, path
                )
                _generation, offset = read_uvarint(mapped, offset)
                _base_lsn, offset = read_uvarint(mapped, offset)
                view = memoryview(mapped)
                try:
                    return DistinctCountAggregator.read_group_from_bytes(
                        view[offset:], key
                    )
                finally:
                    view.release()
            finally:
                try:
                    mapped.close()
                except BufferError:  # see _load_snapshot_mmap
                    pass

    def estimate_group(self, group: Hashable) -> float:
        """One group's estimate via selective replay (0 for unseen groups)."""
        sketch = self.group_sketch(group)
        return sketch.estimate() if sketch is not None else 0.0

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SnapshotReader(directory={str(self._directory)!r}, "
            f"generation={self._generation}, groups={len(self._aggregator)}, "
            f"durable_lsn={self._durable_lsn})"
        )
