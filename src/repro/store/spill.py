"""Spill-to-disk GROUP BY: exact external aggregation in bounded memory.

An in-memory :class:`~repro.aggregate.DistinctCountAggregator` keeps one
Python sketch object per group — at millions of groups the *objects*
dominate, not the registers. This module runs the classic external
hash-aggregation plan instead:

1. **Partition & spill** — incoming ``(group, hashes)`` segments are
   hash-partitioned by :func:`repro.parallel.shard_of` and appended to
   per-partition files. A group lives entirely inside one partition, and
   writers never buffer more than the batch at hand.
2. **Merge** — partitions are read back *one at a time*; each builds a
   partial aggregator holding only its own groups (``1/partitions`` of
   the total) and yields it. Sketch folds are commutative/idempotent and
   merges exact, so per-group states are bit-identical to the all-in-RAM
   scatter.

Peak memory is therefore ``O(largest partition)`` regardless of total
group count.

Partition files use the shared record framing of
:mod:`repro.storage.serialization` (kind ``RECORD_HASHES``) behind a
4-byte ``TAG_SPILL`` file header. File names carry a writer id —
``part-<partition>-<writer>.spill`` — so independent writers (the shard
workers of :func:`repro.parallel.parallel_spill_write`, or several
processes feeding one aggregation) append to their own files without
coordination; the merge pass reads every file of a partition.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.aggregate import DistinctCountAggregator
from repro.storage.serialization import (
    IncompleteRecordError,
    SerializationError,
    TAG_SPILL,
    TAG_SPILL_META,
    read_record_from,
    read_uvarint,
    write_record,
    write_uvarint,
)
from repro.store.sketchstore import (
    RECORD_HASHES,
    _FILE_HEADER_BYTES,
    _check_file_header,
    _file_header,
)

#: Default partition fan-out; at 1e6 groups each partition then holds
#: ~16k groups, a few MB of sketch objects during its merge pass.
DEFAULT_PARTITIONS = 64

_SPILL_SUFFIX = ".spill"
_META_NAME = "spill.meta"


def write_spill_meta(directory, config, partitions: int) -> None:
    """Persist a spill directory's configuration sidecar (atomic rename).

    The sidecar is what lets a *different* process — a query-serving
    reader that never wrote a byte of the spill — reconstruct partition
    aggregators with the exact sketch parameters the writers used (see
    :meth:`SpilledGroupBy.attach`).
    """
    t, d, p, sparse, seed = config
    buffer = bytearray(_file_header(TAG_SPILL_META))
    buffer.extend((t, d, p, 1 if sparse else 0))
    write_uvarint(buffer, seed)
    write_uvarint(buffer, partitions)
    directory = pathlib.Path(directory)
    path = directory / _META_NAME
    temporary = path.with_suffix(".tmp")
    temporary.write_bytes(bytes(buffer))
    os.replace(temporary, path)


def read_spill_meta(directory) -> tuple[tuple[int, int, int, bool, int], int]:
    """Read a spill directory's ``(config, partitions)`` sidecar."""
    path = pathlib.Path(directory) / _META_NAME
    try:
        data = path.read_bytes()
    except FileNotFoundError as error:
        # Keep the type (SpilledGroupBy.__init__ branches on it) but name
        # the directory — a bare errno is hard to attribute when a query
        # process attaches to many shard/spill directories at once.
        raise FileNotFoundError(
            f"{pathlib.Path(directory)}: not a spill directory (missing the "
            f"{_META_NAME} sidecar a SpilledGroupBy writer persists)"
        ) from error
    offset = _check_file_header(data, TAG_SPILL_META, path)
    if len(data) < offset + 4:
        raise SerializationError(f"{path}: truncated spill configuration")
    t, d, p, sparse_flag = data[offset : offset + 4]
    offset += 4
    seed, offset = read_uvarint(data, offset)
    partitions, offset = read_uvarint(data, offset)
    if offset != len(data):
        raise SerializationError(
            f"{path}: {len(data) - offset} trailing bytes after spill configuration"
        )
    return (t, d, p, bool(sparse_flag), seed), partitions


def _partition_of(key: bytes, partitions: int) -> int:
    from repro.parallel import shard_of

    return shard_of(key, partitions)


class SpillWriter:
    """Appends ``(key, hashes)`` records to hash-partitioned spill files.

    Multiple writers may target one directory concurrently: each owns its
    own set of files, distinguished by ``writer_id`` (default:
    ``w<pid>``). Files are created lazily on the first record for their
    partition.
    """

    def __init__(self, directory, partitions: int = DEFAULT_PARTITIONS, writer_id: str | None = None) -> None:
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self._directory = pathlib.Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._partitions = partitions
        self._writer_id = writer_id if writer_id is not None else f"w{os.getpid()}"
        if "-" in self._writer_id or "/" in self._writer_id:
            raise ValueError(f"writer_id {self._writer_id!r} may not contain '-' or '/'")
        self._handles: dict[int, Any] = {}
        self._records = 0

    @property
    def partitions(self) -> int:
        return self._partitions

    @property
    def writer_id(self) -> str:
        return self._writer_id

    @property
    def records_written(self) -> int:
        return self._records

    def _handle(self, partition: int):
        handle = self._handles.get(partition)
        if handle is None:
            path = self._directory / f"part-{partition:04d}-{self._writer_id}{_SPILL_SUFFIX}"
            exists = path.exists()
            handle = open(path, "ab")
            if not exists:
                handle.write(_file_header(TAG_SPILL))
            self._handles[partition] = handle
        return handle

    def write(self, key: bytes, hashes: np.ndarray) -> None:
        """Append one group segment (canonical key, uint64 hash array)."""
        from repro.backends import as_hash_array

        hashes = as_hash_array(hashes)
        if len(hashes) == 0:
            return
        buffer = bytearray()
        write_record(buffer, RECORD_HASHES, key, hashes.astype("<u8", copy=False).tobytes())
        self._handle(_partition_of(key, self._partitions)).write(buffer)
        self._records += 1

    def write_segments(self, segments: Iterable[tuple[bytes, np.ndarray]]) -> None:
        for key, hashes in segments:
            self.write(key, hashes)

    def flush(self) -> None:
        for handle in self._handles.values():
            handle.flush()

    def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    def __enter__(self) -> "SpillWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def spill_files(directory) -> dict[int, list[pathlib.Path]]:
    """Partition index → sorted spill files of all writers in ``directory``."""
    directory = pathlib.Path(directory)
    grouped: dict[int, list[pathlib.Path]] = {}
    for path in sorted(directory.glob(f"part-*{_SPILL_SUFFIX}")):
        prefix = path.name.split("-", 2)
        if len(prefix) < 3:
            raise SerializationError(f"{path}: spill file name lacks a writer id")
        grouped.setdefault(int(prefix[1]), []).append(path)
    return grouped


def read_spill_file(
    path, tolerate_torn_tail: bool = False
) -> Iterator[tuple[bytes, np.ndarray]]:
    """Yield the ``(key, hashes)`` records of one spill file.

    For the *writing* aggregation, spill files are transient (written and
    read inside one run), so a torn tail is not survivable — any
    incomplete record raises :class:`SerializationError`. A concurrent
    read-only query process (:meth:`SpilledGroupBy.attach`) instead sets
    ``tolerate_torn_tail=True``: iteration stops cleanly at the last
    complete record, the WAL discipline — the writer's in-flight append
    is simply not part of that query's view. CRC failures on *complete*
    records stay fatal either way.
    """
    path = pathlib.Path(path)
    with open(path, "rb") as handle:
        # Streamed so the merge pass holds one record, not one file: a
        # partition's raw hash payloads can dwarf its sketch states.
        _check_file_header(handle.read(_FILE_HEADER_BYTES), TAG_SPILL, path)
        while True:
            try:
                record = read_record_from(handle)
            except IncompleteRecordError as error:
                if tolerate_torn_tail:
                    return
                raise SerializationError(f"{path}: truncated spill record") from error
            if record is None:
                return
            kind, key, payload = record
            if kind != RECORD_HASHES:
                raise SerializationError(
                    f"{path}: unexpected spill record kind {kind:#x}"
                )
            if len(payload) % 8:
                raise SerializationError(
                    f"{path}: hash payload of {len(payload)} bytes is not a multiple of 8"
                )
            yield key, np.frombuffer(payload, dtype="<u8")


class SpilledGroupBy:
    """External ``APPROX_COUNT_DISTINCT(x) GROUP BY g`` over spill files.

    Accepts the same batches as
    :meth:`~repro.aggregate.DistinctCountAggregator.add_batch` but routes
    every group segment to disk; results come from a partition-at-a-time
    merge, so memory stays bounded while the number of groups is not.

    >>> groupby = SpilledGroupBy(tmp_path / "spill", p=8)
    >>> groupby.add_batch(["DE", "AT", "DE"], ["alice", "bob", "carol"])
    >>> sorted(round(v) for v in groupby.estimates().values())
    [1, 2]
    """

    def __init__(
        self,
        directory,
        t: int = 2,
        d: int = 20,
        p: int = 8,
        sparse: bool = True,
        seed: int = 0,
        partitions: int = DEFAULT_PARTITIONS,
    ) -> None:
        self._directory = pathlib.Path(directory)
        self._partitions = partitions
        # The scatter (hashing + factorisation) is the aggregator's own;
        # this instance holds configuration and never accumulates groups.
        self._scatter = DistinctCountAggregator(t, d, p, sparse, seed)
        self._writer = SpillWriter(self._directory, partitions)
        # Persist (or validate against) the configuration sidecar so a
        # reader process can attach to these files later.
        try:
            on_disk, disk_partitions = read_spill_meta(self._directory)
        except FileNotFoundError:
            write_spill_meta(self._directory, self._scatter._config, partitions)
        else:
            if on_disk != self._scatter._config or disk_partitions != partitions:
                raise ValueError(
                    f"spill directory {self._directory} was written with "
                    f"configuration {on_disk} and {disk_partitions} partitions, "
                    f"requested {self._scatter._config} and {partitions}"
                )

    @classmethod
    def attach(cls, directory) -> "SpilledGroupBy":
        """Open an existing spill directory read-only (a query process).

        Configuration and partition fan-out come from the ``spill.meta``
        sidecar the writing process persisted; no file is created or
        appended — ingest methods raise, while every query path
        (:meth:`estimates`, :meth:`top`, :meth:`estimate`,
        :meth:`partition_aggregators`) works exactly as for the writer,
        concurrently with writers that are still appending (spill records
        are framed like WAL records, so partially flushed tails are
        detected, not misread).
        """
        directory = pathlib.Path(directory)
        config, partitions = read_spill_meta(directory)
        groupby = object.__new__(cls)
        groupby._directory = directory
        groupby._partitions = partitions
        groupby._scatter = DistinctCountAggregator(*config)
        groupby._writer = None
        return groupby

    @property
    def directory(self) -> pathlib.Path:
        return self._directory

    @property
    def partitions(self) -> int:
        return self._partitions

    @property
    def config(self) -> tuple[int, int, int, bool, int]:
        return self._scatter._config

    @property
    def records_spilled(self) -> int:
        return self._writer.records_written if self._writer is not None else 0

    @property
    def attached(self) -> bool:
        """True for a read-only view opened with :meth:`attach`."""
        return self._writer is None

    def _require_writer(self) -> SpillWriter:
        if self._writer is None:
            raise ValueError(
                "spill directory was attached read-only; ingest happens in "
                "the writing process"
            )
        return self._writer

    # -- ingest ---------------------------------------------------------------

    def add_batch(
        self, groups: "Iterable[Hashable]", items: Any, workers: int | None = None
    ) -> "SpilledGroupBy":
        """Spill one ``(groups, items)`` batch; returns ``self``.

        ``workers`` fans the partition writes out across a process pool
        (:func:`repro.parallel.parallel_spill_write`): workers own
        disjoint partition sets and write their files independently.
        """
        segments = self._scatter._segments(groups, items)
        if segments:
            self.write_segments(segments, workers)
        return self

    def write_segments(
        self,
        segments: Iterable[tuple[bytes, np.ndarray]],
        workers: int | None = None,
    ) -> None:
        """Spill pre-scattered ``(canonical key, hashes)`` segments.

        The hand-off point of ``DistinctCountAggregator.add_batch(spill=...)``;
        ``workers`` fans the writes out across a process pool.
        """
        writer = self._require_writer()
        if workers is not None and workers > 1:
            from repro.parallel import parallel_spill_write

            segments = list(segments)
            if len(segments) > 1:
                writer.flush()
                writer._records += parallel_spill_write(
                    segments, self._directory, self._partitions, workers
                )
                return
        writer.write_segments(segments)

    def add_pairs(self, pairs: Iterable[tuple[Hashable, Any]]) -> "SpilledGroupBy":
        """Spill an iterable of ``(group, item)`` pairs in bounded chunks."""
        import itertools

        from repro.backends.bulk import BULK_CHUNK

        iterator = iter(pairs)
        while chunk := list(itertools.islice(iterator, BULK_CHUNK)):
            groups, items = zip(*chunk)
            self.add_batch(groups, list(items))
        return self

    # -- merge ----------------------------------------------------------------

    def partition_aggregators(self) -> Iterator[DistinctCountAggregator]:
        """Yield one exact partial aggregator per non-empty partition.

        Flushes pending writes first (when this process is the writer);
        each partial holds only its partition's groups, which is the
        memory bound of the whole plan.
        """
        if self._writer is not None:
            self._writer.flush()
        for partition in sorted(spill_files(self._directory)):
            yield self._partition_aggregator(partition)

    def _partition_aggregator(self, partition: int) -> DistinctCountAggregator:
        files = spill_files(self._directory).get(partition, [])
        aggregator = DistinctCountAggregator(*self.config)
        for path in files:
            # Attached readers run concurrently with writers, so a torn
            # tail is "not yet durable", not corruption.
            for key, hashes in read_spill_file(
                path, tolerate_torn_tail=self._writer is None
            ):
                sketch = aggregator._groups.get(key)
                if sketch is None:
                    sketch = aggregator._new_sketch()
                    aggregator._groups[key] = sketch
                sketch.add_hashes(hashes)
        return aggregator

    def iter_estimates(self) -> Iterator[tuple[bytes, float]]:
        """Stream ``(key, estimate)`` pairs partition by partition.

        Each partition resolves through the aggregator's batched
        estimation path — one simultaneous Newton solve per partition —
        so memory stays bounded while the solve stays vectorised.
        """
        for aggregator in self.partition_aggregators():
            yield from aggregator.estimates().items()

    def estimates(self) -> dict[bytes, float]:
        """All group estimates (materialises one float per group)."""
        return dict(self.iter_estimates())

    def top(self, count: int) -> list[tuple[bytes, float]]:
        """The ``count`` groups with the largest estimates.

        Runs the batched top-k selection per partition and keeps a
        ``count``-sized running candidate set, so only
        ``O(partitions * count)`` pairs are ever held at once.
        """
        if count <= 0:
            return []
        best: list[tuple[bytes, float]] = []
        for aggregator in self.partition_aggregators():
            best.extend(aggregator.top(count))
            if len(best) > count:
                best.sort(key=lambda kv: -kv[1])
                del best[count:]
        best.sort(key=lambda kv: -kv[1])
        return best[:count]

    def estimate(self, group: Hashable) -> float:
        """One group's estimate (reads only that group's partition)."""
        sketch = self.group_sketch(group)
        return sketch.estimate() if sketch is not None else 0.0

    def group_sketch(self, group: Hashable):
        """One group's sketch, rebuilt from only that group's partition.

        The :class:`repro.query.SketchSource` selective-read surface of
        the spilled path: a group lives entirely inside one partition, so
        the rebuild reads ``1/partitions`` of the spill files. Returns
        ``None`` for unseen groups.
        """
        key = DistinctCountAggregator._group_key(group)
        if self._writer is not None:
            self._writer.flush()
        partial = self._partition_aggregator(_partition_of(key, self._partitions))
        return partial._groups.get(key)

    def groups(self) -> Iterator[bytes]:
        """All observed group keys, streamed partition by partition."""
        for aggregator in self.partition_aggregators():
            yield from aggregator.groups()

    def group_count(self) -> int:
        """Total distinct groups across all partitions (streamed)."""
        return sum(len(partial) for partial in self.partition_aggregators())

    def to_aggregator(self) -> DistinctCountAggregator:
        """Collapse all partitions into one in-memory aggregator.

        Defeats the memory bound (all groups at once) — intended for
        modest group counts and for bit-identity checks against the
        in-memory path.
        """
        result = DistinctCountAggregator(*self.config)
        for partial in self.partition_aggregators():
            result.merge_inplace(partial)
        return result

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()

    def cleanup(self) -> None:
        """Close and delete all spill files (the aggregation is consumed)."""
        self.close()
        for files in spill_files(self._directory).values():
            for path in files:
                path.unlink()
        meta = self._directory / _META_NAME
        if meta.exists():
            meta.unlink()

    def __enter__(self) -> "SpilledGroupBy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SpilledGroupBy(directory={str(self._directory)!r}, "
            f"partitions={self._partitions}, spilled={self.records_spilled})"
        )
