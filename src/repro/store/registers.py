"""``np.memmap``-backed register arrays (the durable fold target).

The bulk backends (:mod:`repro.backends.bulk`) fold hash batches into
plain int64 ndarrays; nothing in that machinery cares where the array
lives. :class:`MemmapRegisters` puts it in a disk file mapped with
``np.memmap``, so folds write straight into OS-page-cached, durable
storage — and the operating system, not the Python heap, decides how much
of a multi-million-register aggregation is resident at once.

The provider satisfies the :class:`repro.backends.BulkBackend` protocol
and its exact-equivalence contract: ``add_hashes`` on a memmap file
leaves register values bit-identical to the in-memory sketch fed the same
hashes (the builders and merges are literally the same functions; only
the destination array differs).

File layout (little-endian throughout)::

    magic (2) | version (1) | tag 0x40 (1) | kind (1) | t (1) | d (1) | p (1)
    | m * 8 bytes of '<i8' register values

Three register-array kinds cover the family's dense array sketches:

==============  ======================================  =================
kind            fold (fresh batch array)                merge into file
==============  ======================================  =================
``exaloglog``   :func:`~repro.backends.bulk.exaloglog_registers`   Algorithm 5
``hyperloglog`` :func:`~repro.backends.bulk.hyperloglog_registers` element-wise max
``pcsa``        :func:`~repro.backends.bulk.pcsa_bitmaps`          element-wise OR
==============  ======================================  =================
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Iterable

import numpy as np

from repro.storage.serialization import (
    FORMAT_VERSION,
    MAGIC,
    SerializationError,
    TAG_MEMMAP_REGISTERS,
)

#: Header in front of the register payload.
HEADER_BYTES = 8

_KIND_CODES = {"exaloglog": 1, "hyperloglog": 2, "pcsa": 3}
_KIND_NAMES = {code: name for name, code in _KIND_CODES.items()}


def _header(kind: str, t: int, d: int, p: int) -> bytes:
    return MAGIC + bytes((FORMAT_VERSION, TAG_MEMMAP_REGISTERS, _KIND_CODES[kind], t, d, p))


def _read_header(path: pathlib.Path) -> tuple[str, int, int, int]:
    with open(path, "rb") as handle:
        raw = handle.read(HEADER_BYTES)
    if len(raw) < HEADER_BYTES:
        raise SerializationError(f"{path}: too short to be a register file")
    if raw[:2] != MAGIC:
        raise SerializationError(f"{path}: bad magic, not a repro register file")
    if raw[2] != FORMAT_VERSION:
        raise SerializationError(f"{path}: unsupported format version {raw[2]}")
    if raw[3] != TAG_MEMMAP_REGISTERS:
        raise SerializationError(
            f"{path}: tag {raw[3]:#x} is not a register file (expected "
            f"{TAG_MEMMAP_REGISTERS:#x})"
        )
    kind = _KIND_NAMES.get(raw[4])
    if kind is None:
        raise SerializationError(f"{path}: unknown register kind code {raw[4]}")
    return kind, raw[5], raw[6], raw[7]


class MemmapRegisters:
    """A sketch register array living in a disk-backed memory map.

    Use the :meth:`create` / :meth:`open` / :meth:`open_or_create`
    constructors; instances are context managers that flush and close the
    map on exit::

        with MemmapRegisters.open_or_create("counts.reg", p=12) as reg:
            reg.add_hashes(hashes)
            print(reg.estimate())
    """

    __slots__ = ("_array", "_kind", "_params", "_path", "_readonly")

    def __init__(self, path, kind: str, t: int, d: int, p: int, mode: str) -> None:
        from repro.core.params import make_params

        if kind != "exaloglog" and (t or d):
            raise ValueError(f"kind {kind!r} takes only p; got t={t}, d={d}")
        self._validate(kind, t, d, p)
        self._path = pathlib.Path(path)
        self._kind = kind
        self._readonly = mode == "r"
        # HLL/PCSA reuse the ExaLogLog parameter object with t=d=0 purely
        # for (p, m) bookkeeping; folds never consult t/d for those kinds.
        self._params = make_params(t, d, p)
        self._array = np.memmap(
            self._path,
            dtype="<i8",
            mode=mode,
            offset=HEADER_BYTES,
            shape=(self._params.m,),
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def create(
        cls, path, kind: str = "exaloglog", t: int = 2, d: int = 20, p: int = 8
    ) -> "MemmapRegisters":
        """Create a fresh zeroed register file (refuses to overwrite)."""
        path = pathlib.Path(path)
        if path.exists():
            raise FileExistsError(f"register file {path} already exists")
        if kind != "exaloglog":
            t = d = 0
        # Validate everything (kind, parameter ranges, int64 fit) before
        # touching the filesystem, so invalid parameters never leave a
        # stale zeroed file behind for a later open to misread.
        cls._validate(kind, t, d, p)
        with open(path, "wb") as handle:
            handle.write(_header(kind, t, d, p))
            handle.truncate(HEADER_BYTES + (1 << p) * 8)
        return cls(path, kind, t, d, p, mode="r+")

    @classmethod
    def _validate(cls, kind: str, t: int, d: int, p: int) -> None:
        from repro.core.params import make_params

        if kind not in _KIND_CODES:
            raise ValueError(f"unknown register kind {kind!r}; known: {sorted(_KIND_CODES)}")
        params = make_params(t, d, p)
        if kind == "exaloglog":
            from repro.backends import supports_int64_registers

            if not supports_int64_registers(params):
                raise ValueError(
                    f"register values of {params} exceed int64; "
                    "memmap backing requires register_bits <= 63"
                )

    @classmethod
    def open(cls, path, readonly: bool = False) -> "MemmapRegisters":
        """Map an existing register file (parameters come from its header).

        ``readonly=True`` maps the pages read-only — the mode for a query
        process estimating off a *foreign* file (another process's live
        fold target): no write access is requested, mutating methods
        raise, and the writer keeps sole ownership of the bytes.
        """
        path = pathlib.Path(path)
        kind, t, d, p = _read_header(path)
        expected = HEADER_BYTES + (1 << p) * 8
        actual = os.path.getsize(path)
        if actual != expected:
            raise SerializationError(
                f"{path}: file is {actual} bytes, expected {expected} for p={p}"
            )
        return cls(path, kind, t, d, p, mode="r" if readonly else "r+")

    @classmethod
    def open_or_create(
        cls, path, kind: str = "exaloglog", t: int = 2, d: int = 20, p: int = 8
    ) -> "MemmapRegisters":
        """Open ``path`` if it exists (validating parameters), else create it."""
        path = pathlib.Path(path)
        if not path.exists():
            return cls.create(path, kind, t, d, p)
        registers = cls.open(path)
        if kind != "exaloglog":
            t = d = 0
        requested = (kind, t, d, p)
        on_disk = (registers.kind, registers.params.t, registers.params.d, registers.params.p)
        if requested != on_disk:
            registers.close()
            raise ValueError(
                f"{path} holds {on_disk[0]} registers with (t, d, p)={on_disk[1:]}, "
                f"requested {requested[0]} with (t, d, p)={requested[1:]}"
            )
        return registers

    # -- properties -----------------------------------------------------------

    @property
    def path(self) -> pathlib.Path:
        return self._path

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def params(self):
        """The (t, d, p) parameter triple (t = d = 0 for HLL/PCSA kinds)."""
        return self._params

    @property
    def m(self) -> int:
        return self._params.m

    @property
    def registers(self) -> np.ndarray:
        """The live disk-backed register array (int64, length ``m``)."""
        return self._array

    @property
    def readonly(self) -> bool:
        """True when mapped read-only (foreign file of another process)."""
        return self._readonly

    @property
    def is_empty(self) -> bool:
        return not np.any(self._array)

    def __repr__(self) -> str:
        occupied = int(np.count_nonzero(self._array))
        return (
            f"MemmapRegisters(kind={self._kind!r}, path={str(self._path)!r}, "
            f"occupied={occupied}/{self.m})"
        )

    # -- ingestion (the BulkBackend protocol) ---------------------------------

    def add_hashes(self, hashes: "np.ndarray | Iterable[int]") -> "MemmapRegisters":
        """Fold a batch of 64-bit hashes into the mapped registers.

        Bit-identical to the in-memory sketch of the same kind fed the
        same hashes: the fold and merge are the shared backend functions,
        writing their result through the memory map.
        """
        from repro import backends

        if self._readonly:
            raise ValueError(f"{self._path} is mapped read-only")
        hashes = backends.as_hash_array(hashes)
        if len(hashes) == 0:
            return self
        array = self._array
        if self._kind == "exaloglog":
            batch = backends.exaloglog_registers(hashes, self._params)
            if np.any(array):
                array[:] = backends.merge_exaloglog_registers(
                    array, batch, self._params.d
                )
            else:
                array[:] = batch
        elif self._kind == "hyperloglog":
            batch = backends.hyperloglog_registers(hashes, self._params.p)
            np.maximum(array, batch, out=array)
        else:  # pcsa
            batch = backends.pcsa_bitmaps(hashes, self._params.p)
            np.bitwise_or(array, batch, out=array)
        return self

    def add_batch(self, items: Any, seed: int = 0) -> "MemmapRegisters":
        """Hash a batch of items (vectorised when possible) and fold it."""
        from repro.hashing.batch import hash_items

        return self.add_hashes(hash_items(items, seed))

    def merge_registers(self, batch: np.ndarray) -> "MemmapRegisters":
        """Merge a same-shape register array (e.g. another file's) in place."""
        if self._readonly:
            raise ValueError(f"{self._path} is mapped read-only")
        batch = np.asarray(batch, dtype=np.int64)
        if batch.shape != self._array.shape:
            raise ValueError(f"expected {self._array.shape} registers, got {batch.shape}")
        if self._kind == "exaloglog":
            from repro.backends import merge_exaloglog_registers

            self._array[:] = merge_exaloglog_registers(self._array, batch, self._params.d)
        elif self._kind == "hyperloglog":
            np.maximum(self._array, batch, out=self._array)
        else:
            np.bitwise_or(self._array, batch, out=self._array)
        return self

    # -- queries --------------------------------------------------------------

    def to_sketch(self):
        """Materialise the equivalent in-memory sketch object."""
        if self._kind == "exaloglog":
            from repro.core.exaloglog import ExaLogLog

            return ExaLogLog.from_registers(self._params, self._array.tolist())
        if self._kind == "hyperloglog":
            from repro.baselines.hyperloglog import HyperLogLog

            sketch = HyperLogLog(self._params.p)
            sketch._registers = self._array.tolist()
            return sketch
        from repro.baselines.pcsa import PCSA

        sketch = PCSA(self._params.p)
        sketch._bitmaps = self._array.tolist()
        return sketch

    def estimate(self) -> float:
        """Distinct-count estimate straight off the mapped registers.

        The ExaLogLog and HyperLogLog kinds run the vectorised batch
        engine directly on the mapped int64 array (HLL is the ELL(0, 0)
        special case) — no ``tolist`` materialisation, bit-identical to
        ``to_sketch().estimate()``. PCSA goes through its own vectorised
        bitmap estimator via :meth:`to_sketch`.
        """
        if self._kind in ("exaloglog", "hyperloglog") and self._params.register_bits <= 63:
            from repro.estimation.batch import estimate_register_stacks

            return float(
                estimate_register_stacks([self._array], self._estimation_params())[0]
            )
        return self.to_sketch().estimate()

    def _estimation_params(self):
        from repro.core.params import make_params

        if self._kind == "hyperloglog":
            return make_params(0, 0, self._params.p)
        return self._params

    @staticmethod
    def estimate_many(registers: "Iterable[MemmapRegisters]") -> list[float]:
        """Estimates for many mapped register files in batched solves.

        The fleet-query path of a read-only process serving a directory
        of register files: rows are grouped by (kind, parameters) and
        each group resolves through one simultaneous Newton solve,
        straight off the (possibly foreign, read-only) maps —
        bit-identical to calling :meth:`estimate` one file at a time.
        """
        registers = list(registers)
        results = [0.0] * len(registers)
        stacks: dict[tuple, list] = {}
        for position, mapped in enumerate(registers):
            if (
                mapped.kind in ("exaloglog", "hyperloglog")
                and mapped.params.register_bits <= 63
            ):
                stacks.setdefault(
                    (mapped.kind, mapped._estimation_params()), []
                ).append(position)
            else:
                results[position] = mapped.estimate()
        from repro.estimation.batch import estimate_register_stacks

        for (_, params), positions in stacks.items():
            estimates = estimate_register_stacks(
                [registers[position]._array for position in positions], params
            )
            for position, value in zip(positions, estimates.tolist()):
                results[position] = value
        return results

    # -- durability -----------------------------------------------------------

    def flush(self) -> None:
        """Write dirty pages back to the file (no-op for read-only maps)."""
        if not self._readonly:
            self._array.flush()

    def close(self) -> None:
        """Flush and drop the mapping; further register access is invalid."""
        if self._array is not None:
            if not self._readonly:
                self._array.flush()
            # Release the mmap so the file can be unlinked on Windows and
            # so later opens see a consistent size.
            del self._array
            self._array = None

    def __enter__(self) -> "MemmapRegisters":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
