"""Durable keyed sketch store: write-ahead log + snapshots.

:class:`SketchStore` persists a :class:`~repro.aggregate.DistinctCountAggregator`
— group key → sketch — across process death. The design leans on the
paper's core property: sketch state is tiny, mergeable and serializable,
so full snapshots are cheap and the log between snapshots only has to
carry *inputs* (hash batches), not state diffs.

Directory layout (``gen`` is the zero-padded compaction generation)::

    store/
      snapshot-<gen>.bin   header 0x42 | uvarint gen | uvarint base_lsn
                           | aggregator blob
      wal-<gen>.log        header 0x41 | LSN-stamped checksummed records
      walidx-<gen>.log     header 0x44 | group-level index (advisory,
                           see :mod:`repro.store.walindex`)

Each WAL record uses the LSN framing of
:func:`repro.storage.serialization.write_lsn_record` with two record kinds:

* ``RECORD_HASHES`` (0x01) — payload is ``n * 8`` little-endian uint64
  hash values folded into the key's sketch,
* ``RECORD_SKETCH`` (0x02) — payload is a serialized sketch merged into
  the key's sketch (how retired sliding-window buckets persist and how
  a cluster rebalance ships whole groups between shards),
* ``RECORD_DROP`` (0x03) — empty payload; the key's group is removed
  (how a rebalance retires groups their shard no longer owns), and
* ``RECORD_CUTOVER`` (0x04) — a state no-op fence written by cluster
  rebalancing (see :mod:`repro.cluster`); the payload names the epoch
  and shard counts so replicas and readers replaying the log can tell
  exactly where ownership changed.

Every record carries a **log sequence number**: LSNs start at 1, increase
by exactly 1 per record, and keep counting across compactions (a
snapshot's ``base_lsn`` says how many records it has folded in). The LSN
is what makes the store readable and replicable while it is being
written: a :class:`~repro.store.reader.SnapshotReader` reports the LSN of
the last record it could prove durable (the *durable horizon*), and a
:class:`~repro.store.replicate.FollowerStore` deduplicates re-shipped
records by LSN.

Durability contract: a batch is durable once its WAL record is on disk
(``fsync=True`` forces that before ``append`` returns; the default
leaves it to the OS like most databases in ``fsync=off`` mode).
:meth:`SketchStore.open` replays the WAL tail on top of the newest
snapshot; a torn final record (crash mid-write) is truncated away —
**unless** the store is opened with ``read_only=True``, which must never
mutate a live writer's files and instead just stops at the durable
horizon. Any other corruption raises
:class:`~repro.storage.serialization.SerializationError` rather than
loading garbage. :meth:`compact` folds the WAL into a fresh snapshot
(written atomically via rename) and starts an empty log.
"""

from __future__ import annotations

import os
import pathlib
import re
import time
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

import numpy as np

from repro.aggregate import DistinctCountAggregator
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.storage.serialization import (
    FORMAT_VERSION,
    MAGIC,
    IncompleteRecordError,
    SerializationError,
    TAG_EXALOGLOG,
    TAG_SNAPSHOT,
    TAG_SPARSE_EXALOGLOG,
    TAG_WAL,
    read_lsn_record_from,
    read_uvarint,
    write_lsn_record,
    write_uvarint,
)

#: WAL record kinds.
RECORD_HASHES = 0x01
RECORD_SKETCH = 0x02
RECORD_DROP = 0x03
RECORD_CUTOVER = 0x04

# Observability handles (collection off unless REPRO_METRICS is set).
_WAL_APPEND_BYTES = _metrics.counter(
    "store.wal_append_bytes", "Bytes appended to the write-ahead log."
)
_WAL_APPEND_RECORDS = _metrics.counter(
    "store.wal_append_records", "Records appended to the write-ahead log."
)
_FSYNC_SECONDS = _metrics.histogram(
    "store.fsync_seconds", "Per-record WAL fsync latency (fsync=True only)."
)
_SNAPSHOT_SECONDS = _metrics.histogram(
    "store.snapshot_seconds", "Snapshot write duration (atomic rename incl.)."
)
_COMPACTIONS = _metrics.counter(
    "store.compactions", "WAL-into-snapshot compactions performed."
)
_COMPACTION_SECONDS = _metrics.histogram(
    "store.compaction_seconds", "Full compaction duration."
)
_TORN_TAIL_RECOVERIES = _metrics.counter(
    "store.torn_tail_recoveries",
    "Recoveries that truncated a torn WAL tail left by a crash.",
)
_REPLAY_RECORDS = _metrics.counter(
    "store.wal_replay_records", "WAL records replayed during store opens."
)

_SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{8})\.bin$")
_WAL_PATTERN = re.compile(r"^wal-(\d{8})\.log$")
_WALIDX_PATTERN = re.compile(r"^walidx-(\d{8})\.log$")

_FILE_HEADER_BYTES = 4


def _file_header(tag: int) -> bytes:
    return MAGIC + bytes((FORMAT_VERSION, tag))


def _check_file_header(data: bytes, tag: int, path) -> int:
    if len(data) < _FILE_HEADER_BYTES:
        raise SerializationError(f"{path}: too short to hold a file header")
    if data[:2] != MAGIC or data[2] != FORMAT_VERSION or data[3] != tag:
        raise SerializationError(f"{path}: bad file header (expected tag {tag:#x})")
    return _FILE_HEADER_BYTES


# -- directory layout helpers (shared with reader / replication) ---------------


def snapshot_path(directory, generation: int) -> pathlib.Path:
    return pathlib.Path(directory) / f"snapshot-{generation:08d}.bin"


def wal_path(directory, generation: int) -> pathlib.Path:
    return pathlib.Path(directory) / f"wal-{generation:08d}.log"


def wal_index_path(directory, generation: int) -> pathlib.Path:
    return pathlib.Path(directory) / f"walidx-{generation:08d}.log"


def latest_generation(directory) -> "int | None":
    """Newest snapshot generation in ``directory`` (None when uninitialised)."""
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return None
    generations = [
        int(match.group(1))
        for entry in entries
        if (match := _SNAPSHOT_PATTERN.match(entry))
    ]
    return max(generations) if generations else None


def read_snapshot_header(path) -> tuple[int, int, int]:
    """Peek a snapshot's ``(generation, base_lsn, payload_offset)``.

    Reads only the leading bytes — the replication shipper uses this to
    decide whether a follower needs the snapshot at all before paying for
    the full aggregator blob.
    """
    with open(path, "rb") as handle:
        head = handle.read(_FILE_HEADER_BYTES + 20)  # two uvarints at most
    offset = _check_file_header(head, TAG_SNAPSHOT, path)
    generation, offset = read_uvarint(head, offset)
    base_lsn, offset = read_uvarint(head, offset)
    return generation, base_lsn, offset


def sketch_to_blob(sketch) -> bytes:
    """Serialize any dense/sparse ExaLogLog for a ``RECORD_SKETCH`` payload."""
    return sketch.to_bytes()


def sketch_from_blob(blob: bytes):
    """Deserialize a ``RECORD_SKETCH`` payload (dense or sparse, by tag)."""
    from repro.core.exaloglog import ExaLogLog
    from repro.core.sparse import SparseExaLogLog

    if len(blob) < _FILE_HEADER_BYTES:
        raise SerializationError("sketch blob too short for a header")
    tag = blob[3]
    if tag == TAG_EXALOGLOG:
        return ExaLogLog.from_bytes(blob)
    if tag == TAG_SPARSE_EXALOGLOG:
        return SparseExaLogLog.from_bytes(blob)
    raise SerializationError(f"sketch blob tag {tag:#x} is not mergeable into a store")


@dataclass
class WalReplay:
    """Result of replaying one WAL file."""

    records: int = 0
    """Complete records applied."""

    durable_bytes: int = _FILE_HEADER_BYTES
    """Offset of the first byte after the last complete record."""

    last_lsn: int = 0
    """LSN of the last applied record (the caller's ``base_lsn`` if none)."""

    entries: list = field(default_factory=list)
    """``(key, lsn, offset, length)`` of every applied record, in order —
    exactly what :func:`repro.store.walindex.rebuild_wal_index` wants."""


def replay_wal(
    path, aggregator: DistinctCountAggregator, base_lsn: int = 0
) -> WalReplay:
    """Replay a WAL file into ``aggregator``.

    ``base_lsn`` is the LSN the underlying snapshot has already folded in;
    the file's records must continue it gaplessly (``base_lsn + 1,
    base_lsn + 2, ...``) — any other sequence means the snapshot and WAL
    belong to different histories and raises :class:`SerializationError`.
    A torn tail after the last complete record is ignored (the *writer*
    truncates it before appending more; a read-only open leaves it
    alone). Corruption inside the durable prefix raises
    :class:`SerializationError`.
    """
    replay = WalReplay(last_lsn=base_lsn)
    with open(path, "rb") as handle:
        # Streamed record by record, so replay memory stays O(one record)
        # even for a WAL that was never compacted.
        _check_file_header(handle.read(_FILE_HEADER_BYTES), TAG_WAL, path)
        replay.durable_bytes = handle.tell()
        while True:
            start = handle.tell()
            try:
                record = read_lsn_record_from(handle)
            except IncompleteRecordError:
                break  # torn tail write: durable prefix ends at the last full record
            if record is None:
                break
            lsn, kind, key, payload = record
            if lsn != replay.last_lsn + 1:
                raise SerializationError(
                    f"{path}: record at offset {start} has LSN {lsn}, "
                    f"expected {replay.last_lsn + 1}"
                )
            apply_wal_record(aggregator, kind, key, payload)
            replay.records += 1
            replay.last_lsn = lsn
            replay.durable_bytes = handle.tell()
            replay.entries.append((key, lsn, start, replay.durable_bytes - start))
    return replay


def apply_wal_record(
    aggregator: DistinctCountAggregator, kind: int, key: bytes, payload: bytes
) -> None:
    """Apply one decoded WAL record to an aggregator.

    The single state-transition function shared by writer recovery, the
    concurrent reader's tail replay and follower replication — all four
    paths fold the same bytes through the same code, which is what the
    bit-identity guarantees rest on.
    """
    if kind == RECORD_HASHES:
        if len(payload) % 8:
            raise SerializationError(
                f"hash record payload of {len(payload)} bytes is not a multiple of 8"
            )
        hashes = np.frombuffer(payload, dtype="<u8")
        sketch = aggregator._groups.get(key)
        if sketch is None:
            sketch = aggregator._new_sketch()
            aggregator._groups[key] = sketch
        sketch.add_hashes(hashes)
    elif kind == RECORD_SKETCH:
        _merge_sketch_into(aggregator, key, sketch_from_blob(payload))
    elif kind == RECORD_DROP:
        if payload:
            raise SerializationError(
                f"drop record carries a {len(payload)}-byte payload"
            )
        aggregator._groups.pop(key, None)
    elif kind == RECORD_CUTOVER:
        pass  # cluster rebalance fence: no state transition
    else:
        raise SerializationError(f"unknown WAL record kind {kind:#x}")


def _merge_sketch_into(aggregator: DistinctCountAggregator, key: bytes, sketch) -> None:
    from repro.core.sparse import SparseExaLogLog

    mine = aggregator._groups.get(key)
    if mine is None:
        # Adopt a copy in the aggregator's own representation so later
        # merges/serialization stay uniform.
        mine = aggregator._new_sketch()
        aggregator._groups[key] = mine
    if isinstance(mine, SparseExaLogLog):
        mine.merge_inplace(sketch)
    else:
        if isinstance(sketch, SparseExaLogLog):
            sketch = sketch.densify()
        mine.merge_inplace(sketch)


class SketchStore:
    """A crash-recoverable, WAL-backed store of per-key distinct-count sketches.

    >>> store = SketchStore.open(tmp_path / "counts", p=8)
    >>> store.append("DE", ["alice", "bob"])
    >>> store.close()
    >>> reopened = SketchStore.open(tmp_path / "counts")
    >>> round(reopened.estimate("DE"))
    2

    Parameters mirror the aggregator; on an existing store directory the
    persisted configuration wins and explicitly passed parameters are
    validated against it.

    ``auto_compact_bytes`` bounds the WAL: when an append pushes the log
    past the threshold, the store compacts synchronously (snapshot write
    + fresh log), so recovery time stays proportional to the threshold,
    not to the total ingest history.

    ``read_only=True`` opens a *foreign* store without mutating anything:
    no directory creation, no torn-tail truncation, no stale-generation
    sweep, no index rebuild — safe against a live writer's files. The
    loaded state is the durable prefix at open time; for an incrementally
    refreshing view use :class:`repro.store.reader.SnapshotReader`.
    """

    def __init__(self, *args, **kwargs) -> None:
        raise TypeError("use SketchStore.open(path, ...) to create or open a store")

    @classmethod
    def _new(cls) -> "SketchStore":
        return object.__new__(cls)

    @classmethod
    def open(
        cls,
        path,
        t: int | None = None,
        d: int | None = None,
        p: int | None = None,
        sparse: bool | None = None,
        seed: int | None = None,
        fsync: bool = False,
        auto_compact_bytes: int | None = None,
        read_only: bool = False,
    ) -> "SketchStore":
        """Open a store directory, creating it (plus generation 0) if absent.

        Opening an existing store recovers it: the newest snapshot loads,
        the matching WAL replays up to its last complete record, and a
        torn tail (if the previous process died mid-write) is truncated.
        With ``read_only=True`` nothing on disk is touched — the torn
        tail stays (it may be a live writer's in-flight append), and
        mutating methods raise.
        """
        store = cls._new()
        store._directory = pathlib.Path(path)
        store._fsync = fsync
        store._auto_compact_bytes = auto_compact_bytes
        store._read_only = read_only
        store._wal_handle = None
        store._index_writer = None
        if not read_only:
            store._directory.mkdir(parents=True, exist_ok=True)
        elif not store._directory.is_dir():
            raise FileNotFoundError(
                f"read-only open of missing store directory {store._directory}"
            )

        requested = (t, d, p, sparse, seed)
        generation = latest_generation(store._directory)
        if generation is None:
            if read_only:
                raise SerializationError(
                    f"{store._directory}: no snapshot found (uninitialised store)"
                )
            defaults = (2, 20, 8, True, 0)
            config = tuple(
                value if value is not None else default
                for value, default in zip(requested, defaults)
            )
            store._generation = 0
            store._base_lsn = 0
            store._durable_lsn = 0
            store._aggregator = DistinctCountAggregator(*config)
            store._write_snapshot(0)
            store._wal_records = 0
            store._open_wal(truncate_to=None)
            store._open_index(rebuild_from=[])
        else:
            store._generation = generation
            store._aggregator, store._base_lsn = store._load_snapshot(generation)
            store._durable_lsn = store._base_lsn
            persisted = store._aggregator._config
            mismatched = [
                (value, on_disk)
                for value, on_disk in zip(requested, persisted)
                if value is not None and value != on_disk
            ]
            if mismatched:
                raise ValueError(
                    f"store at {store._directory} has configuration "
                    f"(t, d, p, sparse, seed)={persisted}, requested {requested}"
                )
            path_ = wal_path(store._directory, generation)
            if path_.exists():
                replay = replay_wal(path_, store._aggregator, store._base_lsn)
                store._wal_records = replay.records
                store._durable_lsn = replay.last_lsn
                _REPLAY_RECORDS.inc(replay.records)
                if not read_only:
                    store._open_wal(truncate_to=replay.durable_bytes)
                    store._open_index(rebuild_from=replay.entries)
            else:
                store._wal_records = 0
                if not read_only:
                    store._open_wal(truncate_to=None)
                    store._open_index(rebuild_from=[])
            if not read_only:
                store._sweep_stale(generation)
        return store

    # -- paths ----------------------------------------------------------------

    def _snapshot_path(self, generation: int) -> pathlib.Path:
        return snapshot_path(self._directory, generation)

    def _wal_path(self, generation: int) -> pathlib.Path:
        return wal_path(self._directory, generation)

    def _sweep_stale(self, generation: int) -> None:
        """Delete files a crashed compaction left behind (older generations)."""
        for entry in os.listdir(self._directory):
            match = (
                _SNAPSHOT_PATTERN.match(entry)
                or _WAL_PATTERN.match(entry)
                or _WALIDX_PATTERN.match(entry)
            )
            if match and int(match.group(1)) < generation:
                (self._directory / entry).unlink()

    # -- snapshot & WAL files -------------------------------------------------

    def _write_snapshot(self, generation: int) -> None:
        started = time.perf_counter()
        buffer = bytearray(_file_header(TAG_SNAPSHOT))
        write_uvarint(buffer, generation)
        write_uvarint(buffer, self._durable_lsn)
        buffer.extend(self._aggregator.to_bytes())
        path = self._snapshot_path(generation)
        temporary = path.with_suffix(".tmp")
        with open(temporary, "wb") as handle:
            handle.write(buffer)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        self._sync_directory()
        self._base_lsn = self._durable_lsn
        if _metrics.enabled():
            _SNAPSHOT_SECONDS.observe(time.perf_counter() - started)

    def _load_snapshot(self, generation: int) -> tuple[DistinctCountAggregator, int]:
        path = self._snapshot_path(generation)
        data = path.read_bytes()
        offset = _check_file_header(data, TAG_SNAPSHOT, path)
        stored_generation, offset = read_uvarint(data, offset)
        if stored_generation != generation:
            raise SerializationError(
                f"{path}: names generation {generation} but holds {stored_generation}"
            )
        base_lsn, offset = read_uvarint(data, offset)
        return DistinctCountAggregator.from_bytes(data[offset:]), base_lsn

    def _open_wal(self, truncate_to: int | None) -> None:
        path = self._wal_path(self._generation)
        if not path.exists():
            with open(path, "wb") as handle:
                handle.write(_file_header(TAG_WAL))
                handle.flush()
                os.fsync(handle.fileno())
            self._sync_directory()
        elif truncate_to is not None and truncate_to < os.path.getsize(path):
            # A crash mid-append left a torn tail; recovery cuts it away.
            _TORN_TAIL_RECOVERIES.inc()
            with open(path, "r+b") as handle:
                handle.truncate(truncate_to)
        self._wal_handle = open(path, "ab")

    def _open_index(self, rebuild_from: list) -> None:
        from repro.store.walindex import WalIndexWriter, rebuild_wal_index

        path = wal_index_path(self._directory, self._generation)
        rebuild_wal_index(path, rebuild_from)
        self._index_writer = WalIndexWriter(path)

    def _sync_directory(self) -> None:
        if os.name == "posix":
            fd = os.open(self._directory, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    def _append_record(self, kind: int, key: bytes, payload: bytes) -> None:
        if self._read_only:
            raise ValueError("store is read-only")
        if self._wal_handle is None:
            raise ValueError("store is closed")
        lsn = self._durable_lsn + 1
        buffer = bytearray()
        write_lsn_record(buffer, lsn, kind, key, payload)
        offset = self._wal_handle.tell()
        self._wal_handle.write(buffer)
        self._wal_handle.flush()
        if self._fsync:
            if _metrics.enabled():
                started = time.perf_counter()
                os.fsync(self._wal_handle.fileno())
                _FSYNC_SECONDS.observe(time.perf_counter() - started)
            else:
                os.fsync(self._wal_handle.fileno())
        self._durable_lsn = lsn
        self._wal_records += 1
        if _metrics.enabled():
            _WAL_APPEND_BYTES.inc(len(buffer))
            _WAL_APPEND_RECORDS.inc()
        # The index entry goes *after* the WAL bytes are out: the index may
        # lag the log (readers scan the unindexed tail) but must never
        # point past it.
        if self._index_writer is not None:
            self._index_writer.append(key, lsn, offset, len(buffer))

    def _maybe_auto_compact(self) -> None:
        """Compact when the WAL outgrew its bound.

        Only called *after* a record has been both logged and applied to
        the in-memory aggregator — compacting between the two would
        snapshot a state missing the record while deleting the WAL that
        held it.
        """
        if (
            self._auto_compact_bytes is not None
            and self._wal_handle is not None
            and self._wal_handle.tell() >= self._auto_compact_bytes
        ):
            self.compact()

    # -- ingest ---------------------------------------------------------------

    def append(self, group: Hashable, items: Any) -> "SketchStore":
        """Durably record a batch of items under ``group``; returns ``self``."""
        from repro.hashing.batch import hash_items

        seed = self._aggregator._config[4]
        return self.append_hashes(group, hash_items(items, seed))

    def append_hashes(self, group: Hashable, hashes) -> "SketchStore":
        """Durably record pre-hashed values under ``group``; returns ``self``.

        The WAL record goes to disk first; only then does the batch fold
        into the in-memory sketch, so anything the reader can observe is
        also recoverable.
        """
        from repro.backends import as_hash_array

        hashes = as_hash_array(hashes)
        if len(hashes) == 0:
            return self
        key = DistinctCountAggregator._group_key(group)
        with _trace.span("store.append", batch=len(hashes)):
            payload = hashes.astype("<u8", copy=False).tobytes()
            self._append_record(RECORD_HASHES, key, payload)
            sketch = self._aggregator._groups.get(key)
            if sketch is None:
                sketch = self._aggregator._new_sketch()
                self._aggregator._groups[key] = sketch
            sketch.add_hashes(hashes)
        self._maybe_auto_compact()
        return self

    def merge_sketch(self, group: Hashable, sketch) -> "SketchStore":
        """Durably merge a whole sketch into ``group`` (bucket retirement)."""
        key = DistinctCountAggregator._group_key(group)
        self._append_record(RECORD_SKETCH, key, sketch_to_blob(sketch))
        _merge_sketch_into(self._aggregator, key, sketch)
        self._maybe_auto_compact()
        return self

    def drop_group(self, group: Hashable) -> "SketchStore":
        """Durably remove ``group`` from the store; returns ``self``.

        The WAL records the drop, so recovery, readers and followers all
        converge on the removal. Dropping an absent group is a no-op
        record (idempotent — a rebalance retrying after a crash may drop
        twice).
        """
        key = DistinctCountAggregator._group_key(group)
        self._append_record(RECORD_DROP, key, b"")
        self._aggregator._groups.pop(key, None)
        self._maybe_auto_compact()
        return self

    def append_cutover(self, payload: bytes) -> "SketchStore":
        """Durably write a cluster-rebalance fence record; returns ``self``.

        A pure log marker (state no-op, keyed ``b""``): anything replaying
        this WAL — recovery, a reader tail, a follower replica — carries
        the fence at exactly the LSN the rebalance wrote it, which is what
        lets a replica chain prove on which side of a cutover it stopped.
        """
        self._append_record(RECORD_CUTOVER, b"", bytes(payload))
        self._maybe_auto_compact()
        return self

    # -- queries --------------------------------------------------------------

    @property
    def aggregator(self) -> DistinctCountAggregator:
        """The live in-memory state (snapshot + replayed/applied WAL)."""
        return self._aggregator

    @property
    def config(self) -> tuple[int, int, int, bool, int]:
        """The ``(t, d, p, sparse, seed)`` configuration tuple."""
        return self._aggregator.config

    @property
    def directory(self) -> pathlib.Path:
        return self._directory

    @property
    def generation(self) -> int:
        """Compaction generation (increments on every :meth:`compact`)."""
        return self._generation

    @property
    def read_only(self) -> bool:
        return self._read_only

    @property
    def base_lsn(self) -> int:
        """LSN already folded into the current snapshot."""
        return self._base_lsn

    @property
    def durable_lsn(self) -> int:
        """LSN of the last record known durable (the durable horizon)."""
        return self._durable_lsn

    @property
    def wal_records(self) -> int:
        """Records in the current WAL (replayed + appended this session)."""
        return self._wal_records

    @property
    def wal_bytes(self) -> int:
        """Current WAL file size in bytes."""
        return os.path.getsize(self._wal_path(self._generation))

    def __len__(self) -> int:
        return len(self._aggregator)

    def __contains__(self, group: Hashable) -> bool:
        return group in self._aggregator

    def groups(self) -> Iterator[bytes]:
        return self._aggregator.groups()

    def estimate(self, group: Hashable) -> float:
        return self._aggregator.estimate(group)

    def estimates(self) -> dict[bytes, float]:
        return self._aggregator.estimates()

    def top(self, count: int) -> list[tuple[bytes, float]]:
        """The ``count`` groups with the largest estimates (argpartition)."""
        return self._aggregator.top(count)

    def group_sketch(self, group: Hashable):
        """A private copy of one group's sketch (``None`` for unseen groups)."""
        return self._aggregator.group_sketch(group)

    # -- maintenance ----------------------------------------------------------

    def compact(self) -> int:
        """Fold the WAL into a fresh snapshot; returns the new generation.

        Write order makes every intermediate crash state recoverable: the
        new snapshot lands atomically (temp file + rename), the new empty
        WAL is created, and only then are the previous generation's files
        deleted — :meth:`open` always finds the newest intact snapshot
        and ignores older leftovers.
        """
        if self._read_only:
            raise ValueError("store is read-only")
        if self._wal_handle is None:
            raise ValueError("store is closed")
        started = time.perf_counter()
        with _trace.span("store.compact", generation=self._generation + 1):
            self._wal_handle.close()
            if self._index_writer is not None:
                self._index_writer.close()
            self._generation += 1
            self._write_snapshot(self._generation)
            self._wal_records = 0
            self._wal_handle = None
            self._open_wal(truncate_to=None)
            self._open_index(rebuild_from=[])
            self._sweep_stale(self._generation)
        if _metrics.enabled():
            _COMPACTIONS.inc()
            _COMPACTION_SECONDS.observe(time.perf_counter() - started)
        return self._generation

    def close(self) -> None:
        """Flush and close the WAL handle (no compaction)."""
        if self._wal_handle is not None:
            self._wal_handle.flush()
            os.fsync(self._wal_handle.fileno())
            self._wal_handle.close()
            self._wal_handle = None
        if self._index_writer is not None:
            self._index_writer.close()
            self._index_writer = None

    def __enter__(self) -> "SketchStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SketchStore(directory={str(self._directory)!r}, "
            f"generation={self._generation}, groups={len(self._aggregator)}, "
            f"wal_records={self._wal_records}, durable_lsn={self._durable_lsn})"
        )
