"""Durable keyed sketch store: write-ahead log + snapshots.

:class:`SketchStore` persists a :class:`~repro.aggregate.DistinctCountAggregator`
— group key → sketch — across process death. The design leans on the
paper's core property: sketch state is tiny, mergeable and serializable,
so full snapshots are cheap and the log between snapshots only has to
carry *inputs* (hash batches), not state diffs.

Directory layout (``gen`` is the zero-padded compaction generation)::

    store/
      snapshot-<gen>.bin   header 0x42 | uvarint gen | aggregator blob
      wal-<gen>.log        header 0x41 | checksummed records (see below)

Each WAL record uses the shared framing of
:func:`repro.storage.serialization.write_record` with two record kinds:

* ``RECORD_HASHES`` (0x01) — payload is ``n * 8`` little-endian uint64
  hash values folded into the key's sketch, and
* ``RECORD_SKETCH`` (0x02) — payload is a serialized sketch merged into
  the key's sketch (how retired sliding-window buckets persist).

Durability contract: a batch is durable once its WAL record is on disk
(``fsync=True`` forces that before ``append`` returns; the default
leaves it to the OS like most databases in ``fsync=off`` mode).
:meth:`SketchStore.open` replays the WAL tail on top of the newest
snapshot; a torn final record (crash mid-write) is truncated away, any
other corruption raises :class:`~repro.storage.serialization.SerializationError`
rather than loading garbage. :meth:`compact` folds the WAL into a fresh
snapshot (written atomically via rename) and starts an empty log.
"""

from __future__ import annotations

import os
import pathlib
import re
from typing import Any, Hashable, Iterator

import numpy as np

from repro.aggregate import DistinctCountAggregator
from repro.storage.serialization import (
    FORMAT_VERSION,
    MAGIC,
    IncompleteRecordError,
    SerializationError,
    TAG_EXALOGLOG,
    TAG_SNAPSHOT,
    TAG_SPARSE_EXALOGLOG,
    TAG_WAL,
    read_record_from,
    read_uvarint,
    write_record,
    write_uvarint,
)

#: WAL record kinds.
RECORD_HASHES = 0x01
RECORD_SKETCH = 0x02

_SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{8})\.bin$")
_WAL_PATTERN = re.compile(r"^wal-(\d{8})\.log$")

_FILE_HEADER_BYTES = 4


def _file_header(tag: int) -> bytes:
    return MAGIC + bytes((FORMAT_VERSION, tag))


def _check_file_header(data: bytes, tag: int, path) -> int:
    if len(data) < _FILE_HEADER_BYTES:
        raise SerializationError(f"{path}: too short to hold a file header")
    if data[:2] != MAGIC or data[2] != FORMAT_VERSION or data[3] != tag:
        raise SerializationError(f"{path}: bad file header (expected tag {tag:#x})")
    return _FILE_HEADER_BYTES


def sketch_to_blob(sketch) -> bytes:
    """Serialize any dense/sparse ExaLogLog for a ``RECORD_SKETCH`` payload."""
    return sketch.to_bytes()


def sketch_from_blob(blob: bytes):
    """Deserialize a ``RECORD_SKETCH`` payload (dense or sparse, by tag)."""
    from repro.core.exaloglog import ExaLogLog
    from repro.core.sparse import SparseExaLogLog

    if len(blob) < _FILE_HEADER_BYTES:
        raise SerializationError("sketch blob too short for a header")
    tag = blob[3]
    if tag == TAG_EXALOGLOG:
        return ExaLogLog.from_bytes(blob)
    if tag == TAG_SPARSE_EXALOGLOG:
        return SparseExaLogLog.from_bytes(blob)
    raise SerializationError(f"sketch blob tag {tag:#x} is not mergeable into a store")


def replay_wal(path, aggregator: DistinctCountAggregator) -> tuple[int, int]:
    """Replay a WAL file into ``aggregator``.

    Returns ``(records_applied, durable_bytes)`` where ``durable_bytes``
    is the offset of the last complete record — a torn tail after it is
    ignored (and the caller truncates it away before appending more).
    Corruption inside the durable prefix raises
    :class:`SerializationError`.
    """
    applied = 0
    with open(path, "rb") as handle:
        # Streamed record by record, so replay memory stays O(one record)
        # even for a WAL that was never compacted.
        _check_file_header(handle.read(_FILE_HEADER_BYTES), TAG_WAL, path)
        durable = handle.tell()
        while True:
            try:
                record = read_record_from(handle)
            except IncompleteRecordError:
                break  # torn tail write: durable prefix ends at the last full record
            if record is None:
                break
            _apply_record(aggregator, *record)
            applied += 1
            durable = handle.tell()
    return applied, durable


def _apply_record(aggregator: DistinctCountAggregator, kind: int, key: bytes, payload: bytes) -> None:
    if kind == RECORD_HASHES:
        if len(payload) % 8:
            raise SerializationError(
                f"hash record payload of {len(payload)} bytes is not a multiple of 8"
            )
        hashes = np.frombuffer(payload, dtype="<u8")
        sketch = aggregator._groups.get(key)
        if sketch is None:
            sketch = aggregator._new_sketch()
            aggregator._groups[key] = sketch
        sketch.add_hashes(hashes)
    elif kind == RECORD_SKETCH:
        _merge_sketch_into(aggregator, key, sketch_from_blob(payload))
    else:
        raise SerializationError(f"unknown WAL record kind {kind:#x}")


def _merge_sketch_into(aggregator: DistinctCountAggregator, key: bytes, sketch) -> None:
    from repro.core.sparse import SparseExaLogLog

    mine = aggregator._groups.get(key)
    if mine is None:
        # Adopt a copy in the aggregator's own representation so later
        # merges/serialization stay uniform.
        mine = aggregator._new_sketch()
        aggregator._groups[key] = mine
    if isinstance(mine, SparseExaLogLog):
        mine.merge_inplace(sketch)
    else:
        if isinstance(sketch, SparseExaLogLog):
            sketch = sketch.densify()
        mine.merge_inplace(sketch)


class SketchStore:
    """A crash-recoverable, WAL-backed store of per-key distinct-count sketches.

    >>> store = SketchStore.open(tmp_path / "counts", p=8)
    >>> store.append("DE", ["alice", "bob"])
    >>> store.close()
    >>> reopened = SketchStore.open(tmp_path / "counts")
    >>> round(reopened.estimate("DE"))
    2

    Parameters mirror the aggregator; on an existing store directory the
    persisted configuration wins and explicitly passed parameters are
    validated against it.

    ``auto_compact_bytes`` bounds the WAL: when an append pushes the log
    past the threshold, the store compacts synchronously (snapshot write
    + fresh log), so recovery time stays proportional to the threshold,
    not to the total ingest history.
    """

    def __init__(self, *args, **kwargs) -> None:
        raise TypeError("use SketchStore.open(path, ...) to create or open a store")

    @classmethod
    def _new(cls) -> "SketchStore":
        return object.__new__(cls)

    @classmethod
    def open(
        cls,
        path,
        t: int | None = None,
        d: int | None = None,
        p: int | None = None,
        sparse: bool | None = None,
        seed: int | None = None,
        fsync: bool = False,
        auto_compact_bytes: int | None = None,
    ) -> "SketchStore":
        """Open a store directory, creating it (plus generation 0) if absent.

        Opening an existing store recovers it: the newest snapshot loads,
        the matching WAL replays up to its last complete record, and a
        torn tail (if the previous process died mid-write) is truncated.

        Configuration parameters left at ``None`` default to ELL(2, 20)
        at p=8 when creating and to the persisted configuration when
        opening; explicitly passed values must match an existing store.
        """
        store = cls._new()
        store._directory = pathlib.Path(path)
        store._fsync = fsync
        store._auto_compact_bytes = auto_compact_bytes
        store._wal_handle = None
        store._directory.mkdir(parents=True, exist_ok=True)

        requested = (t, d, p, sparse, seed)
        generation = store._latest_generation()
        if generation is None:
            defaults = (2, 20, 8, True, 0)
            config = tuple(
                value if value is not None else default
                for value, default in zip(requested, defaults)
            )
            store._generation = 0
            store._aggregator = DistinctCountAggregator(*config)
            store._write_snapshot(0)
            store._wal_records = 0
            store._open_wal(truncate_to=None)
        else:
            store._generation = generation
            store._aggregator = store._load_snapshot(generation)
            persisted = store._aggregator._config
            mismatched = [
                (value, on_disk)
                for value, on_disk in zip(requested, persisted)
                if value is not None and value != on_disk
            ]
            if mismatched:
                raise ValueError(
                    f"store at {store._directory} has configuration "
                    f"(t, d, p, sparse, seed)={persisted}, requested {requested}"
                )
            wal_path = store._wal_path(generation)
            if wal_path.exists():
                store._wal_records, durable = replay_wal(wal_path, store._aggregator)
                store._open_wal(truncate_to=durable)
            else:
                store._wal_records = 0
                store._open_wal(truncate_to=None)
            store._sweep_stale(generation)
        return store

    # -- paths ----------------------------------------------------------------

    def _snapshot_path(self, generation: int) -> pathlib.Path:
        return self._directory / f"snapshot-{generation:08d}.bin"

    def _wal_path(self, generation: int) -> pathlib.Path:
        return self._directory / f"wal-{generation:08d}.log"

    def _latest_generation(self) -> int | None:
        generations = [
            int(match.group(1))
            for entry in os.listdir(self._directory)
            if (match := _SNAPSHOT_PATTERN.match(entry))
        ]
        return max(generations) if generations else None

    def _sweep_stale(self, generation: int) -> None:
        """Delete files a crashed compaction left behind (older generations)."""
        for entry in os.listdir(self._directory):
            match = _SNAPSHOT_PATTERN.match(entry) or _WAL_PATTERN.match(entry)
            if match and int(match.group(1)) < generation:
                (self._directory / entry).unlink()

    # -- snapshot & WAL files -------------------------------------------------

    def _write_snapshot(self, generation: int) -> None:
        buffer = bytearray(_file_header(TAG_SNAPSHOT))
        write_uvarint(buffer, generation)
        buffer.extend(self._aggregator.to_bytes())
        path = self._snapshot_path(generation)
        temporary = path.with_suffix(".tmp")
        with open(temporary, "wb") as handle:
            handle.write(buffer)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        self._sync_directory()

    def _load_snapshot(self, generation: int) -> DistinctCountAggregator:
        path = self._snapshot_path(generation)
        data = path.read_bytes()
        offset = _check_file_header(data, TAG_SNAPSHOT, path)
        stored_generation, offset = read_uvarint(data, offset)
        if stored_generation != generation:
            raise SerializationError(
                f"{path}: names generation {generation} but holds {stored_generation}"
            )
        return DistinctCountAggregator.from_bytes(data[offset:])

    def _open_wal(self, truncate_to: int | None) -> None:
        path = self._wal_path(self._generation)
        if not path.exists():
            with open(path, "wb") as handle:
                handle.write(_file_header(TAG_WAL))
                handle.flush()
                os.fsync(handle.fileno())
            self._sync_directory()
        elif truncate_to is not None and truncate_to < os.path.getsize(path):
            with open(path, "r+b") as handle:
                handle.truncate(truncate_to)
        self._wal_handle = open(path, "ab")

    def _sync_directory(self) -> None:
        if os.name == "posix":
            fd = os.open(self._directory, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    def _append_record(self, kind: int, key: bytes, payload: bytes) -> None:
        if self._wal_handle is None:
            raise ValueError("store is closed")
        buffer = bytearray()
        write_record(buffer, kind, key, payload)
        self._wal_handle.write(buffer)
        self._wal_handle.flush()
        if self._fsync:
            os.fsync(self._wal_handle.fileno())
        self._wal_records += 1

    def _maybe_auto_compact(self) -> None:
        """Compact when the WAL outgrew its bound.

        Only called *after* a record has been both logged and applied to
        the in-memory aggregator — compacting between the two would
        snapshot a state missing the record while deleting the WAL that
        held it.
        """
        if (
            self._auto_compact_bytes is not None
            and self._wal_handle is not None
            and self._wal_handle.tell() >= self._auto_compact_bytes
        ):
            self.compact()

    # -- ingest ---------------------------------------------------------------

    def append(self, group: Hashable, items: Any) -> "SketchStore":
        """Durably record a batch of items under ``group``; returns ``self``."""
        from repro.hashing.batch import hash_items

        seed = self._aggregator._config[4]
        return self.append_hashes(group, hash_items(items, seed))

    def append_hashes(self, group: Hashable, hashes) -> "SketchStore":
        """Durably record pre-hashed values under ``group``; returns ``self``.

        The WAL record goes to disk first; only then does the batch fold
        into the in-memory sketch, so anything the reader can observe is
        also recoverable.
        """
        from repro.backends import as_hash_array

        hashes = as_hash_array(hashes)
        if len(hashes) == 0:
            return self
        key = DistinctCountAggregator._group_key(group)
        payload = hashes.astype("<u8", copy=False).tobytes()
        self._append_record(RECORD_HASHES, key, payload)
        sketch = self._aggregator._groups.get(key)
        if sketch is None:
            sketch = self._aggregator._new_sketch()
            self._aggregator._groups[key] = sketch
        sketch.add_hashes(hashes)
        self._maybe_auto_compact()
        return self

    def merge_sketch(self, group: Hashable, sketch) -> "SketchStore":
        """Durably merge a whole sketch into ``group`` (bucket retirement)."""
        key = DistinctCountAggregator._group_key(group)
        self._append_record(RECORD_SKETCH, key, sketch_to_blob(sketch))
        _merge_sketch_into(self._aggregator, key, sketch)
        self._maybe_auto_compact()
        return self

    # -- queries --------------------------------------------------------------

    @property
    def aggregator(self) -> DistinctCountAggregator:
        """The live in-memory state (snapshot + replayed/applied WAL)."""
        return self._aggregator

    @property
    def directory(self) -> pathlib.Path:
        return self._directory

    @property
    def generation(self) -> int:
        """Compaction generation (increments on every :meth:`compact`)."""
        return self._generation

    @property
    def wal_records(self) -> int:
        """Records in the current WAL (replayed + appended this session)."""
        return self._wal_records

    @property
    def wal_bytes(self) -> int:
        """Current WAL file size in bytes."""
        return os.path.getsize(self._wal_path(self._generation))

    def __len__(self) -> int:
        return len(self._aggregator)

    def __contains__(self, group: Hashable) -> bool:
        return group in self._aggregator

    def groups(self) -> Iterator[bytes]:
        return self._aggregator.groups()

    def estimate(self, group: Hashable) -> float:
        return self._aggregator.estimate(group)

    def estimates(self) -> dict[bytes, float]:
        return self._aggregator.estimates()

    # -- maintenance ----------------------------------------------------------

    def compact(self) -> int:
        """Fold the WAL into a fresh snapshot; returns the new generation.

        Write order makes every intermediate crash state recoverable: the
        new snapshot lands atomically (temp file + rename), the new empty
        WAL is created, and only then are the previous generation's files
        deleted — :meth:`open` always finds the newest intact snapshot
        and ignores older leftovers.
        """
        if self._wal_handle is None:
            raise ValueError("store is closed")
        self._wal_handle.close()
        self._generation += 1
        self._write_snapshot(self._generation)
        self._wal_records = 0
        self._wal_handle = None
        self._open_wal(truncate_to=None)
        self._sweep_stale(self._generation)
        return self._generation

    def close(self) -> None:
        """Flush and close the WAL handle (no compaction)."""
        if self._wal_handle is not None:
            self._wal_handle.flush()
            os.fsync(self._wal_handle.fileno())
            self._wal_handle.close()
            self._wal_handle = None

    def __enter__(self) -> "SketchStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SketchStore(directory={str(self._directory)!r}, "
            f"generation={self._generation}, groups={len(self._aggregator)}, "
            f"wal_records={self._wal_records})"
        )
