"""Durable sketch store: persistence, spill-to-disk, concurrent reads, replication.

Everything in-memory about this library dies with the process; this
package is the disk layer that makes the paper's selling point — tiny,
mergeable, serializable sketch state — operational:

* :class:`~repro.store.registers.MemmapRegisters` — ``np.memmap``-backed
  register arrays the bulk backends fold straight into (bit-identical to
  the in-memory path, resident pages managed by the OS);
* :class:`~repro.store.sketchstore.SketchStore` — a keyed, crash-
  recoverable store: append-only WAL of LSN-stamped hash batches +
  periodic snapshots, WAL-tail replay on
  :meth:`~repro.store.sketchstore.SketchStore.open`, compaction folding
  the log into a fresh snapshot;
* :class:`~repro.store.reader.SnapshotReader` — lock-free concurrent
  query serving against a live writer: immutable snapshot + read-only
  WAL tail, refreshable, with a monotone durable horizon;
* :class:`~repro.store.replicate.WalShipper` /
  :class:`~repro.store.replicate.FollowerStore` — async replication by
  shipping the self-delimiting checksummed WAL records, applied
  idempotently by LSN (catch-up ⇒ bit-identical registers);
* :mod:`~repro.store.walindex` — group-level WAL index for selective
  single-group replay;
* :class:`~repro.store.spill.SpilledGroupBy` — external GROUP BY over
  hash-partitioned spill files, exact and memory-bounded at millions of
  groups; :meth:`~repro.store.spill.SpilledGroupBy.attach` opens an
  existing spill directory read-only from a query process.

Entry points elsewhere: ``DistinctCountAggregator.add_batch(spill=...)``,
``SlidingWindowDistinctCounter(store=...)`` (buckets retire durably on
eviction), and the ``python -m repro.store`` CLI
(ingest/query/compact/serve/replicate) — ``query`` speaks the
:mod:`repro.query` dialect over the store or a lock-free reader.
"""

from repro.store.reader import RefreshResult, SnapshotReader
from repro.store.registers import MemmapRegisters
from repro.store.replicate import FollowerStore, ShipResult, WalShipper
from repro.store.sketchstore import (
    RECORD_CUTOVER,
    RECORD_DROP,
    RECORD_HASHES,
    RECORD_SKETCH,
    SketchStore,
    apply_wal_record,
    latest_generation,
    read_snapshot_header,
    replay_wal,
    snapshot_path,
    wal_index_path,
    wal_path,
)
from repro.store.spill import (
    DEFAULT_PARTITIONS,
    SpilledGroupBy,
    SpillWriter,
    read_spill_file,
    spill_files,
)
from repro.store.walindex import WalIndexEntry, load_wal_index

__all__ = [
    "DEFAULT_PARTITIONS",
    "FollowerStore",
    "MemmapRegisters",
    "RECORD_CUTOVER",
    "RECORD_DROP",
    "RECORD_HASHES",
    "RECORD_SKETCH",
    "RefreshResult",
    "ShipResult",
    "SketchStore",
    "SnapshotReader",
    "SpillWriter",
    "SpilledGroupBy",
    "WalIndexEntry",
    "WalShipper",
    "apply_wal_record",
    "latest_generation",
    "load_wal_index",
    "read_snapshot_header",
    "read_spill_file",
    "replay_wal",
    "snapshot_path",
    "spill_files",
    "wal_index_path",
    "wal_path",
]
