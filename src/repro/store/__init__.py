"""Durable sketch store: persistence and spill-to-disk for the sketch family.

Everything in-memory about this library dies with the process; this
package is the disk layer that makes the paper's selling point — tiny,
mergeable, serializable sketch state — operational:

* :class:`~repro.store.registers.MemmapRegisters` — ``np.memmap``-backed
  register arrays the bulk backends fold straight into (bit-identical to
  the in-memory path, resident pages managed by the OS);
* :class:`~repro.store.sketchstore.SketchStore` — a keyed, crash-
  recoverable store: append-only WAL of hash batches + periodic
  snapshots, WAL-tail replay on :meth:`~repro.store.sketchstore.SketchStore.open`,
  compaction folding the log into a fresh snapshot;
* :class:`~repro.store.spill.SpilledGroupBy` — external GROUP BY over
  hash-partitioned spill files, exact and memory-bounded at millions of
  groups.

Entry points elsewhere: ``DistinctCountAggregator.add_batch(spill=...)``,
``SlidingWindowDistinctCounter(store=...)`` (buckets retire durably on
eviction), and the ``python -m repro.store`` CLI (ingest/query/compact).
"""

from repro.store.registers import MemmapRegisters
from repro.store.sketchstore import (
    RECORD_HASHES,
    RECORD_SKETCH,
    SketchStore,
    replay_wal,
)
from repro.store.spill import (
    DEFAULT_PARTITIONS,
    SpilledGroupBy,
    SpillWriter,
    read_spill_file,
    spill_files,
)

__all__ = [
    "DEFAULT_PARTITIONS",
    "MemmapRegisters",
    "RECORD_HASHES",
    "RECORD_SKETCH",
    "SketchStore",
    "SpillWriter",
    "SpilledGroupBy",
    "read_spill_file",
    "replay_wal",
    "spill_files",
]
