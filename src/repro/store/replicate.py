"""WAL-shipping replication: leader store → follower store.

The paper's pitch — sketch state is tiny and mergeable — makes
replication almost embarrassingly cheap: the leader's WAL already *is* a
stream of self-delimiting, checksummed, LSN-stamped records, so a replica
needs no protocol beyond "ship me the records I have not applied yet,
plus a snapshot when I have fallen behind a compaction".

Two halves:

* :class:`WalShipper` reads a leader's store directory **without any
  cooperation from the writer** (same read-only discipline as
  :class:`~repro.store.reader.SnapshotReader`: never truncate, stop at
  the durable horizon) and pushes what the follower is missing.
* :class:`FollowerStore` owns a replica directory with the same layout as
  a leader store (snapshot + LSN-stamped WAL), applies shipped records
  **idempotently by LSN** — a record at or below ``applied_lsn`` is
  dropped, so at-least-once shipping (retries, overlapping syncs,
  restarts) never double-folds — and persists them before acknowledging,
  so a crashed follower recovers to its exact pre-crash horizon.

Catch-up guarantee (asserted by the invariant harness): once a follower
has applied every record up to the leader's durable horizon, its register
bytes are **bit-identical** to the leader's for every group — shipping
replays the same inputs through the same fold in the same order, and the
folds are deterministic. Because a follower directory is itself a valid
store directory, a :class:`~repro.store.reader.SnapshotReader` (or a
read-only :meth:`SketchStore.open`) can serve queries from the replica.
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.aggregate import DistinctCountAggregator
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.storage.serialization import (
    IncompleteRecordError,
    SerializationError,
    read_lsn_record_from,
    write_lsn_record,
)
from repro.store.sketchstore import (
    _FILE_HEADER_BYTES,
    _check_file_header,
    TAG_WAL,
    apply_wal_record,
    latest_generation,
    read_snapshot_header,
    replay_wal,
    snapshot_path,
    wal_path,
)


_RECORDS_SHIPPED = _metrics.counter(
    "replicate.records_shipped",
    "WAL records newly applied to a follower (duplicates not counted).",
)
_BYTES_APPLIED = _metrics.counter(
    "replicate.bytes_applied",
    "Framed WAL bytes durably appended to follower logs.",
)
_SNAPSHOT_INSTALLS = _metrics.counter(
    "replicate.snapshot_installs",
    "Times a follower was (re)seeded from a leader snapshot.",
)
_SYNCS = _metrics.counter(
    "replicate.syncs", "Completed WalShipper.sync calls."
)
_SYNC_SECONDS = _metrics.histogram(
    "replicate.sync_seconds", "Wall time of one WalShipper.sync call."
)
_FOLLOWER_LSN = _metrics.gauge(
    "replicate.follower_lsn",
    "Follower applied horizon after the most recent sync.",
    mode="max",
)
_LSN_LAG = _metrics.gauge(
    "replicate.lsn_lag",
    "Leader durable LSN minus follower applied LSN at sync start.",
)


@dataclass(frozen=True)
class ShipResult:
    """What one :meth:`WalShipper.sync` accomplished."""

    snapshot_installed: bool
    """True when the follower was (re)seeded from the leader's snapshot."""

    records_shipped: int
    """Records newly applied to the follower (duplicates not counted)."""

    follower_lsn: int
    """The follower's applied horizon after the sync."""


class FollowerStore:
    """A durable replica that applies shipped WAL records idempotently.

    The directory mirrors the leader's layout, so the replica can be
    opened by any store reader. ``open`` on an empty directory yields an
    *uninitialised* follower (``initialized`` False) that only
    :meth:`install_snapshot` can seed; an existing replica recovers its
    state — and its ``applied_lsn`` — from its own snapshot + WAL, with
    the usual writer-side torn-tail truncation (the follower owns these
    files; a torn tail here is its *own* crashed append, not a live
    writer's).
    """

    def __init__(self, *args, **kwargs) -> None:
        raise TypeError("use FollowerStore.open(path, ...)")

    @classmethod
    def open(cls, path, fsync: bool = False) -> "FollowerStore":
        follower = object.__new__(cls)
        follower._directory = pathlib.Path(path)
        follower._fsync = fsync
        follower._wal_handle = None
        follower._aggregator = None
        follower._generation = None
        follower._applied_lsn = 0
        follower._directory.mkdir(parents=True, exist_ok=True)
        generation = latest_generation(follower._directory)
        if generation is not None:
            from repro.store.sketchstore import SketchStore

            # Reuse writer-mode recovery wholesale: replay + truncation +
            # stale-generation sweep behave exactly like a leader's.
            store = SketchStore.open(follower._directory)
            follower._aggregator = store.aggregator
            follower._generation = store.generation
            follower._applied_lsn = store.durable_lsn
            store.close()
            follower._wal_handle = open(
                wal_path(follower._directory, follower._generation), "ab"
            )
        return follower

    # -- state -----------------------------------------------------------------

    @property
    def directory(self) -> pathlib.Path:
        return self._directory

    @property
    def initialized(self) -> bool:
        """True once a snapshot has seeded the replica."""
        return self._aggregator is not None

    @property
    def generation(self) -> "int | None":
        """Leader generation of the installed snapshot (None until seeded)."""
        return self._generation

    @property
    def applied_lsn(self) -> int:
        """The replica's horizon: highest LSN durably applied."""
        return self._applied_lsn

    @property
    def aggregator(self) -> DistinctCountAggregator:
        if self._aggregator is None:
            raise ValueError("follower is uninitialised (no snapshot installed)")
        return self._aggregator

    def __len__(self) -> int:
        return len(self.aggregator)

    def __contains__(self, group: Hashable) -> bool:
        return group in self.aggregator

    def groups(self) -> Iterator[bytes]:
        return self.aggregator.groups()

    def estimate(self, group: Hashable) -> float:
        return self.aggregator.estimate(group)

    def estimates(self) -> dict[bytes, float]:
        return self.aggregator.estimates()

    def top(self, count: int) -> list[tuple[bytes, float]]:
        return self.aggregator.top(count)

    def group_sketch(self, group: Hashable):
        """A private copy of one group's sketch (``None`` for unseen groups)."""
        return self.aggregator.group_sketch(group)

    @property
    def config(self) -> tuple[int, int, int, bool, int]:
        """The ``(t, d, p, sparse, seed)`` configuration tuple."""
        return self.aggregator.config

    # -- replication protocol --------------------------------------------------

    def install_snapshot(self, data: bytes) -> None:
        """Seed (or fast-forward) the replica from a leader snapshot blob.

        Validates and parses first, then lands the snapshot atomically
        and starts a fresh WAL — only states at a snapshot boundary are
        ever visible on disk. Installing a snapshot at or behind the
        current horizon is rejected (it would travel back in time).
        """
        from repro.store.sketchstore import _file_header, read_uvarint
        from repro.storage.serialization import TAG_SNAPSHOT

        offset = _check_file_header(data, TAG_SNAPSHOT, "snapshot blob")
        generation, offset = read_uvarint(data, offset)
        base_lsn, offset = read_uvarint(data, offset)
        if self.initialized and base_lsn < self._applied_lsn:
            raise ValueError(
                f"snapshot base LSN {base_lsn} is behind the replica's "
                f"applied horizon {self._applied_lsn}"
            )
        aggregator = DistinctCountAggregator.from_bytes(data[offset:])
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
        path = snapshot_path(self._directory, generation)
        temporary = path.with_suffix(".tmp")
        with open(temporary, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        new_wal = wal_path(self._directory, generation)
        with open(new_wal, "wb") as handle:
            handle.write(_file_header(TAG_WAL))
            handle.flush()
            os.fsync(handle.fileno())
        # Drop files of other generations (including our own previous one).
        for entry in os.listdir(self._directory):
            full = self._directory / entry
            if full not in (path, new_wal) and full.suffix != ".tmp":
                full.unlink()
        self._aggregator = aggregator
        self._generation = generation
        self._applied_lsn = base_lsn
        self._wal_handle = open(new_wal, "ab")

    def apply_record(self, lsn: int, kind: int, key: bytes, payload: bytes) -> bool:
        """Apply one shipped record; returns False for an LSN already applied.

        Idempotent by LSN: re-shipping any prefix is harmless. A *gap*
        (``lsn > applied_lsn + 1``) is an error — applying it would
        silently diverge from the leader; the shipper must install a
        snapshot instead.

        Durability order matches the leader's: the record is framed
        (byte-identically — the framing is deterministic) and written to
        the replica's WAL before it folds into the in-memory state.
        """
        if self._aggregator is None:
            raise ValueError("follower is uninitialised (no snapshot installed)")
        if lsn <= self._applied_lsn:
            return False
        if lsn != self._applied_lsn + 1:
            raise SerializationError(
                f"record LSN {lsn} leaves a gap after applied horizon "
                f"{self._applied_lsn}; a snapshot install is required"
            )
        buffer = bytearray()
        write_lsn_record(buffer, lsn, kind, key, payload)
        self._wal_handle.write(buffer)
        self._wal_handle.flush()
        if self._fsync:
            os.fsync(self._wal_handle.fileno())
        apply_wal_record(self._aggregator, kind, key, payload)
        self._applied_lsn = lsn
        if _metrics.enabled():
            _BYTES_APPLIED.inc(len(buffer))
        return True

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._wal_handle is not None:
            self._wal_handle.flush()
            os.fsync(self._wal_handle.fileno())
            self._wal_handle.close()
            self._wal_handle = None

    def __enter__(self) -> "FollowerStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = (
            f"generation={self._generation}, applied_lsn={self._applied_lsn}"
            if self.initialized
            else "uninitialised"
        )
        return f"FollowerStore(directory={str(self._directory)!r}, {state})"


class WalShipper:
    """Streams a leader's durable WAL records into a follower.

    Reads the leader directory with the reader discipline (read-only,
    stop at the durable horizon, survive compactions by retrying) and
    drives the follower's idempotent apply. One shipper instance may
    :meth:`sync` repeatedly — each call ships exactly what accumulated
    since the last one.
    """

    #: Retries against a concurrently compacting leader before giving up.
    _SYNC_RETRIES = 16

    def __init__(self, source_directory) -> None:
        self._source = pathlib.Path(source_directory)
        if not self._source.is_dir():
            raise FileNotFoundError(f"leader directory {self._source} does not exist")
        # Resume cursor: after the last complete record shipped, as
        # (generation, wal_offset, lsn). Purely an optimisation — it only
        # short-circuits the skip-scan when the follower provably covers
        # it, so one shipper may still serve followers at any horizon.
        self._cursor: "tuple[int, int, int] | None" = None

    @property
    def source(self) -> pathlib.Path:
        return self._source

    def sync(self, follower: FollowerStore) -> ShipResult:
        """Bring ``follower`` up to the leader's current durable horizon."""
        obs = _metrics.enabled()
        started = time.perf_counter() if obs else 0.0
        before = follower.applied_lsn
        last_error: Exception | None = None
        for _ in range(self._SYNC_RETRIES):
            try:
                with _trace.span("replicate.sync", source=str(self._source)):
                    result = self._sync_once(follower)
                if obs:
                    _SYNCS.inc()
                    _SYNC_SECONDS.observe(time.perf_counter() - started)
                    _RECORDS_SHIPPED.inc(result.records_shipped)
                    if result.snapshot_installed:
                        _SNAPSHOT_INSTALLS.inc()
                    _FOLLOWER_LSN.set(result.follower_lsn)
                    _LSN_LAG.set(result.follower_lsn - before)
                return result
            except FileNotFoundError as error:
                # Compaction swept a file between discovery and open;
                # the next attempt sees the newer generation.
                last_error = error
        raise SerializationError(
            f"{self._source}: could not ship a stable generation "
            f"(kept racing a compacting leader): {last_error}"
        ) from last_error

    def _sync_once(self, follower: FollowerStore) -> ShipResult:
        generation = latest_generation(self._source)
        if generation is None:
            raise SerializationError(
                f"{self._source}: no snapshot found (uninitialised leader)"
            )
        snap_path = snapshot_path(self._source, generation)
        _, base_lsn, _ = read_snapshot_header(snap_path)
        snapshot_installed = False
        if not follower.initialized or follower.applied_lsn < base_lsn:
            # The follower predates this generation's snapshot (or does
            # not exist yet): the records between its horizon and the
            # snapshot base are gone from the log, so seed from the
            # snapshot itself. Re-read the header afterwards — the bytes
            # are only trusted once parsed by install_snapshot.
            follower.install_snapshot(snap_path.read_bytes())
            snapshot_installed = True
        shipped = 0
        with open(wal_path(self._source, generation), "rb") as handle:
            header = handle.read(_FILE_HEADER_BYTES)
            if len(header) == _FILE_HEADER_BYTES:
                _check_file_header(header, TAG_WAL, handle.name)
                if (
                    self._cursor is not None
                    and self._cursor[0] == generation
                    and follower.applied_lsn >= self._cursor[2]
                ):
                    handle.seek(self._cursor[1])
                while True:
                    start = handle.tell()
                    try:
                        record = read_lsn_record_from(handle)
                    except IncompleteRecordError:
                        break  # the leader's in-flight append: not durable yet
                    if record is None:
                        break
                    lsn, kind, key, payload = record
                    if follower.apply_record(lsn, kind, key, payload):
                        shipped += 1
                    self._cursor = (generation, handle.tell(), lsn)
        return ShipResult(
            snapshot_installed=snapshot_installed,
            records_shipped=shipped,
            follower_lsn=follower.applied_lsn,
        )

    def __repr__(self) -> str:
        return f"WalShipper(source={str(self._source)!r})"
